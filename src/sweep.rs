//! Message-size sweep harnesses: the experiments behind the paper's
//! Figure 4 (SMP `send` execution time vs message size) and Figure 8
//! (STi7200 `send` execution time per CPU vs message size).

use bytes::Bytes;

use embera::behavior::behavior_fn;
use embera::{AppBuilder, ComponentSpec, Platform, RunningApp};
use embera_os21::Os21Platform;
use embera_smp::SmpPlatform;

/// One sweep sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Message size, bytes.
    pub size_bytes: u64,
    /// Mean `send` primitive execution time, ns.
    pub mean_send_ns: f64,
}

fn mean_send_ns(report: &embera::AppReport) -> f64 {
    let s = &report.component("Sender").expect("sender report").middleware.send;
    if s.count == 0 {
        0.0
    } else {
        s.total_ns as f64 / s.count as f64
    }
}

/// Figure 4 experiment: mean SMP `send` time for each message size.
/// `iterations` sends are averaged per point.
pub fn smp_send_sweep(sizes_bytes: &[u64], iterations: u32) -> Vec<SweepPoint> {
    sizes_bytes
        .iter()
        .map(|&size| {
            let app = sweep_app_placed(size as usize, iterations, 0, 1);
            let report = SmpPlatform::new()
                .deploy(app.build().expect("valid sweep app"))
                .expect("deploy")
                .wait()
                .expect("run");
            SweepPoint {
                size_bytes: size,
                mean_send_ns: mean_send_ns(&report),
            }
        })
        .collect()
}

/// Which CPU sends in the MPSoC sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpsocSender {
    /// The general-purpose host CPU (the paper's Fetch-Reorder side).
    St40,
    /// An ST231 accelerator (the paper's IDCT side).
    St231,
}

/// Figure 8 experiment: mean EMBX-backed `send` time on the simulated
/// STi7200, for the given sending CPU kind.
pub fn mpsoc_send_sweep(
    sizes_bytes: &[u64],
    iterations: u32,
    sender: MpsocSender,
) -> Vec<SweepPoint> {
    mpsoc_send_sweep_with_cost(
        sizes_bytes,
        iterations,
        sender,
        embx::EmbxCostConfig::default(),
    )
}

/// Like [`mpsoc_send_sweep`] but with explicit EMBX cost parameters
/// (used by the DMA-offload ablation, A3).
pub fn mpsoc_send_sweep_with_cost(
    sizes_bytes: &[u64],
    iterations: u32,
    sender: MpsocSender,
    embx_cost: embx::EmbxCostConfig,
) -> Vec<SweepPoint> {
    // ST40 (CPU 0) sends to an object owned by CPU 1; the ST231 sender
    // (CPU 1) sends to an object owned by CPU 0 — mirroring the two
    // directions of the paper's Fetch-Reorder ⇄ IDCT traffic.
    let (send_cpu, recv_cpu) = match sender {
        MpsocSender::St40 => (0usize, 1usize),
        MpsocSender::St231 => (1usize, 0usize),
    };
    sizes_bytes
        .iter()
        .map(|&size| {
            let app = sweep_app_placed(size as usize, iterations, send_cpu, recv_cpu);
            let config = embera_os21::Os21Config {
                embx: embx_cost,
                ..Default::default()
            };
            let mut platform = Os21Platform::with_machine(
                mpsoc_sim::Machine::sti7200_three_cpu(),
                config,
            );
            let report = platform
                .deploy(app.build().expect("valid sweep app"))
                .expect("deploy")
                .wait()
                .expect("run");
            SweepPoint {
                size_bytes: size,
                mean_send_ns: mean_send_ns(&report),
            }
        })
        .collect()
}

fn sweep_app_placed(
    size: usize,
    iterations: u32,
    send_cpu: usize,
    recv_cpu: usize,
) -> AppBuilder {
    let mut app = AppBuilder::new(format!("send-sweep-{size}"));
    app.add(
        ComponentSpec::new(
            "Sender",
            behavior_fn(move |ctx| {
                let payload = Bytes::from(vec![0xA5u8; size]);
                for _ in 0..iterations {
                    ctx.send("out", payload.clone())?;
                }
                Ok(())
            }),
        )
        .with_required("out")
        .with_stack_bytes(1 << 21)
        .on_cpu(send_cpu),
    );
    app.add(
        ComponentSpec::new(
            "Sink",
            behavior_fn(move |ctx| {
                for _ in 0..iterations {
                    ctx.recv("in")?;
                }
                Ok(())
            }),
        )
        .with_provided("in")
        .with_stack_bytes(1 << 21)
        .on_cpu(recv_cpu),
    );
    app.connect(("Sender", "out"), ("Sink", "in"));
    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::linear_fit;

    #[test]
    fn smp_sweep_grows_with_message_size() {
        // Figure 4's shape: send time grows with message size (the copy
        // into the mailbox dominates). This is a wall-clock measurement,
        // so under parallel test load we assert the robust ordering
        // properties; the tight linear fit is checked by the release-mode
        // `repro -- figure4` harness.
        // Wall-clock noise from concurrently running test binaries can
        // swamp a single sweep, so allow a few attempts before failing.
        let sizes: Vec<u64> = (1..=5).map(|k| k * 25 * 1024).collect();
        let mut last_points = Vec::new();
        for attempt in 0..4 {
            let points = smp_send_sweep(&sizes, 300);
            let fit = linear_fit(
                &points
                    .iter()
                    .map(|p| (p.size_bytes as f64, p.mean_send_ns))
                    .collect::<Vec<_>>(),
            );
            if fit.b > 0.0
                && points.last().unwrap().mean_send_ns > points[0].mean_send_ns * 1.5
            {
                return;
            }
            eprintln!("sweep attempt {attempt} too noisy: {points:?}");
            last_points = points;
        }
        panic!(
            "125 kB sends must clearly exceed 25 kB sends \
             (positive slope, >=1.5x) in 4 attempts: {last_points:?}"
        );
    }

    #[test]
    fn mpsoc_sweep_st231_beats_st40() {
        let sizes = [25 * 1024u64, 100 * 1024];
        let st40 = mpsoc_send_sweep(&sizes, 20, MpsocSender::St40);
        let st231 = mpsoc_send_sweep(&sizes, 20, MpsocSender::St231);
        for (a, b) in st40.iter().zip(st231.iter()) {
            assert!(
                b.mean_send_ns < a.mean_send_ns,
                "ST231 must send faster: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn mpsoc_sweep_has_knee_at_50kb() {
        let sizes = [10 * 1024u64, 40 * 1024, 100 * 1024, 160 * 1024];
        let pts = mpsoc_send_sweep(&sizes, 10, MpsocSender::St40);
        let below = (pts[1].mean_send_ns - pts[0].mean_send_ns) / (30.0 * 1024.0);
        let above = (pts[3].mean_send_ns - pts[2].mean_send_ns) / (60.0 * 1024.0);
        assert!(
            above > below * 1.15,
            "slope above the knee must exceed below: {below} vs {above}"
        );
    }
}
