//! Small numeric helpers for the experiment harnesses.

/// Result of an ordinary-least-squares line fit `y = a + b·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept.
    pub a: f64,
    /// Slope.
    pub b: f64,
    /// Coefficient of determination, in [0, 1].
    pub r2: f64,
}

/// Least-squares fit over `(x, y)` samples.
///
/// # Panics
/// Panics if fewer than two samples are given or all x are equal.
pub fn linear_fit(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "degenerate x values");
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - (a + b * p.0)).powi(2)).sum();
    let r2 = if ss_tot <= 1e-12 {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    LinearFit { a, b, r2 }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_fits_exactly() {
        let pts: Vec<(f64, f64)> = (0..10).map(|x| (x as f64, 3.0 + 2.0 * x as f64)).collect();
        let f = linear_fit(&pts);
        assert!((f.a - 3.0).abs() < 1e-9);
        assert!((f.b - 2.0).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_has_lower_r2() {
        let pts = vec![(0.0, 0.0), (1.0, 5.0), (2.0, 1.0), (3.0, 8.0)];
        let f = linear_fit(&pts);
        assert!(f.r2 < 0.9);
    }

    #[test]
    fn flat_data_r2_is_one() {
        let pts = vec![(0.0, 4.0), (1.0, 4.0), (2.0, 4.0)];
        let f = linear_fit(&pts);
        assert!(f.b.abs() < 1e-9);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
