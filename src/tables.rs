//! Rendering of the paper's tables from application reports.

use embera::AppReport;

/// Render Table 1 (paper §4.4): "MJPEG Components Execution Time and
/// Memory Allocated" on the SMP platform, from the runs on both input
/// sizes. Component rows in the paper's order.
///
/// Times are reported in µs like the paper; memory in decimal kB (the
/// paper's 8 392 kb Linux stack is the 8 MiB glibc default printed in
/// decimal kilobytes).
pub fn format_table1(report_small: &AppReport, report_large: &AppReport) -> String {
    let mut out = String::from("Component      Time578 (us)  Time3000 (us)  Mem (kB)\n");
    for name in ["Fetch", "IDCT_1", "IDCT_2", "IDCT_3", "Reorder"] {
        let (Some(small), Some(large)) = (report_small.component(name), report_large.component(name))
        else {
            continue;
        };
        out.push_str(&format!(
            "{:<14} {:>12} {:>14} {:>9}\n",
            name,
            small.os.exec_time_ns / 1_000,
            large.os.exec_time_ns / 1_000,
            small.os.memory_bytes / 1_000,
        ));
    }
    out
}

/// Render Table 2 (paper §4.4): "MJPEG Components Communication
/// Operations Performed".
pub fn format_table2(report_small: &AppReport, report_large: &AppReport) -> String {
    let mut out =
        String::from("Component      send578  receive578  send3000  receive3000\n");
    for name in ["Fetch", "IDCT_1", "IDCT_2", "IDCT_3", "Reorder"] {
        let (Some(small), Some(large)) = (report_small.component(name), report_large.component(name))
        else {
            continue;
        };
        out.push_str(&format!(
            "{:<14} {:>7} {:>11} {:>9} {:>12}\n",
            name,
            small.app.total_sends,
            small.app.total_receives,
            large.app.total_sends,
            large.app.total_receives,
        ));
    }
    out
}

/// Render Table 3 (paper §5.4): execution time and memory on the
/// (simulated) STi7200. The paper's "Time" column is OS21 `task_time` —
/// the CPU time the task consumed (§5.2) — reported here from the RTOS
/// accounting; wall-clock span is shown alongside. Times in seconds
/// like the paper.
pub fn format_table3(report: &AppReport) -> String {
    let mut out = String::from("Component      Time (s)    Wall (s)  Mem (kB)\n");
    for name in ["Fetch-Reorder", "IDCT_1", "IDCT_2"] {
        let Some(r) = report.component(name) else {
            continue;
        };
        out.push_str(&format!(
            "{:<14} {:>8.3} {:>11.3} {:>9}\n",
            name,
            r.os.cpu_time_ns as f64 / 1e9,
            r.os.exec_time_ns as f64 / 1e9,
            r.os.memory_bytes / 1_000,
        ));
    }
    out
}

/// Table 3's headline ratio: Fetch-Reorder task time over the mean IDCT
/// task time (the paper's "runs ten times slower than IDCTx").
pub fn table3_ratio(report: &AppReport) -> f64 {
    let fr = report
        .component("Fetch-Reorder")
        .map(|r| r.os.cpu_time_ns as f64)
        .unwrap_or(0.0);
    let idcts: Vec<f64> = report
        .components
        .iter()
        .filter(|r| r.component.starts_with("IDCT_"))
        .map(|r| r.os.cpu_time_ns.max(1) as f64)
        .collect();
    if idcts.is_empty() || fr == 0.0 {
        return 0.0;
    }
    let mean_idct = idcts.iter().sum::<f64>() / idcts.len() as f64;
    fr / mean_idct
}

#[cfg(test)]
mod tests {
    use super::*;
    use embera::{AppStats, ObservationReport, OsStats};

    fn report_with(names_times_mem: &[(&str, u64, u64)]) -> AppReport {
        AppReport {
            app_name: "t".into(),
            wall_time_ns: 1,
            components: names_times_mem
                .iter()
                .map(|&(name, t, m)| ObservationReport {
                    component: name.to_string(),
                    os: OsStats {
                        exec_time_ns: t,
                        memory_bytes: m,
                        cpu_time_ns: t / 2,
                        queued_bytes: 0,
                    },
                    app: AppStats::default(),
                    ..Default::default()
                })
                .collect(),
        }
    }

    #[test]
    fn table1_contains_all_rows() {
        let r = report_with(&[
            ("Fetch", 4_084_000, 9_621_000),
            ("IDCT_1", 4_084_000, 10_850_000),
            ("IDCT_2", 4_084_000, 10_850_000),
            ("IDCT_3", 4_084_000, 10_850_000),
            ("Reorder", 4_086_000, 13_308_000),
        ]);
        let t = format_table1(&r, &r);
        assert!(t.contains("Fetch"));
        assert!(t.contains("Reorder"));
        assert!(t.contains("10850"), "{t}");
        assert_eq!(t.lines().count(), 6);
    }

    #[test]
    fn table3_ratio_uses_task_time() {
        let r = report_with(&[("Fetch-Reorder", 1_000, 0), ("IDCT_1", 100, 0)]);
        // cpu_time = exec/2 in the fixture: 500 / 50 = 10.
        assert!((table3_ratio(&r) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn missing_components_are_skipped_not_fatal() {
        let r = report_with(&[("Fetch", 1, 1)]);
        let t = format_table2(&r, &r);
        assert_eq!(t.lines().count(), 2);
    }
}
