//! # embera-repro — workspace root of the EMBera reproduction
//!
//! Reproduction of *"Towards a Component-based Observation of MPSoC"*
//! (Prada-Rojas et al., INRIA RR-6905, 2009). See `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! This crate hosts the shared experiment harnesses used by the
//! examples, the integration tests and the `repro` benchmark binary:
//!
//! * [`sweep`] — message-size sweeps behind Figure 4 (SMP send time)
//!   and Figure 8 (MPSoC send time per CPU),
//! * [`tables`] — rendering of Tables 1-3 from [`embera::AppReport`]s
//!   and a least-squares linearity check,
//! * [`stats`] — small numeric helpers.

pub mod stats;
pub mod sweep;
pub mod tables;

pub use stats::{linear_fit, LinearFit};
