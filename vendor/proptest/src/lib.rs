//! Offline shim of [`proptest`](https://crates.io/crates/proptest).
//!
//! A real (if miniature) property-testing harness: deterministic
//! strategies drive randomized inputs through the `proptest!` macro, and
//! assertion failures report the failing case number so runs are
//! reproducible (the RNG stream is a pure function of the test name and
//! case index). Shrinking is not implemented — a failing case prints its
//! inputs instead.
//!
//! Implements the API subset this workspace uses: numeric range
//! strategies, tuples, `prop::collection::vec`, `any`, `Just`,
//! `prop_oneof!`, `.prop_map`, `proptest!` with `ProptestConfig`, and
//! the `prop_assert*` macros.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for one test case, derived from the test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }
}

/// A generator of values of an associated type. Mirrors
/// `proptest::strategy::Strategy` (minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Discard generated values failing `pred` (regenerates up to a
    /// bounded number of attempts).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            strategy: self,
            reason,
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    strategy: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.strategy.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.reason);
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` engine).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Choose uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].gen_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy form of [`Arbitrary`]; see [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample`).

    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list; see [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Choose uniformly among the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Explicit test-case failure, for `Result`-valued property bodies.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// Alias of [`TestCaseError::fail`] (proptest's `Reject` variant).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Namespace mirror so `prop::collection::vec(..)` works after
/// `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Runner configuration (`proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Run one property over `cases` deterministic cases. Used by the
/// [`proptest!`] macro; public for direct use.
pub fn run_property<F: FnMut(&mut TestRng)>(name: &str, config: ProptestConfig, mut body: F) {
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(name, case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest: property `{name}` failed at case {case}/{} (rerun is deterministic)",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Property-test entry macro; see crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), config, |rng| {
                    use $crate::Strategy as _;
                    $(let $arg = (&($strategy)).gen_value(rng);)+
                    // Result-valued body: `return Err(TestCaseError)` fails
                    // the case; falling off the end passes it.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("test case failed: {e}");
                    }
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategy arms (all arms must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Property-scoped assert (plain `assert!` in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-scoped assert_eq (plain `assert_eq!` in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-scoped assert_ne (plain `assert_ne!` in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u32),
        B(u32),
    }

    proptest! {
        #[test]
        fn ranges_and_vecs_in_bounds(
            xs in prop::collection::vec(0u32..100, 1..20),
            y in -5i32..=5,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!((-5..=5).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn oneof_map_and_tuples(
            op in prop_oneof![
                (0u32..10).prop_map(Op::A),
                (10u32..20).prop_map(Op::B),
            ],
            exact in prop::collection::vec(any::<u8>(), 7),
        ) {
            match op {
                Op::A(v) => prop_assert!(v < 10),
                Op::B(v) => prop_assert!((10..20).contains(&v)),
            }
            prop_assert_eq!(exact.len(), 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        let s = 0u64..1000;
        assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
    }
}
