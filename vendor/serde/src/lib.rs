//! Offline shim of [`serde`](https://crates.io/crates/serde).
//!
//! The workspace uses serde only to *derive* `Serialize`/`Deserialize`
//! as forward-looking markers — nothing in-tree performs serialization
//! through serde (JSON emission is hand-rolled where needed). This shim
//! provides the two traits as markers and a derive that implements them,
//! so the annotations keep compiling offline and the real crate can be
//! swapped back in without source changes.

/// Marker form of `serde::Serialize`.
pub trait Serialize {}

/// Marker form of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
