//! Offline shim of [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind the parking_lot API surface this
//! workspace uses: non-poisoning `Mutex::lock()` returning the guard
//! directly, and `Condvar::wait`/`wait_until` taking `&mut MutexGuard`.
//! Poisoned locks are transparently recovered (parking_lot has no
//! poisoning).

use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// Mutual exclusion primitive (non-poisoning `lock()`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during condvar wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified. The guard is atomically released during the
    /// wait and re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already taken");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard already taken");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Block until notified or the deadline `until` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        until: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= until {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, until - now)
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            std::thread::sleep(Duration::from_millis(10));
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
