//! Offline shim of `serde_derive`: emits empty marker-trait impls for
//! the shim `serde` crate. Handles plain (non-generic) structs and
//! enums, which covers every derive site in this workspace; `#[serde(…)]`
//! field attributes are accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following the first `struct`/`enum`/`union`
/// keyword at the top level of the item.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => return name.to_string(),
                    other => panic!("expected type name after `{kw}`, found {other:?}"),
                }
            }
        }
    }
    panic!("serde_derive shim: no struct/enum/union found in derive input");
}

/// Derive the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}

/// Derive the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}
