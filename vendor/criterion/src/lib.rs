//! Offline shim of [`criterion`](https://crates.io/crates/criterion).
//!
//! A genuinely measuring (if statistically modest) harness: each
//! benchmark is warmed up, then sampled `sample_size` times, each sample
//! sized so the whole benchmark respects `measurement_time`. Mean /
//! min / max and optional throughput are printed in a criterion-like
//! format. No plots, no outlier analysis, no saved baselines.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub use std::hint::black_box;

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}
impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Let the routine time itself: it receives the iteration count and
    /// returns the measured duration.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(self.iters);
    }
}

#[derive(Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            throughput: None,
        }
    }
}

/// One benchmark result (also printed to stdout).
#[derive(Debug, Clone)]
pub struct Sampled {
    /// Full benchmark id (`group/function/param`).
    pub id: String,
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest sample, per iteration.
    pub min: Duration,
    /// Slowest sample, per iteration.
    pub max: Duration,
}

fn run_benchmark(id: &str, settings: Settings, mut f: impl FnMut(&mut Bencher)) -> Sampled {
    // Calibration: one iteration, to size the samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = settings.measurement_time.max(Duration::from_millis(10));
    let per_sample = budget.as_nanos() / settings.sample_size.max(1) as u128;
    let iters = (per_sample / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut samples = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size.max(2) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters as u32);
    }
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let min = *samples.iter().min().unwrap();
    let max = *samples.iter().max().unwrap();

    let fmt = |d: Duration| {
        let ns = d.as_nanos() as f64;
        if ns < 1e3 {
            format!("{ns:.1} ns")
        } else if ns < 1e6 {
            format!("{:.2} µs", ns / 1e3)
        } else if ns < 1e9 {
            format!("{:.2} ms", ns / 1e6)
        } else {
            format!("{:.3} s", ns / 1e9)
        }
    };
    print!(
        "{id:<50} time: [{} {} {}]",
        fmt(min),
        fmt(mean),
        fmt(max)
    );
    if let Some(tp) = settings.throughput {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Bytes(n) => print!("  thrpt: {:.2} MiB/s", per_sec(n) / (1024.0 * 1024.0)),
            Throughput::Elements(n) => print!("  thrpt: {:.2} elem/s", per_sec(n)),
        }
    }
    println!();
    Sampled {
        id: id.to_string(),
        mean,
        min,
        max,
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Target total measuring time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Warm-up time (accepted for API compatibility; the shim warms up
    /// with its calibration pass).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.settings.throughput = Some(tp);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&id, self.settings, f);
        self
    }

    /// Run a benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.id);
        run_benchmark(&id, self.settings, |b| f(b, input));
        self
    }

    /// Finish the group (printing-only shim: a no-op separator).
    pub fn finish(self) {
        println!();
    }
}

/// Benchmark manager (the criterion entry object).
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Disable distribution plots. The shim never plots, so this only
    /// exists for configuration-source compatibility with upstream.
    pub fn without_plots(self) -> Self {
        self
    }

    /// Standalone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(id, self.settings, f);
        self
    }

    /// Standalone benchmark with input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(&id.id, self.settings, |b| f(b, input));
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _parent: self,
        }
    }

    /// Final summary hook (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (
        name = $group:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_plausible() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).measurement_time(Duration::from_millis(20));
        group.bench_function("spin", |b| {
            b.iter(|| {
                let mut x = 0u64;
                for i in 0..1000 {
                    x = x.wrapping_add(black_box(i));
                }
                x
            })
        });
        group.finish();
    }

    #[test]
    fn iter_custom_reports_given_duration() {
        let s = run_benchmark(
            "custom",
            Settings {
                sample_size: 2,
                measurement_time: Duration::from_millis(1),
                throughput: None,
            },
            |b| b.iter_custom(|iters| Duration::from_micros(10) * iters as u32),
        );
        assert!(s.mean >= Duration::from_micros(9) && s.mean <= Duration::from_micros(11));
    }
}
