//! Offline shim of the [`crossbeam`](https://crates.io/crates/crossbeam)
//! subset this workspace uses: `queue::SegQueue` and `utils::Backoff`.
//!
//! The real SegQueue is a lock-free segmented queue; this shim keeps the
//! API and the unbounded-MPMC semantics but guards a `VecDeque` with a
//! short-critical-section spinlock (uncontended cost is a single CAS,
//! which preserves the flavour of the ablation it exists for).

pub mod queue {
    use std::cell::UnsafeCell;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Unbounded MPMC FIFO queue.
    pub struct SegQueue<T> {
        locked: AtomicBool,
        items: UnsafeCell<VecDeque<T>>,
    }

    // Safety: all access to `items` happens strictly inside the spinlock
    // critical section established by `with`.
    unsafe impl<T: Send> Send for SegQueue<T> {}
    unsafe impl<T: Send> Sync for SegQueue<T> {}

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> SegQueue<T> {
        /// Create an empty queue.
        pub fn new() -> Self {
            SegQueue {
                locked: AtomicBool::new(false),
                items: UnsafeCell::new(VecDeque::new()),
            }
        }

        fn with<R>(&self, f: impl FnOnce(&mut VecDeque<T>) -> R) -> R {
            let backoff = crate::utils::Backoff::new();
            while self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                backoff.snooze();
            }
            // Safety: we hold the spinlock.
            let r = f(unsafe { &mut *self.items.get() });
            self.locked.store(false, Ordering::Release);
            r
        }

        /// Enqueue at the back.
        pub fn push(&self, value: T) {
            self.with(|q| q.push_back(value));
        }

        /// Dequeue from the front.
        pub fn pop(&self) -> Option<T> {
            self.with(|q| q.pop_front())
        }

        /// Current number of queued items.
        pub fn len(&self) -> usize {
            self.with(|q| q.len())
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

pub mod utils {
    use std::sync::atomic::{AtomicU32, Ordering};

    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Exponential backoff for spin loops, mirroring
    /// `crossbeam_utils::Backoff`.
    pub struct Backoff {
        step: AtomicU32,
    }

    impl Default for Backoff {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Backoff {
        /// Fresh backoff state.
        pub fn new() -> Self {
            Backoff {
                step: AtomicU32::new(0),
            }
        }

        /// Reset to the initial (pure-spin) state.
        pub fn reset(&self) {
            self.step.store(0, Ordering::Relaxed);
        }

        /// Back off in a lock-free retry loop (spin only).
        pub fn spin(&self) {
            let step = self.step.load(Ordering::Relaxed).min(SPIN_LIMIT);
            for _ in 0..1u32 << step {
                std::hint::spin_loop();
            }
            if step <= SPIN_LIMIT {
                self.step.store(step + 1, Ordering::Relaxed);
            }
        }

        /// Back off while waiting for another thread to make progress:
        /// spin first, then yield the scheduler slice.
        pub fn snooze(&self) {
            let step = self.step.load(Ordering::Relaxed);
            if step <= SPIN_LIMIT {
                for _ in 0..1u32 << step {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if step <= YIELD_LIMIT {
                self.step.store(step + 1, Ordering::Relaxed);
            }
        }

        /// True once backoff has escalated past yielding — the caller
        /// should switch to a blocking wait (park) instead of burning CPU.
        pub fn is_completed(&self) -> bool {
            self.step.load(Ordering::Relaxed) > YIELD_LIMIT
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;
    use super::utils::Backoff;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_producers_consumers() {
        let q = Arc::new(SegQueue::new());
        let mut handles = Vec::new();
        for p in 0..4u32 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u32 {
                    q.push(p * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        assert_eq!(got.len(), 4000);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 4000, "no element lost or duplicated");
    }

    #[test]
    fn backoff_escalates_to_completed() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
