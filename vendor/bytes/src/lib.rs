//! Offline shim of the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! Implements the subset of the real crate's `Bytes` API that this
//! workspace uses: a cheaply clonable, reference-counted, immutable byte
//! buffer with zero-copy slicing. The container cannot reach crates.io,
//! so this path crate stands in for the real dependency; swapping the
//! real crate back in requires no source changes elsewhere.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable slice of memory.
///
/// Clones and [`Bytes::slice`] share the same backing allocation — no
/// copy is made. This is what lets batched pipeline messages be split
/// into per-block views without allocating.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static slice. (The shim copies once into shared storage;
    /// semantics are identical to the real crate.)
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copy `s` into a new shared buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of the backing allocation (which the view may only cover
    /// part of after [`Bytes::slice`]).
    pub fn storage_len(&self) -> usize {
        self.data.len()
    }

    /// True when this handle is the only reference to the backing
    /// allocation — no clones or slices outlive it, so the storage can
    /// be reused.
    pub fn is_unique(&self) -> bool {
        Arc::strong_count(&self.data) == 1
    }

    /// Mutable access to the *entire* backing allocation, available only
    /// when this handle is unique ([`Bytes::is_unique`]). Buffer pools
    /// use this to refill a reclaimed buffer in place.
    pub fn try_mut(&mut self) -> Option<&mut [u8]> {
        Arc::get_mut(&mut self.data)
    }

    /// Reset the view to cover the first `len` bytes of the backing
    /// allocation (undoing any slicing). Used together with
    /// [`Bytes::try_mut`] when recycling a buffer.
    ///
    /// # Panics
    /// Panics if `len` exceeds the storage length.
    pub fn reset_view(&mut self, len: usize) {
        assert!(len <= self.data.len(), "view {len} exceeds storage {}", self.data.len());
        self.start = 0;
        self.end = len;
    }

    /// Zero-copy sub-slice sharing the same backing allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice {begin}..{end} out of bounds of {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        Vec::from(&self[..]).into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert!(Arc::ptr_eq(&b.data, &s.data), "slice must share storage");
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn equality_and_len() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let _ = b.slice(1..7);
    }

    #[test]
    fn uniqueness_tracks_clones_and_slices() {
        let mut b = Bytes::from(vec![0u8; 8]);
        assert!(b.is_unique());
        assert_eq!(b.storage_len(), 8);
        let view = b.slice(2..5);
        assert!(!b.is_unique(), "live slice shares the storage");
        assert!(b.try_mut().is_none());
        drop(view);
        assert!(b.is_unique());
        // Reclaim: rewrite the storage in place and re-view a prefix.
        b.try_mut().unwrap()[..3].copy_from_slice(b"abc");
        b.reset_view(3);
        assert_eq!(&b[..], b"abc");
        assert_eq!(b.storage_len(), 8);
    }
}
