//! Paper §4: the componentized MJPEG decoder on the SMP backend —
//! regenerates Table 1, Table 2 and the Figure 5 listing.
//!
//! ```text
//! cargo run --release --example mjpeg_smp            # reduced streams (58/300 frames)
//! cargo run --release --example mjpeg_smp -- --paper # full 578/3000 frames
//! ```

use std::sync::atomic::Ordering;

use embera::{Platform, RunningApp};
use embera_repro::tables::{format_table1, format_table2};
use embera_smp::SmpPlatform;
use mjpeg::{build_smp_app, synthesize_stream, MjpegAppConfig};

fn run(frames: usize, seed: u64) -> embera::AppReport {
    let stream = synthesize_stream(frames, 48, 24, 75, seed);
    let (mut app, probe) = build_smp_app(stream, &MjpegAppConfig::default());
    // The paper's Table 1 memory figures include the observation
    // interfaces; attach the observer so the accounting matches.
    let _log = app.with_observer(embera::ObserverConfig::default().interval_ns(20_000_000));
    let report = SmpPlatform::new()
        .deploy(app.build().expect("valid app"))
        .expect("deploy")
        .wait()
        .expect("run");
    println!(
        "  {} frames: decoded {} frames in {:.1} ms (checksum {:#018x})",
        frames,
        probe.frames_completed.load(Ordering::SeqCst),
        report.wall_time_ns as f64 / 1e6,
        probe.checksum.load(Ordering::SeqCst),
    );
    report
}

/// The PR 5 throughput configuration: SIMD IDCT kernel, batched
/// messages, pooled payload buffers (zero steady-state allocations),
/// and a non-default worker count. Same frames and checksum as the
/// paper schedule — only faster.
fn run_fast(frames: usize, seed: u64) {
    let stream = synthesize_stream(frames, 48, 24, 75, seed);
    let cfg = MjpegAppConfig {
        idct_count: 4,
        blocks_per_msg: 72,
        kernel: mjpeg::DctKind::FastSimd,
        payload_pool: true,
        ..MjpegAppConfig::default()
    };
    let (app, probe) = build_smp_app(stream, &cfg);
    let report = SmpPlatform::new()
        .deploy(app.build().expect("valid app"))
        .expect("deploy")
        .wait()
        .expect("run");
    println!(
        "  {} frames, 4 workers, batch 72, {} kernel, pooled: {} frames in {:.1} ms (checksum {:#018x})",
        frames,
        mjpeg::active_level().name(),
        probe.frames_completed.load(Ordering::SeqCst),
        report.wall_time_ns as f64 / 1e6,
        probe.checksum.load(Ordering::SeqCst),
    );
}

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let (small, large) = if paper_scale { (578, 3000) } else { (58, 300) };

    println!("MJPEG on the SMP backend (paper section 4)");
    let report_small = run(small, 0x578);
    let report_large = run(large, 0x3000);

    println!("\nThroughput configuration (PR 5 — repro -- bench-sweep explores the full matrix)");
    run_fast(small, 0x578);

    println!("\nTable 1 — MJPEG components execution time and memory allocated");
    println!("{}", format_table1(&report_small, &report_large));

    println!("Table 2 — MJPEG components communication operations performed");
    println!("{}", format_table2(&report_small, &report_large));

    println!("Figure 5 — interfaces of component IDCT_1");
    println!(
        "{}",
        report_small
            .component("IDCT_1")
            .expect("IDCT_1 present")
            .structure
            .format_figure5()
    );
}
