//! Bottleneck detection through observation — the paper's closing
//! motivation for §4.4: "the execution times indicate that the
//! application is well load-balanced for the JPEG input size but if
//! that size changes, the execution times could cause a bottleneck on
//! the IDCT components."
//!
//! This example provokes exactly that: the same MJPEG pipeline run once
//! with the paper's three IDCTs and once with a single IDCT on larger
//! frames. The observer's live data (queued payload bytes per provided
//! interface, send/receive counters) pinpoints the bottleneck without
//! touching application code.
//!
//! ```text
//! cargo run --release --example bottleneck_detect
//! ```

use embera::{ObserverConfig, Platform, RunningApp};
use embera_smp::SmpPlatform;
use mjpeg::{build_smp_app, synthesize_stream, MjpegAppConfig};

struct RunSummary {
    label: &'static str,
    wall_ms: f64,
    peak_queued: Vec<(String, u64)>,
}

fn run(label: &'static str, idct_count: usize, width: usize, height: usize) -> RunSummary {
    let stream = synthesize_stream(150, width, height, 75, 0xB0B0);
    let cfg = MjpegAppConfig {
        idct_count,
        ..Default::default()
    };
    let (mut app, _probe) = build_smp_app(stream, &cfg);
    let log = app.with_observer(ObserverConfig::default().interval_ns(2_000_000));
    let report = SmpPlatform::new()
        .deploy(app.build().expect("valid app"))
        .expect("deploy")
        .wait()
        .expect("run");

    // Peak queued bytes per component over all observation rounds.
    let mut peak: std::collections::BTreeMap<String, u64> = Default::default();
    for r in log.records() {
        let e = peak.entry(r.report.component.clone()).or_default();
        *e = (*e).max(r.report.os.queued_bytes);
    }
    RunSummary {
        label,
        wall_ms: report.wall_time_ns as f64 / 1e6,
        peak_queued: peak.into_iter().collect(),
    }
}

fn print_summary(s: &RunSummary) {
    println!("--- {} ({:.1} ms) ---", s.label, s.wall_ms);
    println!("peak queued payload per component:");
    let max = s.peak_queued.iter().map(|(_, v)| *v).max().unwrap_or(0);
    for (name, bytes) in &s.peak_queued {
        let bar = "#".repeat((bytes * 40 / max.max(1)) as usize);
        println!("  {name:<16} {bytes:>9} B  {bar}");
    }
    if let Some((worst, bytes)) = s.peak_queued.iter().max_by_key(|(_, v)| *v) {
        if *bytes > 0 {
            println!("  => deepest backlog at '{worst}' — the pipeline bottleneck");
        }
    }
    println!();
}

fn main() {
    println!("Detecting pipeline bottlenecks through EMBera observation\n");
    // Balanced configuration: the paper's 3 IDCTs on 48x24 frames.
    let balanced = run("balanced: 3 IDCTs, 48x24 frames", 3, 48, 24);
    // Provoked bottleneck: one IDCT on 4x larger frames.
    let skewed = run("bottleneck: 1 IDCT, 96x48 frames", 1, 96, 48);

    print_summary(&balanced);
    print_summary(&skewed);

    let peak = |s: &RunSummary, name: &str| {
        s.peak_queued
            .iter()
            .find(|(n, _)| n.starts_with(name))
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let balanced_idct = peak(&balanced, "IDCT");
    let skewed_idct = peak(&skewed, "IDCT");
    println!(
        "IDCT inbox backlog grew from {balanced_idct} B (balanced) to {skewed_idct} B (skewed): \
         the observation interface exposes the §4.4 bottleneck without modifying the application."
    );
}
