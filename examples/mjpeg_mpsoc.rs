//! Paper §5: the MJPEG decoder on the simulated STi7200 — regenerates
//! Table 3 and the Figure 8 sweep.
//!
//! ```text
//! cargo run --release --example mjpeg_mpsoc            # reduced stream (58 frames)
//! cargo run --release --example mjpeg_mpsoc -- --paper # full 578 frames
//! ```

use std::sync::atomic::Ordering;

use embera::{Platform, RunningApp};
use embera_os21::Os21Platform;
use embera_repro::sweep::{mpsoc_send_sweep, MpsocSender};
use embera_repro::tables::{format_table3, table3_ratio};
use mjpeg::{build_mpsoc_app, synthesize_stream, MjpegAppConfig};

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let frames = if paper_scale { 578 } else { 58 };

    println!("MJPEG on the simulated STi7200 (paper section 5)");
    println!("  platform: 1x ST40 @450 MHz + 2x ST231 @400 MHz (3-CPU toolchain limit, section 5.3)");

    let stream = synthesize_stream(frames, 48, 24, 75, 0x578);
    let cfg = MjpegAppConfig {
        idct_count: 2,
        ..Default::default()
    };
    let (app, probe) = build_mpsoc_app(stream, &cfg);
    let platform = Os21Platform::three_cpu();
    let machine = platform.machine().clone();
    let mut platform = platform;
    let report = platform
        .deploy(app.build().expect("valid app"))
        .expect("deploy")
        .wait()
        .expect("run");

    println!(
        "  {} frames decoded ({} reassembled) in {:.3} s of virtual time\n",
        frames,
        probe.frames_completed.load(Ordering::SeqCst),
        report.wall_time_ns as f64 / 1e9,
    );

    println!("Table 3 — MJPEG components execution time and memory allocated");
    println!("{}", format_table3(&report));
    println!(
        "Fetch-Reorder / IDCT task-time ratio: {:.1}x  (paper: 1173 s / 95 s = 12.3x)\n",
        table3_ratio(&report)
    );

    println!("Hardware counters from the machine model:");
    println!(
        "  bus: {} transactions, {:.2} ms busy, {:.2} ms queueing",
        machine.bus_stats().transactions,
        machine.bus_stats().busy_ns as f64 / 1e6,
        machine.bus_stats().wait_ns as f64 / 1e6
    );
    for cpu in 0..machine.config().num_cpus() {
        let st = machine.dcache_stats(cpu);
        println!(
            "  {} L1D: {} hits, {} misses ({:.1}% miss)",
            machine.config().cpus[cpu].name,
            st.hits,
            st.misses,
            st.miss_ratio() * 100.0
        );
    }

    println!("\nFigure 8 — EMBera send execution time over message size (virtual time)");
    let sizes: Vec<u64> = [1u64, 10, 25, 50, 100, 200].iter().map(|k| k * 1024).collect();
    let st40 = mpsoc_send_sweep(&sizes, 25, MpsocSender::St40);
    let st231 = mpsoc_send_sweep(&sizes, 25, MpsocSender::St231);
    println!("size (kB)  Fetch-Reorder/ST40 (ms)  IDCT/ST231 (ms)");
    for (a, b) in st40.iter().zip(st231.iter()) {
        println!(
            "{:>8}  {:>23.3}  {:>15.3}",
            a.size_bytes / 1024,
            a.mean_send_ns / 1e6,
            b.mean_send_ns / 1e6
        );
    }
    println!("\n(knee expected at 50 kB: the EMBX object double-buffers 2 x 25 kB slots)");
}
