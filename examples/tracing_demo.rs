//! Event tracing (paper §6 future work, experiment X3): run a pipeline
//! with first-class runtime tracing and print timeline statistics plus
//! a snippet of the raw trace.
//!
//! Tracing is a one-line opt-in on the *application description*
//! (`AppBuilder::with_tracing`): the component runtime emits events
//! around every primitive on every backend, so the behaviors below are
//! completely ordinary — no decorators, no instrumentation. The runtime
//! also reports what no decorator could see: `ObsServed` events for
//! introspection requests it answers on a component's behalf.
//!
//! ```text
//! cargo run --release --example tracing_demo
//! ```

use bytes::Bytes;
use embera::behavior::behavior_fn;
use embera::{AppBuilder, ComponentSpec, Platform, RunningApp};
use embera_smp::SmpPlatform;
use embera_trace::analysis::TimelineStats;
use embera_trace::{export, TraceCollector};

fn main() {
    const MESSAGES: u32 = 2_000;
    let collector = TraceCollector::default();

    let mut app = AppBuilder::new("traced-pipeline");
    app.with_tracing(collector.trace_config());
    app.add(
        ComponentSpec::new(
            "stage_a",
            behavior_fn(move |ctx| {
                for i in 0..MESSAGES {
                    ctx.send("out", Bytes::from(vec![i as u8; 512]))?;
                }
                Ok(())
            }),
        )
        .with_required("out"),
    );
    app.add(
        ComponentSpec::new(
            "stage_b",
            behavior_fn(move |ctx| {
                for _ in 0..MESSAGES {
                    let m = ctx.recv("in")?;
                    ctx.send("out", m)?;
                }
                Ok(())
            }),
        )
        .with_provided("in")
        .with_required("out"),
    );
    app.add(
        ComponentSpec::new(
            "stage_c",
            behavior_fn(move |ctx| {
                for _ in 0..MESSAGES {
                    ctx.recv("in")?;
                }
                Ok(())
            }),
        )
        .with_provided("in"),
    );
    app.connect(("stage_a", "out"), ("stage_b", "in"));
    app.connect(("stage_b", "out"), ("stage_c", "in"));

    let report = SmpPlatform::new()
        .deploy(app.build().expect("valid app"))
        .expect("deploy")
        .wait()
        .expect("run");

    let trace = collector.drain_sorted();
    println!(
        "pipeline moved {MESSAGES} messages in {:.2} ms; captured {} trace events\n",
        report.wall_time_ns as f64 / 1e6,
        trace.len()
    );

    let stats = TimelineStats::from_events(&trace);
    println!("timeline statistics:");
    println!("{}", stats.format_table(&collector.names()));

    println!("first 12 raw trace events (ts component kind a b):");
    let text = export::to_text(&trace[..trace.len().min(12)]);
    print!("{text}");

    // Round-trip through the text format to show it parses back.
    let parsed = export::from_text(&export::to_text(&trace)).expect("trace re-parses");
    assert_eq!(parsed.len(), trace.len());
    println!("\ntrace round-tripped through the text format ({} events)", parsed.len());
}
