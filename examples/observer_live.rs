//! Live observation: an observer component sampling a running pipeline,
//! showing counter progression and the memory-evolution series the paper
//! lists as future work (§6, experiment X2).
//!
//! ```text
//! cargo run --release --example observer_live
//! ```

use std::sync::atomic::Ordering;

use embera::{ObserverConfig, Platform, RunningApp};
use embera_smp::SmpPlatform;
use mjpeg::{build_smp_app, synthesize_stream, MjpegAppConfig};

fn main() {
    let stream = synthesize_stream(400, 48, 24, 75, 0xCAFE);
    let (mut app, probe) = build_smp_app(stream, &MjpegAppConfig::default());
    let log = app.with_observer(ObserverConfig::default().interval_ns(5_000_000));

    let report = SmpPlatform::new()
        .deploy(app.build().expect("valid app"))
        .expect("deploy")
        .wait()
        .expect("run");

    println!(
        "pipeline decoded {} frames in {:.1} ms; observer captured {} snapshots\n",
        probe.frames_completed.load(Ordering::SeqCst),
        report.wall_time_ns as f64 / 1e6,
        log.len()
    );

    println!("live counter progression (Fetch sends per observation round):");
    println!("round   t (ms)   fetch_sends   reorder_recvs   fetch_mem (kB)");
    let records = log.records();
    let mut by_round: std::collections::BTreeMap<u64, (u64, u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for r in &records {
        let e = by_round.entry(r.round).or_insert((0, 0, 0, 0));
        e.0 = e.0.max(r.at_ns);
        match r.report.component.as_str() {
            "Fetch" => {
                e.1 = r.report.app.total_sends;
                e.3 = r.report.os.memory_bytes / 1000;
            }
            "Reorder" => e.2 = r.report.app.total_receives,
            _ => {}
        }
    }
    for (round, (t, sends, recvs, mem)) in &by_round {
        println!(
            "{:>5} {:>8.1} {:>13} {:>15} {:>16}",
            round,
            *t as f64 / 1e6,
            sends,
            recvs,
            mem
        );
    }

    println!("\nfinal multi-level report, per component:");
    for r in &report.components {
        println!(
            "  {:<14} exec {:>9} us | {:>6} sends {:>6} recvs | send mean {:>6} ns",
            r.component,
            r.os.exec_time_ns / 1_000,
            r.app.total_sends,
            r.app.total_receives,
            r.middleware.send.mean_ns()
        );
    }
}
