//! Quickstart: a two-component EMBera application with an observer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a producer → consumer pipeline, attaches the observer
//! component, runs it on the SMP backend and prints the multi-level
//! observation report — all without the producer/consumer code knowing
//! anything about observation.

use bytes::Bytes;
use embera::behavior::behavior_fn;
use embera::{AppBuilder, ComponentSpec, ObserverConfig, Platform, RunningApp};
use embera_smp::SmpPlatform;

fn main() {
    const MESSAGES: u32 = 5_000;

    let mut app = AppBuilder::new("quickstart");
    app.add(
        ComponentSpec::new(
            "producer",
            behavior_fn(move |ctx| {
                for i in 0..MESSAGES {
                    let payload = vec![(i % 251) as u8; 1024];
                    ctx.send("out", Bytes::from(payload))?;
                }
                Ok(())
            }),
        )
        .with_required("out"),
    );
    app.add(
        ComponentSpec::new(
            "consumer",
            behavior_fn(move |ctx| {
                let mut bytes = 0usize;
                for _ in 0..MESSAGES {
                    bytes += ctx.recv("in")?.len();
                }
                println!("consumer: received {bytes} bytes");
                Ok(())
            }),
        )
        .with_provided("in"),
    );
    app.connect(("producer", "out"), ("consumer", "in"));
    let log = app.with_observer(ObserverConfig::default().interval_ns(2_000_000));

    let report = SmpPlatform::new()
        .deploy(app.build().expect("valid app"))
        .expect("deploy")
        .wait()
        .expect("run");

    println!("\napplication '{}' finished in {:.2} ms", report.app_name, report.wall_time_ns as f64 / 1e6);
    println!("observer collected {} live reports\n", log.len());
    for r in &report.components {
        println!("component [{}]", r.component);
        println!("  OS:        exec {:>10} us, memory {:>9} bytes", r.os.exec_time_ns / 1_000, r.os.memory_bytes);
        println!(
            "  middleware: {} sends (mean {} ns), {} receives (mean {} ns)",
            r.middleware.send.count,
            r.middleware.send.mean_ns(),
            r.middleware.recv.count,
            r.middleware.recv.mean_ns()
        );
        println!(
            "  app:       {} sends / {} receives over {} interfaces",
            r.app.total_sends,
            r.app.total_receives,
            r.app.interfaces.len()
        );
        println!("{}", r.structure.format_figure5());
    }
}
