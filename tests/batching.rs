//! Integration: batched pipeline messaging must preserve the paper's
//! communication structure. At `blocks_per_msg = 1` — the default — the
//! Table 2 counts are exact regardless of which DCT kernel runs; larger
//! batches shrink the message counts by exactly the batch factor while
//! leaving the decoded pixels bit-identical.

use std::sync::atomic::Ordering;

use embera::{Platform, RunningApp};
use embera_smp::SmpPlatform;
use mjpeg::{build_smp_app, synthesize_stream, DctKind, MjpegAppConfig};

fn stream(frames: usize) -> mjpeg::MjpegStream {
    synthesize_stream(frames, 48, 24, 75, 0x5EED)
}

/// Table 2 structure: send(Fetch) = blocks × (frames − 1), each IDCT
/// receives and sends its round-robin share, recv(Reorder) = send(Fetch).
/// Exact at batch size 1 — the paper's one-message-per-block schedule —
/// for both the reference float and the fast fixed-point kernel.
#[test]
fn table2_counts_exact_at_batch_1_for_both_kernels() {
    for kernel in [DctKind::ReferenceFloat, DctKind::FastAan] {
        let n = 31; // stand-in for 578 frames; structure is what matters
        let cfg = MjpegAppConfig {
            blocks_per_msg: 1,
            kernel,
            ..MjpegAppConfig::default()
        };
        let (app, probe) = build_smp_app(stream(n), &cfg);
        let report = SmpPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        let fwd = (n - 1) as u64;
        assert_eq!(probe.frames_completed.load(Ordering::SeqCst), fwd);
        let fetch = report.component("Fetch").unwrap();
        assert_eq!(fetch.app.total_sends, 18 * fwd, "kernel {kernel:?}");
        assert_eq!(fetch.app.total_receives, 0);
        for k in 1..=3 {
            let idct = report.component(&format!("IDCT_{k}")).unwrap();
            assert_eq!(idct.app.total_receives, 6 * fwd, "kernel {kernel:?}");
            assert_eq!(idct.app.total_sends, 6 * fwd, "kernel {kernel:?}");
        }
        let reorder = report.component("Reorder").unwrap();
        assert_eq!(reorder.app.total_receives, 18 * fwd);
        assert_eq!(reorder.app.total_sends, 0);
    }
}

/// Batching divides per-lane message counts by the batch factor —
/// batches span frame boundaries on the SMP pipeline, so a lane's count
/// is its whole-run block share over the batch size (one remainder
/// flush at stream end) — and leaves the output checksum, hence every
/// decoded pixel, unchanged.
#[test]
fn batching_scales_counts_without_changing_output() {
    let frames = 13;
    let fwd = (frames - 1) as u64;
    let (ref_app, ref_probe) = build_smp_app(stream(frames), &MjpegAppConfig::default());
    SmpPlatform::new()
        .deploy(ref_app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    // 18 blocks over 3 lanes = 6 per lane-frame × 12 forwarded frames =
    // 72 blocks per lane: batch 2 → 36 messages, batch 4 → 18,
    // batch 6 → 12, batch 100 → 1 (stream-end remainder flush).
    for (batch, msgs_per_lane) in [(2usize, 36u64), (4, 18), (6, 12), (100, 1)] {
        assert_eq!(msgs_per_lane, (6 * fwd).div_ceil(batch as u64));
        let cfg = MjpegAppConfig {
            blocks_per_msg: batch,
            ..MjpegAppConfig::default()
        };
        let (app, probe) = build_smp_app(stream(frames), &cfg);
        let report = SmpPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            probe.checksum.load(Ordering::SeqCst),
            ref_probe.checksum.load(Ordering::SeqCst),
            "batch {batch} changed decoded pixels"
        );
        assert_eq!(
            report.component("Fetch").unwrap().app.total_sends,
            3 * msgs_per_lane,
            "batch {batch}"
        );
        for k in 1..=3 {
            let idct = report.component(&format!("IDCT_{k}")).unwrap();
            assert_eq!(idct.app.total_receives, msgs_per_lane, "batch {batch}");
            assert_eq!(idct.app.total_sends, msgs_per_lane, "batch {batch}");
        }
        assert_eq!(
            report.component("Reorder").unwrap().app.total_receives,
            3 * msgs_per_lane,
            "batch {batch}"
        );
    }
}
