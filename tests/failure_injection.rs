//! Failure injection: misbehaving components, corrupt messages, and
//! stuck pipelines must surface as diagnosable errors, not hangs.

use bytes::Bytes;
use embera::behavior::behavior_fn;
use embera::{AppBuilder, ComponentSpec, EmberaError, Platform, RunningApp};
use embera_os21::Os21Platform;
use embera_smp::SmpPlatform;

fn two_stage(
    src: impl embera::Behavior + 'static,
    dst: impl embera::Behavior + 'static,
) -> AppBuilder {
    let mut app = AppBuilder::new("fault");
    app.add(
        ComponentSpec::new("src", src)
            .with_required("out")
            .with_stack_bytes(1 << 20)
            .on_cpu(0),
    );
    app.add(
        ComponentSpec::new("dst", dst)
            .with_provided("in")
            .with_stack_bytes(1 << 20)
            .on_cpu(1),
    );
    app.connect(("src", "out"), ("dst", "in"));
    app
}

#[test]
fn behavior_error_is_attributed_on_smp() {
    let app = two_stage(
        behavior_fn(|_ctx| Err(EmberaError::Platform("injected fault".into()))),
        behavior_fn(|ctx| {
            // Must not hang: bounded wait, then give up.
            let _ = ctx.recv_timeout("in", 50_000_000)?;
            Ok(())
        }),
    );
    let err = SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap_err();
    let EmberaError::Platform(msg) = err else {
        panic!("wrong error kind");
    };
    assert!(msg.contains("src"), "{msg}");
    assert!(msg.contains("injected fault"), "{msg}");
}

#[test]
fn behavior_error_is_attributed_on_mpsoc() {
    let app = two_stage(
        behavior_fn(|_ctx| Err(EmberaError::Platform("injected fault".into()))),
        behavior_fn(|ctx| {
            let _ = ctx.recv_timeout("in", 50_000_000)?;
            Ok(())
        }),
    );
    let err = Os21Platform::three_cpu()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap_err();
    let EmberaError::Platform(msg) = err else {
        panic!("wrong error kind");
    };
    assert!(msg.contains("src") && msg.contains("injected fault"), "{msg}");
}

#[test]
fn stuck_receiver_on_mpsoc_is_diagnosed_as_deadlock() {
    // dst waits forever for a message src never sends: the simulator's
    // deadlock detector must fire (instead of hanging the host).
    let app = two_stage(
        behavior_fn(|_ctx| Ok(())), // sends nothing
        behavior_fn(|ctx| {
            let _ = ctx.recv("in")?; // blocks forever
            Ok(())
        }),
    );
    let err = Os21Platform::three_cpu()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap_err();
    let EmberaError::Platform(msg) = err else {
        panic!("wrong error kind");
    };
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(msg.contains("dst"), "blocked component must be named: {msg}");
}

#[test]
fn corrupt_wire_message_is_rejected_not_misparsed() {
    // A pipeline stage that receives a malformed coefficient message
    // must fail cleanly with a length diagnosis.
    let app = two_stage(
        behavior_fn(|ctx| ctx.send("out", Bytes::from_static(b"not a block"))),
        behavior_fn(|ctx| {
            let msg = ctx.recv("in")?;
            mjpeg::pipeline::decode_coeff_msg(&msg).map(|_| ())
        }),
    );
    let err = SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap_err();
    let EmberaError::Platform(msg) = err else {
        panic!("wrong error kind")
    };
    assert!(msg.contains("bad coefficient message length"), "{msg}");
}

#[test]
fn truncated_stream_fails_with_frame_and_block_context() {
    // Truncate a frame's entropy data: the Fetch behavior must name the
    // frame and block where decoding died.
    let mut stream = mjpeg::synthesize_stream(4, 48, 24, 75, 9);
    let data = &mut stream.frames[2].data;
    data.truncate(data.len() / 4);
    let (app, _probe) = mjpeg::build_smp_app(stream, &mjpeg::MjpegAppConfig::default());
    let err = SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap_err();
    let EmberaError::Platform(msg) = err else {
        panic!("wrong error kind")
    };
    assert!(msg.contains("frame 2"), "{msg}");
    assert!(msg.contains("exhausted"), "{msg}");
}

#[test]
fn unknown_interface_access_is_reported() {
    let app = two_stage(
        behavior_fn(|ctx| {
            match ctx.recv_timeout("no_such_iface", 1_000) {
                Err(EmberaError::UnknownInterface { interface, .. }) => {
                    assert_eq!(interface, "no_such_iface");
                    Ok(())
                }
                other => panic!("expected UnknownInterface, got {other:?}"),
            }
        }),
        behavior_fn(|ctx| {
            let _ = ctx.recv_timeout("in", 1_000)?;
            Ok(())
        }),
    );
    SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
}
