//! Failure injection: misbehaving components, corrupt messages, and
//! stuck pipelines must surface as diagnosable errors, not hangs. Every
//! scenario also runs on the deterministic in-process backend, which
//! must produce the *same error kind* as the live backends.

use bytes::Bytes;
use embera::behavior::behavior_fn;
use embera::{AppBuilder, ComponentSpec, EmberaError, Platform, RunningApp};
use embera_inproc::InprocPlatform;
use embera_os21::Os21Platform;
use embera_smp::SmpPlatform;

fn two_stage(
    src: impl embera::Behavior + 'static,
    dst: impl embera::Behavior + 'static,
) -> AppBuilder {
    let mut app = AppBuilder::new("fault");
    // dst first: the inproc scheduler parks the receiver, then
    // demand-starts the sender; the threaded backends are
    // order-insensitive.
    app.add(
        ComponentSpec::new("dst", dst)
            .with_provided("in")
            .with_stack_bytes(1 << 20)
            .on_cpu(1),
    );
    app.add(
        ComponentSpec::new("src", src)
            .with_required("out")
            .with_stack_bytes(1 << 20)
            .on_cpu(0),
    );
    app.connect(("src", "out"), ("dst", "in"));
    app
}

#[test]
fn behavior_error_is_attributed_on_smp() {
    let app = two_stage(
        behavior_fn(|_ctx| Err(EmberaError::Platform("injected fault".into()))),
        behavior_fn(|ctx| {
            // Must not hang: bounded wait, then give up.
            let _ = ctx.recv_timeout("in", 50_000_000)?;
            Ok(())
        }),
    );
    let err = SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap_err();
    let EmberaError::Platform(msg) = err else {
        panic!("wrong error kind");
    };
    assert!(msg.contains("src"), "{msg}");
    assert!(msg.contains("injected fault"), "{msg}");
}

#[test]
fn behavior_error_is_attributed_on_mpsoc() {
    let app = two_stage(
        behavior_fn(|_ctx| Err(EmberaError::Platform("injected fault".into()))),
        behavior_fn(|ctx| {
            let _ = ctx.recv_timeout("in", 50_000_000)?;
            Ok(())
        }),
    );
    let err = Os21Platform::three_cpu()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap_err();
    let EmberaError::Platform(msg) = err else {
        panic!("wrong error kind");
    };
    assert!(msg.contains("src") && msg.contains("injected fault"), "{msg}");
}

#[test]
fn behavior_error_is_attributed_on_inproc() {
    // Identical scenario, identical error kind on the deterministic
    // backend.
    let app = two_stage(
        behavior_fn(|_ctx| Err(EmberaError::Platform("injected fault".into()))),
        behavior_fn(|ctx| {
            let _ = ctx.recv_timeout("in", 50_000_000)?;
            Ok(())
        }),
    );
    let err = InprocPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap_err();
    let EmberaError::Platform(msg) = err else {
        panic!("wrong error kind");
    };
    assert!(msg.contains("src") && msg.contains("injected fault"), "{msg}");
}

#[test]
fn stuck_receiver_on_mpsoc_is_diagnosed_as_deadlock() {
    // dst waits forever for a message src never sends: the simulator's
    // deadlock detector must fire (instead of hanging the host).
    let app = two_stage(
        behavior_fn(|_ctx| Ok(())), // sends nothing
        behavior_fn(|ctx| {
            let _ = ctx.recv("in")?; // blocks forever
            Ok(())
        }),
    );
    let err = Os21Platform::three_cpu()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap_err();
    let EmberaError::Platform(msg) = err else {
        panic!("wrong error kind");
    };
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(msg.contains("dst"), "blocked component must be named: {msg}");
}

#[test]
fn stuck_receiver_on_inproc_is_diagnosed_as_deadlock() {
    // Same stuck pipeline on the logical-clock scheduler: the error kind
    // (a named deadlock diagnosis) must match the simulator's.
    let app = two_stage(
        behavior_fn(|_ctx| Ok(())), // sends nothing
        behavior_fn(|ctx| {
            let _ = ctx.recv("in")?; // blocks forever
            Ok(())
        }),
    );
    let err = InprocPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap_err();
    let EmberaError::Platform(msg) = err else {
        panic!("wrong error kind");
    };
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(msg.contains("dst"), "blocked component must be named: {msg}");
}

#[test]
fn corrupt_wire_message_is_rejected_not_misparsed() {
    // A pipeline stage that receives a malformed coefficient message
    // must fail cleanly with a length diagnosis — on the threaded and
    // the deterministic backend alike.
    let runs: [fn(embera::AppSpec) -> Result<embera::AppReport, EmberaError>; 2] = [
        |spec| SmpPlatform::new().deploy(spec)?.wait(),
        |spec| InprocPlatform::new().deploy(spec)?.wait(),
    ];
    for run in runs {
        let app = two_stage(
            behavior_fn(|ctx| ctx.send("out", Bytes::from_static(b"not a block"))),
            behavior_fn(|ctx| {
                let msg = ctx.recv("in")?;
                mjpeg::pipeline::decode_coeff_msg(&msg).map(|_| ())
            }),
        );
        let err = run(app.build().unwrap()).unwrap_err();
        let EmberaError::Platform(msg) = err else {
            panic!("wrong error kind")
        };
        assert!(msg.contains("bad coefficient message length"), "{msg}");
    }
}

#[test]
fn truncated_stream_fails_with_frame_and_block_context() {
    // Truncate a frame's entropy data: the Fetch behavior must name the
    // frame and block where decoding died, identically on both backends.
    let runs: [fn(embera::AppSpec) -> Result<embera::AppReport, EmberaError>; 2] = [
        |spec| SmpPlatform::new().deploy(spec)?.wait(),
        |spec| InprocPlatform::new().deploy(spec)?.wait(),
    ];
    for run in runs {
        let mut stream = mjpeg::synthesize_stream(4, 48, 24, 75, 9);
        let data = &mut stream.frames[2].data;
        data.truncate(data.len() / 4);
        let (app, _probe) = mjpeg::build_smp_app(stream, &mjpeg::MjpegAppConfig::default());
        let err = run(app.build().unwrap()).unwrap_err();
        let EmberaError::Platform(msg) = err else {
            panic!("wrong error kind")
        };
        assert!(msg.contains("frame 2"), "{msg}");
        assert!(msg.contains("exhausted"), "{msg}");
    }
}

#[test]
fn unknown_interface_access_is_reported() {
    let runs: [fn(embera::AppSpec) -> Result<embera::AppReport, EmberaError>; 2] = [
        |spec| SmpPlatform::new().deploy(spec)?.wait(),
        |spec| InprocPlatform::new().deploy(spec)?.wait(),
    ];
    for run in runs {
        let app = two_stage(
            behavior_fn(|ctx| {
                match ctx.recv_timeout("no_such_iface", 1_000) {
                    Err(EmberaError::UnknownInterface { interface, .. }) => {
                        assert_eq!(interface, "no_such_iface");
                        Ok(())
                    }
                    other => panic!("expected UnknownInterface, got {other:?}"),
                }
            }),
            behavior_fn(|ctx| {
                let _ = ctx.recv_timeout("in", 1_000)?;
                Ok(())
            }),
        );
        run(app.build().unwrap()).unwrap();
    }
}

#[test]
fn multiple_faults_aggregate_in_deterministic_order_on_inproc() {
    // Two contained failures in one run: `RunningApp::wait` must report
    // BOTH (no first-error truncation), originating failures in the
    // order the scheduler recorded them — and a second run must produce
    // the byte-identical report.
    use embera::{Escalation, RestartPolicy};
    let run = || {
        let mut app = AppBuilder::new("multi");
        for (name, text) in [("alpha", "first fault"), ("beta", "second fault")] {
            app.add(
                ComponentSpec::new(
                    name,
                    behavior_fn(move |_| Err(EmberaError::Platform(text.into()))),
                )
                .with_restart(RestartPolicy {
                    max_restarts: 0,
                    escalation: Escalation::OneForOne,
                    ..RestartPolicy::default()
                })
                .with_stack_bytes(1 << 20),
            );
        }
        app.add(ComponentSpec::new("gamma", behavior_fn(|_| Ok(()))).with_stack_bytes(1 << 20));
        let err = InprocPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap_err();
        let EmberaError::Platform(msg) = err else {
            panic!("wrong error kind")
        };
        msg
    };
    let msg = run();
    assert!(
        msg.starts_with("component 'alpha' failed: platform error: first fault"),
        "{msg}"
    );
    assert!(msg.contains("[2 components faulted:"), "{msg}");
    assert!(msg.contains("alpha: platform error: first fault"), "{msg}");
    assert!(msg.contains("beta: platform error: second fault"), "{msg}");
    assert!(!msg.contains("gamma"), "healthy component listed as faulted: {msg}");
    assert_eq!(run(), msg, "aggregated report must be reproducible");
}
