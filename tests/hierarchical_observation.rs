//! Hierarchical observation end-to-end: deterministic adaptive-sampling
//! schedules on the in-process backend (including under injected
//! faults), and region attribution of watchdog stall records.

use bytes::Bytes;
use embera::behavior::behavior_fn;
use embera::{AppBuilder, ComponentSpec, FaultPlan, ObserverConfig, Platform, RunningApp};
use embera_inproc::InprocPlatform;
use embera_smp::SmpPlatform;
use embera_trace::{EventKind, TraceCollector, TraceEvent};

/// Run a traced source -> relay -> sink pipeline on inproc under a
/// two-region adaptive observer tree and return the full sorted trace.
/// The `waiter` is deployed *first* so its parked recv pulls the
/// observer tree through the demand-driven scheduler while application
/// components are still being started — observation interleaves with
/// the run instead of trailing it.
fn traced_adaptive_run(faults: Option<FaultPlan>) -> Vec<TraceEvent> {
    const MSGS: u32 = 30;
    let collector = TraceCollector::new(1 << 14);
    let mut app = AppBuilder::new("adaptive-trace");
    app.add(
        ComponentSpec::new("waiter", behavior_fn(|ctx| ctx.recv("done").map(|_| ())))
            .with_provided("done"),
    );
    app.add(
        ComponentSpec::new(
            "source",
            behavior_fn(|ctx| {
                for i in 0..MSGS {
                    ctx.send("out", Bytes::copy_from_slice(&i.to_le_bytes()))?;
                }
                Ok(())
            }),
        )
        .with_required("out"),
    );
    app.add(
        ComponentSpec::new(
            "relay",
            behavior_fn(|ctx| {
                for _ in 0..MSGS {
                    let b = ctx.recv("in")?;
                    ctx.send("out", b)?;
                }
                Ok(())
            }),
        )
        .with_provided("in")
        .with_required("out"),
    );
    app.add(
        ComponentSpec::new(
            "sink",
            behavior_fn(|ctx| {
                for _ in 0..MSGS {
                    ctx.recv("in")?;
                }
                Ok(())
            }),
        )
        .with_provided("in"),
    );
    app.connect(("source", "out"), ("relay", "in"));
    app.connect(("relay", "out"), ("sink", "in"));
    app.with_tracing(collector.trace_config());
    if let Some(plan) = faults {
        app.with_faults(plan);
    }
    let _log = app.with_observer(
        ObserverConfig::default()
            .grouped(vec![
                (
                    "left".to_string(),
                    vec!["source".into(), "relay".into()],
                ),
                ("right".to_string(), vec!["sink".into()]),
            ])
            .adaptive()
            .interval_ns(10_000)
            .notify_done("waiter", "done"),
    );
    InprocPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    collector.drain_sorted()
}

fn obs_served(trace: &[TraceEvent]) -> Vec<TraceEvent> {
    trace
        .iter()
        .copied()
        .filter(|e| e.kind == EventKind::ObsServed)
        .collect()
}

#[test]
fn adaptive_sampling_schedule_is_deterministic_on_inproc() {
    // Two identical runs must produce the *same* observation schedule:
    // adaptive sampling is pure round-counter arithmetic over health
    // replies, and on the logical-clock backend that makes the whole
    // `ObsServed` event sequence — timestamps included — reproducible
    // bit-for-bit.
    let a = traced_adaptive_run(None);
    let b = traced_adaptive_run(None);
    let (sa, sb) = (obs_served(&a), obs_served(&b));
    assert!(
        !sa.is_empty(),
        "adaptive observation produced no ObsServed events"
    );
    assert_eq!(sa, sb, "observation schedule varies between runs");
    // Not just the schedule: the complete interleaved trace is identical.
    assert_eq!(a, b, "full trace varies between runs");
}

#[test]
fn adaptive_sampling_stays_deterministic_under_injected_fault() {
    // A corrupted message perturbs payloads without losing any (the
    // pipeline still completes); the fault counting lives in the shared
    // runtime, so two faulted runs must still agree event-for-event.
    let plan = || FaultPlan::new().corrupt_message("source", "out", 3);
    let a = traced_adaptive_run(Some(plan()));
    let b = traced_adaptive_run(Some(plan()));
    assert!(
        a.iter().any(|e| e.kind == EventKind::FaultInjected),
        "fault plan never fired"
    );
    assert_eq!(
        obs_served(&a),
        obs_served(&b),
        "observation schedule varies under an identical fault plan"
    );
    assert_eq!(a, b, "full faulted trace varies between runs");
}

#[test]
fn stall_record_carries_the_reporting_region() {
    // Under the hierarchy the watchdog timestamps come from the regional
    // observer that polled the stalled component, so the record must
    // name that region. `stuck` (region "left") parks in a timed recv on
    // an interface nobody feeds while `ticker`/`pump` (region "right")
    // keep making progress.
    let mut app = AppBuilder::new("stall-region");
    app.add(
        ComponentSpec::new(
            "stuck",
            behavior_fn(|ctx| {
                let _ = ctx.recv_timeout("in", 200_000_000)?;
                Ok(())
            }),
        )
        .with_provided("in")
        .with_stack_bytes(1 << 20)
        .on_cpu(0),
    );
    app.add(
        ComponentSpec::new(
            "ticker",
            behavior_fn(|ctx| {
                for i in 0..40u32 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    ctx.send("out", Bytes::copy_from_slice(&i.to_le_bytes()))?;
                }
                Ok(())
            }),
        )
        .with_required("out")
        .with_stack_bytes(1 << 20)
        .on_cpu(1),
    );
    app.add(
        ComponentSpec::new(
            "pump",
            behavior_fn(|ctx| {
                for _ in 0..40u32 {
                    ctx.recv("in")?;
                }
                Ok(())
            }),
        )
        .with_provided("in")
        .with_stack_bytes(1 << 20)
        .on_cpu(2),
    );
    app.connect(("ticker", "out"), ("pump", "in"));
    let log = app.with_observer(
        ObserverConfig::default()
            .grouped(vec![
                ("left".to_string(), vec!["stuck".into()]),
                ("right".to_string(), vec!["ticker".into(), "pump".into()]),
            ])
            .interval_ns(5_000_000)
            .watchdog_ns(30_000_000),
    );
    SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    let stalls = log.stalls();
    assert!(!stalls.is_empty(), "watchdog never fired");
    assert!(
        stalls.iter().all(|s| s.component == "stuck"),
        "only `stuck` may stall: {stalls:?}"
    );
    assert!(
        stalls.iter().all(|s| s.region == "left"),
        "stall must carry the reporting region: {stalls:?}"
    );
    // The region also shows up in the rolled-up summaries.
    assert!(log
        .summaries()
        .iter()
        .any(|s| s.region == "left" && s.stalled > 0));
}
