//! Backend conformance suite: the four platforms (SMP threads,
//! simulated MPSoC, in-process deterministic, M:N executor) must be
//! indistinguishable through the `Ctx` API and the observation reports.
//! Every test here runs the *same* application description on all four
//! and pins the shared-runtime guarantees: FIFO delivery, the error
//! contract, introspection service while blocked, termination
//! semantics, and counter conservation.

use bytes::Bytes;
use embera::behavior::behavior_fn;
use embera::{
    AppBuilder, AppReport, AppSpec, ComponentSpec, EmberaError, Message, ObsRequest,
    ObserverConfig, OverloadPolicy, Platform, RunningApp, INTROSPECTION,
};
use embera_exec::ExecPlatform;
use embera_inproc::InprocPlatform;
use embera_os21::Os21Platform;
use embera_smp::SmpPlatform;

type RunFn = fn(AppSpec) -> Result<AppReport, EmberaError>;

fn backends() -> Vec<(&'static str, RunFn)> {
    fn smp(spec: AppSpec) -> Result<AppReport, EmberaError> {
        SmpPlatform::new().deploy(spec)?.wait()
    }
    fn os21(spec: AppSpec) -> Result<AppReport, EmberaError> {
        Os21Platform::three_cpu().deploy(spec)?.wait()
    }
    fn inproc(spec: AppSpec) -> Result<AppReport, EmberaError> {
        InprocPlatform::new().deploy(spec)?.wait()
    }
    fn exec(spec: AppSpec) -> Result<AppReport, EmberaError> {
        // Two workers regardless of host cores: the conformance matrix
        // must exercise real cross-worker scheduling even on small CI
        // machines.
        ExecPlatform::with_workers(2).deploy(spec)?.wait()
    }
    vec![
        ("smp", smp),
        ("os21", os21),
        ("inproc", inproc),
        ("exec", exec),
    ]
}

#[test]
fn fifo_order_per_connection() {
    for (backend, run) in backends() {
        let mut app = AppBuilder::new("fifo");
        app.add(
            ComponentSpec::new(
                "src",
                behavior_fn(|ctx| {
                    for i in 0..50u32 {
                        ctx.send("out", Bytes::copy_from_slice(&i.to_le_bytes()))?;
                    }
                    Ok(())
                }),
            )
            .with_required("out")
            .with_stack_bytes(1 << 20)
            .on_cpu(0),
        );
        app.add(
            ComponentSpec::new(
                "dst",
                behavior_fn(|ctx| {
                    for i in 0..50u32 {
                        let b = ctx.recv("in")?;
                        assert_eq!(b.as_ref(), i.to_le_bytes(), "out-of-order delivery");
                    }
                    Ok(())
                }),
            )
            .with_provided("in")
            .with_stack_bytes(1 << 20)
            .on_cpu(1),
        );
        app.connect(("src", "out"), ("dst", "in"));
        let report = run(app.build().unwrap()).unwrap_or_else(|e| panic!("[{backend}] {e}"));
        assert_eq!(report.total_sends(), 50, "[{backend}]");
        assert_eq!(report.total_receives(), 50, "[{backend}]");
    }
}

#[test]
fn blocking_recv_after_shutdown_is_terminated() {
    // `failer` errors immediately; the fail-fast shutdown must drain
    // `waiter` out of its blocking recv with `Terminated` (never a
    // hang), and the report must carry the *originating* error.
    for (backend, run) in backends() {
        let mut app = AppBuilder::new("failfast");
        // On inproc, the component that blocks first must be deployed
        // first (the scheduler then demand-starts the rest); the other
        // backends are order-insensitive.
        app.add(
            ComponentSpec::new(
                "waiter",
                behavior_fn(|ctx| match ctx.recv("in") {
                    Err(EmberaError::Terminated) => Ok(()),
                    other => panic!("expected Terminated, got {other:?}"),
                }),
            )
            .with_provided("in")
            .with_stack_bytes(1 << 20)
            .on_cpu(0),
        );
        app.add(
            ComponentSpec::new(
                "failer",
                behavior_fn(|_| Err(EmberaError::Platform("injected fault".into()))),
            )
            .with_stack_bytes(1 << 20)
            .on_cpu(1),
        );
        let err = run(app.build().unwrap()).unwrap_err();
        let EmberaError::Platform(msg) = err else {
            panic!("[{backend}] wrong error kind");
        };
        assert!(
            msg.contains("failer") && msg.contains("injected fault"),
            "[{backend}] {msg}"
        );
    }
}

#[test]
fn introspection_answered_while_blocked_in_recv() {
    // The paper's key property: a component is observable while blocked
    // in a receive, with zero cooperation from its behavior. `prober`
    // sends an observation request to `blocked` (which is parked in
    // `recv` and will stay parked until `prober` later feeds it), waits
    // for the reply, and only then unblocks it.
    for (backend, run) in backends() {
        let mut app = AppBuilder::new("probe");
        app.add(
            ComponentSpec::new(
                "blocked",
                behavior_fn(|ctx| {
                    let b = ctx.recv("in")?;
                    assert_eq!(b.as_ref(), b"unblock");
                    Ok(())
                }),
            )
            .with_provided("in")
            .with_stack_bytes(1 << 20)
            .on_cpu(0),
        );
        app.add(
            ComponentSpec::new(
                "prober",
                behavior_fn(|ctx| {
                    ctx.send_message(
                        "ask",
                        Message::ObsRequest {
                            from: "prober".into(),
                            request: ObsRequest::AppStats,
                        },
                    )?;
                    let reply = ctx.recv_message("replies")?;
                    let Message::ObsReply { from, .. } = reply else {
                        panic!("expected ObsReply, got {reply:?}");
                    };
                    assert_eq!(from, "blocked");
                    ctx.send("out", Bytes::from_static(b"unblock"))?;
                    Ok(())
                }),
            )
            .with_provided("replies")
            .with_required("ask")
            .with_required("out")
            .with_stack_bytes(1 << 20)
            .on_cpu(1),
        );
        app.connect(("prober", "ask"), ("blocked", INTROSPECTION));
        app.connect(("blocked", INTROSPECTION), ("prober", "replies"));
        app.connect(("prober", "out"), ("blocked", "in"));
        let report = run(app.build().unwrap()).unwrap_or_else(|e| panic!("[{backend}] {e}"));
        // Observation traffic is runtime traffic: only the one data
        // message counts.
        let blocked = report.component("blocked").unwrap();
        assert_eq!(blocked.app.total_receives, 1, "[{backend}]");
        assert_eq!(report.component("prober").unwrap().app.total_sends, 1, "[{backend}]");
    }
}

#[test]
fn counters_are_conserved_across_a_pipeline() {
    // Σ sends == Σ receives when every queued message is consumed, on
    // every backend, with mixed payload sizes.
    for (backend, run) in backends() {
        const N: u32 = 20;
        let payload = |i: u32| Bytes::from(vec![i as u8; 4 + (i as usize % 7) * 16]);
        let mut app = AppBuilder::new("conserve");
        let p = payload;
        app.add(
            ComponentSpec::new(
                "src",
                behavior_fn(move |ctx| {
                    for i in 0..N {
                        ctx.send("out", p(i))?;
                    }
                    Ok(())
                }),
            )
            .with_required("out")
            .with_stack_bytes(1 << 20)
            .on_cpu(0),
        );
        app.add(
            ComponentSpec::new(
                "mid",
                behavior_fn(move |ctx| {
                    for _ in 0..N {
                        let b = ctx.recv("in")?;
                        ctx.send("out", b)?;
                    }
                    Ok(())
                }),
            )
            .with_provided("in")
            .with_required("out")
            .with_stack_bytes(1 << 20)
            .on_cpu(1),
        );
        let q = payload;
        app.add(
            ComponentSpec::new(
                "dst",
                behavior_fn(move |ctx| {
                    for i in 0..N {
                        let b = ctx.recv("in")?;
                        assert_eq!(b, q(i));
                    }
                    Ok(())
                }),
            )
            .with_provided("in")
            .with_stack_bytes(1 << 20)
            .on_cpu(2),
        );
        app.connect(("src", "out"), ("mid", "in"));
        app.connect(("mid", "out"), ("dst", "in"));
        let report = run(app.build().unwrap()).unwrap_or_else(|e| panic!("[{backend}] {e}"));
        assert_eq!(report.total_sends(), 2 * u64::from(N), "[{backend}]");
        assert_eq!(
            report.total_sends(),
            report.total_receives(),
            "[{backend}] send/receive conservation"
        );
    }
}

#[test]
fn error_contract_is_identical_on_every_backend() {
    // Declared-but-unbound requires a hand-built spec: `AppBuilder`
    // validation rejects it up front, which is itself part of the
    // contract. The backends must still agree on what happens.
    for (backend, run) in backends() {
        let solo = ComponentSpec::new(
            "solo",
            behavior_fn(|ctx| {
                match ctx.send("loose", Bytes::new()) {
                    Err(EmberaError::Disconnected { interface, .. }) => {
                        assert_eq!(interface, "loose");
                    }
                    other => panic!("declared-but-unbound: expected Disconnected, got {other:?}"),
                }
                match ctx.send("ghost", Bytes::new()) {
                    Err(EmberaError::UnknownInterface { interface, .. }) => {
                        assert_eq!(interface, "ghost");
                    }
                    other => panic!("undeclared send: expected UnknownInterface, got {other:?}"),
                }
                match ctx.recv_timeout("nowhere", 1_000) {
                    Err(EmberaError::UnknownInterface { interface, .. }) => {
                        assert_eq!(interface, "nowhere");
                    }
                    other => panic!("undeclared recv: expected UnknownInterface, got {other:?}"),
                }
                // Unattached introspection is silently dropped.
                ctx.send_message(
                    INTROSPECTION,
                    Message::ObsRequest {
                        from: "solo".into(),
                        request: ObsRequest::AppStats,
                    },
                )?;
                Ok(())
            }),
        )
        .with_required("loose")
        .with_stack_bytes(1 << 20);
        let spec = AppSpec {
            name: "contract".into(),
            components: vec![solo],
            connections: Vec::new(),
            has_observer: false,
            trace: None,
            faults: None,
            pool: None,
        };
        run(spec).unwrap_or_else(|e| panic!("[{backend}] {e}"));
    }
}

#[test]
fn unmodified_mjpeg_behaviors_deploy_on_inproc() {
    // The acceptance bar for the runtime extraction: the MJPEG behavior
    // structs written for the SMP backend run unchanged on the
    // in-process scheduler and decode the same stream to the same
    // counts and checksum.
    let cfg = mjpeg::MjpegAppConfig::default();
    let run = |platform_run: RunFn| {
        let stream = mjpeg::synthesize_stream(4, 48, 24, 75, 9);
        let (app, probe) = mjpeg::build_smp_app(stream, &cfg);
        let report = platform_run(app.build().unwrap()).unwrap();
        (
            probe
                .frames_completed
                .load(std::sync::atomic::Ordering::Acquire),
            probe.checksum.load(std::sync::atomic::Ordering::Acquire),
            report.total_sends(),
            report.total_receives(),
        )
    };
    let smp = run(|spec| SmpPlatform::new().deploy(spec)?.wait());
    let inp = run(|spec| InprocPlatform::new().deploy(spec)?.wait());
    let exe = run(|spec| ExecPlatform::with_workers(2).deploy(spec)?.wait());
    assert!(smp.0 > 0, "pipeline decoded no frames");
    assert_eq!(smp, inp, "(frames, checksum, sends, receives) must match");
    assert_eq!(smp, exe, "smp vs exec: counts and checksum must match");
}

#[test]
fn mjpeg_worker_counts_agree_across_backends() {
    // The N-worker generalization must be invisible to everything but
    // the per-lane split: for N ∈ {1, 3, 6} IDCT workers, every backend
    // must decode the same frames to the same checksum, the Table-2
    // count structure (Fetch sends 18·(F−1), each IDCT k handles its
    // round-robin share, Reorder receives 18·(F−1)) must hold exactly,
    // and the three backends must agree bit-for-bit per N.
    const FRAMES: usize = 4;
    let fwd = (FRAMES - 1) as u64;
    let mut checksums = Vec::new();
    for n in [1usize, 3, 6] {
        let cfg = mjpeg::MjpegAppConfig {
            idct_count: n,
            ..mjpeg::MjpegAppConfig::default()
        };
        let run = |platform_run: &dyn Fn(AppSpec) -> Result<AppReport, EmberaError>| {
            let stream = mjpeg::synthesize_stream(FRAMES, 48, 24, 75, 9);
            let (app, probe) = mjpeg::build_smp_app(stream, &cfg);
            let report = platform_run(app.build().unwrap()).unwrap();
            assert_eq!(
                report.component("Fetch").unwrap().app.total_sends,
                18 * fwd,
                "{n} workers: Fetch send count"
            );
            for k in 1..=n {
                let share = ((k - 1) as u64..18).step_by(n).count() as u64 * fwd;
                let r = report.component(&format!("IDCT_{k}")).unwrap();
                assert_eq!(r.app.total_receives, share, "{n} workers: IDCT_{k} receives");
                assert_eq!(r.app.total_sends, share, "{n} workers: IDCT_{k} sends");
            }
            assert_eq!(
                report.component("Reorder").unwrap().app.total_receives,
                18 * fwd,
                "{n} workers: Reorder receive count"
            );
            (
                probe
                    .frames_completed
                    .load(std::sync::atomic::Ordering::Acquire),
                probe.checksum.load(std::sync::atomic::Ordering::Acquire),
                report.total_sends(),
                report.total_receives(),
            )
        };
        let smp = run(&|spec| SmpPlatform::new().deploy(spec)?.wait());
        // The 3-worker SMP topology needs CPUs 0..=3; give the simulated
        // MPSoC one ST231 accelerator per IDCT worker.
        let os21 = run(&|spec| {
            Os21Platform::with_machine(
                mpsoc_sim::Machine::with_accelerators(n),
                embera_os21::Os21Config::default(),
            )
            .deploy(spec)?
            .wait()
        });
        let inp = run(&|spec| InprocPlatform::new().deploy(spec)?.wait());
        // A 3-worker executor pool multiplexes the 5-component pipeline
        // onto fewer carriers than components — the counts must not care.
        let exe = run(&|spec| ExecPlatform::with_workers(3).deploy(spec)?.wait());
        assert_eq!(smp.0, fwd, "{n} workers: frames completed");
        assert_eq!(smp, os21, "{n} workers: smp vs os21");
        assert_eq!(smp, inp, "{n} workers: smp vs inproc");
        assert_eq!(smp, exe, "{n} workers: smp vs exec");
        checksums.push(smp.1);
    }
    // Same pixels regardless of how many workers split the IDCT load.
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "checksum varies with worker count: {checksums:?}"
    );
}

#[test]
fn observed_hierarchy_rolls_up_identical_counters_on_every_backend() {
    // A fan-out application (source -> 4 relays -> sink) observed by a
    // two-level observer tree: two regional observers each polling half
    // the components, rolling `RegionSummary` aggregates up to the root.
    // The rolled-up totals must be exact and identical on all four
    // backends — hierarchical observation may change *who* polls, never
    // *what* is counted. A `waiter` component (deliberately left out of
    // every region) blocks until the root's done-notification, keeping
    // the application alive until observation of the whole run has
    // converged.
    const RELAYS: usize = 4;
    const PER_RELAY: u64 = 5;
    let mut rollups = Vec::new();
    for (backend, run) in backends() {
        let mut app = AppBuilder::new("observed-hierarchy");
        let mut source = ComponentSpec::new(
            "source",
            behavior_fn(|ctx| {
                for r in 0..RELAYS {
                    for i in 0..PER_RELAY {
                        let payload = (r as u64 * PER_RELAY + i).to_le_bytes();
                        ctx.send(&format!("out{r}"), Bytes::copy_from_slice(&payload))?;
                    }
                }
                Ok(())
            }),
        )
        .with_stack_bytes(1 << 20);
        for r in 0..RELAYS {
            source = source.with_required(format!("out{r}"));
        }
        app.add(source);
        app.add(
            ComponentSpec::new(
                "sink",
                behavior_fn(|ctx| {
                    for _ in 0..RELAYS as u64 * PER_RELAY {
                        ctx.recv("in")?;
                    }
                    Ok(())
                }),
            )
            .with_provided("in")
            .with_stack_bytes(1 << 20),
        );
        for r in 0..RELAYS {
            app.add(
                ComponentSpec::new(
                    format!("relay{r}"),
                    behavior_fn(|ctx| {
                        for _ in 0..PER_RELAY {
                            let b = ctx.recv("in")?;
                            ctx.send("out", b)?;
                        }
                        Ok(())
                    }),
                )
                .with_provided("in")
                .with_required("out")
                .with_stack_bytes(1 << 20),
            );
            let out = format!("out{r}");
            let relay = format!("relay{r}");
            app.connect(("source", out.as_str()), (relay.as_str(), "in"));
            app.connect((relay.as_str(), "out"), ("sink", "in"));
        }
        // Deployed after the pipeline: on inproc its parked recv is what
        // demand-starts the observer tree once the application is done.
        app.add(
            ComponentSpec::new("waiter", behavior_fn(|ctx| ctx.recv("done").map(|_| ())))
                .with_provided("done")
                .with_stack_bytes(1 << 20),
        );
        let log = app.with_observer(
            ObserverConfig::default()
                .grouped(vec![
                    (
                        "left".to_string(),
                        vec!["source".into(), "relay0".into(), "relay1".into()],
                    ),
                    (
                        "right".to_string(),
                        vec!["relay2".into(), "relay3".into(), "sink".into()],
                    ),
                ])
                .notify_done("waiter", "done"),
        );
        let report = run(app.build().unwrap()).unwrap();
        assert_eq!(
            report.component("waiter").unwrap().app.total_receives,
            1,
            "[{backend}] waiter got the root's done notification"
        );
        let rollup = log
            .rollup()
            .unwrap_or_else(|| panic!("[{backend}] no region summaries reached the root"));
        assert_eq!(rollup.regions, 2, "[{backend}]");
        assert_eq!(rollup.components, 6, "[{backend}]");
        assert_eq!(rollup.finished, 6, "[{backend}]");
        assert_eq!(rollup.faulted, 0, "[{backend}]");
        // source 20 sends + each relay 5: the hierarchy's final counters
        // are the exact application totals, not a sample.
        assert_eq!(rollup.total_sends, 40, "[{backend}]");
        assert_eq!(rollup.total_receives, 40, "[{backend}]");
        assert!(rollup.all_terminal, "[{backend}]");
        rollups.push((
            backend,
            (
                rollup.regions,
                rollup.components,
                rollup.finished,
                rollup.faulted,
                rollup.total_sends,
                rollup.total_receives,
                rollup.all_terminal,
            ),
        ));
    }
    let (_, first) = rollups[0];
    for (backend, totals) in &rollups {
        assert_eq!(*totals, first, "[{backend}] rollup differs across backends");
    }
}

#[test]
fn timed_recv_under_shutdown_drains_queued_then_reports_none() {
    // The timed-receive shutdown contract, identical on every backend:
    // once fail-fast shutdown is initiated, a timed receive still
    // drains messages already queued (`Ok(Some)`), then reports
    // `Ok(None)` *immediately* — it must neither sleep out its timeout
    // slice nor turn into `Terminated` (that is the blocking-receive
    // path). The 10-second timeouts below only ever elapse if the
    // contract is broken.
    for (backend, run) in backends() {
        let mut app = AppBuilder::new("timed-shutdown");
        app.add(
            ComponentSpec::new(
                "waiter",
                behavior_fn(|ctx| {
                    // Message 1 is guaranteed: the producer queues all
                    // three before it fails.
                    ctx.recv("in")?;
                    // Ride out the shutdown race on a never-connected
                    // pacing interface.
                    while !ctx.should_stop() {
                        ctx.recv_timeout("tick", 100_000)?;
                    }
                    // Shutdown is now initiated; the two queued
                    // messages must still come out...
                    assert!(ctx.recv_timeout("in", 10_000_000_000)?.is_some());
                    assert!(ctx.recv_timeout("in", 10_000_000_000)?.is_some());
                    // ...then the timeout path reports empty, promptly.
                    assert!(ctx.recv_timeout("in", 10_000_000_000)?.is_none());
                    // The blocking path, by contrast, is `Terminated`.
                    match ctx.recv("in") {
                        Err(EmberaError::Terminated) => Ok(()),
                        other => panic!("expected Terminated, got {other:?}"),
                    }
                }),
            )
            .with_provided("in")
            .with_provided("tick")
            .with_stack_bytes(1 << 20)
            .on_cpu(0),
        );
        app.add(
            ComponentSpec::new(
                "producer",
                behavior_fn(|ctx| {
                    for i in 0..3u32 {
                        ctx.send("out", Bytes::copy_from_slice(&i.to_le_bytes()))?;
                    }
                    Err(EmberaError::Platform("injected fault".into()))
                }),
            )
            .with_required("out")
            .with_stack_bytes(1 << 20)
            .on_cpu(1),
        );
        app.connect(("producer", "out"), ("waiter", "in"));
        let err = run(app.build().unwrap()).unwrap_err();
        let EmberaError::Platform(msg) = err else {
            panic!("[{backend}] wrong error kind");
        };
        assert!(
            msg.contains("producer") && msg.contains("injected fault"),
            "[{backend}] {msg}"
        );
    }
}

/// Overload conformance harness: `producer` queues a burst into
/// `consumer`'s bounded ingress, then opens the `gate`; `consumer`
/// recvs the gate first, so the whole burst is already queued when the
/// drain starts and the shed decisions are a pure function of the
/// policy. Returns (messages received, shed, expired) per the report.
fn gated_overload_rollup(
    run: RunFn,
    policy: OverloadPolicy,
    send: impl Fn(&mut dyn embera::behavior::Ctx) -> Result<(), EmberaError> + Send + Sync + Clone + 'static,
) -> (u64, u64, u64) {
    let mut app = AppBuilder::new("gated-overload");
    app.add(
        ComponentSpec::new(
            "consumer",
            behavior_fn(|ctx| {
                ctx.recv("gate")?;
                while ctx.recv_timeout("data", 0)?.is_some() {}
                Ok(())
            }),
        )
        .with_provided("data")
        .with_provided("gate")
        .with_overload(policy)
        .with_stack_bytes(1 << 20)
        .on_cpu(0),
    );
    app.add(
        ComponentSpec::new(
            "producer",
            behavior_fn(move |ctx| {
                send(ctx)?;
                ctx.send("go", Bytes::from_static(b"g"))
            }),
        )
        .with_required("out")
        .with_required("go")
        .with_stack_bytes(1 << 20)
        .on_cpu(1),
    );
    app.connect(("producer", "out"), ("consumer", "data"));
    app.connect(("producer", "go"), ("consumer", "gate"));
    let report = run(app.build().unwrap()).unwrap();
    let consumer = report.component("consumer").unwrap();
    let health = consumer.health.unwrap();
    (
        consumer.app.total_receives,
        health.shed_messages,
        health.expired_messages,
    )
}

#[test]
fn drop_oldest_shed_rollup_is_identical_on_every_backend() {
    // 10 queued messages against a bound of 3: the ingress sheds the 7
    // oldest and delivers the newest 3 (plus the gate). The shed
    // decision depends only on queue depth at pop time, so all four
    // backends must agree exactly — shedding is part of the conformance
    // surface, not a backend heuristic.
    let mut rollups = Vec::new();
    for (backend, run) in backends() {
        let rollup = gated_overload_rollup(run, OverloadPolicy::drop_oldest(3), |ctx| {
            for i in 0..10u32 {
                ctx.send("out", Bytes::copy_from_slice(&i.to_le_bytes()))?;
            }
            Ok(())
        });
        // 3 burst survivors + the gate message.
        assert_eq!(rollup, (4, 7, 0), "[{backend}]");
        rollups.push((backend, rollup));
    }
    let first = rollups[0].1;
    for (backend, r) in &rollups {
        assert_eq!(*r, first, "[{backend}] shed rollup differs");
    }
}

#[test]
fn deadline_drop_shed_rollup_is_identical_on_every_backend() {
    // DeadlineDrop judges each message's own deadline stamp at pop
    // time: deadline 0 is born expired, `u64::MAX` never expires, and
    // plain data (no deadline) is never shed. Every backend must
    // classify the mixed burst identically.
    let mut rollups = Vec::new();
    for (backend, run) in backends() {
        let rollup = gated_overload_rollup(run, OverloadPolicy::deadline_drop(), |ctx| {
            for i in 0..4u32 {
                ctx.send_deadlined("out", Bytes::copy_from_slice(&i.to_le_bytes()), 0)?;
            }
            for i in 0..3u32 {
                ctx.send_deadlined("out", Bytes::copy_from_slice(&i.to_le_bytes()), u64::MAX)?;
            }
            for i in 0..3u32 {
                ctx.send("out", Bytes::copy_from_slice(&i.to_le_bytes()))?;
            }
            Ok(())
        });
        // 3 immortal + 3 plain + the gate; the 4 born-expired are shed.
        assert_eq!(rollup, (7, 0, 4), "[{backend}]");
        rollups.push((backend, rollup));
    }
    let first = rollups[0].1;
    for (backend, r) in &rollups {
        assert_eq!(*r, first, "[{backend}] expiry rollup differs");
    }
}
