//! Supervision end-to-end: panic containment, restart policies, health
//! observation with the stall watchdog, and the deterministic
//! fault-injection harness — including the acceptance scenario of an
//! MJPEG pipeline surviving a mid-stream IDCT panic.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use embera::behavior::behavior_fn;
use embera::{
    AppBuilder, AppReport, AppSpec, ComponentSpec, EmberaError, Escalation, FaultPlan,
    ObserverConfig, Platform, RestartPolicy, RunningApp,
};
use embera_exec::ExecPlatform;
use embera_inproc::InprocPlatform;
use embera_os21::Os21Platform;
use embera_smp::SmpPlatform;
use mjpeg::{build_smp_app, synthesize_stream, MjpegAppConfig};

type RunFn = fn(AppSpec) -> Result<AppReport, EmberaError>;

fn backends() -> Vec<(&'static str, RunFn)> {
    fn smp(spec: AppSpec) -> Result<AppReport, EmberaError> {
        SmpPlatform::new().deploy(spec)?.wait()
    }
    fn os21(spec: AppSpec) -> Result<AppReport, EmberaError> {
        Os21Platform::three_cpu().deploy(spec)?.wait()
    }
    fn inproc(spec: AppSpec) -> Result<AppReport, EmberaError> {
        InprocPlatform::new().deploy(spec)?.wait()
    }
    fn exec(spec: AppSpec) -> Result<AppReport, EmberaError> {
        // Panic containment and restarts must survive fibers sharing
        // carrier threads: two workers for fewer carriers than
        // components in every scenario here.
        ExecPlatform::with_workers(2).deploy(spec)?.wait()
    }
    vec![
        ("smp", smp),
        ("os21", os21),
        ("inproc", inproc),
        ("exec", exec),
    ]
}

#[test]
fn behavior_panic_is_contained_and_attributed_on_every_backend() {
    // A panicking behavior must never poison the application: the peer
    // drains out cleanly and the run's error names the component and
    // carries the panic payload.
    for (backend, run) in backends() {
        let mut app = AppBuilder::new("contain");
        // Deployed first so the inproc scheduler parks it before
        // demand-starting the panicking peer.
        app.add(
            ComponentSpec::new(
                "waiter",
                behavior_fn(|ctx| match ctx.recv("in") {
                    Err(EmberaError::Terminated) => Ok(()),
                    other => panic!("expected Terminated, got {other:?}"),
                }),
            )
            .with_provided("in")
            .with_stack_bytes(1 << 20)
            .on_cpu(0),
        );
        app.add(
            ComponentSpec::new("bomb", behavior_fn(|_| panic!("kaboom at block 7")))
                .with_stack_bytes(1 << 20)
                .on_cpu(1),
        );
        let err = run(app.build().unwrap()).unwrap_err();
        let EmberaError::Platform(msg) = err else {
            panic!("[{backend}] wrong error kind");
        };
        assert!(msg.contains("bomb"), "[{backend}] {msg}");
        assert!(msg.contains("panicked"), "[{backend}] {msg}");
        assert!(msg.contains("kaboom at block 7"), "[{backend}] {msg}");
    }
}

#[test]
fn restart_policy_reruns_failed_behavior_in_place() {
    // First attempt fails, second succeeds: under max_restarts=1 the
    // application completes and the restart is visible in the final
    // report's health block.
    for (backend, run) in backends() {
        let attempts = Arc::new(AtomicU32::new(0));
        let a = Arc::clone(&attempts);
        let mut app = AppBuilder::new("retry");
        app.add(
            ComponentSpec::new(
                "flaky",
                behavior_fn(move |_| {
                    if a.fetch_add(1, Ordering::SeqCst) == 0 {
                        panic!("first-attempt crash");
                    }
                    Ok(())
                }),
            )
            .with_restart(RestartPolicy {
                max_restarts: 1,
                ..RestartPolicy::default()
            })
            .with_stack_bytes(1 << 20),
        );
        let report = run(app.build().unwrap()).unwrap_or_else(|e| panic!("[{backend}] {e}"));
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "[{backend}]");
        let health = report
            .component("flaky")
            .unwrap()
            .health
            .expect("final report carries health");
        assert_eq!(health.restarts, 1, "[{backend}]");
    }
}

#[test]
fn exhausted_restart_budget_escalates_with_the_last_error() {
    for (backend, run) in backends() {
        let attempts = Arc::new(AtomicU32::new(0));
        let a = Arc::clone(&attempts);
        let mut app = AppBuilder::new("hopeless");
        app.add(
            ComponentSpec::new(
                "doomed",
                behavior_fn(move |_| {
                    a.fetch_add(1, Ordering::SeqCst);
                    Err(EmberaError::Platform("always broken".into()))
                }),
            )
            .with_restart(RestartPolicy {
                max_restarts: 2,
                escalation: Escalation::Escalate,
                ..RestartPolicy::default()
            })
            .with_stack_bytes(1 << 20),
        );
        let err = run(app.build().unwrap()).unwrap_err();
        assert_eq!(attempts.load(Ordering::SeqCst), 3, "[{backend}] 1 run + 2 restarts");
        let EmberaError::Platform(msg) = err else {
            panic!("[{backend}] wrong error kind");
        };
        assert!(msg.contains("doomed") && msg.contains("always broken"), "[{backend}] {msg}");
    }
}

#[test]
fn one_for_one_contains_failure_while_peers_complete() {
    // `doomed` exhausts its budget under OneForOne: its failure is
    // reported, but `worker` — fully independent — still runs to
    // completion instead of being torn down by a fail-fast shutdown.
    for (backend, run) in backends() {
        let done = Arc::new(AtomicU32::new(0));
        let d = Arc::clone(&done);
        let mut app = AppBuilder::new("contained");
        app.add(
            ComponentSpec::new(
                "worker",
                behavior_fn(move |ctx| {
                    for i in 0..20u32 {
                        ctx.send("out", Bytes::copy_from_slice(&i.to_le_bytes()))?;
                    }
                    d.store(1, Ordering::SeqCst);
                    Ok(())
                }),
            )
            .with_required("out")
            .with_stack_bytes(1 << 20)
            .on_cpu(0),
        );
        app.add(
            ComponentSpec::new(
                "sink",
                behavior_fn(|ctx| {
                    for _ in 0..20u32 {
                        ctx.recv("in")?;
                    }
                    Ok(())
                }),
            )
            .with_provided("in")
            .with_stack_bytes(1 << 20)
            .on_cpu(1),
        );
        app.connect(("worker", "out"), ("sink", "in"));
        app.add(
            ComponentSpec::new(
                "doomed",
                behavior_fn(|_| Err(EmberaError::Platform("contained fault".into()))),
            )
            .with_restart(RestartPolicy {
                max_restarts: 1,
                escalation: Escalation::OneForOne,
                ..RestartPolicy::default()
            })
            .with_stack_bytes(1 << 20)
            .on_cpu(2),
        );
        let err = run(app.build().unwrap()).unwrap_err();
        let EmberaError::Platform(msg) = err else {
            panic!("[{backend}] wrong error kind");
        };
        assert!(msg.contains("doomed") && msg.contains("contained fault"), "[{backend}] {msg}");
        assert!(
            !msg.contains("worker") && !msg.contains("sink"),
            "[{backend}] healthy components must not appear as failures: {msg}"
        );
        assert_eq!(done.load(Ordering::SeqCst), 1, "[{backend}] worker finished its stream");
    }
}

#[test]
fn watchdog_flags_component_without_progress() {
    // `stuck` parks in a timed receive on an interface nobody feeds; the
    // observer's watchdog must log the stall while the healthy `ticker`
    // keeps making progress and stays off the stall list.
    let mut app = AppBuilder::new("stalled");
    app.add(
        ComponentSpec::new(
            "stuck",
            behavior_fn(|ctx| {
                let _ = ctx.recv_timeout("in", 200_000_000)?;
                Ok(())
            }),
        )
        .with_provided("in")
        .with_stack_bytes(1 << 20)
        .on_cpu(0),
    );
    app.add(
        ComponentSpec::new(
            "ticker",
            behavior_fn(|ctx| {
                for i in 0..40u32 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    ctx.send("out", Bytes::copy_from_slice(&i.to_le_bytes()))?;
                }
                Ok(())
            }),
        )
        .with_required("out")
        .with_stack_bytes(1 << 20)
        .on_cpu(1),
    );
    app.add(
        ComponentSpec::new(
            "pump",
            behavior_fn(|ctx| {
                for _ in 0..40u32 {
                    ctx.recv("in")?;
                }
                Ok(())
            }),
        )
        .with_provided("in")
        .with_stack_bytes(1 << 20)
        .on_cpu(2),
    );
    app.connect(("ticker", "out"), ("pump", "in"));
    let log = app.with_observer(
        ObserverConfig::default()
            .interval_ns(5_000_000)
            .watchdog_ns(30_000_000),
    );
    SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    let stalled = log.stalled_components();
    assert!(stalled.contains(&"stuck".to_string()), "{stalled:?}");
    assert!(!stalled.contains(&"ticker".to_string()), "{stalled:?}");
    assert!(!log.stalls().is_empty());
}

#[test]
fn watchdog_flags_component_without_progress_on_exec() {
    // Same stall scenario on the executor: `stuck` is a parked fiber
    // rather than a parked thread, and the observer (itself a fiber on
    // the same 2-worker pool) must still see its progress counter frozen
    // while `ticker` stays healthy.
    let mut app = AppBuilder::new("stalled-exec");
    app.add(
        ComponentSpec::new(
            "stuck",
            behavior_fn(|ctx| {
                let _ = ctx.recv_timeout("in", 200_000_000)?;
                Ok(())
            }),
        )
        .with_provided("in")
        .with_stack_bytes(1 << 20),
    );
    app.add(
        ComponentSpec::new(
            "ticker",
            behavior_fn(|ctx| {
                for i in 0..40u32 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    ctx.send("out", Bytes::copy_from_slice(&i.to_le_bytes()))?;
                }
                Ok(())
            }),
        )
        .with_required("out")
        .with_stack_bytes(1 << 20),
    );
    app.add(
        ComponentSpec::new(
            "pump",
            behavior_fn(|ctx| {
                for _ in 0..40u32 {
                    ctx.recv("in")?;
                }
                Ok(())
            }),
        )
        .with_provided("in")
        .with_stack_bytes(1 << 20),
    );
    app.connect(("ticker", "out"), ("pump", "in"));
    let log = app.with_observer(
        ObserverConfig::default()
            .interval_ns(5_000_000)
            .watchdog_ns(30_000_000),
    );
    ExecPlatform::with_workers(2)
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    let stalled = log.stalled_components();
    assert!(stalled.contains(&"stuck".to_string()), "{stalled:?}");
    assert!(!stalled.contains(&"ticker".to_string()), "{stalled:?}");
    assert!(!log.stalls().is_empty());
}

/// Pipeline used by the message-fault tests: src sends 5 tagged
/// messages, dst drains with a deadline and records what arrived.
fn fault_pipeline(received: Arc<Mutex<Vec<Vec<u8>>>>) -> AppBuilder {
    let mut app = AppBuilder::new("faulted");
    app.add(
        ComponentSpec::new(
            "dst",
            behavior_fn(move |ctx| {
                while let Some(b) = ctx.recv_timeout("in", 50_000_000)? {
                    received.lock().unwrap().push(b.to_vec());
                }
                Ok(())
            }),
        )
        .with_provided("in")
        .with_stack_bytes(1 << 20)
        .on_cpu(0),
    );
    app.add(
        ComponentSpec::new(
            "src",
            behavior_fn(|ctx| {
                for i in 0..5u8 {
                    ctx.send("out", Bytes::from(vec![i, 0xAA, 0xBB]))?;
                }
                Ok(())
            }),
        )
        .with_required("out")
        .with_stack_bytes(1 << 20)
        .on_cpu(1),
    );
    app.connect(("src", "out"), ("dst", "in"));
    app
}

#[test]
fn injected_drop_and_corrupt_are_deterministic_on_inproc() {
    // Drop message 2, corrupt message 4 (first byte ^ 0xFF): dst sees
    // exactly [0, 1, 3, 4^0xFF] — and two runs agree bit-for-bit.
    let run = || {
        let received = Arc::new(Mutex::new(Vec::new()));
        let mut app = fault_pipeline(Arc::clone(&received));
        app.with_faults(
            FaultPlan::new()
                .drop_message("src", "out", 2)
                .corrupt_message("src", "out", 4),
        );
        let report = InprocPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        let seen = received.lock().unwrap().clone();
        (seen, report.total_sends(), report.total_receives())
    };
    let (seen, sends, receives) = run();
    assert_eq!(
        seen,
        vec![
            vec![0, 0xAA, 0xBB],
            vec![1, 0xAA, 0xBB],
            vec![3, 0xAA, 0xBB],
            vec![4 ^ 0xFF, 0xAA, 0xBB],
        ]
    );
    // A dropped message never reaches the transport: 4 sends, 4 receives.
    assert_eq!((sends, receives), (4, 4));
    assert_eq!(run(), (seen, sends, receives), "fault runs must be reproducible");
}

#[test]
fn injected_faults_behave_identically_on_smp() {
    // Same plan on the threaded backend: identical message outcome (the
    // interleaving is live, the fault arithmetic is not).
    let received = Arc::new(Mutex::new(Vec::new()));
    let mut app = fault_pipeline(Arc::clone(&received));
    app.with_faults(
        FaultPlan::new()
            .drop_message("src", "out", 2)
            .corrupt_message("src", "out", 4),
    );
    let report = SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    let seen = received.lock().unwrap().clone();
    assert_eq!(
        seen,
        vec![
            vec![0, 0xAA, 0xBB],
            vec![1, 0xAA, 0xBB],
            vec![3, 0xAA, 0xBB],
            vec![4 ^ 0xFF, 0xAA, 0xBB],
        ]
    );
    assert_eq!((report.total_sends(), report.total_receives()), (4, 4));
}

#[test]
fn injected_panic_fires_at_exact_receive_iteration() {
    // dst panics on its third data receive; with no restart policy the
    // run fails with an attributed BehaviorPanic.
    for (backend, run) in [backends()[0], backends()[2], backends()[3]] {
        let received = Arc::new(Mutex::new(Vec::new()));
        let mut app = fault_pipeline(Arc::clone(&received));
        app.with_faults(FaultPlan::new().panic_on_iteration("dst", 2));
        let err = run(app.build().unwrap()).unwrap_err();
        let EmberaError::Platform(msg) = err else {
            panic!("[{backend}] wrong error kind");
        };
        assert!(msg.contains("dst") && msg.contains("panicked"), "[{backend}] {msg}");
        assert!(msg.contains("iteration 2"), "[{backend}] {msg}");
        // Receives 0 and 1 were delivered before the injected panic.
        assert_eq!(received.lock().unwrap().len(), 2, "[{backend}]");
    }
}

/// The acceptance scenario: a mid-stream IDCT panic under
/// `RestartPolicy { max_restarts: 1 }` restarts the component exactly
/// once; the tolerant pipeline completes with
/// `frames_completed == forwarded - dropped`, the lost block's frame
/// being the only casualty.
fn idct_panic_run(run: RunFn) -> (u64, u64, u64, u64, u64) {
    let frames = 8;
    let stream = synthesize_stream(frames, 48, 24, 75, 42);
    let cfg = MjpegAppConfig {
        tolerate_corrupt_frames: true,
        ..MjpegAppConfig::default()
    };
    let (mut app, probe) = build_smp_app(stream, &cfg);
    app.restart_component(
        "IDCT_2",
        RestartPolicy {
            max_restarts: 1,
            ..RestartPolicy::default()
        },
    );
    // Panic at data-receive 10: one coefficient block of one mid-stream
    // frame is consumed and lost.
    app.with_faults(FaultPlan::new().panic_on_iteration("IDCT_2", 10));
    let report = run(app.build().unwrap()).expect("supervised pipeline completes");
    let health = report
        .component("IDCT_2")
        .unwrap()
        .health
        .expect("health in final report");
    (
        probe.frames_completed.load(Ordering::Acquire),
        probe.dropped_frames.load(Ordering::Acquire),
        probe.checksum.load(Ordering::Acquire),
        health.restarts,
        report.total_receives(),
    )
}

#[test]
fn mjpeg_survives_midstream_idct_panic_with_one_restart_on_smp() {
    let (completed, dropped, _checksum, restarts, _receives) =
        idct_panic_run(|spec| SmpPlatform::new().deploy(spec)?.wait());
    assert_eq!(restarts, 1, "exactly one restart");
    assert_eq!(dropped, 1, "exactly one frame lost to the panic");
    assert_eq!(completed, 7 - dropped, "completed = forwarded - dropped");
}

#[test]
fn mjpeg_survives_midstream_idct_panic_with_one_restart_on_exec() {
    // The full acceptance scenario on the M:N executor: the panicking
    // IDCT fiber is caught on its own stack, restarted in place on the
    // 3-worker pool, and the tolerant pipeline completes.
    let (completed, dropped, _checksum, restarts, _receives) =
        idct_panic_run(|spec| ExecPlatform::with_workers(3).deploy(spec)?.wait());
    assert_eq!(restarts, 1, "exactly one restart");
    assert_eq!(dropped, 1, "exactly one frame lost to the panic");
    assert_eq!(completed, 7 - dropped, "completed = forwarded - dropped");
}

#[test]
fn mjpeg_idct_panic_recovery_is_deterministic_on_inproc() {
    let run = || idct_panic_run(|spec| InprocPlatform::new().deploy(spec)?.wait());
    let first = run();
    let (completed, dropped, checksum, restarts, _) = first;
    assert_eq!(restarts, 1);
    assert_eq!(dropped, 1);
    assert_eq!(completed, 6);
    assert_ne!(checksum, 0);
    assert_eq!(run(), first, "logical-clock replay must be bit-for-bit identical");
}

#[test]
fn restart_backoff_never_trips_the_watchdog() {
    // Watchdog-vs-backoff interaction audit: a component pausing in
    // restart backoff reports `Restarting` — a state `is_stalled`
    // excludes — and the re-run re-stamps its progress clock before the
    // behavior resumes. The backoff (100 ms) dwarfs the watchdog
    // deadline (10 ms), so any leak of the backoff pause into the
    // stall predicate would fire many records. A genuinely stuck
    // sibling pins that the watchdog itself is armed and firing in the
    // very same run.
    let scenario = |run: RunFn, backend: &str| {
        let attempts = Arc::new(AtomicU32::new(0));
        let a = Arc::clone(&attempts);
        let mut app = AppBuilder::new("backoff-watchdog");
        // Deployed first: on inproc its parked recv is what pulls the
        // observer through the demand-driven scheduler *during* the
        // run, so polls actually interleave with the backoff window.
        app.add(
            ComponentSpec::new("waiter", behavior_fn(|ctx| ctx.recv("done").map(|_| ())))
                .with_provided("done")
                .with_stack_bytes(1 << 20)
                .on_cpu(2),
        );
        app.add(
            ComponentSpec::new(
                "stuck",
                behavior_fn(|ctx| {
                    // Parked (Blocked) far beyond the watchdog deadline
                    // on an interface nobody feeds.
                    let _ = ctx.recv_timeout("in", 150_000_000)?;
                    Ok(())
                }),
            )
            .with_provided("in")
            .with_stack_bytes(1 << 20)
            .on_cpu(0),
        );
        app.add(
            ComponentSpec::new(
                "flaky",
                behavior_fn(move |_| {
                    if a.fetch_add(1, Ordering::SeqCst) == 0 {
                        return Err(EmberaError::Platform("first-attempt fault".into()));
                    }
                    Ok(())
                }),
            )
            .with_restart(RestartPolicy {
                max_restarts: 1,
                backoff_ns: 100_000_000,
                ..RestartPolicy::default()
            })
            .with_stack_bytes(1 << 20)
            .on_cpu(1),
        );
        let log = app.with_observer(
            ObserverConfig::default()
                .grouped(vec![(
                    "app".to_string(),
                    vec!["stuck".into(), "flaky".into()],
                )])
                .interval_ns(2_000_000)
                .watchdog_ns(10_000_000)
                .notify_done("waiter", "done"),
        );
        let report = run(app.build().unwrap()).unwrap_or_else(|e| panic!("[{backend}] {e}"));
        assert_eq!(
            report.component("flaky").unwrap().health.unwrap().restarts,
            1,
            "[{backend}] the backoff path must actually have run"
        );
        let stalls = log.stalls();
        assert!(
            stalls.iter().any(|s| s.component == "stuck"),
            "[{backend}] watchdog not armed: the stuck sibling never stalled"
        );
        assert!(
            stalls.iter().all(|s| s.component != "flaky"),
            "[{backend}] false stall during restart backoff: {stalls:?}"
        );
    };
    scenario(|spec| SmpPlatform::new().deploy(spec)?.wait(), "smp");
    scenario(|spec| InprocPlatform::new().deploy(spec)?.wait(), "inproc");
}
