//! Overload decisions are part of the deterministic surface: on the
//! in-process backend two identical open-loop runs must agree
//! bit-for-bit — every shed, every deadline expiry, every autoscale
//! retarget, every completed-frame latency — including under an
//! injected fault plan.

use embera::{FaultPlan, OverloadPolicy, Platform, RunningApp};
use embera_inproc::InprocPlatform;
use embera_trace::{EventKind, TraceCollector, TraceEvent};
use mjpeg::{
    build_overload_app, ArrivalProcess, AutoscaleConfig, OverloadConfig, Pacing,
};

/// One traced overload run on inproc; virtual pacing keeps the offered
/// schedule on the logical clock, so wall time never leaks into the
/// trace. Returns the full sorted trace plus the probe-level outcome
/// (latencies and the autoscaler's retarget history).
fn traced_overload_run(
    cfg: &OverloadConfig,
    faults: Option<FaultPlan>,
) -> (Vec<TraceEvent>, Vec<u64>, Vec<u32>) {
    let collector = TraceCollector::new(1 << 16);
    let stream = mjpeg::synthesize_stream(4, 48, 24, 75, 0x0D15_EA5E);
    let (mut app, probe) = build_overload_app(stream, cfg);
    app.with_tracing(collector.trace_config());
    if let Some(plan) = faults {
        app.with_faults(plan);
    }
    InprocPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    (
        collector.drain_sorted(),
        probe.latencies(),
        probe.scale_history(),
    )
}

fn assert_identical(
    (ta, la, sa): &(Vec<TraceEvent>, Vec<u64>, Vec<u32>),
    (tb, lb, sb): &(Vec<TraceEvent>, Vec<u64>, Vec<u32>),
) {
    assert_eq!(la, lb, "completed-frame latencies vary between runs");
    assert_eq!(sa, sb, "autoscale decisions vary between runs");
    assert_eq!(ta.len(), tb.len(), "trace length varies between runs");
    assert_eq!(ta, tb, "full trace varies between runs");
}

fn shed_cfg() -> OverloadConfig {
    OverloadConfig {
        frames: 32,
        mean_gap_ns: 40_000,
        arrival: ArrivalProcess::Poisson,
        deadline_budget_ns: 250_000,
        max_workers: 2,
        initial_workers: 2,
        fetch_policy: Some(OverloadPolicy::drop_oldest(3)),
        pacing: Pacing::Virtual,
        ..OverloadConfig::default()
    }
}

#[test]
fn shed_decisions_are_bit_for_bit_reproducible_on_inproc() {
    // Queue-bound shedding under a bursty Poisson schedule: the exact
    // set of shed tokens is scheduler-order dependent, so this pins the
    // whole decision sequence, not just the counts.
    let cfg = shed_cfg();
    let a = traced_overload_run(&cfg, None);
    let b = traced_overload_run(&cfg, None);
    assert!(
        a.0.iter().any(|e| e.kind == EventKind::Shed),
        "scenario never shed a message"
    );
    assert_identical(&a, &b);
}

#[test]
fn deadline_expiry_decisions_are_bit_for_bit_reproducible_on_inproc() {
    // DeadlineDrop sheds already-expired tokens at Fetch's ingress; the
    // budget is tighter than the offered gap, so expiries are frequent
    // and interleaved with completions.
    let cfg = OverloadConfig {
        fetch_policy: Some(OverloadPolicy::deadline_drop()),
        deadline_budget_ns: 120_000,
        ..shed_cfg()
    };
    let a = traced_overload_run(&cfg, None);
    let b = traced_overload_run(&cfg, None);
    assert!(
        a.0.iter().any(|e| e.kind == EventKind::Shed),
        "scenario never expired a token"
    );
    assert_identical(&a, &b);
}

#[test]
fn autoscale_decisions_are_bit_for_bit_reproducible_on_inproc() {
    // The inproc demand scheduler drains queues as they fill, so the
    // deterministic autoscale direction is *down*: quiet queues walk
    // the worker count from 3 to the floor, one observation round per
    // step, and that decision sequence must replay exactly.
    let cfg = OverloadConfig {
        frames: 32,
        mean_gap_ns: 30_000,
        arrival: ArrivalProcess::LogNormal { sigma: 0.8 },
        deadline_budget_ns: 10_000_000_000,
        max_workers: 3,
        initial_workers: 3,
        autoscale: Some(AutoscaleConfig {
            high_queue: 1_000,
            low_queue: 10,
            hysteresis_rounds: 1,
            min_workers: 1,
            interval_ns: 50_000,
        }),
        pacing: Pacing::Virtual,
        ..OverloadConfig::default()
    };
    let a = traced_overload_run(&cfg, None);
    let b = traced_overload_run(&cfg, None);
    assert!(
        a.2.ends_with(&[1]),
        "quiet queues must walk the autoscaler to the floor: {:?}",
        a.2
    );
    assert_identical(&a, &b);
}

#[test]
fn overload_run_stays_deterministic_under_injected_fault() {
    // A dropped coeff batch on lane 1 leaves one frame permanently
    // partial at the judge; the perturbed schedule downstream of the
    // drop must still replay identically. (nth counts from 0; only the
    // few tokens surviving the queue bound are ever decoded, so the
    // fault targets the second batch the lane sees.)
    let plan = || FaultPlan::new().drop_message("Fetch", "fetchIdct1", 1);
    let a = traced_overload_run(&shed_cfg(), Some(plan()));
    let b = traced_overload_run(&shed_cfg(), Some(plan()));
    assert!(
        a.0.iter().any(|e| e.kind == EventKind::FaultInjected),
        "fault plan never fired"
    );
    assert_identical(&a, &b);
}
