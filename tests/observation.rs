//! Integration: the observation model end-to-end — the observer
//! component, the Figure 5 structure listing, and the paper's
//! "observed without modifying its code" property.

use bytes::Bytes;
use embera::behavior::behavior_fn;
use embera::{
    AppBuilder, Behavior, ComponentSpec, Ctx, EmberaError, ObserverConfig, Platform, RunningApp,
};
use embera_os21::Os21Platform;
use embera_smp::SmpPlatform;
use mjpeg::{build_smp_app, synthesize_stream, MjpegAppConfig};

#[test]
fn figure5_listing_from_deployed_mjpeg_app() {
    // Deploy the paper's MJPEG app and render IDCT_1's interface listing
    // exactly as Figure 5 prints it.
    let stream = synthesize_stream(4, 48, 24, 75, 1);
    let (app, _) = build_smp_app(stream, &MjpegAppConfig::default());
    let report = SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    let idct1 = report.component("IDCT_1").unwrap();
    let listing = idct1.structure.format_figure5();
    let expected = "Interfaces component [IDCT_1]\n\
                    ----------------------------\n\
                    [Interface] [Type]\n\
                    introspection provided\n\
                    _fetchIdct1 provided\n\
                    introspection required\n\
                    idctReorder required\n";
    assert_eq!(listing, expected, "Figure 5 must reproduce verbatim");
}

/// A behavior that knows nothing about observation: the "application
/// code" whose observability must come entirely from the runtime.
struct PlainWorker {
    messages: u32,
}

impl Behavior for PlainWorker {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        for i in 0..self.messages {
            // Simulate periodic work so the observer can catch us live.
            std::thread::sleep(std::time::Duration::from_millis(2));
            ctx.send("out", Bytes::from(vec![0u8; 100 + i as usize]))?;
        }
        Ok(())
    }
}

#[test]
fn observer_collects_multi_level_reports_without_code_changes() {
    let mut app = AppBuilder::new("observed");
    app.add(
        ComponentSpec::new("worker", PlainWorker { messages: 40 })
            .with_required("out")
            .with_stack_bytes(1 << 20),
    );
    app.add(
        ComponentSpec::new(
            "sink",
            behavior_fn(|ctx| {
                for _ in 0..40 {
                    ctx.recv("in")?;
                }
                Ok(())
            }),
        )
        .with_provided("in")
        .with_stack_bytes(1 << 20),
    );
    app.connect(("worker", "out"), ("sink", "in"));
    let log = app.with_observer(ObserverConfig::default().interval_ns(4_000_000));
    SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();

    assert!(!log.is_empty(), "observer gathered nothing");
    let reports = log.latest_by_component();
    let worker = reports
        .iter()
        .find(|r| r.component == "worker")
        .expect("worker observed");
    // All three observation levels populated (paper §4.2).
    assert!(worker.os.memory_bytes > 0, "OS level: memory");
    assert!(worker.middleware.send.count > 0, "middleware level: send timing");
    assert!(worker.app.total_sends > 0, "application level: counters");
    assert!(
        worker
            .structure
            .interfaces
            .iter()
            .any(|e| e.name == "introspection"),
        "application level: structure"
    );
}

#[test]
fn observer_sees_progress_over_rounds() {
    // Counters must increase across observation rounds while the
    // component is running (live observation, not just a final report).
    let mut app = AppBuilder::new("progress");
    app.add(
        ComponentSpec::new("worker", PlainWorker { messages: 60 })
            .with_required("out")
            .with_stack_bytes(1 << 20),
    );
    app.add(
        ComponentSpec::new(
            "sink",
            behavior_fn(|ctx| {
                for _ in 0..60 {
                    ctx.recv("in")?;
                }
                Ok(())
            }),
        )
        .with_provided("in")
        .with_stack_bytes(1 << 20),
    );
    app.connect(("worker", "out"), ("sink", "in"));
    let log = app.with_observer(ObserverConfig::default().interval_ns(3_000_000));
    SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    let worker_counts: Vec<u64> = log
        .records()
        .iter()
        .filter(|r| r.report.component == "worker")
        .map(|r| r.report.app.total_sends)
        .collect();
    assert!(
        worker_counts.len() >= 2,
        "need at least two observation rounds, got {worker_counts:?}"
    );
    assert!(
        worker_counts.windows(2).all(|w| w[0] <= w[1]),
        "counters must be monotone: {worker_counts:?}"
    );
}

#[test]
fn same_behaviors_run_on_both_platforms() {
    // The platform-independence claim: identical ComponentSpec wiring
    // (same behavior types) deploys on SMP and on the simulated MPSoC.
    fn build() -> AppBuilder {
        let mut app = AppBuilder::new("portable");
        app.add(
            ComponentSpec::new(
                "ping",
                behavior_fn(|ctx| {
                    for i in 0..10u32 {
                        ctx.send("out", Bytes::copy_from_slice(&i.to_le_bytes()))?;
                        let back = ctx.recv("back")?;
                        assert_eq!(back.as_ref(), i.to_le_bytes());
                    }
                    Ok(())
                }),
            )
            .with_required("out")
            .with_provided("back")
            .with_stack_bytes(1 << 20)
            .on_cpu(0),
        );
        app.add(
            ComponentSpec::new(
                "pong",
                behavior_fn(|ctx| {
                    for _ in 0..10 {
                        let msg = ctx.recv("in")?;
                        ctx.send("reply", msg)?;
                    }
                    Ok(())
                }),
            )
            .with_provided("in")
            .with_required("reply")
            .with_stack_bytes(1 << 20)
            .on_cpu(1),
        );
        app.connect(("ping", "out"), ("pong", "in"));
        app.connect(("pong", "reply"), ("ping", "back"));
        app
    }

    let smp = SmpPlatform::new()
        .deploy(build().build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    let mpsoc = Os21Platform::three_cpu()
        .deploy(build().build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    for report in [&smp, &mpsoc] {
        assert_eq!(report.component("ping").unwrap().app.total_sends, 10);
        assert_eq!(report.component("pong").unwrap().app.total_receives, 10);
    }
    // The MPSoC run advanced virtual time; the SMP run advanced wall time.
    assert!(mpsoc.wall_time_ns > 0);
}

#[test]
fn observer_works_on_simulated_mpsoc_mjpeg() {
    let stream = synthesize_stream(30, 48, 24, 75, 3);
    let cfg = MjpegAppConfig {
        idct_count: 2,
        ..Default::default()
    };
    let (mut app, _) = mjpeg::build_mpsoc_app(stream, &cfg);
    let log = app.with_observer(
        ObserverConfig::default()
            .interval_ns(2_000_000) // 2 ms of virtual time between rounds
            .rounds(20),
    );
    Os21Platform::three_cpu()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    assert!(!log.is_empty());
    let fr = log
        .latest_by_component()
        .into_iter()
        .find(|r| r.component == "Fetch-Reorder")
        .expect("Fetch-Reorder observed");
    assert!(fr.app.total_sends > 0);
    assert!(fr.os.cpu_time_ns > 0, "RTOS task_time surfaced via observation");
}

#[test]
fn unobserved_app_reports_zero_observation_traffic() {
    // Without an observer, introspection interfaces exist but stay
    // silent, and data counters are unaffected.
    let mut app = AppBuilder::new("silent");
    app.add(
        ComponentSpec::new(
            "a",
            behavior_fn(|ctx| ctx.send("out", Bytes::from_static(b"x"))),
        )
        .with_required("out")
        .with_stack_bytes(1 << 20),
    );
    app.add(
        ComponentSpec::new("b", behavior_fn(|ctx| ctx.recv("in").map(|_| ())))
            .with_provided("in")
            .with_stack_bytes(1 << 20),
    );
    app.connect(("a", "out"), ("b", "in"));
    let report = SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(report.component("a").unwrap().app.total_sends, 1);
    assert_eq!(report.total_sends(), 1);
    assert_eq!(report.total_receives(), 1);
}

#[test]
fn custom_metrics_surface_through_observation() {
    // The paper-§6 "what functions should be provided with the
    // observation interface" extension: the MJPEG pipeline registers a
    // frames_completed gauge on its Reorder component, and it arrives in
    // both the live observer reports and the final report.
    let stream = synthesize_stream(25, 48, 24, 75, 0xFEED);
    let (mut app, _probe) = build_smp_app(stream, &MjpegAppConfig::default());
    let log = app.with_observer(ObserverConfig::default().interval_ns(2_000_000));
    let report = SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();

    let reorder = report.component("Reorder").unwrap();
    assert_eq!(reorder.custom.len(), 1);
    assert_eq!(reorder.custom[0].name, "frames_completed");
    assert_eq!(reorder.custom[0].value, 24.0, "24 frames forwarded");
    // Other components registered no metrics.
    assert!(report.component("Fetch").unwrap().custom.is_empty());
    // Live reports carry the gauge too (monotone over rounds).
    let live: Vec<f64> = log
        .records()
        .iter()
        .filter(|r| r.report.component == "Reorder")
        .filter_map(|r| r.report.custom.first().map(|m| m.value))
        .collect();
    assert!(live.windows(2).all(|w| w[0] <= w[1]), "{live:?}");
}

#[test]
fn observer_request_selection_narrows_traffic() {
    // §6 "how to select the events to be observed": poll only
    // application-level counters; the log then carries sparse reports
    // with app stats filled and OS stats untouched.
    let mut app = AppBuilder::new("selected");
    app.add(
        ComponentSpec::new("worker", PlainWorker { messages: 30 })
            .with_required("out")
            .with_stack_bytes(1 << 20),
    );
    app.add(
        ComponentSpec::new(
            "sink",
            behavior_fn(|ctx| {
                for _ in 0..30 {
                    ctx.recv("in")?;
                }
                Ok(())
            }),
        )
        .with_provided("in")
        .with_stack_bytes(1 << 20),
    );
    app.connect(("worker", "out"), ("sink", "in"));
    let log = app.with_observer(
        ObserverConfig::default()
            .interval_ns(4_000_000)
            .request(embera::ObsRequest::AppStats),
    );
    SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    let worker_records: Vec<_> = log
        .records()
        .into_iter()
        .filter(|r| r.report.component == "worker")
        .collect();
    assert!(!worker_records.is_empty());
    let last = worker_records.last().unwrap();
    assert!(last.report.app.total_sends > 0, "app level present");
    assert_eq!(last.report.os.memory_bytes, 0, "OS level not requested");
    assert!(last.report.structure.interfaces.is_empty(), "structure not requested");
}
