//! Integration: the componentized MJPEG decoder on both platforms,
//! checking the paper's structural results end-to-end.

use std::sync::atomic::Ordering;

use embera::{Platform, RunningApp};
use embera_os21::Os21Platform;
use embera_smp::SmpPlatform;
use mjpeg::{build_mpsoc_app, build_smp_app, synthesize_stream, MjpegAppConfig};

fn stream(frames: usize) -> mjpeg::MjpegStream {
    synthesize_stream(frames, 48, 24, 75, 0x5EED)
}

#[test]
fn smp_pipeline_full_counts_and_balance() {
    // 41 frames -> 40 forwarded: Table 2 structure at reduced scale.
    let (app, probe) = build_smp_app(stream(41), &MjpegAppConfig::default());
    let report = SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(probe.frames_completed.load(Ordering::SeqCst), 40);
    let fetch = report.component("Fetch").unwrap();
    assert_eq!(fetch.app.total_sends, 18 * 40);
    assert_eq!(fetch.app.total_receives, 0);
    for k in 1..=3 {
        let idct = report.component(&format!("IDCT_{k}")).unwrap();
        assert_eq!(idct.app.total_receives, 6 * 40);
        assert_eq!(idct.app.total_sends, 6 * 40);
    }
    let reorder = report.component("Reorder").unwrap();
    assert_eq!(reorder.app.total_receives, 18 * 40);

    // Table 1 memory shape: Fetch < IDCT < Reorder (provided-interface
    // footprints), Fetch = stack + introspection only.
    let m = |n: &str| report.component(n).unwrap().os.memory_bytes;
    assert!(m("Fetch") < m("IDCT_1"));
    assert!(m("IDCT_1") < m("Reorder"));
}

#[test]
fn smp_pipeline_idcts_are_load_balanced() {
    // Paper §4.4: "having three IDCT components computing in parallel
    // balances the execution times" — the three IDCTs do identical
    // work. Wall-clock balance is noisy on a loaded single-core host
    // (sibling tests run concurrently), so take the best of a few
    // attempts: systematic imbalance fails all of them.
    let mut spreads = Vec::new();
    for _ in 0..3 {
        let (app, _) = build_smp_app(stream(31), &MjpegAppConfig::default());
        let report = SmpPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        let times: Vec<u64> = (1..=3)
            .map(|k| {
                report
                    .component(&format!("IDCT_{k}"))
                    .unwrap()
                    .os
                    .exec_time_ns
            })
            .collect();
        let max = *times.iter().max().unwrap() as f64;
        let min = *times.iter().min().unwrap() as f64;
        if max / min < 1.5 {
            return;
        }
        spreads.push(times);
    }
    panic!("IDCT execution times should be balanced in at least one of three runs: {spreads:?}");
}

#[test]
fn mpsoc_pipeline_decodes_and_matches_reference() {
    let s = stream(9);
    let expected = mjpeg::pipeline::PipelineProbe::default();
    for f in &s.frames[1..] {
        let px = mjpeg::codec::decode_frame(&f.data, 48, 24, 75).unwrap();
        fold(&expected, &px);
    }
    let cfg = MjpegAppConfig {
        idct_count: 2,
        ..Default::default()
    };
    let (app, probe) = build_mpsoc_app(s, &cfg);
    let report = Os21Platform::three_cpu()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(probe.frames_completed.load(Ordering::SeqCst), 8);
    assert_eq!(
        probe.checksum.load(Ordering::SeqCst),
        expected.checksum.load(Ordering::SeqCst),
        "MPSoC pipeline output must be bit-identical to reference decode"
    );
    assert_eq!(
        report.component("Fetch-Reorder").unwrap().app.total_sends,
        18 * 8
    );
}


// PipelineProbe::fold_frame is private; recompute its FNV fold here.
fn fold(probe: &mjpeg::pipeline::PipelineProbe, pixels: &[u8]) {
    let mut h = probe.checksum.load(Ordering::Acquire);
    if h == 0 {
        h = 0xcbf2_9ce4_8422_2325;
    }
    for &b in pixels {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    probe.checksum.store(h, Ordering::Release);
    probe.frames_completed.fetch_add(1, Ordering::AcqRel);
}

#[test]
fn mpsoc_table3_shapes_hold() {
    // Table 3's structure at reduced scale: memory formula exact, the
    // Fetch-Reorder : IDCT task-time ratio ~10x (paper: 1173/95 ≈ 12).
    let cfg = MjpegAppConfig {
        idct_count: 2,
        ..Default::default()
    };
    let (app, _) = build_mpsoc_app(stream(25), &cfg);
    let report = Os21Platform::three_cpu()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    let fr = report.component("Fetch-Reorder").unwrap();
    let idct = report.component("IDCT_1").unwrap();
    assert_eq!(fr.os.memory_bytes, 110_000, "60 kB task + 2 x 25 kB objects");
    assert_eq!(idct.os.memory_bytes, 85_000, "60 kB task + 1 x 25 kB object");
    let ratio = embera_repro::tables::table3_ratio(&report);
    assert!(
        (6.0..20.0).contains(&ratio),
        "Fetch-Reorder/IDCT task-time ratio {ratio:.1} outside the paper's ~10-12x band"
    );
}

#[test]
fn mpsoc_runs_are_fully_deterministic() {
    let run = || {
        let cfg = MjpegAppConfig {
            idct_count: 2,
            ..Default::default()
        };
        let (app, probe) = build_mpsoc_app(stream(7), &cfg);
        let report = Os21Platform::three_cpu()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        (
            report.wall_time_ns,
            probe.checksum.load(Ordering::SeqCst),
            report.component("Fetch-Reorder").unwrap().os.cpu_time_ns,
        )
    };
    assert_eq!(run(), run(), "two simulated runs must be identical");
}

#[test]
fn smp_exec_time_scales_with_stream_length() {
    // Table 1's scaling: 578 -> 3000 frames grows component times by
    // roughly the frame ratio. Reduced scale: 11 vs 51 frames (10 vs 50
    // forwarded; expected ~5x, accept 3-8x for scheduling noise).
    let time_of = |frames: usize| {
        let (app, _) = build_smp_app(stream(frames), &MjpegAppConfig::default());
        let report = SmpPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        report.component("IDCT_1").unwrap().os.exec_time_ns as f64
    };
    let small = time_of(11);
    let large = time_of(51);
    let ratio = large / small;
    assert!(
        ratio > 1.5,
        "more frames must take longer: {small} vs {large} (ratio {ratio:.2})"
    );
}
