//! Integration: the developer-facing exports — GraphViz component
//! graphs and chrome://tracing timelines — produced from real runs.

use bytes::Bytes;
use embera::behavior::behavior_fn;
use embera::{AppBuilder, ComponentSpec, ObserverConfig, Platform, RunningApp};
use embera_smp::SmpPlatform;
use embera_trace::instrument::TracedBehavior;
use embera_trace::{analysis, export, TraceCollector};
use mjpeg::{build_smp_app, synthesize_stream, MjpegAppConfig};

#[test]
fn mjpeg_app_dot_graph_matches_paper_topology() {
    let (mut app, _) = build_smp_app(synthesize_stream(2, 48, 24, 75, 1), &MjpegAppConfig::default());
    let _log = app.with_observer(ObserverConfig::default());
    let dot = app.build().unwrap().to_dot();
    // Paper Figure 1 topology: Fetch feeds three IDCTs, which feed Reorder.
    for k in 1..=3 {
        assert!(dot.contains(&format!("\"Fetch\" -> \"IDCT_{k}\"")), "{dot}");
        assert!(dot.contains(&format!("\"IDCT_{k}\" -> \"Reorder\"")), "{dot}");
    }
    // Observer wiring present and visually distinguished.
    assert!(dot.contains("\"Observer\" [label=\"Observer\", style=dashed]"));
    assert!(dot.matches("style=dotted").count() >= 10, "2 dotted edges per observed component");
}

#[test]
fn chrome_trace_from_real_run_is_consistent() {
    let collector = TraceCollector::default();
    let mut app = AppBuilder::new("chrome");
    app.add(
        ComponentSpec::new(
            "src",
            TracedBehavior::new(
                behavior_fn(|ctx| {
                    for _ in 0..50 {
                        ctx.send("out", Bytes::from_static(&[0u8; 128]))?;
                    }
                    Ok(())
                }),
                collector.register("src"),
            ),
        )
        .with_required("out")
        .with_stack_bytes(1 << 20),
    );
    app.add(
        ComponentSpec::new(
            "dst",
            TracedBehavior::new(
                behavior_fn(|ctx| {
                    for _ in 0..50 {
                        ctx.recv("in")?;
                    }
                    Ok(())
                }),
                collector.register("dst"),
            ),
        )
        .with_provided("in")
        .with_stack_bytes(1 << 20),
    );
    app.connect(("src", "out"), ("dst", "in"));
    SmpPlatform::new()
        .deploy(app.build().unwrap())
        .unwrap()
        .wait()
        .unwrap();

    let trace = collector.drain_sorted();
    let json = export::to_chrome_json(&trace, &collector.names());
    // 50 sends + 50 recvs as complete events, 4 lifecycle instants.
    assert_eq!(json.matches("\"ph\": \"X\"").count(), 100);
    assert_eq!(json.matches("\"ph\": \"i\"").count(), 4);
    assert_eq!(json.matches("\"cat\": \"src\"").count(), 52);

    // Percentiles over the same trace are self-consistent.
    let p = analysis::percentiles(&trace, embera_trace::EventKind::SendEnd);
    assert_eq!(p.count, 50);
    assert!(p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.max);

    // And the text format round-trips the full trace.
    let reparsed = export::from_text(&export::to_text(&trace)).unwrap();
    assert_eq!(reparsed, trace);
}
