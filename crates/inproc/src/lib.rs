//! # embera-inproc — the in-process deterministic backend for EMBera
//!
//! A third deployment target beside `embera-smp` (host threads) and
//! `embera-os21` (simulated MPSoC): every component runs on the
//! *calling* thread under a depth-first, demand-driven scheduler, with
//! plain `VecDeque`s for mailboxes and a logical clock advanced by a
//! fixed cost model. No OS threads, no simulator, no real time — two
//! runs of the same application produce byte-identical reports, which
//! makes this the backend of choice for unit tests and for debugging
//! component logic under a debugger (one stack, no interleaving).
//!
//! The backend exists to demonstrate the runtime/transport split: it
//! contributes only message movement and a scheduling policy, while all
//! observation semantics — introspection service, statistics recording,
//! the error contract, quiescent observability — come verbatim from
//! [`embera::runtime::ComponentRuntime`]. `tests/conformance.rs` in the
//! workspace root pins that the three backends are indistinguishable
//! through the `Ctx` API.
//!
//! ## Scheduling model
//!
//! Components start in deployment order. When a running component
//! blocks in `recv`, the scheduler runs — *to completion* — a
//! not-yet-started component that feeds the parked interface, then any
//! other not-yet-started application component; pending introspection
//! requests are answered between these steps, so a component blocked on
//! an observation reply makes progress even while its target is
//! mid-execution on the stack below. When nothing can produce a
//! message, a timed receive jumps the clock to its deadline and a
//! blocking receive is declared a deadlock (the application fails with
//! a named [`EmberaError::Platform`](embera::EmberaError) error).
//!
//! ## Limitations (inherent to one stack)
//!
//! * A component started to unblock another runs to completion first —
//!   behaviors must terminate or block in `recv` (a `while
//!   !ctx.should_stop()` spin loop never yields and hangs the run).
//! * Mutual request/response between two components is ordering
//!   sensitive: deploy the component that *blocks first* before the one
//!   that queries it. Pipelines (acyclic wait-for graphs) work in any
//!   order.
//! * The paper's polling observer degenerates: application components
//!   typically run to completion before it starts, so it observes the
//!   quiescent tail only. Direct introspection requests (the
//!   conformance suite's pattern) are fully supported.

pub mod platform;
mod transport;

pub use platform::{InprocConfig, InprocPlatform, InprocRunning};
