//! Deployment of EMBera applications onto the calling thread.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use embera::observe::engine::ObsEngine;
use embera::runtime::ComponentRuntime;
use embera::{
    is_observer_component, AppReport, AppSpec, ComponentStats, EmberaError, Platform, RunningApp,
    INTROSPECTION,
};

use crate::transport::{start_component, InprocTransport, Queue, Servicer, Shared, Slot};

/// Configuration of the in-process backend.
#[derive(Debug, Clone)]
pub struct InprocConfig {
    /// False disables all observation (recording + introspection
    /// service), mirroring the other backends' ablation switch.
    pub observe: bool,
}

impl Default for InprocConfig {
    fn default() -> Self {
        InprocConfig { observe: true }
    }
}

/// The in-process deterministic platform (see the crate docs for the
/// scheduling model and its limitations).
#[derive(Debug, Clone, Default)]
pub struct InprocPlatform {
    config: InprocConfig,
}

impl InprocPlatform {
    /// Platform with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Platform with explicit configuration.
    pub fn with_config(config: InprocConfig) -> Self {
        InprocPlatform { config }
    }
}

/// A deployed in-process application. Nothing has executed yet:
/// components run inside [`RunningApp::wait`] on the calling thread.
pub struct InprocRunning {
    app_name: String,
    shared: Rc<Shared>,
    engines: Vec<ObsEngine>,
}

impl Platform for InprocPlatform {
    type Running = InprocRunning;

    fn deploy(&mut self, spec: AppSpec) -> Result<InprocRunning, EmberaError> {
        // 1. One queue per provided interface (data + introspection).
        let mut queues: HashMap<(String, String), Queue> = HashMap::new();
        for c in &spec.components {
            for iface in c.provided.iter().map(String::as_str).chain([INTROSPECTION]) {
                queues.insert((c.name.clone(), iface.to_string()), Queue::default());
            }
        }

        // 2. Resolve required-interface routes, and record who feeds
        //    which inbox for the demand-driven scheduler.
        let index_of: HashMap<&str, usize> = spec
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.as_str(), i))
            .collect();
        let mut routes_by_component: HashMap<String, HashMap<String, Queue>> = HashMap::new();
        let mut producers: HashMap<(String, String), Vec<usize>> = HashMap::new();
        for conn in &spec.connections {
            let target = queues
                .get(&(conn.to.component.clone(), conn.to.interface.clone()))
                .ok_or_else(|| {
                    EmberaError::Validation(format!(
                        "connection target {}::{} has no queue",
                        conn.to.component, conn.to.interface
                    ))
                })?
                .clone();
            routes_by_component
                .entry(conn.from.component.clone())
                .or_default()
                .insert(conn.from.interface.clone(), target);
            if let Some(&from_idx) = index_of.get(conn.from.component.as_str()) {
                producers
                    .entry((conn.to.component.clone(), conn.to.interface.clone()))
                    .or_default()
                    .push(from_idx);
            }
        }

        let observers: Vec<bool> = spec
            .components
            .iter()
            .map(|c| is_observer_component(&c.name))
            .collect();
        let remaining = observers.iter().filter(|o| !**o).count();
        let shared = Rc::new(Shared {
            clock: Cell::new(0),
            // With no application components there is nothing to wait
            // for — start already shut down so an observer exits at once.
            shutdown: Cell::new(remaining == 0),
            remaining: Cell::new(remaining),
            app_done_ns: Cell::new(None),
            errors: RefCell::new(Vec::new()),
            // Pre-size from the component count: every component pushes
            // one slot and one servicer during deployment, so the
            // scheduler tables never reallocate mid-run.
            slots: RefCell::new(Vec::with_capacity(observers.len())),
            servicers: RefCell::new(Vec::with_capacity(observers.len())),
            producers,
            observers: observers.clone(),
            observe: self.config.observe,
        });

        // 3. Build each component's runtime (and its introspection
        //    servicer) over clones of the shared queues.
        let trace = spec.trace.clone();
        let faults = spec.faults.clone();
        let mut engines = Vec::new();
        for (idx, c) in spec.components.into_iter().enumerate() {
            let stats = Arc::new(ComponentStats::new(&c.name, &c.provided, &c.required));
            // No threads, no mailbox structures: accounted memory is the
            // declared stack reservation alone.
            stats.set_memory_bytes(c.stack_bytes);
            let engine = ObsEngine::with_metrics(Arc::clone(&stats), c.metrics.clone());
            engines.push(engine.clone());

            let provided: HashMap<String, Queue> = c
                .provided
                .iter()
                .map(String::as_str)
                .chain([INTROSPECTION])
                .map(|iface| {
                    (
                        iface.to_string(),
                        queues[&(c.name.clone(), iface.to_string())].clone(),
                    )
                })
                .collect();
            let routes = routes_by_component.remove(&c.name).unwrap_or_default();
            let inbox = provided[INTROSPECTION].clone();
            let is_observer = observers[idx];

            let main = InprocTransport {
                idx,
                name: c.name.clone(),
                is_observer,
                account_cpu: true,
                provided: provided.clone(),
                routes: routes.clone(),
                stats: Arc::clone(&stats),
                cpu_ns: 0,
                shared: Rc::clone(&shared),
            };
            let mut runtime = ComponentRuntime::new(
                c.name.clone(),
                c.required.clone(),
                main,
                engine.clone(),
                self.config.observe,
                trace.as_ref().map(|t| t.sink_for(&c.name)),
            );
            runtime.set_restart_policy(c.restart);
            runtime.set_overload_policy(c.overload);
            if let Some(plan) = &faults {
                runtime.set_fault_plan(plan);
            }
            shared.slots.borrow_mut().push(Slot::Unstarted {
                runtime: Box::new(runtime),
                behavior: c.behavior,
            });

            let side = InprocTransport {
                idx,
                name: c.name.clone(),
                is_observer,
                account_cpu: false,
                provided,
                routes,
                stats,
                cpu_ns: 0,
                shared: Rc::clone(&shared),
            };
            shared.servicers.borrow_mut().push(Servicer {
                inbox,
                runtime: RefCell::new(ComponentRuntime::new(
                    c.name,
                    c.required,
                    side,
                    engine,
                    self.config.observe,
                    None,
                )),
            });
        }

        Ok(InprocRunning {
            app_name: spec.name,
            shared,
            engines,
        })
    }
}

impl RunningApp for InprocRunning {
    fn wait(self) -> Result<AppReport, EmberaError> {
        // Start components in deployment order; each nested park may
        // have started later ones already, so re-scan after every run.
        loop {
            let next = {
                let slots = self.shared.slots.borrow();
                (0..slots.len()).find(|&i| matches!(slots[i], Slot::Unstarted { .. }))
            };
            match next {
                Some(i) => start_component(&self.shared, i),
                None => break,
            }
        }
        let wall_time_ns = self
            .shared
            .app_done_ns
            .get()
            .unwrap_or_else(|| self.shared.clock.get());
        self.shared.shutdown.set(true);
        // Slots and servicers hold transports that hold `shared` — clear
        // them to break the Rc cycles before dropping.
        self.shared.slots.borrow_mut().clear();
        self.shared.servicers.borrow_mut().clear();
        let errors = std::mem::take(&mut *self.shared.errors.borrow_mut());
        // Aggregate every originating failure (peers' secondary
        // `Terminated` from the fail-fast drain rank last).
        embera::supervise::fault_result(errors)?;
        Ok(AppReport {
            app_name: self.app_name,
            wall_time_ns,
            components: self
                .engines
                .iter()
                .map(|e| e.full_report(wall_time_ns))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use embera::behavior::behavior_fn;
    use embera::{AppBuilder, ComponentSpec};

    fn pipe_app() -> AppSpec {
        let mut app = AppBuilder::new("pipe");
        app.add(
            ComponentSpec::new(
                "src",
                behavior_fn(|ctx| {
                    for i in 0..100u32 {
                        ctx.send("out", Bytes::copy_from_slice(&i.to_le_bytes()))?;
                    }
                    Ok(())
                }),
            )
            .with_required("out"),
        );
        app.add(
            ComponentSpec::new(
                "dst",
                behavior_fn(|ctx| {
                    for i in 0..100u32 {
                        let b = ctx.recv("in")?;
                        assert_eq!(b.as_ref(), i.to_le_bytes());
                    }
                    Ok(())
                }),
            )
            .with_provided("in"),
        );
        app.connect(("src", "out"), ("dst", "in"));
        app.build().unwrap()
    }

    #[test]
    fn pipeline_delivers_all_messages_in_order() {
        let report = InprocPlatform::new().deploy(pipe_app()).unwrap().wait().unwrap();
        assert_eq!(report.component("src").unwrap().app.total_sends, 100);
        assert_eq!(report.component("dst").unwrap().app.total_receives, 100);
    }

    #[test]
    fn consumer_first_demand_starts_its_producer() {
        // Same pipeline, consumer deployed first: its blocking recv must
        // pull the producer in rather than deadlock.
        let mut app = AppBuilder::new("pull");
        app.add(
            ComponentSpec::new("dst", behavior_fn(|ctx| ctx.recv("in").map(|_| ())))
                .with_provided("in"),
        );
        app.add(
            ComponentSpec::new(
                "src",
                behavior_fn(|ctx| ctx.send("out", Bytes::from_static(b"x"))),
            )
            .with_required("out"),
        );
        app.connect(("src", "out"), ("dst", "in"));
        let report = InprocPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(report.total_receives(), 1);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let r = InprocPlatform::new().deploy(pipe_app()).unwrap().wait().unwrap();
            (
                r.wall_time_ns,
                r.total_sends(),
                r.component("src").unwrap().middleware.send.total_ns,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn genuine_deadlock_is_a_named_error() {
        let mut app = AppBuilder::new("stuck");
        app.add(
            ComponentSpec::new("alone", behavior_fn(|ctx| ctx.recv("in").map(|_| ())))
                .with_provided("in"),
        );
        let err = InprocPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap_err();
        let EmberaError::Platform(msg) = err else { panic!() };
        assert!(msg.contains("deadlock") && msg.contains("alone"), "{msg}");
    }

    #[test]
    fn timed_recv_jumps_the_clock() {
        let mut app = AppBuilder::new("timer");
        app.add(ComponentSpec::new(
            "t",
            behavior_fn(|ctx| {
                assert!(ctx.recv_timeout("in", 5_000)?.is_none());
                assert!(ctx.now_ns() >= 5_000);
                Ok(())
            }),
        )
        .with_provided("in"));
        InprocPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
    }
}
