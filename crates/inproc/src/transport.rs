//! The in-process [`Transport`]: `VecDeque` queues, a logical clock
//! with a fixed deterministic cost model, and a depth-first
//! demand-driven scheduler in place of parking. All observation and
//! `Ctx` logic lives in [`embera::runtime::ComponentRuntime`]; this
//! module only moves messages, advances the clock, and decides which
//! component runs next.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use embera::behavior::Behavior;
use embera::runtime::{ComponentRuntime, Transport};
use embera::{ComponentStats, EmberaError, Message, Work, INTROSPECTION};

/// Deterministic cost model: a send is a queue push plus an envelope
/// hand-over, a receive is a pop; both scale mildly with payload size.
/// The absolute values are arbitrary (this backend models no real
/// platform) but fixed, so reports are reproducible bit-for-bit.
pub(crate) const SEND_BASE_NS: u64 = 200;
pub(crate) const RECV_BASE_NS: u64 = 100;

/// One component's provided-interface queue.
pub(crate) type Queue = Rc<RefCell<VecDeque<Message>>>;

/// Execution state of one deployed component.
pub(crate) enum Slot {
    /// Not started: holds everything needed to run it (boxed so the
    /// `Running`/`Finished` markers stay word-sized).
    Unstarted {
        runtime: Box<ComponentRuntime<InprocTransport>>,
        behavior: Box<dyn Behavior>,
    },
    /// Behavior currently on the stack (possibly parked in `recv`).
    Running,
    /// Behavior returned.
    Finished,
}

/// A per-component introspection servicer: a second [`ComponentRuntime`]
/// over the same queues, engine and stats, used by the scheduler to
/// answer observation requests addressed to a component that is
/// mid-execution deeper on the stack (or long finished). This is the
/// single-threaded equivalent of the other backends' "service at every
/// communication point and while quiescent" guarantee.
pub(crate) struct Servicer {
    /// The component's introspection inbox, peeked to detect pending work.
    pub(crate) inbox: Queue,
    pub(crate) runtime: RefCell<ComponentRuntime<InprocTransport>>,
}

/// Application-wide state shared by every transport clone.
pub(crate) struct Shared {
    /// The logical clock, ns. Advanced only by the cost model and by
    /// timed-receive deadline jumps — never by wall time.
    pub(crate) clock: Cell<u64>,
    pub(crate) shutdown: Cell<bool>,
    /// Non-observer components whose behavior has not finished.
    pub(crate) remaining: Cell<usize>,
    /// Clock value when the last application component finished (the
    /// report's wall time, excluding harness teardown — same convention
    /// as the SMP backend).
    pub(crate) app_done_ns: Cell<Option<u64>>,
    pub(crate) errors: RefCell<Vec<(String, EmberaError)>>,
    /// One slot per component, in deployment order. Populated after
    /// `Rc::new(Shared)` because slots hold transports that hold this.
    pub(crate) slots: RefCell<Vec<Slot>>,
    pub(crate) servicers: RefCell<Vec<Servicer>>,
    /// `(consumer component, provided interface) -> producer slot
    /// indices`, from the connection list: who can feed a parked recv.
    pub(crate) producers: HashMap<(String, String), Vec<usize>>,
    /// Per-slot observer flag (root or regional observer components),
    /// excluded from demand-starts of unrelated components (a polling
    /// loop would not return). Observers are still demand-started when
    /// a parked component waits on an interface they feed — that is
    /// what pulls the observer tree through on this backend.
    pub(crate) observers: Vec<bool>,
    pub(crate) observe: bool,
}

/// Run an unstarted component to completion on the current stack.
/// No-op if it already started. On return the slot is `Finished`.
pub(crate) fn start_component(shared: &Rc<Shared>, idx: usize) {
    let taken = {
        let mut slots = shared.slots.borrow_mut();
        if !matches!(slots[idx], Slot::Unstarted { .. }) {
            return;
        }
        std::mem::replace(&mut slots[idx], Slot::Running)
    };
    let Slot::Unstarted { runtime, behavior } = taken else {
        unreachable!("checked Unstarted under the borrow above")
    };
    // Depth-first: control returns only once this component's behavior
    // has finished (its own parks recurse into the scheduler).
    runtime.run_to_completion(behavior);
}

/// First not-yet-started component connected into `consumer`'s
/// `provided` interface.
fn next_unstarted_producer(shared: &Shared, consumer: &str, provided: &str) -> Option<usize> {
    let producers = shared
        .producers
        .get(&(consumer.to_string(), provided.to_string()))?;
    let slots = shared.slots.borrow();
    producers
        .iter()
        .copied()
        .find(|&i| matches!(slots[i], Slot::Unstarted { .. }))
}

/// First not-yet-started application (non-observer) component.
fn next_unstarted_app_component(shared: &Shared) -> Option<usize> {
    let slots = shared.slots.borrow();
    (0..slots.len())
        .find(|&i| !shared.observers[i] && matches!(slots[i], Slot::Unstarted { .. }))
}

/// Answer every pending introspection request in the application via
/// the per-component servicers. Returns true if any request was
/// answered (progress a parked component may be waiting on).
fn pump_introspection(shared: &Shared) -> bool {
    if !shared.observe {
        return false;
    }
    let mut progressed = false;
    for s in shared.servicers.borrow().iter() {
        let pending = !s.inbox.borrow().is_empty();
        if pending {
            s.runtime.borrow_mut().service_introspection();
            progressed = true;
        }
    }
    progressed
}

pub(crate) struct InprocTransport {
    /// This component's slot index.
    pub(crate) idx: usize,
    pub(crate) name: String,
    pub(crate) is_observer: bool,
    /// True on the component's main runtime, false on its introspection
    /// servicer — only the main flow accounts CPU time into the shared
    /// stats (the servicer would otherwise clobber it with its own).
    pub(crate) account_cpu: bool,
    pub(crate) provided: HashMap<String, Queue>,
    pub(crate) routes: HashMap<String, Queue>,
    pub(crate) stats: Arc<ComponentStats>,
    /// Logical ns this component's own operations have consumed.
    pub(crate) cpu_ns: u64,
    pub(crate) shared: Rc<Shared>,
}

impl InprocTransport {
    fn charge(&mut self, ns: u64) {
        self.shared.clock.set(self.shared.clock.get() + ns);
        self.cpu_ns += ns;
        if self.account_cpu {
            self.stats.set_cpu_time_ns(self.cpu_ns);
        }
    }
}

impl Transport for InprocTransport {
    fn now_ns(&self) -> u64 {
        self.shared.clock.get()
    }

    fn is_shutdown(&self) -> bool {
        self.shared.shutdown.get()
    }

    fn has_route(&self, required: &str) -> bool {
        self.routes.contains_key(required)
    }

    fn has_inbox(&self, provided: &str) -> bool {
        self.provided.contains_key(provided)
    }

    fn push(&mut self, required: &str, msg: Message) -> u64 {
        let ns = SEND_BASE_NS + msg.data_len() as u64 / 8;
        self.charge(ns);
        self.routes[required].borrow_mut().push_back(msg);
        ns
    }

    fn try_pop(&mut self, provided: &str) -> Option<(Message, u64)> {
        let msg = self.provided.get(provided)?.borrow_mut().pop_front()?;
        // Introspection requests are drained by the runtime's observation
        // service, not the application — uncharged, as on the MPSoC
        // backend.
        let ns = if provided == INTROSPECTION {
            0
        } else {
            let ns = RECV_BASE_NS + msg.data_len() as u64 / 16;
            self.charge(ns);
            ns
        };
        Some((msg, ns))
    }

    fn queued_bytes(&self) -> u64 {
        self.provided
            .values()
            .map(|q| q.borrow().iter().map(|m| m.data_len() as u64).sum::<u64>())
            .sum()
    }

    fn park_recv(&mut self, provided: &str, deadline_ns: Option<u64>) {
        // 1. Demand-start: run a not-yet-started producer of the parked
        //    interface to completion.
        if let Some(p) = next_unstarted_producer(&self.shared, &self.name, provided) {
            start_component(&self.shared, p);
            return;
        }
        // 2. Answer pending introspection anywhere — a component blocked
        //    on an observation reply progresses even when its target is
        //    running deeper on this very stack.
        if pump_introspection(&self.shared) {
            return;
        }
        // 3. Any other unstarted application component may transitively
        //    unblock us.
        if let Some(i) = next_unstarted_app_component(&self.shared) {
            start_component(&self.shared, i);
            return;
        }
        // 4. Nothing in the application can produce a message anymore.
        match deadline_ns {
            Some(d) => self.shared.clock.set(self.shared.clock.get().max(d)),
            None => {
                self.shared.errors.borrow_mut().push((
                    self.name.clone(),
                    EmberaError::Platform(format!(
                        "deadlock: component '{}' blocked in recv on '{}' with no \
                         runnable producer (on embera-inproc, deploy a component \
                         that blocks for a response before the component it queries)",
                        self.name, provided
                    )),
                ));
                self.shared.shutdown.set(true);
            }
        }
    }

    fn park_quiescent(&mut self) -> bool {
        // Run-to-completion backend: quiescent observability is provided
        // by this component's servicer (driven from other components'
        // parks), not by a loop of its own — end the service here.
        false
    }

    fn compute(&mut self, work: Work) {
        // Uniform 1 ns/op plus memory traffic at 8 bytes/ns, every class
        // alike: deterministic, not calibrated to any silicon.
        let ns = work.ops + work.mem_bytes / 8;
        if ns > 0 {
            self.charge(ns);
        }
    }

    fn behavior_finished(&mut self, error: Option<EmberaError>) {
        self.shared.slots.borrow_mut()[self.idx] = Slot::Finished;
        let failed = error.is_some();
        if let Some(e) = error {
            self.shared.errors.borrow_mut().push((self.name.clone(), e));
        }
        if !self.is_observer {
            let left = self.shared.remaining.get() - 1;
            self.shared.remaining.set(left);
            if left == 0 {
                self.shared.app_done_ns.set(Some(self.shared.clock.get()));
            }
            if left == 0 || failed {
                // Fail fast, like the other backends: peers blocked in
                // recv drain out with `Terminated`.
                self.shared.shutdown.set(true);
            }
        } else if failed {
            self.shared.shutdown.set(true);
        }
    }

    fn behavior_finished_contained(&mut self, error: EmberaError) {
        // OneForOne containment: record the failure and account the
        // completion, but skip the fail-fast shutdown so peers run on.
        self.shared.slots.borrow_mut()[self.idx] = Slot::Finished;
        self.shared
            .errors
            .borrow_mut()
            .push((self.name.clone(), error));
        if !self.is_observer {
            let left = self.shared.remaining.get() - 1;
            self.shared.remaining.set(left);
            if left == 0 {
                self.shared.app_done_ns.set(Some(self.shared.clock.get()));
                self.shared.shutdown.set(true);
            }
        }
    }

    fn queued_messages(&self) -> u64 {
        self.provided
            .iter()
            .filter(|(iface, _)| iface.as_str() != INTROSPECTION)
            .map(|(_, q)| q.borrow().len() as u64)
            .sum()
    }

    fn delay(&mut self, ns: u64) {
        // Pure latency: the logical clock advances, CPU accounting does
        // not (the component is waiting, not working).
        self.shared.clock.set(self.shared.clock.get() + ns);
    }

    fn inbox_depth(&self, provided: &str) -> u64 {
        self.provided
            .get(provided)
            .map(|q| q.borrow().len() as u64)
            .unwrap_or(0)
    }

    fn drain_inboxes(&mut self) {
        for (iface, q) in &self.provided {
            if iface != INTROSPECTION {
                q.borrow_mut().clear();
            }
        }
    }
}
