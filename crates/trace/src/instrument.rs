//! The tracing decorator: wraps any [`Ctx`] and emits detailed events
//! around every primitive — application code stays untouched.

use bytes::Bytes;

use embera::{Behavior, Ctx, EmberaError, Message, Work};

use crate::collector::TraceHandle;
use crate::event::EventKind;

/// A [`Ctx`] decorator emitting trace events. Wrap a behavior with
/// [`TracedBehavior`] to trace it transparently.
pub struct TracingCtx<'a> {
    inner: &'a mut dyn Ctx,
    handle: &'a TraceHandle,
}

impl<'a> TracingCtx<'a> {
    /// Wrap `inner`, emitting through `handle`.
    pub fn new(inner: &'a mut dyn Ctx, handle: &'a TraceHandle) -> Self {
        TracingCtx { inner, handle }
    }
}

impl Ctx for TracingCtx<'_> {
    fn component(&self) -> &str {
        self.inner.component()
    }

    fn send_message(&mut self, required: &str, msg: Message) -> Result<(), EmberaError> {
        let bytes = msg.data_len() as u64;
        let t0 = self.inner.now_ns();
        self.handle.emit(t0, EventKind::SendStart, bytes, 0);
        let r = self.inner.send_message(required, msg);
        let t1 = self.inner.now_ns();
        self.handle.emit(t1, EventKind::SendEnd, bytes, t1 - t0);
        r
    }

    fn recv_message(&mut self, provided: &str) -> Result<Message, EmberaError> {
        let t0 = self.inner.now_ns();
        let r = self.inner.recv_message(provided);
        let t1 = self.inner.now_ns();
        if let Ok(msg) = &r {
            self.handle
                .emit(t1, EventKind::Recv, msg.data_len() as u64, t1 - t0);
        }
        r
    }

    fn recv_message_timeout(
        &mut self,
        provided: &str,
        timeout_ns: u64,
    ) -> Result<Option<Message>, EmberaError> {
        let t0 = self.inner.now_ns();
        let r = self.inner.recv_message_timeout(provided, timeout_ns);
        let t1 = self.inner.now_ns();
        if let Ok(Some(msg)) = &r {
            self.handle
                .emit(t1, EventKind::Recv, msg.data_len() as u64, t1 - t0);
        }
        r
    }

    fn compute(&mut self, work: Work) {
        let t0 = self.inner.now_ns();
        self.inner.compute(work);
        let t1 = self.inner.now_ns();
        self.handle.emit(t1, EventKind::Compute, work.ops, t1 - t0);
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    fn should_stop(&self) -> bool {
        self.inner.should_stop()
    }

    fn send(&mut self, required: &str, payload: Bytes) -> Result<(), EmberaError> {
        self.send_message(required, Message::Data(payload))
    }
}

/// Wraps a behavior so it runs against a [`TracingCtx`].
pub struct TracedBehavior<B> {
    inner: B,
    handle: TraceHandle,
}

impl<B: Behavior> TracedBehavior<B> {
    /// Trace `inner` through `handle`.
    pub fn new(inner: B, handle: TraceHandle) -> Self {
        TracedBehavior { inner, handle }
    }
}

impl<B: Behavior> Behavior for TracedBehavior<B> {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        self.handle.emit(ctx.now_ns(), EventKind::BehaviorStart, 0, 0);
        let result = {
            let mut traced = TracingCtx::new(ctx, &self.handle);
            self.inner.run(&mut traced)
        };
        self.handle.emit(
            ctx.now_ns(),
            EventKind::BehaviorEnd,
            u64::from(result.is_err()),
            0,
        );
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceCollector;
    use embera::behavior::behavior_fn;
    use embera::{AppBuilder, ComponentSpec, Platform, RunningApp, WorkClass};
    use embera_smp::SmpPlatform;

    #[test]
    fn traced_pipeline_emits_full_event_sequence() {
        let collector = TraceCollector::new(1024);
        let src_handle = collector.register("src");
        let dst_handle = collector.register("dst");

        let mut app = AppBuilder::new("traced");
        app.add(
            ComponentSpec::new(
                "src",
                TracedBehavior::new(
                    behavior_fn(|ctx| {
                        ctx.compute(Work::ops(WorkClass::Control, 10));
                        for _ in 0..5 {
                            ctx.send("out", Bytes::from_static(b"payload"))?;
                        }
                        Ok(())
                    }),
                    src_handle,
                ),
            )
            .with_required("out")
            .with_stack_bytes(1 << 20),
        );
        app.add(
            ComponentSpec::new(
                "dst",
                TracedBehavior::new(
                    behavior_fn(|ctx| {
                        for _ in 0..5 {
                            ctx.recv("in")?;
                        }
                        Ok(())
                    }),
                    dst_handle,
                ),
            )
            .with_provided("in")
            .with_stack_bytes(1 << 20),
        );
        app.connect(("src", "out"), ("dst", "in"));
        SmpPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();

        let trace = collector.drain_sorted();
        let count = |k: EventKind| trace.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(EventKind::BehaviorStart), 2);
        assert_eq!(count(EventKind::BehaviorEnd), 2);
        assert_eq!(count(EventKind::SendStart), 5);
        assert_eq!(count(EventKind::SendEnd), 5);
        assert_eq!(count(EventKind::Recv), 5);
        assert_eq!(count(EventKind::Compute), 1);
        // Timestamps are monotone within the sorted trace.
        assert!(trace.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // Send carries the payload size.
        let send = trace.iter().find(|e| e.kind == EventKind::SendEnd).unwrap();
        assert_eq!(send.a, 7);
    }
}
