//! Bridge to the runtime's first-class tracing hooks.
//!
//! The component runtime emits [`embera::TraceEventKind`] events through
//! an [`embera::TraceSink`]; this module maps them onto this crate's
//! [`EventKind`] vocabulary and lets a [`TraceCollector`] act as the
//! per-application sink factory. Unlike the [`TracingCtx`] decorator,
//! first-class tracing also sees runtime-internal activity — notably
//! [`EventKind::ObsServed`], the introspection requests the runtime
//! answers on the component's behalf.
//!
//! [`TracingCtx`]: crate::instrument::TracingCtx

use embera::{TraceConfig, TraceEventKind, TraceSink};

use crate::collector::{TraceCollector, TraceHandle};
use crate::event::EventKind;

/// Collector-side kind for a runtime-side kind (one-to-one).
pub fn map_kind(kind: TraceEventKind) -> EventKind {
    match kind {
        TraceEventKind::BehaviorStart => EventKind::BehaviorStart,
        TraceEventKind::BehaviorEnd => EventKind::BehaviorEnd,
        TraceEventKind::SendStart => EventKind::SendStart,
        TraceEventKind::SendEnd => EventKind::SendEnd,
        TraceEventKind::Recv => EventKind::Recv,
        TraceEventKind::Compute => EventKind::Compute,
        TraceEventKind::ObsServed => EventKind::ObsServed,
        TraceEventKind::BehaviorPanic => EventKind::BehaviorPanic,
        TraceEventKind::Restart => EventKind::Restart,
        TraceEventKind::FaultInjected => EventKind::FaultInjected,
        TraceEventKind::Shed => EventKind::Shed,
    }
}

impl TraceSink for TraceHandle {
    fn emit(&self, ts_ns: u64, kind: TraceEventKind, a: u64, b: u64) {
        TraceHandle::emit(self, ts_ns, map_kind(kind), a, b);
    }
}

impl TraceCollector {
    /// A [`TraceConfig`] registering one ring per deployed component on
    /// this collector. Attach it with
    /// [`AppBuilder::with_tracing`](embera::AppBuilder::with_tracing):
    ///
    /// ```
    /// # use embera::AppBuilder;
    /// # use embera_trace::TraceCollector;
    /// let collector = TraceCollector::default();
    /// let mut app = AppBuilder::new("traced");
    /// app.with_tracing(collector.trace_config());
    /// ```
    pub fn trace_config(&self) -> TraceConfig {
        let collector = self.clone();
        TraceConfig::new(move |name| Box::new(collector.register(name)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use embera::behavior::behavior_fn;
    use embera::{AppBuilder, ComponentSpec, Platform, RunningApp};
    use embera_smp::SmpPlatform;

    #[test]
    fn first_class_tracing_captures_a_run() {
        let collector = TraceCollector::default();
        let mut app = AppBuilder::new("traced");
        app.add(
            ComponentSpec::new(
                "src",
                behavior_fn(|ctx| ctx.send("out", Bytes::from_static(b"payload"))),
            )
            .with_required("out")
            .with_stack_bytes(1 << 20),
        );
        app.add(
            ComponentSpec::new("dst", behavior_fn(|ctx| ctx.recv("in").map(|_| ())))
                .with_provided("in")
                .with_stack_bytes(1 << 20),
        );
        app.connect(("src", "out"), ("dst", "in"));
        app.with_tracing(collector.trace_config());
        SmpPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();

        let trace = collector.drain_sorted();
        let count = |k: EventKind| trace.iter().filter(|e| e.kind == k).count();
        // Two components, full lifecycle brackets each.
        assert_eq!(count(EventKind::BehaviorStart), 2);
        assert_eq!(count(EventKind::BehaviorEnd), 2);
        // One data send, one data receive.
        assert_eq!(count(EventKind::SendStart), 1);
        assert_eq!(count(EventKind::SendEnd), 1);
        assert_eq!(count(EventKind::Recv), 1);
        // Both components registered by name through the factory.
        let mut names = collector.names();
        names.sort();
        assert_eq!(names, vec!["dst", "src"]);
    }
}
