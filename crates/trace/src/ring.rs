//! A bounded lock-free single-producer single-consumer ring buffer.
//!
//! Built from first principles (in the style of *Rust Atomics and Locks*
//! ch. 5): a fixed slot array, a head index owned by the consumer and a
//! tail index owned by the producer, synchronized with acquire/release
//! pairs. Pushing never blocks; when the ring is full the event is
//! dropped and counted, because tracing must never stall the traced
//! component.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

struct RingInner<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to read; owned by the consumer, read by the producer.
    head: AtomicUsize,
    /// Next slot to write; owned by the producer, read by the consumer.
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: the ring is safe to share across threads because every slot is
// accessed by at most one side at a time: the producer only writes slots
// in [tail, head+capacity) and publishes them with a release store of
// `tail`; the consumer only reads slots in [head, tail) after an acquire
// load of `tail`.
unsafe impl<T: Send> Send for RingInner<T> {}
unsafe impl<T: Send> Sync for RingInner<T> {}

/// Producer half of the ring.
pub struct Producer<T> {
    inner: Arc<RingInner<T>>,
}

/// Consumer half of the ring.
pub struct Consumer<T> {
    inner: Arc<RingInner<T>>,
}

/// A bounded SPSC ring; [`SpscRing::split`] yields the two halves.
///
/// ```
/// use embera_trace::SpscRing;
///
/// let (producer, consumer) = SpscRing::new(4).split();
/// assert!(producer.push(1));
/// assert!(producer.push(2));
/// assert_eq!(consumer.pop(), Some(1));
/// assert_eq!(consumer.drain(), vec![2]);
/// assert_eq!(consumer.pop(), None);
/// ```
pub struct SpscRing<T> {
    inner: Arc<RingInner<T>>,
}

impl<T> SpscRing<T> {
    /// Ring with room for `capacity` items (must be ≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpscRing {
            inner: Arc::new(RingInner {
                slots,
                head: AtomicUsize::new(0),
                tail: AtomicUsize::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Split into producer and consumer halves.
    pub fn split(self) -> (Producer<T>, Consumer<T>) {
        (
            Producer {
                inner: Arc::clone(&self.inner),
            },
            Consumer { inner: self.inner },
        )
    }
}

impl<T> Producer<T> {
    /// Push an item; returns `false` (and counts a drop) when full.
    pub fn push(&self, item: T) -> bool {
        let inner = &*self.inner;
        let tail = inner.tail.load(Ordering::Relaxed);
        let head = inner.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= inner.slots.len() {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let idx = tail % inner.slots.len();
        // SAFETY: slot `idx` is outside [head, tail), so the consumer is
        // not reading it; we are the only producer.
        unsafe {
            (*inner.slots[idx].get()).write(item);
        }
        inner.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

impl<T> Consumer<T> {
    /// Pop the oldest item, if any.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.load(Ordering::Relaxed);
        let tail = inner.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let idx = head % inner.slots.len();
        // SAFETY: slot `idx` is inside [head, tail): the producer wrote
        // and published it and will not touch it until we advance head.
        let item = unsafe { (*inner.slots[idx].get()).assume_init_read() };
        inner.head.store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// Drain everything currently visible.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(item) = self.pop() {
            out.push(item);
        }
        out
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        let inner = &*self.inner;
        inner
            .tail
            .load(Ordering::Acquire)
            .wrapping_sub(inner.head.load(Ordering::Relaxed))
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for RingInner<T> {
    fn drop(&mut self) {
        // Drop any unconsumed items.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            let idx = i % self.slots.len();
            // SAFETY: exclusive access in Drop; [head, tail) holds
            // initialized items.
            unsafe {
                (*self.slots[idx].get()).assume_init_drop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let (p, c) = SpscRing::new(8).split();
        for i in 0..5 {
            assert!(p.push(i));
        }
        for i in 0..5 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let (p, c) = SpscRing::new(2).split();
        assert!(p.push(1));
        assert!(p.push(2));
        assert!(!p.push(3));
        assert_eq!(p.dropped(), 1);
        assert_eq!(c.drain(), vec![1, 2]);
        // Space again after drain.
        assert!(p.push(4));
    }

    #[test]
    fn wraps_around_many_times() {
        let (p, c) = SpscRing::new(3).split();
        for i in 0..1000 {
            assert!(p.push(i));
            assert_eq!(c.pop(), Some(i));
        }
    }

    #[test]
    fn concurrent_producer_consumer_preserves_sequence() {
        let (p, c) = SpscRing::new(64).split();
        let total = 100_000u64;
        let producer = std::thread::spawn(move || {
            let mut sent = 0u64;
            let mut i = 0u64;
            while i < total {
                if p.push(i) {
                    sent += 1;
                    i += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            sent
        });
        let mut expected = 0u64;
        while expected < total {
            if let Some(v) = c.pop() {
                assert_eq!(v, expected, "sequence must be gapless and ordered");
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        assert_eq!(producer.join().unwrap(), total);
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        // Use Arc to detect leaks: refcount must return to 1.
        let tracked = Arc::new(());
        {
            let (p, _c) = SpscRing::new(8).split();
            for _ in 0..5 {
                p.push(Arc::clone(&tracked));
            }
        }
        assert_eq!(Arc::strong_count(&tracked), 1);
    }
}
