//! Trace event records.

use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Behavior entered `run`.
    BehaviorStart,
    /// Behavior returned from `run`.
    BehaviorEnd,
    /// A `send` primitive began; `a` = payload bytes.
    SendStart,
    /// The `send` completed; `a` = payload bytes, `b` = duration ns.
    SendEnd,
    /// A `receive` returned a message; `a` = payload bytes, `b` =
    /// duration ns of the primitive.
    Recv,
    /// A compute annotation; `a` = abstract ops, `b` = duration ns
    /// (virtual platforms) or 0 (SMP).
    Compute,
    /// An observation request was served.
    ObsServed,
    /// A behavior panic was contained by the runtime.
    BehaviorPanic,
    /// Supervision re-ran a failed behavior; `a` = attempt number
    /// (1-based), `b` = backoff ns.
    Restart,
    /// The fault-injection plan fired; `a` = action code (0 drop,
    /// 1 corrupt, 2 delay), `b` = targeted payload bytes.
    FaultInjected,
    /// An overload policy shed a message; `a` = reason code (0
    /// queue-bound drop-oldest, 1 deadline expired), `b` = payload
    /// bytes of the shed message.
    Shed,
    /// Application-defined event; `a`/`b` free.
    User(u16),
}

/// One trace record. 32 bytes, `Copy`, cheap to move through rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Platform timestamp, ns.
    pub ts_ns: u64,
    /// Component id assigned by the collector.
    pub component: u32,
    /// Event kind.
    pub kind: EventKind,
    /// Kind-specific payload.
    pub a: u64,
    /// Kind-specific payload.
    pub b: u64,
}

impl TraceEvent {
    /// Construct an event.
    pub fn new(ts_ns: u64, component: u32, kind: EventKind, a: u64, b: u64) -> Self {
        TraceEvent {
            ts_ns,
            component,
            kind,
            a,
            b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_is_small_and_copy() {
        // Keep the record compact: rings move these by value.
        assert!(std::mem::size_of::<TraceEvent>() <= 40);
        let e = TraceEvent::new(1, 2, EventKind::SendEnd, 3, 4);
        let f = e; // Copy
        assert_eq!(e, f);
    }
}
