//! The trace collector: per-component rings feeding one global trace.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::{EventKind, TraceEvent};
use crate::ring::{Consumer, Producer, SpscRing};

/// Default per-component ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

/// Producer handle given to one component (one producer per ring keeps
/// the SPSC contract).
pub struct TraceHandle {
    component_id: u32,
    producer: Producer<TraceEvent>,
}

impl TraceHandle {
    /// Emit an event.
    pub fn emit(&self, ts_ns: u64, kind: EventKind, a: u64, b: u64) {
        self.producer
            .push(TraceEvent::new(ts_ns, self.component_id, kind, a, b));
    }

    /// Component id this handle writes as.
    pub fn component_id(&self) -> u32 {
        self.component_id
    }

    /// Events dropped on this component's ring.
    pub fn dropped(&self) -> u64 {
        self.producer.dropped()
    }
}

struct Registered {
    name: String,
    consumer: Consumer<TraceEvent>,
}

/// Collects traces from many components. Cloneable; clones share state.
#[derive(Clone)]
pub struct TraceCollector {
    inner: Arc<Mutex<Vec<Registered>>>,
    ring_capacity: usize,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new(DEFAULT_RING_CAPACITY)
    }
}

impl TraceCollector {
    /// Collector whose component rings hold `ring_capacity` events.
    pub fn new(ring_capacity: usize) -> Self {
        TraceCollector {
            inner: Arc::new(Mutex::new(Vec::new())),
            ring_capacity,
        }
    }

    /// Register a component; returns its producer handle.
    pub fn register(&self, name: impl Into<String>) -> TraceHandle {
        let (producer, consumer) = SpscRing::new(self.ring_capacity).split();
        let mut inner = self.inner.lock();
        let component_id = inner.len() as u32;
        inner.push(Registered {
            name: name.into(),
            consumer,
        });
        TraceHandle {
            component_id,
            producer,
        }
    }

    /// Component name for an id.
    pub fn name_of(&self, id: u32) -> Option<String> {
        self.inner.lock().get(id as usize).map(|r| r.name.clone())
    }

    /// All registered component names, id order.
    pub fn names(&self) -> Vec<String> {
        self.inner.lock().iter().map(|r| r.name.clone()).collect()
    }

    /// Drain every ring and return the merged trace sorted by timestamp
    /// (ties broken by component id for determinism).
    pub fn drain_sorted(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock();
        let mut all = Vec::new();
        for r in inner.iter() {
            all.extend(r.consumer.drain());
        }
        all.sort_by_key(|e| (e.ts_ns, e.component, kind_rank(e.kind)));
        all
    }
}

fn kind_rank(k: EventKind) -> u8 {
    match k {
        EventKind::BehaviorStart => 0,
        EventKind::SendStart => 1,
        EventKind::SendEnd => 2,
        EventKind::Recv => 3,
        EventKind::Compute => 4,
        EventKind::ObsServed => 5,
        EventKind::FaultInjected => 6,
        EventKind::Shed => 7,
        EventKind::BehaviorPanic => 8,
        EventKind::Restart => 9,
        EventKind::User(_) => 10,
        EventKind::BehaviorEnd => 11,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_sequential_ids() {
        let c = TraceCollector::new(16);
        let a = c.register("Fetch");
        let b = c.register("IDCT_1");
        assert_eq!(a.component_id(), 0);
        assert_eq!(b.component_id(), 1);
        assert_eq!(c.names(), vec!["Fetch", "IDCT_1"]);
        assert_eq!(c.name_of(1).unwrap(), "IDCT_1");
        assert!(c.name_of(9).is_none());
    }

    #[test]
    fn drain_merges_and_sorts_across_components() {
        let c = TraceCollector::new(16);
        let a = c.register("a");
        let b = c.register("b");
        b.emit(20, EventKind::Recv, 0, 0);
        a.emit(10, EventKind::SendStart, 5, 0);
        a.emit(30, EventKind::SendEnd, 5, 20);
        let trace = c.drain_sorted();
        let ts: Vec<u64> = trace.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![10, 20, 30]);
        // Second drain is empty.
        assert!(c.drain_sorted().is_empty());
    }

    #[test]
    fn concurrent_emission_from_threads() {
        let c = TraceCollector::new(8192);
        let handles: Vec<_> = (0..4)
            .map(|i| c.register(format!("c{i}")))
            .map(|h| {
                std::thread::spawn(move || {
                    for t in 0..1000u64 {
                        h.emit(t, EventKind::Compute, t, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let trace = c.drain_sorted();
        assert_eq!(trace.len(), 4000);
        assert!(trace.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }
}
