//! Timeline analysis over collected traces.

use std::collections::HashMap;

use crate::event::{EventKind, TraceEvent};

/// Per-component activity summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ComponentActivity {
    /// Component id.
    pub component: u32,
    /// First and last event timestamps.
    pub first_ts: u64,
    /// Last event timestamp.
    pub last_ts: u64,
    /// Number of sends / total send time.
    pub sends: u64,
    /// Total time in send primitives, ns.
    pub send_ns: u64,
    /// Number of receives.
    pub recvs: u64,
    /// Total time in receive primitives, ns.
    pub recv_ns: u64,
    /// Number of compute sections.
    pub computes: u64,
    /// Total compute time, ns (0 on the SMP backend where compute is
    /// un-annotated wall time).
    pub compute_ns: u64,
    /// Total bytes sent.
    pub bytes_sent: u64,
}

impl ComponentActivity {
    /// Active span of the component, ns.
    pub fn span_ns(&self) -> u64 {
        self.last_ts.saturating_sub(self.first_ts)
    }

    /// Fraction of the span spent in instrumented activity (send + recv
    /// + compute), in [0, 1]; 0 for an empty span.
    pub fn utilization(&self) -> f64 {
        let span = self.span_ns();
        if span == 0 {
            return 0.0;
        }
        let busy = self.send_ns + self.recv_ns + self.compute_ns;
        (busy as f64 / span as f64).min(1.0)
    }
}

/// Duration percentiles of one event kind.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DurationPercentiles {
    /// Number of samples.
    pub count: u64,
    /// 50th percentile, ns.
    pub p50: u64,
    /// 90th percentile, ns.
    pub p90: u64,
    /// 99th percentile, ns.
    pub p99: u64,
    /// Maximum, ns.
    pub max: u64,
}

/// Compute percentiles of the durations (`b` field) of all events of
/// `kind`, nearest-rank method.
pub fn percentiles(events: &[TraceEvent], kind: EventKind) -> DurationPercentiles {
    let mut durs: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == kind)
        .map(|e| e.b)
        .collect();
    if durs.is_empty() {
        return DurationPercentiles::default();
    }
    durs.sort_unstable();
    let rank = |p: f64| -> u64 {
        let idx = ((p / 100.0 * durs.len() as f64).ceil() as usize).clamp(1, durs.len());
        durs[idx - 1]
    };
    DurationPercentiles {
        count: durs.len() as u64,
        p50: rank(50.0),
        p90: rank(90.0),
        p99: rank(99.0),
        max: *durs.last().expect("non-empty"),
    }
}

/// Whole-trace statistics.
#[derive(Debug, Clone, Default)]
pub struct TimelineStats {
    /// Per-component summaries, keyed by component id.
    pub components: HashMap<u32, ComponentActivity>,
    /// Total events analyzed.
    pub events: u64,
    /// Trace duration (max ts − min ts), ns.
    pub duration_ns: u64,
}

impl TimelineStats {
    /// Analyze a (not necessarily sorted) trace.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut components: HashMap<u32, ComponentActivity> = HashMap::new();
        let mut min_ts = u64::MAX;
        let mut max_ts = 0u64;
        for e in events {
            min_ts = min_ts.min(e.ts_ns);
            max_ts = max_ts.max(e.ts_ns);
            let c = components.entry(e.component).or_insert_with(|| {
                ComponentActivity {
                    component: e.component,
                    first_ts: u64::MAX,
                    ..Default::default()
                }
            });
            c.first_ts = c.first_ts.min(e.ts_ns);
            c.last_ts = c.last_ts.max(e.ts_ns);
            match e.kind {
                EventKind::SendEnd => {
                    c.sends += 1;
                    c.send_ns += e.b;
                    c.bytes_sent += e.a;
                }
                EventKind::Recv => {
                    c.recvs += 1;
                    c.recv_ns += e.b;
                }
                EventKind::Compute => {
                    c.computes += 1;
                    c.compute_ns += e.b;
                }
                _ => {}
            }
        }
        TimelineStats {
            events: events.len() as u64,
            duration_ns: if events.is_empty() {
                0
            } else {
                max_ts - min_ts
            },
            components,
        }
    }

    /// Render a compact text table (one row per component).
    pub fn format_table(&self, names: &[String]) -> String {
        let mut out = String::from(
            "component        sends  send_ms  recvs  recv_ms  computes  compute_ms  util%\n",
        );
        let mut ids: Vec<&u32> = self.components.keys().collect();
        ids.sort();
        for id in ids {
            let c = &self.components[id];
            let name = names
                .get(*id as usize)
                .cloned()
                .unwrap_or_else(|| format!("#{id}"));
            out.push_str(&format!(
                "{:<16} {:>6} {:>8.2} {:>6} {:>8.2} {:>9} {:>11.2} {:>6.1}\n",
                name,
                c.sends,
                c.send_ns as f64 / 1e6,
                c.recvs,
                c.recv_ns as f64 / 1e6,
                c.computes,
                c.compute_ns as f64 / 1e6,
                c.utilization() * 100.0,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn ev(ts: u64, c: u32, kind: EventKind, a: u64, b: u64) -> TraceEvent {
        TraceEvent::new(ts, c, kind, a, b)
    }

    #[test]
    fn aggregates_per_component() {
        let events = vec![
            ev(0, 0, EventKind::BehaviorStart, 0, 0),
            ev(10, 0, EventKind::SendEnd, 100, 5),
            ev(20, 0, EventKind::SendEnd, 200, 7),
            ev(30, 1, EventKind::Recv, 100, 3),
            ev(90, 1, EventKind::Compute, 1000, 50),
            ev(100, 0, EventKind::BehaviorEnd, 0, 0),
        ];
        let stats = TimelineStats::from_events(&events);
        assert_eq!(stats.events, 6);
        assert_eq!(stats.duration_ns, 100);
        let c0 = &stats.components[&0];
        assert_eq!(c0.sends, 2);
        assert_eq!(c0.send_ns, 12);
        assert_eq!(c0.bytes_sent, 300);
        assert_eq!(c0.span_ns(), 100);
        let c1 = &stats.components[&1];
        assert_eq!(c1.recvs, 1);
        assert_eq!(c1.computes, 1);
        assert!((c1.utilization() - 53.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let events: Vec<TraceEvent> = (1..=100)
            .map(|i| ev(i, 0, EventKind::SendEnd, 0, i))
            .collect();
        let p = percentiles(&events, EventKind::SendEnd);
        assert_eq!(p.count, 100);
        assert_eq!(p.p50, 50);
        assert_eq!(p.p90, 90);
        assert_eq!(p.p99, 99);
        assert_eq!(p.max, 100);
        // Other kinds are excluded.
        assert_eq!(percentiles(&events, EventKind::Recv).count, 0);
    }

    #[test]
    fn empty_trace_is_fine() {
        let stats = TimelineStats::from_events(&[]);
        assert_eq!(stats.events, 0);
        assert_eq!(stats.duration_ns, 0);
        assert!(stats.components.is_empty());
    }

    #[test]
    fn table_formatting_includes_names() {
        let events = vec![ev(10, 0, EventKind::SendEnd, 1, 1)];
        let stats = TimelineStats::from_events(&events);
        let table = stats.format_table(&["Fetch".to_string()]);
        assert!(table.contains("Fetch"));
        assert!(table.lines().count() >= 2);
    }
}
