//! Line-oriented trace export and re-import.
//!
//! Format: `ts component kind a b`, one event per line, `kind` as a
//! stable token (`user:<n>` for application events).

use crate::event::{EventKind, TraceEvent};

fn kind_token(k: EventKind) -> String {
    match k {
        EventKind::BehaviorStart => "behavior_start".into(),
        EventKind::BehaviorEnd => "behavior_end".into(),
        EventKind::SendStart => "send_start".into(),
        EventKind::SendEnd => "send_end".into(),
        EventKind::Recv => "recv".into(),
        EventKind::Compute => "compute".into(),
        EventKind::ObsServed => "obs_served".into(),
        EventKind::BehaviorPanic => "behavior_panic".into(),
        EventKind::Restart => "restart".into(),
        EventKind::FaultInjected => "fault_injected".into(),
        EventKind::Shed => "shed".into(),
        EventKind::User(n) => format!("user:{n}"),
    }
}

fn parse_kind(tok: &str) -> Result<EventKind, String> {
    Ok(match tok {
        "behavior_start" => EventKind::BehaviorStart,
        "behavior_end" => EventKind::BehaviorEnd,
        "send_start" => EventKind::SendStart,
        "send_end" => EventKind::SendEnd,
        "recv" => EventKind::Recv,
        "compute" => EventKind::Compute,
        "obs_served" => EventKind::ObsServed,
        "behavior_panic" => EventKind::BehaviorPanic,
        "restart" => EventKind::Restart,
        "fault_injected" => EventKind::FaultInjected,
        "shed" => EventKind::Shed,
        other => {
            let Some(n) = other.strip_prefix("user:") else {
                return Err(format!("unknown event kind '{other}'"));
            };
            EventKind::User(n.parse().map_err(|e| format!("bad user id: {e}"))?)
        }
    })
}

/// Serialize events to the text format.
pub fn to_text(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "{} {} {} {} {}\n",
            e.ts_ns,
            e.component,
            kind_token(e.kind),
            e.a,
            e.b
        ));
    }
    out
}

/// Parse the text format back into events.
pub fn from_text(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 5 {
            return Err(format!("line {}: expected 5 fields", lineno + 1));
        }
        let num = |s: &str| -> Result<u64, String> {
            s.parse().map_err(|e| format!("line {}: {e}", lineno + 1))
        };
        out.push(TraceEvent {
            ts_ns: num(parts[0])?,
            component: num(parts[1])? as u32,
            kind: parse_kind(parts[2]).map_err(|e| format!("line {}: {e}", lineno + 1))?,
            a: num(parts[3])?,
            b: num(parts[4])?,
        });
    }
    Ok(out)
}

/// Serialize events into the Chrome trace-event JSON format
/// (`chrome://tracing` / Perfetto "JSON Array Format"): send/recv/
/// compute become complete events (`ph: "X"`) on one row per component,
/// lifecycle markers become instants. Timestamps are microseconds.
pub fn to_chrome_json(events: &[TraceEvent], names: &[String]) -> String {
    let name_of = |id: u32| -> String {
        names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("component-{id}"))
    };
    let mut out = String::from("[\n");
    let mut first = true;
    for e in events {
        let (label, dur_ns, instant) = match e.kind {
            EventKind::SendEnd => (format!("send {}B", e.a), e.b, false),
            EventKind::Recv => (format!("recv {}B", e.a), e.b, false),
            EventKind::Compute => (format!("compute {} ops", e.a), e.b, false),
            EventKind::BehaviorStart => ("behavior_start".to_string(), 0, true),
            EventKind::BehaviorEnd => ("behavior_end".to_string(), 0, true),
            EventKind::ObsServed => ("obs_served".to_string(), 0, true),
            EventKind::BehaviorPanic => ("behavior_panic".to_string(), 0, true),
            EventKind::Restart => (format!("restart #{}", e.a), 0, true),
            EventKind::FaultInjected => ("fault_injected".to_string(), 0, true),
            EventKind::Shed => ("shed".to_string(), 0, true),
            EventKind::User(n) => (format!("user:{n}"), e.b, e.b == 0),
            EventKind::SendStart => continue, // folded into SendEnd
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ts_us = e.ts_ns as f64 / 1e3;
        if instant {
            out.push_str(&format!(
                "  {{\"name\": \"{label}\", \"ph\": \"i\", \"ts\": {ts_us:.3},                  \"pid\": 1, \"tid\": {}, \"s\": \"t\", \"cat\": \"{}\"}}",
                e.component,
                name_of(e.component)
            ));
        } else {
            // Complete events carry their start timestamp.
            let start_us = (e.ts_ns.saturating_sub(dur_ns)) as f64 / 1e3;
            out.push_str(&format!(
                "  {{\"name\": \"{label}\", \"ph\": \"X\", \"ts\": {start_us:.3},                  \"dur\": {:.3}, \"pid\": 1, \"tid\": {}, \"cat\": \"{}\"}}",
                dur_ns as f64 / 1e3,
                e.component,
                name_of(e.component)
            ));
        }
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_kind() {
        let events = vec![
            TraceEvent::new(1, 0, EventKind::BehaviorStart, 0, 0),
            TraceEvent::new(2, 0, EventKind::SendStart, 10, 0),
            TraceEvent::new(3, 0, EventKind::SendEnd, 10, 1),
            TraceEvent::new(4, 1, EventKind::Recv, 10, 2),
            TraceEvent::new(5, 1, EventKind::Compute, 99, 3),
            TraceEvent::new(6, 1, EventKind::ObsServed, 0, 0),
            TraceEvent::new(7, 1, EventKind::User(42), 1, 2),
            TraceEvent::new(8, 1, EventKind::BehaviorPanic, 0, 0),
            TraceEvent::new(9, 1, EventKind::Restart, 1, 1_000),
            TraceEvent::new(10, 0, EventKind::FaultInjected, 0, 64),
            TraceEvent::new(11, 0, EventKind::Shed, 1, 512),
            TraceEvent::new(12, 0, EventKind::BehaviorEnd, 0, 0),
        ];
        let text = to_text(&events);
        assert_eq!(from_text(&text).unwrap(), events);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# a comment\n\n1 0 recv 2 3\n";
        let events = from_text(text).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Recv);
    }

    #[test]
    fn chrome_export_emits_valid_shapes() {
        let events = vec![
            TraceEvent::new(1_000, 0, EventKind::BehaviorStart, 0, 0),
            TraceEvent::new(5_000, 0, EventKind::SendEnd, 256, 3_000),
            TraceEvent::new(6_000, 1, EventKind::Recv, 256, 500),
            TraceEvent::new(7_000, 0, EventKind::BehaviorEnd, 0, 0),
        ];
        let json = to_chrome_json(&events, &["src".into(), "dst".into()]);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\": \"X\""), "complete events present");
        assert!(json.contains("\"ph\": \"i\""), "instants present");
        assert!(json.contains("send 256B"));
        assert!(json.contains("\"cat\": \"src\""));
        // SendStart events are folded away.
        assert!(!json.contains("send_start"));
        // Balanced braces (crude JSON sanity).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count()
        );
    }

    #[test]
    fn malformed_lines_reported_with_number() {
        let err = from_text("1 0 recv 2\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = from_text("1 0 nope 2 3\n").unwrap_err();
        assert!(err.contains("unknown event kind"), "{err}");
    }
}
