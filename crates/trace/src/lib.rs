//! # embera-trace — event-trace support for EMBera
//!
//! The paper closes with: "The current approach for observing is mainly
//! based on collecting summarized information about the execution.
//! However, this information does not give a detailed view of the
//! application behavior. For this reason, we plan to implement an
//! event-trace-support for collecting detailed events." (§6)
//!
//! This crate implements that announced extension:
//!
//! * [`TraceEvent`] — compact timestamped records of sends, receives,
//!   compute sections and lifecycle transitions,
//! * [`SpscRing`] — a bounded lock-free single-producer single-consumer
//!   ring buffer, so tracing costs a few atomic operations per event and
//!   never blocks the traced component,
//! * [`TraceCollector`] — registers per-component rings and drains them
//!   into a global, time-ordered trace,
//! * [`TracingCtx`] — a decorator over any [`embera::Ctx`] that emits
//!   events around every primitive without touching application code
//!   (preserving the paper's "without modifying its code" property),
//! * [`analysis`] — timeline statistics: per-component activity spans,
//!   communication matrix, utilization,
//! * [`export`] — a line-oriented text format with round-trip parsing.

pub mod analysis;
pub mod collector;
pub mod event;
pub mod export;
pub mod instrument;
pub mod ring;

pub use analysis::{ComponentActivity, TimelineStats};
pub use collector::{TraceCollector, TraceHandle};
pub use event::{EventKind, TraceEvent};
pub use instrument::TracingCtx;
pub use ring::SpscRing;
