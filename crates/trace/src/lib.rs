//! # embera-trace — event-trace support for EMBera
//!
//! The paper closes with: "The current approach for observing is mainly
//! based on collecting summarized information about the execution.
//! However, this information does not give a detailed view of the
//! application behavior. For this reason, we plan to implement an
//! event-trace-support for collecting detailed events." (§6)
//!
//! This crate implements that announced extension:
//!
//! * [`TraceEvent`] — compact timestamped records of sends, receives,
//!   compute sections and lifecycle transitions,
//! * [`SpscRing`] — a bounded lock-free single-producer single-consumer
//!   ring buffer, so tracing costs a few atomic operations per event and
//!   never blocks the traced component,
//! * [`TraceCollector`] — registers per-component rings and drains them
//!   into a global, time-ordered trace,
//! * [`sink`] — the bridge to the runtime's first-class tracing: a
//!   [`TraceCollector`] doubles as the [`embera::TraceConfig`] sink
//!   factory (see [`TraceCollector::trace_config`]), so tracing is a
//!   one-line application opt-in and also captures runtime-internal
//!   events such as served introspection requests,
//! * [`TracingCtx`] — the original decorator over any [`embera::Ctx`],
//!   retained for tracing a single behavior ad hoc without touching the
//!   application description,
//! * [`analysis`] — timeline statistics: per-component activity spans,
//!   communication matrix, utilization,
//! * [`export`] — a line-oriented text format with round-trip parsing,
//! * [`stream`] — incremental export during the run: a [`TraceStream`]
//!   background thread drains the rings into a pluggable
//!   [`StreamEndpoint`] (file or channel) instead of one post-mortem
//!   dump.

pub mod analysis;
pub mod collector;
pub mod event;
pub mod export;
pub mod instrument;
pub mod ring;
pub mod sink;
pub mod stream;

pub use analysis::{ComponentActivity, TimelineStats};
pub use collector::{TraceCollector, TraceHandle};
pub use event::{EventKind, TraceEvent};
pub use instrument::TracingCtx;
pub use ring::SpscRing;
pub use stream::{ChannelEndpoint, FileEndpoint, StreamEndpoint, StreamStats, TraceStream};
