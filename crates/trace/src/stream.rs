//! Streaming trace export: drain the per-component rings incrementally
//! to a pluggable endpoint *during* the run, instead of one post-mortem
//! dump.
//!
//! A [`TraceStream`] owns a background thread that periodically calls
//! [`TraceCollector::drain_sorted`] and hands each non-empty batch to a
//! [`StreamEndpoint`]. Within a batch events are time-ordered; batches
//! are emitted in drain order, so a file endpoint yields a trace that is
//! sorted per batch and append-ordered across batches (re-sort on load
//! for a globally ordered timeline). Because draining moves events out
//! of the bounded rings while components are still running, streaming
//! also prevents ring overflow (dropped events) on long runs.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::collector::TraceCollector;
use crate::event::TraceEvent;
use crate::export::to_text;

/// Where streamed trace batches go. Implementations run on the stream's
/// background thread, so blocking I/O never stalls traced components.
pub trait StreamEndpoint: Send {
    /// Deliver one non-empty batch of events (time-ordered within the
    /// batch).
    fn write_batch(&mut self, events: &[TraceEvent]) -> io::Result<()>;
    /// Called once after the final drain, before the stream thread
    /// exits.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Streams batches to a file in the [`export`](crate::export) text
/// format (`ts component kind a b`), parseable back with
/// [`from_text`](crate::export::from_text).
pub struct FileEndpoint {
    writer: BufWriter<File>,
}

impl FileEndpoint {
    /// Create (truncate) `path` and stream into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(FileEndpoint {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl StreamEndpoint for FileEndpoint {
    fn write_batch(&mut self, events: &[TraceEvent]) -> io::Result<()> {
        self.writer.write_all(to_text(events).as_bytes())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Streams batches over an in-process channel — the live-consumer
/// endpoint (dashboards, tests, cross-thread pipelines).
pub struct ChannelEndpoint {
    tx: mpsc::Sender<Vec<TraceEvent>>,
}

impl ChannelEndpoint {
    /// Endpoint plus the receiving side batches arrive on.
    pub fn new() -> (Self, mpsc::Receiver<Vec<TraceEvent>>) {
        let (tx, rx) = mpsc::channel();
        (ChannelEndpoint { tx }, rx)
    }
}

impl StreamEndpoint for ChannelEndpoint {
    fn write_batch(&mut self, events: &[TraceEvent]) -> io::Result<()> {
        self.tx
            .send(events.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "trace receiver dropped"))
    }
}

/// What a finished stream delivered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Non-empty batches handed to the endpoint.
    pub batches: u64,
    /// Total events delivered.
    pub events: u64,
    /// Endpoint write/finish failures (failed batches are dropped, the
    /// stream keeps going).
    pub io_errors: u64,
}

/// A running streaming export; see the module docs.
pub struct TraceStream {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: std::thread::JoinHandle<StreamStats>,
}

impl TraceStream {
    /// Start draining `collector` every `interval` into `endpoint` on a
    /// background thread.
    pub fn spawn(
        collector: TraceCollector,
        mut endpoint: Box<dyn StreamEndpoint>,
        interval: Duration,
    ) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("embera:trace-stream".into())
            .spawn(move || {
                let mut stats = StreamStats::default();
                let mut deliver = |batch: &[TraceEvent], stats: &mut StreamStats| {
                    if batch.is_empty() {
                        return;
                    }
                    match endpoint.write_batch(batch) {
                        Ok(()) => {
                            stats.batches += 1;
                            stats.events += batch.len() as u64;
                        }
                        Err(_) => stats.io_errors += 1,
                    }
                };
                loop {
                    let stopped = {
                        let (lock, cvar) = &*thread_stop;
                        let mut flag = lock.lock();
                        if !*flag {
                            cvar.wait_for(&mut flag, interval);
                        }
                        *flag
                    };
                    deliver(&collector.drain_sorted(), &mut stats);
                    if stopped {
                        // One more drain after the stop flag: events
                        // emitted between the drain above and the
                        // producers quiescing.
                        deliver(&collector.drain_sorted(), &mut stats);
                        if endpoint.finish().is_err() {
                            stats.io_errors += 1;
                        }
                        return stats;
                    }
                }
            })
            .expect("spawn trace-stream thread");
        TraceStream { stop, handle }
    }

    /// Stop the stream: performs a final drain, finishes the endpoint,
    /// and returns delivery statistics. Call after the traced run has
    /// completed to guarantee the trace is complete.
    pub fn stop(self) -> StreamStats {
        {
            let (lock, cvar) = &*self.stop;
            *lock.lock() = true;
            cvar.notify_all();
        }
        self.handle.join().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn streams_everything_to_a_channel() {
        let collector = TraceCollector::new(1 << 12);
        let handle = collector.register("worker");
        let (endpoint, rx) = ChannelEndpoint::new();
        let stream = TraceStream::spawn(
            collector.clone(),
            Box::new(endpoint),
            Duration::from_millis(1),
        );
        let producer = std::thread::spawn(move || {
            for t in 0..5_000u64 {
                handle.emit(t, EventKind::Compute, t, 0);
            }
            handle.dropped()
        });
        let dropped = producer.join().unwrap();
        let stats = stream.stop();
        // Everything the bounded ring accepted arrives at the endpoint.
        assert_eq!(stats.events + dropped, 5_000);
        assert!(stats.batches >= 1);
        assert_eq!(stats.io_errors, 0);
        let mut streamed: Vec<TraceEvent> = rx.try_iter().flatten().collect();
        streamed.sort_by_key(|e| e.ts_ns);
        assert_eq!(streamed.len() as u64, stats.events);
        assert!(streamed.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns));
        // The rings were drained incrementally: nothing left post-mortem.
        assert!(collector.drain_sorted().is_empty());
    }

    #[test]
    fn file_endpoint_round_trips_the_text_format() {
        let collector = TraceCollector::new(256);
        let handle = collector.register("c");
        let dir = std::env::temp_dir();
        let path = dir.join(format!("embera_stream_{}.trace", std::process::id()));
        let stream = TraceStream::spawn(
            collector.clone(),
            Box::new(FileEndpoint::create(&path).unwrap()),
            Duration::from_millis(1),
        );
        for t in 0..100u64 {
            handle.emit(t, EventKind::Recv, t, 1);
        }
        let stats = stream.stop();
        assert_eq!(stats.events, 100);
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = crate::export::from_text(&text).unwrap();
        assert_eq!(parsed.len(), 100);
        assert!(parsed.iter().all(|e| e.kind == EventKind::Recv));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stop_without_traffic_is_clean() {
        let collector = TraceCollector::new(64);
        let (endpoint, _rx) = ChannelEndpoint::new();
        let stream = TraceStream::spawn(
            collector,
            Box::new(endpoint),
            Duration::from_millis(50),
        );
        let stats = stream.stop();
        assert_eq!(stats, StreamStats::default());
    }

    #[test]
    fn streaming_prevents_ring_overflow() {
        // Ring holds 256 events; emit far more while the stream drains.
        let collector = TraceCollector::new(256);
        let handle = collector.register("hot");
        let (endpoint, rx) = ChannelEndpoint::new();
        let stream = TraceStream::spawn(
            collector.clone(),
            Box::new(endpoint),
            Duration::from_micros(100),
        );
        for t in 0..20_000u64 {
            handle.emit(t, EventKind::Compute, t, 0);
            if t % 128 == 0 {
                std::thread::yield_now();
            }
        }
        let stats = stream.stop();
        let streamed: usize = rx.try_iter().map(|b| b.len()).sum();
        assert_eq!(streamed as u64, stats.events);
        // Everything that was not dropped by the bounded ring arrived.
        assert_eq!(stats.events + handle.dropped(), 20_000);
    }
}
