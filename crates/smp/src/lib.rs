//! # embera-smp — the SMP/Linux platform backend for EMBera
//!
//! Reproduces the paper's first implementation (§4): "An EMBera
//! application is a Linux user process. A component is a data structure
//! and a POSIX thread. … The communication between components is carried
//! out by a simple one way asynchronous message-oriented mechanism,
//! through an established connection. … A provided interface receives
//! messages … implemented as a FIFO data structure, we have named
//! mailbox. A required interface corresponds to a pointer towards a
//! provided interface (mailbox)."
//!
//! Mapping here:
//!
//! * component → [`std::thread`] with the spec's stack size
//!   (`pthread_attr_getstacksize` ↦ `thread::Builder::stack_size`),
//! * provided interface → [`Mailbox`] (mutex + condvar FIFO; alternative
//!   lock-free implementations are available for the ablation study),
//! * required interface → a cloneable handle to the target mailbox,
//! * `gettimeofday` timestamps → a monotonic epoch ([`std::time::Instant`]),
//! * memory observation → the paper's formula: configured stack size
//!   plus a per-provided-interface footprint (see
//!   [`SmpConfig::iface_footprint_bytes`]).
//!
//! Observation requests are served by the component runtime at every
//! communication point and, after the behavior finishes, by a quiescent
//! service loop — the application code is never modified (paper §4.2).

pub mod mailbox;
pub mod platform;
mod transport;

pub use mailbox::{Mailbox, MailboxKind};
pub use platform::{SmpConfig, SmpPlatform, SmpRunning};
