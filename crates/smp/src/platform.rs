//! Deployment of EMBera applications onto host threads.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use embera::observe::engine::ObsEngine;
use embera::runtime::ComponentRuntime;
use embera::{
    is_observer_component, AppReport, AppSpec, ComponentStats, EmberaError, Platform, RunningApp,
    INTROSPECTION,
};

use crate::mailbox::{Mailbox, MailboxKind};
use crate::transport::{FinishState, ShutdownSignal, SmpTransport};

/// Configuration of the SMP backend.
#[derive(Debug, Clone)]
pub struct SmpConfig {
    /// Mailbox implementation (ablation A2).
    pub mailbox_kind: MailboxKind,
    /// Accounted memory footprint of one provided-interface mailbox,
    /// bytes. The paper's Table 1 implies 1 229 kB per provided
    /// interface on their platform (IDCT carries two — data +
    /// introspection — for 2 458 kB over the bare stack); this constant
    /// reproduces that accounting.
    pub iface_footprint_bytes: u64,
    /// False disables all observation (recording + introspection
    /// service) for the overhead ablation (A1).
    pub observe: bool,
}

impl Default for SmpConfig {
    fn default() -> Self {
        SmpConfig {
            mailbox_kind: MailboxKind::default(),
            iface_footprint_bytes: 1_229_000,
            observe: true,
        }
    }
}

/// The SMP platform (paper §4).
#[derive(Debug, Clone, Default)]
pub struct SmpPlatform {
    config: SmpConfig,
}

impl SmpPlatform {
    /// Platform with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Platform with explicit configuration.
    pub fn with_config(config: SmpConfig) -> Self {
        SmpPlatform { config }
    }
}

/// A deployed SMP application.
pub struct SmpRunning {
    app_name: String,
    epoch: Instant,
    shutdown: Arc<ShutdownSignal>,
    handles: Vec<JoinHandle<()>>,
    engines: Vec<ObsEngine>,
    app_component_count: usize,
    finish: Arc<(Mutex<FinishState>, Condvar)>,
}

impl Platform for SmpPlatform {
    type Running = SmpRunning;

    fn deploy(&mut self, spec: AppSpec) -> Result<SmpRunning, EmberaError> {
        let epoch = Instant::now();
        let shutdown = Arc::new(ShutdownSignal::new());
        let finish = Arc::new((
            Mutex::new(FinishState {
                finished: 0,
                errors: Vec::new(),
            }),
            Condvar::new(),
        ));

        // 1. Create every provided-interface mailbox (data +
        //    introspection) so connections can be resolved up front.
        let mut mailboxes: HashMap<(String, String), Mailbox> = HashMap::new();
        for c in &spec.components {
            for iface in c.provided.iter().map(String::as_str).chain([INTROSPECTION]) {
                let key = (c.name.clone(), iface.to_string());
                let label = format!("{}::{}", c.name, iface);
                mailboxes.insert(key, Mailbox::new(label, self.config.mailbox_kind));
            }
        }

        // 2. Resolve required-interface routes.
        let mut routes_by_component: HashMap<String, HashMap<String, Mailbox>> = HashMap::new();
        for conn in &spec.connections {
            let target = mailboxes
                .get(&(conn.to.component.clone(), conn.to.interface.clone()))
                .ok_or_else(|| {
                    EmberaError::Validation(format!(
                        "connection target {}::{} has no mailbox",
                        conn.to.component, conn.to.interface
                    ))
                })?
                .clone();
            routes_by_component
                .entry(conn.from.component.clone())
                .or_default()
                .insert(conn.from.interface.clone(), target);
        }

        // 3. Spawn one thread per component.
        let trace = spec.trace.clone();
        let faults = spec.faults.clone();
        let mut handles = Vec::new();
        let mut all_engines = Vec::new();
        let app_component_count = spec
            .components
            .iter()
            .filter(|c| !is_observer_component(&c.name))
            .count();
        for c in spec.components {
            let stats = Arc::new(ComponentStats::new(&c.name, &c.provided, &c.required));
            // Paper memory formula: stack + footprint per provided
            // interface (data interfaces + the introspection mailbox
            // when an observer is attached and will exercise it).
            let provided_ifaces =
                c.provided.len() as u64 + if spec.has_observer { 1 } else { 0 };
            stats.set_memory_bytes(
                c.stack_bytes + provided_ifaces * self.config.iface_footprint_bytes,
            );
            let engine = ObsEngine::with_metrics(Arc::clone(&stats), c.metrics.clone());
            all_engines.push(engine.clone());

            let provided: HashMap<String, Mailbox> = c
                .provided
                .iter()
                .map(String::as_str)
                .chain([INTROSPECTION])
                .map(|iface| {
                    (
                        iface.to_string(),
                        mailboxes[&(c.name.clone(), iface.to_string())].clone(),
                    )
                })
                .collect();
            let routes = routes_by_component.remove(&c.name).unwrap_or_default();

            let pending = provided
                .keys()
                .map(|k| (k.clone(), std::collections::VecDeque::new()))
                .collect();
            let transport = SmpTransport {
                name: c.name.clone(),
                provided,
                routes,
                pending,
                scratch: Vec::with_capacity(16),
                epoch,
                shutdown: Arc::clone(&shutdown),
                observe: self.config.observe,
                finish: Arc::clone(&finish),
                is_app_component: !is_observer_component(&c.name),
                pool: spec.pool.clone(),
            };
            let mut runtime = ComponentRuntime::new(
                c.name.clone(),
                c.required.clone(),
                transport,
                engine,
                self.config.observe,
                trace.as_ref().map(|t| t.sink_for(&c.name)),
            );
            runtime.set_restart_policy(c.restart);
            runtime.set_overload_policy(c.overload);
            if let Some(plan) = &faults {
                runtime.set_fault_plan(plan);
            }
            let handle = std::thread::Builder::new()
                .name(format!("embera:{}", c.name))
                .stack_size(c.stack_bytes as usize)
                .spawn(move || runtime.run_to_completion(c.behavior))
                .map_err(|e| EmberaError::Platform(format!("thread spawn failed: {e}")))?;
            handles.push(handle);
        }

        Ok(SmpRunning {
            app_name: spec.name,
            epoch,
            shutdown,
            handles,
            engines: all_engines,
            app_component_count,
            finish,
        })
    }
}

impl RunningApp for SmpRunning {
    fn wait(self) -> Result<AppReport, EmberaError> {
        // Wait for every application component's behavior to finish.
        {
            let (lock, cvar) = &*self.finish;
            let mut st = lock.lock();
            while st.finished < self.app_component_count {
                cvar.wait(&mut st);
            }
        }
        // The application is done once its own components finish: stamp
        // the wall clock now, before tearing down the observer and the
        // introspection service loops (harness shutdown is not app time).
        let wall_time_ns = self.epoch.elapsed().as_nanos() as u64;
        // Terminate service loops and the observer, then join.
        self.shutdown.signal();
        for h in self.handles {
            h.join()
                .map_err(|_| EmberaError::Platform("component thread panicked".into()))?;
        }
        let errors = {
            let (lock, _) = &*self.finish;
            std::mem::take(&mut lock.lock().errors)
        };
        // Aggregate every originating failure: secondary `Terminated`
        // errors from peers drained by the fail-fast shutdown rank last.
        embera::supervise::fault_result(errors)?;
        Ok(AppReport {
            app_name: self.app_name,
            wall_time_ns,
            components: self
                .engines
                .iter()
                .map(|e| e.full_report(wall_time_ns))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use embera::behavior::behavior_fn;
    use embera::{AppBuilder, ComponentSpec, ObserverConfig};

    #[test]
    fn pipeline_delivers_all_messages_in_order() {
        let mut app = AppBuilder::new("pipe");
        app.add(
            ComponentSpec::new(
                "src",
                behavior_fn(|ctx| {
                    for i in 0..100u32 {
                        ctx.send("out", Bytes::copy_from_slice(&i.to_le_bytes()))?;
                    }
                    Ok(())
                }),
            )
            .with_required("out")
            .with_stack_bytes(1 << 20),
        );
        app.add(
            ComponentSpec::new(
                "dst",
                behavior_fn(|ctx| {
                    for i in 0..100u32 {
                        let b = ctx.recv("in")?;
                        assert_eq!(b.as_ref(), i.to_le_bytes());
                    }
                    Ok(())
                }),
            )
            .with_provided("in")
            .with_stack_bytes(1 << 20),
        );
        app.connect(("src", "out"), ("dst", "in"));
        let running = SmpPlatform::new().deploy(app.build().unwrap()).unwrap();
        let report = running.wait().unwrap();
        assert_eq!(report.component("src").unwrap().app.total_sends, 100);
        assert_eq!(report.component("dst").unwrap().app.total_receives, 100);
    }

    #[test]
    fn memory_formula_counts_provided_interfaces() {
        let mut app = AppBuilder::new("mem");
        app.add(
            ComponentSpec::new("only", behavior_fn(|_| Ok(())))
                .with_provided("a")
                .with_provided("b")
                .with_stack_bytes(1_000_000),
        );
        let spec = app.build().unwrap();
        let report = SmpPlatform::new().deploy(spec).unwrap().wait().unwrap();
        // No observer: 2 data mailboxes only.
        assert_eq!(
            report.component("only").unwrap().os.memory_bytes,
            1_000_000 + 2 * 1_229_000
        );
    }

    #[test]
    fn send_on_disconnected_interface_errors() {
        let mut app = AppBuilder::new("bad");
        app.add(
            ComponentSpec::new(
                "lonely",
                behavior_fn(|ctx| ctx.send("ghost", Bytes::new())),
            )
            .with_stack_bytes(1 << 20),
        );
        let spec = app.build().unwrap();
        let err = SmpPlatform::new().deploy(spec).unwrap().wait().unwrap_err();
        let EmberaError::Platform(msg) = err else {
            panic!()
        };
        assert!(msg.contains("lonely"), "{msg}");
    }

    #[test]
    fn observer_collects_reports_from_all_components() {
        let mut app = AppBuilder::new("observed");
        app.add(
            ComponentSpec::new(
                "worker",
                behavior_fn(|ctx| {
                    // Keep working long enough for at least one round.
                    let t0 = ctx.now_ns();
                    while ctx.now_ns() - t0 < 50_000_000 {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        ctx.send("sink_in", Bytes::from_static(b"tick"))?;
                    }
                    Ok(())
                }),
            )
            .with_required("sink_in")
            .with_stack_bytes(1 << 20),
        );
        app.add(
            ComponentSpec::new(
                "sink",
                behavior_fn(|ctx| {
                    while ctx.recv_timeout("in", 20_000_000)?.is_some() {}
                    Ok(())
                }),
            )
            .with_provided("in")
            .with_stack_bytes(1 << 20),
        );
        app.connect(("worker", "sink_in"), ("sink", "in"));
        let log = app.with_observer(ObserverConfig::default().interval_ns(5_000_000));
        let spec = app.build().unwrap();
        let report = SmpPlatform::new().deploy(spec).unwrap().wait().unwrap();
        assert!(
            !log.is_empty(),
            "observer must have collected at least one report"
        );
        let latest = log.latest_by_component();
        assert!(latest.iter().any(|r| r.component == "worker"));
        // Final report still present and coherent.
        assert!(report.component("worker").unwrap().app.total_sends > 0);
    }

    #[test]
    fn observation_disabled_records_nothing() {
        let mut app = AppBuilder::new("dark");
        app.add(
            ComponentSpec::new(
                "src",
                behavior_fn(|ctx| ctx.send("out", Bytes::from_static(b"x"))),
            )
            .with_required("out")
            .with_stack_bytes(1 << 20),
        );
        app.add(
            ComponentSpec::new(
                "dst",
                behavior_fn(|ctx| ctx.recv("in").map(|_| ())),
            )
            .with_provided("in")
            .with_stack_bytes(1 << 20),
        );
        app.connect(("src", "out"), ("dst", "in"));
        let mut platform = SmpPlatform::with_config(SmpConfig {
            observe: false,
            ..Default::default()
        });
        let report = platform.deploy(app.build().unwrap()).unwrap().wait().unwrap();
        assert_eq!(report.component("src").unwrap().app.total_sends, 0);
        assert_eq!(report.component("src").unwrap().middleware.send.count, 0);
    }
}
