//! The per-component runtime: owns the mailboxes, implements [`Ctx`],
//! records observation statistics, and serves introspection requests —
//! all outside user code.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use embera::observe::engine::ObsEngine;
use embera::{Behavior, ComponentStats, Ctx, EmberaError, Message, Work, INTROSPECTION};

use crate::mailbox::Mailbox;

/// Timeout slice used while blocked on a data mailbox; between slices the
/// runtime services pending introspection requests, so an observer can
/// query a component that is blocked waiting for data.
const SERVICE_SLICE: Duration = Duration::from_micros(500);

pub(crate) struct ComponentRuntime {
    pub(crate) name: String,
    /// Mailboxes of this component's provided interfaces (data +
    /// introspection).
    pub(crate) provided: HashMap<String, Mailbox>,
    /// Required-interface routes to other components' mailboxes.
    pub(crate) routes: HashMap<String, Mailbox>,
    pub(crate) stats: Arc<ComponentStats>,
    pub(crate) engine: ObsEngine,
    pub(crate) epoch: Instant,
    pub(crate) shutdown: Arc<AtomicBool>,
    /// False disables observation recording and introspection service
    /// (ablation A1).
    pub(crate) observe: bool,
    /// Messages drained from a data mailbox in bulk (one lock per batch
    /// via [`Mailbox::pop_many`]) but not yet handed to the behavior.
    pub(crate) pending: HashMap<String, VecDeque<Message>>,
}

/// How many messages a single `recv` may drain from the mailbox ahead of
/// the behavior asking for them. Small: enough to amortize the lock over
/// a pipeline batch without hoarding another component's backlog.
const DRAIN_BATCH: usize = 16;

impl ComponentRuntime {
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Drain and answer pending observation requests (non-blocking).
    pub(crate) fn service_introspection(&self) {
        if !self.observe {
            return;
        }
        let Some(mb) = self.provided.get(INTROSPECTION) else {
            return;
        };
        while let Some(msg) = mb.try_pop() {
            self.handle_introspection(msg);
        }
    }

    fn refresh_queued_gauge(&self) {
        // Bulk-drained messages waiting in `pending` are still queued
        // from the observer's point of view: count them with the
        // mailbox-resident bytes so the memory gauge is drain-agnostic.
        let in_flight: u64 = self
            .pending
            .values()
            .flat_map(|q| q.iter())
            .map(|m| m.data_len() as u64)
            .sum();
        let total: u64 = self.provided.values().map(|m| m.queued_bytes()).sum();
        self.stats.set_queued_bytes(total + in_flight);
    }

    fn handle_introspection(&self, msg: Message) {
        if let Message::ObsRequest { from: _, request } = msg {
            self.refresh_queued_gauge();
            let reply = self.engine.answer(request, self.now_ns());
            if let Some(route) = self.routes.get(INTROSPECTION) {
                route.push(Message::ObsReply {
                    from: self.name.clone(),
                    reply: Box::new(reply),
                });
            }
            // With no observer connected the reply is dropped: nobody is
            // listening on the introspection required interface.
        }
    }

    /// Thread body: run the behavior, then keep serving observation until
    /// the application shuts down.
    pub(crate) fn run_thread(
        mut self,
        mut behavior: Box<dyn Behavior>,
        on_finished: impl FnOnce(Option<EmberaError>),
    ) {
        self.stats.mark_started(self.now_ns());
        let result = {
            let mut ctx = SmpCtx { rt: &mut self };
            behavior.run(&mut ctx)
        };
        self.stats.mark_finished(self.now_ns());
        self.refresh_queued_gauge();
        on_finished(result.err());
        // Quiescent service loop: answer observation requests until the
        // whole application terminates.
        while !self.shutdown.load(Ordering::Acquire) {
            if !self.observe {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            let Some(mb) = self.provided.get(INTROSPECTION) else {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            };
            if let Some(msg) = mb.pop_timeout(Duration::from_millis(1)) {
                self.handle_introspection(msg);
            }
        }
    }
}

/// The [`Ctx`] implementation handed to behaviors on the SMP backend.
pub(crate) struct SmpCtx<'a> {
    rt: &'a mut ComponentRuntime,
}

impl SmpCtx<'_> {
    /// Next message for `provided`: the head of the local drain buffer
    /// if one is waiting, else a bulk [`Mailbox::pop_many`] drain (one
    /// lock for up to [`DRAIN_BATCH`] messages) refills the buffer.
    fn next_buffered(&mut self, provided: &str, mb: &Mailbox) -> Option<Message> {
        if !self.rt.pending.contains_key(provided) {
            self.rt.pending.insert(provided.to_string(), VecDeque::new());
        }
        let buf = self.rt.pending.get_mut(provided).unwrap();
        if let Some(m) = buf.pop_front() {
            return Some(m);
        }
        let mut scratch = Vec::with_capacity(DRAIN_BATCH);
        if mb.pop_many(&mut scratch, DRAIN_BATCH) == 0 {
            return None;
        }
        let mut drained = scratch.drain(..);
        let first = drained.next();
        buf.extend(drained);
        first
    }
}

impl Ctx for SmpCtx<'_> {
    fn component(&self) -> &str {
        &self.rt.name
    }

    fn send_message(&mut self, required: &str, msg: Message) -> Result<(), EmberaError> {
        let Some(route) = self.rt.routes.get(required) else {
            if required == INTROSPECTION {
                return Ok(()); // no observer attached: drop silently
            }
            return Err(if self.rt.provided.contains_key(required) {
                EmberaError::UnknownInterface {
                    component: self.rt.name.clone(),
                    interface: required.to_string(),
                }
            } else {
                EmberaError::Disconnected {
                    component: self.rt.name.clone(),
                    interface: required.to_string(),
                }
            });
        };
        let is_data = msg.is_data();
        let bytes = msg.data_len() as u64;
        let t0 = Instant::now();
        // The paper's mailbox send copies the message into the FIFO —
        // that copy is what makes Figure 4 linear in message size. A
        // refcounted clone would hide it, so materialize a real copy of
        // data payloads inside the timed region.
        let msg = match msg {
            Message::Data(payload) => {
                Message::Data(bytes::Bytes::from(payload.as_ref().to_vec()))
            }
            other => other,
        };
        route.push(msg);
        if is_data && self.rt.observe {
            let dur = t0.elapsed().as_nanos() as u64;
            self.rt.stats.record_send(required, bytes, dur);
        }
        self.rt.service_introspection();
        Ok(())
    }

    fn recv_message(&mut self, provided: &str) -> Result<Message, EmberaError> {
        loop {
            match self.recv_message_timeout(provided, 50_000_000)? {
                Some(m) => return Ok(m),
                None => {
                    if self.rt.shutdown.load(Ordering::Acquire) {
                        return Err(EmberaError::Terminated);
                    }
                }
            }
        }
    }

    fn recv_message_timeout(
        &mut self,
        provided: &str,
        timeout_ns: u64,
    ) -> Result<Option<Message>, EmberaError> {
        let Some(mb) = self.rt.provided.get(provided) else {
            return Err(EmberaError::UnknownInterface {
                component: self.rt.name.clone(),
                interface: provided.to_string(),
            });
        };
        let mb = mb.clone();
        let deadline = Instant::now() + Duration::from_nanos(timeout_ns);
        loop {
            self.rt.service_introspection();
            let t0 = Instant::now();
            if let Some(msg) = self.next_buffered(provided, &mb) {
                let dur = t0.elapsed().as_nanos() as u64;
                if msg.is_data() && self.rt.observe {
                    self.rt
                        .stats
                        .record_receive(provided, msg.data_len() as u64, dur);
                }
                return Ok(Some(msg));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            // Abort the wait promptly on shutdown: the slice loop wakes
            // every SERVICE_SLICE anyway, so a long timeout (e.g. the
            // observer's pacing interval) must not keep the thread — and
            // the application's wall clock — alive after the app is done.
            if self.rt.shutdown.load(Ordering::Acquire) {
                return Ok(None);
            }
            let slice = SERVICE_SLICE.min(deadline - now);
            if let Some(msg) = mb.pop_timeout(slice) {
                let dur = t0.elapsed().as_nanos() as u64;
                if msg.is_data() && self.rt.observe {
                    // The slice bounds the wait included in the sample;
                    // the primitive's own cost dominates for the message
                    // sizes the paper sweeps.
                    let dur = dur.min(SERVICE_SLICE.as_nanos() as u64);
                    self.rt
                        .stats
                        .record_receive(provided, msg.data_len() as u64, dur);
                }
                return Ok(Some(msg));
            }
        }
    }

    fn compute(&mut self, _work: Work) {
        // The SMP backend runs real code on real silicon; the annotation
        // carries no extra cost (it drives the simulated backend only).
    }

    fn now_ns(&self) -> u64 {
        self.rt.now_ns()
    }

    fn should_stop(&self) -> bool {
        self.rt.shutdown.load(Ordering::Acquire)
    }
}
