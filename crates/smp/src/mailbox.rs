//! Mailboxes: the FIFO data structure behind every provided interface
//! (paper §4.1).
//!
//! The default implementation is a `parking_lot` mutex + condvar around a
//! `VecDeque` — the closest analogue of the paper's pthread mailbox. A
//! lock-free [`crossbeam::queue::SegQueue`] variant exists for the
//! mailbox ablation benchmark; its blocking path spins briefly with
//! [`crossbeam::utils::Backoff`] and then parks on a condvar that `push`
//! only touches when a waiter has registered, so the uncontended send
//! path stays lock-free.

use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::queue::SegQueue;
use crossbeam::utils::Backoff;
use parking_lot::{Condvar, Mutex};

use embera::Message;

/// Which mailbox implementation to use (ablation A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MailboxKind {
    /// Mutex + condvar FIFO (the paper-faithful default; unbounded, as
    /// in the paper's asynchronous one-way mailboxes).
    #[default]
    MutexCondvar,
    /// Lock-free segmented queue with backoff polling.
    SegQueue,
    /// Bounded mutex + condvar FIFO: `push` blocks while the mailbox
    /// holds `capacity` messages (backpressure — an extension over the
    /// paper's unbounded design for memory-constrained deployments).
    Bounded(usize),
}

enum Impl {
    Mutex {
        queue: Mutex<VecDeque<Message>>,
        nonempty: Condvar,
    },
    Seg {
        queue: SegQueue<Message>,
        /// Receivers currently parked (or about to park) on `parked`.
        /// `push` skips the lock entirely while this is zero.
        waiters: AtomicUsize,
        park: Mutex<()>,
        parked: Condvar,
    },
    Bounded {
        queue: Mutex<VecDeque<Message>>,
        nonempty: Condvar,
        nonfull: Condvar,
        capacity: usize,
    },
}

struct Inner {
    name: String,
    imp: Impl,
    /// Bytes of data payload currently queued (dynamic-memory gauge for
    /// the observation layer).
    queued_bytes: std::sync::atomic::AtomicU64,
}

/// A mailbox: multiple senders (required interfaces pointing at it), one
/// logical receiver (the owning component). Clones share the queue.
///
/// ```
/// use embera::Message;
/// use embera_smp::{Mailbox, MailboxKind};
/// use bytes::Bytes;
///
/// let mb = Mailbox::new("in", MailboxKind::MutexCondvar);
/// mb.push(Message::Data(Bytes::from_static(b"hello")));
/// assert_eq!(mb.len(), 1);
/// assert_eq!(mb.queued_bytes(), 5);
/// let Some(Message::Data(payload)) = mb.try_pop() else { unreachable!() };
/// assert_eq!(&payload[..], b"hello");
/// ```
#[derive(Clone)]
pub struct Mailbox {
    inner: Arc<Inner>,
}

impl Mailbox {
    /// Create a mailbox of the given kind.
    pub fn new(name: impl Into<String>, kind: MailboxKind) -> Self {
        let imp = match kind {
            MailboxKind::MutexCondvar => Impl::Mutex {
                // Pre-size the ring: queue depth past 64 means the
                // receiver is already far behind, and the up-front
                // capacity keeps the steady-state hot path free of
                // reallocation (the bench crate's zero-allocation
                // check counts on it).
                queue: Mutex::new(VecDeque::with_capacity(64)),
                nonempty: Condvar::new(),
            },
            MailboxKind::SegQueue => Impl::Seg {
                queue: SegQueue::new(),
                waiters: AtomicUsize::new(0),
                park: Mutex::new(()),
                parked: Condvar::new(),
            },
            MailboxKind::Bounded(capacity) => {
                assert!(capacity >= 1, "bounded mailbox capacity must be >= 1");
                Impl::Bounded {
                    queue: Mutex::new(VecDeque::with_capacity(capacity)),
                    nonempty: Condvar::new(),
                    nonfull: Condvar::new(),
                    capacity,
                }
            }
        };
        Mailbox {
            inner: Arc::new(Inner {
                name: name.into(),
                imp,
                queued_bytes: std::sync::atomic::AtomicU64::new(0),
            }),
        }
    }

    /// Mailbox (interface) name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Send: enqueue and wake a waiting receiver. Asynchronous for the
    /// unbounded kinds; blocks while full for [`MailboxKind::Bounded`].
    pub fn push(&self, msg: Message) {
        self.inner
            .queued_bytes
            .fetch_add(msg.data_len() as u64, std::sync::atomic::Ordering::Relaxed);
        match &self.inner.imp {
            Impl::Mutex { queue, nonempty } => {
                queue.lock().push_back(msg);
                nonempty.notify_one();
            }
            Impl::Seg {
                queue,
                waiters,
                park,
                parked,
            } => {
                queue.push(msg);
                // The fence orders the enqueue before the waiter check;
                // a receiver registers (SeqCst) before its final empty
                // probe, so either we see its registration here or it
                // sees our message there — no lost wakeup.
                fence(Ordering::SeqCst);
                if waiters.load(Ordering::SeqCst) > 0 {
                    let _g = park.lock();
                    parked.notify_all();
                }
            }
            Impl::Bounded {
                queue,
                nonempty,
                nonfull,
                capacity,
            } => {
                let mut q = queue.lock();
                while q.len() >= *capacity {
                    nonfull.wait(&mut q);
                }
                q.push_back(msg);
                nonempty.notify_one();
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_pop(&self) -> Option<Message> {
        let msg = match &self.inner.imp {
            Impl::Mutex { queue, .. } => queue.lock().pop_front(),
            Impl::Seg { queue, .. } => queue.pop(),
            Impl::Bounded { queue, nonfull, .. } => {
                let m = queue.lock().pop_front();
                if m.is_some() {
                    nonfull.notify_one();
                }
                m
            }
        };
        if let Some(m) = &msg {
            self.inner
                .queued_bytes
                .fetch_sub(m.data_len() as u64, std::sync::atomic::Ordering::Relaxed);
        }
        msg
    }

    /// Blocking receive with a deadline. `None` on timeout.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<Message> {
        let msg = self.pop_timeout_inner(timeout);
        if let Some(m) = &msg {
            self.inner
                .queued_bytes
                .fetch_sub(m.data_len() as u64, std::sync::atomic::Ordering::Relaxed);
        }
        msg
    }

    fn pop_timeout_inner(&self, timeout: Duration) -> Option<Message> {
        match &self.inner.imp {
            Impl::Mutex { queue, nonempty } => {
                let deadline = Instant::now() + timeout;
                let mut q = queue.lock();
                loop {
                    if let Some(m) = q.pop_front() {
                        return Some(m);
                    }
                    if nonempty.wait_until(&mut q, deadline).timed_out() {
                        return q.pop_front();
                    }
                }
            }
            Impl::Bounded {
                queue,
                nonempty,
                nonfull,
                ..
            } => {
                let deadline = Instant::now() + timeout;
                let mut q = queue.lock();
                loop {
                    if let Some(m) = q.pop_front() {
                        nonfull.notify_one();
                        return Some(m);
                    }
                    if nonempty.wait_until(&mut q, deadline).timed_out() {
                        let m = q.pop_front();
                        if m.is_some() {
                            nonfull.notify_one();
                        }
                        return m;
                    }
                }
            }
            Impl::Seg {
                queue,
                waiters,
                park,
                parked,
            } => {
                let deadline = Instant::now() + timeout;
                let backoff = Backoff::new();
                loop {
                    if let Some(m) = queue.pop() {
                        return Some(m);
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        return queue.pop();
                    }
                    if !backoff.is_completed() {
                        // Short spin/yield phase: a message in flight
                        // lands within a few hundred nanoseconds.
                        backoff.snooze();
                        continue;
                    }
                    // Park until a sender notifies or the deadline
                    // passes. Registration (SeqCst) happens before the
                    // final empty probe; `push` enqueues before checking
                    // `waiters`, so the probe sees the message or the
                    // sender sees us and notifies under `park`.
                    waiters.fetch_add(1, Ordering::SeqCst);
                    fence(Ordering::SeqCst);
                    let mut g = park.lock();
                    if let Some(m) = queue.pop() {
                        drop(g);
                        waiters.fetch_sub(1, Ordering::SeqCst);
                        return Some(m);
                    }
                    let _ = parked.wait_until(&mut g, deadline);
                    drop(g);
                    waiters.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }

    /// Drain up to `max` queued messages into `out` (appended in FIFO
    /// order), taking the queue lock once for the whole batch instead of
    /// once per message. Returns how many messages were appended; never
    /// blocks. The fast path for batched pipeline receivers.
    pub fn pop_many(&self, out: &mut Vec<Message>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let start = out.len();
        match &self.inner.imp {
            Impl::Mutex { queue, .. } => {
                let mut q = queue.lock();
                let n = max.min(q.len());
                out.extend(q.drain(..n));
            }
            Impl::Seg { queue, .. } => {
                // The lock-free queue has no bulk drain; pop one at a
                // time (each pop is a single CAS on the shim).
                while out.len() - start < max {
                    match queue.pop() {
                        Some(m) => out.push(m),
                        None => break,
                    }
                }
            }
            Impl::Bounded { queue, nonfull, .. } => {
                let mut q = queue.lock();
                let n = max.min(q.len());
                out.extend(q.drain(..n));
                if n > 0 {
                    // Several pushers may have been blocked on capacity.
                    nonfull.notify_all();
                }
            }
        }
        let drained = &out[start..];
        let bytes: u64 = drained.iter().map(|m| m.data_len() as u64).sum();
        if bytes > 0 {
            self.inner
                .queued_bytes
                .fetch_sub(bytes, std::sync::atomic::Ordering::Relaxed);
        }
        drained.len()
    }

    /// Bytes of data payload currently queued.
    pub fn queued_bytes(&self) -> u64 {
        self.inner
            .queued_bytes
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        match &self.inner.imp {
            Impl::Mutex { queue, .. } => queue.lock().len(),
            Impl::Seg { queue, .. } => queue.len(),
            Impl::Bounded { queue, .. } => queue.lock().len(),
        }
    }

    /// Whether the mailbox is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn data(v: &'static [u8]) -> Message {
        Message::Data(Bytes::from_static(v))
    }

    fn payload(m: Message) -> Bytes {
        match m {
            Message::Data(b) => b,
            other => panic!("expected data, got {other:?}"),
        }
    }

    #[test]
    fn fifo_order_both_kinds() {
        for kind in [
            MailboxKind::MutexCondvar,
            MailboxKind::SegQueue,
            MailboxKind::Bounded(2048),
        ] {
            let mb = Mailbox::new("m", kind);
            mb.push(data(b"1"));
            mb.push(data(b"2"));
            mb.push(data(b"3"));
            assert_eq!(&payload(mb.try_pop().unwrap())[..], b"1");
            assert_eq!(&payload(mb.try_pop().unwrap())[..], b"2");
            assert_eq!(&payload(mb.try_pop().unwrap())[..], b"3");
            assert!(mb.try_pop().is_none());
        }
    }

    #[test]
    fn pop_timeout_times_out_when_empty() {
        for kind in [
            MailboxKind::MutexCondvar,
            MailboxKind::SegQueue,
            MailboxKind::Bounded(2048),
        ] {
            let mb = Mailbox::new("m", kind);
            let t0 = Instant::now();
            assert!(mb.pop_timeout(Duration::from_millis(20)).is_none());
            assert!(t0.elapsed() >= Duration::from_millis(15));
        }
    }

    #[test]
    fn pop_timeout_wakes_on_push_from_other_thread() {
        for kind in [
            MailboxKind::MutexCondvar,
            MailboxKind::SegQueue,
            MailboxKind::Bounded(2048),
        ] {
            let mb = Mailbox::new("m", kind);
            let tx = mb.clone();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.push(data(b"late"));
            });
            let got = mb.pop_timeout(Duration::from_secs(5));
            h.join().unwrap();
            assert_eq!(&payload(got.unwrap())[..], b"late");
        }
    }

    #[test]
    fn bounded_mailbox_applies_backpressure() {
        let mb = Mailbox::new("m", MailboxKind::Bounded(2));
        mb.push(data(b"1"));
        mb.push(data(b"2"));
        let tx = mb.clone();
        let t0 = Instant::now();
        let h = std::thread::spawn(move || {
            tx.push(data(b"3")); // blocks until a pop makes room
            Instant::now()
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(mb.len(), 2, "third push must be blocked");
        let _ = mb.try_pop();
        let unblocked_at = h.join().unwrap();
        assert!(unblocked_at.duration_since(t0) >= Duration::from_millis(25));
        assert_eq!(mb.len(), 2);
    }

    #[test]
    fn pop_many_drains_in_fifo_order_and_respects_max() {
        for kind in [
            MailboxKind::MutexCondvar,
            MailboxKind::SegQueue,
            MailboxKind::Bounded(2048),
        ] {
            let mb = Mailbox::new("m", kind);
            for v in [b"1" as &[u8], b"22", b"333", b"4444"] {
                mb.push(Message::Data(Bytes::copy_from_slice(v)));
            }
            assert_eq!(mb.queued_bytes(), 10);
            let mut out = Vec::new();
            assert_eq!(mb.pop_many(&mut out, 3), 3);
            assert_eq!(out.len(), 3);
            assert_eq!(&payload(out[0].clone())[..], b"1");
            assert_eq!(&payload(out[2].clone())[..], b"333");
            assert_eq!(mb.queued_bytes(), 4);
            // Appends after existing contents, drains the remainder.
            assert_eq!(mb.pop_many(&mut out, 16), 1);
            assert_eq!(&payload(out[3].clone())[..], b"4444");
            assert_eq!(mb.queued_bytes(), 0);
            assert_eq!(mb.pop_many(&mut out, 16), 0);
            assert_eq!(mb.pop_many(&mut out, 0), 0);
        }
    }

    #[test]
    fn pop_many_unblocks_bounded_pushers() {
        let mb = Mailbox::new("m", MailboxKind::Bounded(2));
        mb.push(data(b"1"));
        mb.push(data(b"2"));
        let tx = mb.clone();
        let h = std::thread::spawn(move || {
            tx.push(data(b"3"));
            tx.push(data(b"4"));
        });
        std::thread::sleep(Duration::from_millis(20));
        let mut out = Vec::new();
        assert_eq!(mb.pop_many(&mut out, 2), 2);
        h.join().unwrap();
        assert_eq!(mb.len(), 2);
    }

    #[test]
    fn seg_pop_timeout_parks_instead_of_spinning() {
        // A long empty wait must not burn CPU: the receiver should park
        // after the backoff phase and still wake promptly on push.
        let mb = Mailbox::new("m", MailboxKind::SegQueue);
        let tx = mb.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            tx.push(data(b"late"));
        });
        let t0 = Instant::now();
        let got = mb.pop_timeout(Duration::from_secs(5));
        let waited = t0.elapsed();
        h.join().unwrap();
        assert_eq!(&payload(got.unwrap())[..], b"late");
        assert!(waited >= Duration::from_millis(40), "woke too early");
        assert!(waited < Duration::from_secs(4), "missed the wakeup");
    }

    #[test]
    fn concurrent_producers_lose_no_messages() {
        for kind in [
            MailboxKind::MutexCondvar,
            MailboxKind::SegQueue,
            MailboxKind::Bounded(2048),
        ] {
            let mb = Mailbox::new("m", kind);
            let mut handles = Vec::new();
            for p in 0..4u8 {
                let tx = mb.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..250u32 {
                        tx.push(Message::Data(Bytes::copy_from_slice(&[p, i as u8])));
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let mut n = 0;
            while mb.try_pop().is_some() {
                n += 1;
            }
            assert_eq!(n, 1000);
        }
    }
}
