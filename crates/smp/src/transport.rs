//! The SMP [`Transport`]: mailboxes, wall-clock timing, and
//! condvar-based parking. All observation and `Ctx` logic lives in
//! [`embera::runtime::ComponentRuntime`]; this module only moves
//! messages and waits.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use embera::runtime::Transport;
use embera::{EmberaError, Message, Work, INTROSPECTION};

use crate::mailbox::Mailbox;

/// Timeout slice used while blocked on a data mailbox; between slices
/// the shared runtime services pending introspection requests, so an
/// observer can query a component that is blocked waiting for data.
const SERVICE_SLICE: Duration = Duration::from_micros(500);

/// How many messages a single `recv` may drain from the mailbox ahead of
/// the behavior asking for them. Small: enough to amortize the lock over
/// a pipeline batch without hoarding another component's backlog.
const DRAIN_BATCH: usize = 16;

/// Application-wide shutdown: a flag plus a condvar so components with
/// nothing to poll (observation disabled, or no introspection traffic
/// possible) park until shutdown instead of sleep-polling.
pub(crate) struct ShutdownSignal {
    flag: AtomicBool,
    lock: Mutex<()>,
    cvar: Condvar,
}

impl ShutdownSignal {
    pub(crate) fn new() -> Self {
        ShutdownSignal {
            flag: AtomicBool::new(false),
            lock: Mutex::new(()),
            cvar: Condvar::new(),
        }
    }

    pub(crate) fn is_set(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Set the flag and wake every parked waiter. Taking the lock around
    /// the notify closes the race with a waiter that has checked the
    /// flag but not yet parked.
    pub(crate) fn signal(&self) {
        self.flag.store(true, Ordering::Release);
        let _guard = self.lock.lock();
        self.cvar.notify_all();
    }

    /// Park until the flag is set. No timeout: the only wakeup this
    /// waiter needs is shutdown itself.
    fn wait(&self) {
        let mut guard = self.lock.lock();
        while !self.is_set() {
            self.cvar.wait(&mut guard);
        }
    }
}

/// Shared completion accounting for [`crate::platform::SmpRunning`].
pub(crate) struct FinishState {
    pub(crate) finished: usize,
    pub(crate) errors: Vec<(String, EmberaError)>,
}

pub(crate) struct SmpTransport {
    pub(crate) name: String,
    /// Mailboxes of this component's provided interfaces (data +
    /// introspection).
    pub(crate) provided: HashMap<String, Mailbox>,
    /// Required-interface routes to other components' mailboxes.
    pub(crate) routes: HashMap<String, Mailbox>,
    /// Messages drained from a data mailbox in bulk (one lock per batch
    /// via [`Mailbox::pop_many`]) but not yet handed to the behavior.
    /// Pre-populated with every provided interface at deploy time so the
    /// hot receive path never allocates a key.
    pub(crate) pending: HashMap<String, VecDeque<Message>>,
    /// Reusable bulk-drain buffer (allocation-free steady state).
    pub(crate) scratch: Vec<Message>,
    pub(crate) epoch: Instant,
    pub(crate) shutdown: Arc<ShutdownSignal>,
    /// False disables observation (ablation A1): the quiescent loop has
    /// no introspection traffic to poll for and parks on `shutdown`.
    pub(crate) observe: bool,
    pub(crate) finish: Arc<(Mutex<FinishState>, Condvar)>,
    pub(crate) is_app_component: bool,
    /// Application-wide payload pool ([`embera::AppSpec::pool`]): the
    /// send-primitive copy is drawn from it and the sender's original
    /// buffer recycled into it, so warm steady state allocates nothing.
    pub(crate) pool: Option<embera::BufferPool>,
}

impl Transport for SmpTransport {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.is_set()
    }

    fn has_route(&self, required: &str) -> bool {
        self.routes.contains_key(required)
    }

    fn has_inbox(&self, provided: &str) -> bool {
        self.provided.contains_key(provided)
    }

    fn push(&mut self, required: &str, msg: Message) -> u64 {
        let route = &self.routes[required];
        let t0 = Instant::now();
        // The paper's mailbox send copies the message into the FIFO —
        // that copy is what makes Figure 4 linear in message size. A
        // refcounted clone would hide it, so materialize a real copy of
        // data payloads inside the timed region. With a pool attached
        // the copy lands in a recycled buffer and the sender's original
        // goes back on the free list — same copy, no allocation.
        let copy_payload = |pool: &Option<embera::BufferPool>, payload: bytes::Bytes| match pool {
            Some(pool) => {
                let copied = pool.take_from(payload.as_ref());
                pool.recycle(payload);
                copied
            }
            None => bytes::Bytes::from(payload.as_ref().to_vec()),
        };
        let msg = match msg {
            Message::Data(payload) => Message::Data(copy_payload(&self.pool, payload)),
            Message::Deadlined {
                payload,
                deadline_ns,
            } => Message::Deadlined {
                payload: copy_payload(&self.pool, payload),
                deadline_ns,
            },
            other => other,
        };
        route.push(msg);
        t0.elapsed().as_nanos() as u64
    }

    fn try_pop(&mut self, provided: &str) -> Option<(Message, u64)> {
        let mb = self.provided.get(provided)?;
        let buf = self.pending.get_mut(provided)?;
        let t0 = Instant::now();
        if let Some(m) = buf.pop_front() {
            return Some((m, t0.elapsed().as_nanos() as u64));
        }
        self.scratch.clear();
        if mb.pop_many(&mut self.scratch, DRAIN_BATCH) == 0 {
            return None;
        }
        let mut drained = self.scratch.drain(..);
        let first = drained.next().expect("pop_many reported non-zero drain");
        buf.extend(drained);
        Some((first, t0.elapsed().as_nanos() as u64))
    }

    fn poll_obs(&mut self) -> Option<Message> {
        // Clock- and allocation-free: this runs at every communication
        // point and the common case is "no request pending". Check the
        // stash first — `park_quiescent` may have parked a request there.
        if let Some(buf) = self.pending.get_mut(INTROSPECTION) {
            if let Some(m) = buf.pop_front() {
                return Some(m);
            }
        }
        self.provided.get(INTROSPECTION)?.try_pop()
    }

    fn queued_bytes(&self) -> u64 {
        // Bulk-drained messages waiting in `pending` are still queued
        // from the observer's point of view: count them with the
        // mailbox-resident bytes so the memory gauge is drain-agnostic.
        let in_flight: u64 = self
            .pending
            .values()
            .flat_map(|q| q.iter())
            .map(|m| m.data_len() as u64)
            .sum();
        let resident: u64 = self.provided.values().map(|m| m.queued_bytes()).sum();
        resident + in_flight
    }

    fn park_recv(&mut self, provided: &str, deadline_ns: Option<u64>) {
        let Some(mb) = self.provided.get(provided) else {
            return;
        };
        let mut slice = SERVICE_SLICE;
        if let Some(d) = deadline_ns {
            let remaining = Duration::from_nanos(d.saturating_sub(self.epoch.elapsed().as_nanos() as u64));
            slice = slice.min(remaining);
        }
        let popped = mb.pop_timeout(slice);
        if let Some(msg) = popped {
            if let Some(buf) = self.pending.get_mut(provided) {
                buf.push_back(msg);
            }
        }
    }

    fn park_quiescent(&mut self) -> bool {
        if self.observe {
            if let Some(mb) = self.provided.get(INTROSPECTION) {
                if let Some(msg) = mb.pop_timeout(Duration::from_millis(1)) {
                    if let Some(buf) = self.pending.get_mut(INTROSPECTION) {
                        buf.push_back(msg);
                    }
                }
                return true;
            }
        }
        // Observation disabled or no introspection mailbox: no request
        // can ever arrive, so park until shutdown wakes us instead of
        // burning 1 ms sleep-poll wakeups (the A1 ablation's idle cost).
        self.shutdown.wait();
        true
    }

    fn compute(&mut self, _work: Work) {
        // The SMP backend runs real code on real silicon; the annotation
        // carries no extra cost (it drives the simulated backend only).
    }

    fn behavior_finished(&mut self, error: Option<EmberaError>) {
        let (lock, cvar) = &*self.finish;
        if let Some(e) = error {
            lock.lock().errors.push((self.name.clone(), e));
            // Fail fast: a failed component aborts the application so
            // peers blocked in recv drain out with `Terminated` instead
            // of hanging.
            self.shutdown.signal();
        }
        if self.is_app_component {
            let mut st = lock.lock();
            st.finished += 1;
            cvar.notify_all();
        }
    }

    fn behavior_finished_contained(&mut self, error: EmberaError) {
        // OneForOne containment: record the failure but skip the
        // fail-fast shutdown so the rest of the application runs on.
        let (lock, cvar) = &*self.finish;
        let mut st = lock.lock();
        st.errors.push((self.name.clone(), error));
        if self.is_app_component {
            st.finished += 1;
            cvar.notify_all();
        }
    }

    fn queued_messages(&self) -> u64 {
        let in_flight: u64 = self
            .pending
            .iter()
            .filter(|(iface, _)| iface.as_str() != INTROSPECTION)
            .map(|(_, q)| q.len() as u64)
            .sum();
        let resident: u64 = self
            .provided
            .iter()
            .filter(|(iface, _)| iface.as_str() != INTROSPECTION)
            .map(|(_, mb)| mb.len() as u64)
            .sum();
        in_flight + resident
    }

    fn delay(&mut self, ns: u64) {
        std::thread::sleep(Duration::from_nanos(ns));
    }

    fn payload_pool(&self) -> Option<&embera::BufferPool> {
        self.pool.as_ref()
    }

    fn route_depth(&self, required: &str) -> Option<u64> {
        self.routes.get(required).map(|mb| mb.len() as u64)
    }

    fn inbox_depth(&self, provided: &str) -> u64 {
        let in_flight = self
            .pending
            .get(provided)
            .map(|q| q.len() as u64)
            .unwrap_or(0);
        let resident = self
            .provided
            .get(provided)
            .map(|mb| mb.len() as u64)
            .unwrap_or(0);
        in_flight + resident
    }

    fn drain_inboxes(&mut self) {
        for (iface, mb) in &self.provided {
            if iface == INTROSPECTION {
                continue;
            }
            if let Some(buf) = self.pending.get_mut(iface) {
                buf.clear();
            }
            while mb.try_pop().is_some() {}
        }
    }
}
