//! Property-based tests of the SMP mailbox: FIFO per producer and no
//! message loss, for both implementations.

use bytes::Bytes;
use proptest::prelude::*;

use embera::Message;
use embera_smp::{Mailbox, MailboxKind};

fn run_producers(kind: MailboxKind, per_producer: Vec<u16>) -> Vec<(u8, u16)> {
    let mb = Mailbox::new("p", kind);
    let mut handles = Vec::new();
    for (p, count) in per_producer.iter().enumerate() {
        let tx = mb.clone();
        let count = *count;
        handles.push(std::thread::spawn(move || {
            for i in 0..count {
                let mut payload = vec![p as u8];
                payload.extend_from_slice(&i.to_le_bytes());
                tx.push(Message::Data(Bytes::from(payload)));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut out = Vec::new();
    while let Some(Message::Data(b)) = mb.try_pop() {
        out.push((b[0], u16::from_le_bytes([b[1], b[2]])));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn no_loss_and_per_producer_fifo(
        counts in prop::collection::vec(0u16..200, 1..5),
        seg in any::<bool>(),
    ) {
        let kind = if seg { MailboxKind::SegQueue } else { MailboxKind::MutexCondvar };
        let drained = run_producers(kind, counts.clone());
        let expected_total: usize = counts.iter().map(|&c| c as usize).sum();
        prop_assert_eq!(drained.len(), expected_total, "no message may be lost");
        // Per-producer order must be preserved.
        for (p, &count) in counts.iter().enumerate() {
            let seq: Vec<u16> = drained
                .iter()
                .filter(|(pp, _)| *pp == p as u8)
                .map(|(_, i)| *i)
                .collect();
            prop_assert_eq!(seq, (0..count).collect::<Vec<_>>());
        }
    }
}
