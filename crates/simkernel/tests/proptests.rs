//! Property-based tests of the simulation kernel: determinism, clock
//! monotonicity, and channel FIFO order under arbitrary schedules.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use sim_kernel::{Kernel, KernelStats, SimChannel, Time};

/// Run a randomized workload: `workers` processes doing interleaved
/// advances and notifications, one collector waiting for all events.
fn run_workload(delays: &[Vec<u64>]) -> (Time, KernelStats, Vec<u64>) {
    let mut kernel = Kernel::new();
    let event = kernel.alloc_event();
    let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let total: usize = delays.iter().map(|d| d.len()).sum();

    for (i, seq) in delays.iter().enumerate() {
        let seq = seq.clone();
        let log = Arc::clone(&log);
        kernel.spawn(format!("w{i}"), move |ctx| {
            for d in seq {
                ctx.advance(d + 1);
                log.lock().push(ctx.now());
                ctx.notify(event);
            }
        });
    }
    let woken = Arc::new(AtomicU64::new(0));
    let w = Arc::clone(&woken);
    kernel.spawn("collector", move |ctx| {
        let mut seen = 0usize;
        while seen < total {
            ctx.wait_timeout(event, 1_000_000);
            seen += 1;
            w.fetch_add(1, Ordering::SeqCst);
        }
    });
    kernel.run().unwrap();
    let log = Arc::try_unwrap(log).ok().unwrap().into_inner();
    (kernel.now(), kernel.stats(), log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn identical_workloads_simulate_identically(
        delays in prop::collection::vec(
            prop::collection::vec(0u64..1000, 1..10), 1..6)
    ) {
        let a = run_workload(&delays);
        let b = run_workload(&delays);
        prop_assert_eq!(a.0, b.0, "final clock must match");
        prop_assert_eq!(a.1, b.1, "event counts must match");
        prop_assert_eq!(a.2, b.2, "observation order must match");
    }

    #[test]
    fn clock_is_monotone_and_bounded(
        delays in prop::collection::vec(
            prop::collection::vec(0u64..1000, 1..10), 1..6)
    ) {
        let (end, _, log) = run_workload(&delays);
        // Each worker's own observations are monotone; the merged log is
        // bounded by the final clock.
        prop_assert!(log.iter().all(|&t| t <= end));
        // Final clock equals the max per-worker cumulative delay
        // (workers run in parallel virtual time).
        let max_path: u64 = delays
            .iter()
            .map(|seq| seq.iter().map(|d| d + 1).sum::<u64>())
            .max()
            .unwrap_or(0);
        prop_assert!(end >= max_path, "end {} < longest path {}", end, max_path);
    }

    #[test]
    fn shard_boundary_merge_equals_global_heap_order(
        // Arbitrary (time, seq) keys with deliberate time collisions
        // (narrow time range), partitioned over 1–6 shard-local queues.
        entries in prop::collection::vec((0u64..64, 0u64..10_000), 0..200),
        shards in 1usize..6,
    ) {
        use sim_kernel::kernel::testkit::{boundary_merge_order, global_pop_order};
        let mut parts: Vec<Vec<(Time, u64)>> = vec![Vec::new(); shards];
        // Round-robin partition mirrors the kernel's process placement;
        // the property must hold for *any* partition, and round-robin
        // over arbitrary entry lists reaches them all.
        for (i, &e) in entries.iter().enumerate() {
            parts[i % shards].push(e);
        }
        prop_assert_eq!(
            boundary_merge_order(&parts),
            global_pop_order(&entries),
            "K-way boundary merge diverged from the single-heap schedule"
        );
    }

    #[test]
    fn channel_preserves_fifo_under_any_timing(
        gaps in prop::collection::vec(0u64..50, 1..100)
    ) {
        let mut kernel = Kernel::new();
        let ch: SimChannel<usize> = SimChannel::with_event(kernel.alloc_event());
        let tx = ch.clone();
        let gaps2 = gaps.clone();
        kernel.spawn("producer", move |ctx| {
            for (i, g) in gaps2.iter().enumerate() {
                ctx.advance(*g);
                tx.send(&ctx, i);
            }
        });
        let received = Arc::new(Mutex::new(Vec::new()));
        let r = Arc::clone(&received);
        let n = gaps.len();
        kernel.spawn("consumer", move |ctx| {
            for _ in 0..n {
                r.lock().push(ch.recv(&ctx));
            }
        });
        kernel.run().unwrap();
        let received = received.lock().clone();
        prop_assert_eq!(received, (0..n).collect::<Vec<_>>());
    }
}
