//! Differential tests for sharded execution: the windowed parallel mode
//! and the threadsafe fallback must reproduce the sequential kernel's
//! schedule exactly.

use std::sync::Arc;

use parking_lot::Mutex;
use sim_kernel::{Kernel, KernelConfig, KernelStats, LatentChannel, SimChannel, SimError, Time};

/// A PHOLD-style token ring: `procs` processes, each owning a
/// latency-`lat` inbox, forwarding tokens to its successor. With more
/// than one shard every hop crosses a shard boundary (successor pid =
/// pid + 1 lands in the next round-robin shard), exercising the window
/// protocol on its hardest case.
///
/// Every process injects one token that makes `hops` hops; each process
/// therefore receives exactly `hops` tokens. Returns the final virtual
/// time, the kernel stats, and each process's receive-time log.
fn phold(shards: usize, procs: usize, hops: u32, lat: Time, work: Time) -> PholdRun {
    let mut kernel = Kernel::with_config(KernelConfig::default().shards(shards));
    let channels: Vec<LatentChannel<u32>> = (0..procs)
        .map(|_| LatentChannel::new(&mut kernel, lat))
        .collect();
    let logs: Vec<Arc<Mutex<Vec<Time>>>> = (0..procs)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    for pid in 0..procs {
        let inbox = channels[pid].clone();
        let next = channels[(pid + 1) % procs].clone();
        let log = Arc::clone(&logs[pid]);
        kernel.spawn(format!("site{pid}"), move |ctx| {
            next.send(&ctx, hops);
            for _ in 0..hops {
                let remaining = inbox.recv(&ctx);
                log.lock().push(ctx.now());
                ctx.advance(work);
                if remaining > 1 {
                    next.send(&ctx, remaining - 1);
                }
            }
        });
    }
    kernel.run().unwrap();
    PholdRun {
        final_time: kernel.now(),
        stats: kernel.stats(),
        logs: logs.iter().map(|l| l.lock().clone()).collect(),
    }
}

#[derive(Debug, PartialEq, Eq)]
struct PholdRun {
    final_time: Time,
    stats: KernelStats,
    logs: Vec<Vec<Time>>,
}

impl PholdRun {
    /// Everything except the queue-depth gauge, which is measured
    /// per-shard-queue under windowed execution and globally otherwise.
    fn comparable(&self) -> (Time, u64, u64, u64, &Vec<Vec<Time>>) {
        (
            self.final_time,
            self.stats.events_dispatched,
            self.stats.processes_spawned,
            self.stats.notifications_delivered,
            &self.logs,
        )
    }
}

#[test]
fn windowed_execution_matches_sequential_for_any_shard_count() {
    let reference = phold(1, 8, 12, 1_000, 250);
    assert!(reference.stats.events_dispatched > 0);
    for shards in [2, 4] {
        let parallel = phold(shards, 8, 12, 1_000, 250);
        assert_eq!(
            reference.comparable(),
            parallel.comparable(),
            "shards={shards} diverged from the sequential schedule"
        );
    }
}

#[test]
fn windowed_execution_is_internally_deterministic() {
    // Two identical parallel runs: byte-identical including queue depth.
    let a = phold(4, 16, 10, 500, 125);
    let b = phold(4, 16, 10, 500, 125);
    assert_eq!(a, b);
}

#[test]
fn windowed_handles_work_exceeding_the_lookahead() {
    // Per-hop work much larger than the latency: windows frequently open
    // on one shard while others idle.
    let reference = phold(1, 6, 8, 100, 7_777);
    let parallel = phold(3, 6, 8, 100, 7_777);
    assert_eq!(reference.comparable(), parallel.comparable());
}

#[test]
fn windowed_horizon_pauses_and_resumes() {
    fn run(shards: usize) -> (Time, Time, u64) {
        let mut kernel = Kernel::with_config(KernelConfig::default().shards(shards));
        let ch: Vec<LatentChannel<u32>> = (0..4)
            .map(|_| LatentChannel::new(&mut kernel, 1_000))
            .collect();
        for pid in 0..4usize {
            let inbox = ch[pid].clone();
            let next = ch[(pid + 1) % 4].clone();
            kernel.spawn(format!("p{pid}"), move |ctx| {
                next.send(&ctx, 6u32);
                for _ in 0..6 {
                    let r = inbox.recv(&ctx);
                    ctx.advance(100);
                    if r > 1 {
                        next.send(&ctx, r - 1);
                    }
                }
            });
        }
        let mid = kernel.run_until(2_500).unwrap();
        assert_eq!(mid, sim_kernel::RunOutcome::Horizon);
        let mid_time = kernel.now();
        kernel.run().unwrap();
        (mid_time, kernel.now(), kernel.stats().events_dispatched)
    }
    assert_eq!(run(1), run(2));
    assert_eq!(run(1), run(4));
}

#[test]
fn zero_latency_cross_shard_notify_is_a_lookahead_violation() {
    // Force windowed mode with an explicit lookahead, then communicate
    // through a zero-time channel whose endpoints sit in different
    // shards: the kernel must abort loudly instead of racing.
    let mut kernel = Kernel::with_config(KernelConfig::default().shards(2).lookahead(100));
    let ch: SimChannel<u32> = SimChannel::with_event(kernel.alloc_event());
    let rx = ch.clone();
    kernel.spawn("receiver", move |ctx| {
        let v = rx.recv(&ctx);
        assert_eq!(v, 1);
    });
    kernel.spawn("sender", move |ctx| {
        ctx.advance(250);
        ch.send(&ctx, 1);
    });
    match kernel.run() {
        Err(SimError::LookaheadViolation { detail, .. }) => {
            assert!(detail.contains("cross-shard"), "unexpected detail: {detail}");
        }
        other => panic!("expected a lookahead violation, got {other:?}"),
    }
}

#[test]
fn short_notify_after_is_a_lookahead_violation() {
    let mut kernel = Kernel::with_config(KernelConfig::default().shards(2).lookahead(1_000));
    let event = kernel.alloc_event();
    kernel.spawn("waiter", move |ctx| ctx.wait(event));
    kernel.spawn("notifier", move |ctx| {
        ctx.advance(10);
        ctx.notify_after(event, 5); // 5 < lookahead 1000
    });
    match kernel.run() {
        Err(SimError::LookaheadViolation { detail, .. }) => {
            assert!(detail.contains("shorter"), "unexpected detail: {detail}");
        }
        other => panic!("expected a lookahead violation, got {other:?}"),
    }
}

#[test]
fn in_window_spawn_is_a_lookahead_violation() {
    let mut kernel = Kernel::with_config(KernelConfig::default().shards(2).lookahead(1_000));
    kernel.spawn("other", |ctx| ctx.advance(5_000));
    kernel.spawn("parent", move |ctx| {
        ctx.advance(10);
        ctx.spawn("child", |c| c.advance(1));
        ctx.advance(10);
    });
    match kernel.run() {
        Err(SimError::LookaheadViolation { detail, .. }) => {
            assert!(detail.contains("spawned"), "unexpected detail: {detail}");
        }
        other => panic!("expected a lookahead violation, got {other:?}"),
    }
}

#[test]
fn intra_shard_zero_time_channels_work_under_windowing() {
    // Both endpoints pinned to shard 0: zero-delay wakeups stay local and
    // are legal inside a window; a latency channel elsewhere keeps the
    // kernel in windowed mode.
    fn run(shards: usize) -> (Time, u64) {
        let mut kernel = Kernel::with_config(KernelConfig::default().shards(shards));
        let zero: SimChannel<u32> = SimChannel::with_event(kernel.alloc_event());
        let latent: LatentChannel<u32> = LatentChannel::new(&mut kernel, 500);
        let (tx, rx) = (zero.clone(), zero);
        let (ltx, lrx) = (latent.clone(), latent);
        kernel.spawn_on(0, "local-producer", move |ctx| {
            for i in 0..20 {
                ctx.advance(40);
                tx.send(&ctx, i);
            }
        });
        kernel.spawn_on(0, "bridge", move |ctx| {
            for _ in 0..20 {
                let v = rx.recv(&ctx);
                ltx.send(&ctx, v);
            }
        });
        kernel.spawn_on(1, "remote-sink", move |ctx| {
            for i in 0..20 {
                assert_eq!(lrx.recv(&ctx), i);
            }
        });
        kernel.run().unwrap();
        (kernel.now(), kernel.stats().events_dispatched)
    }
    assert_eq!(run(1), run(2));
}
