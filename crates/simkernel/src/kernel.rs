//! The discrete-event kernel: event queue, scheduling loop, determinism.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::error::{DeadlockInfo, SimError};
use crate::process::{
    process_main, Directory, EventId, Pid, Rendezvous, ResumeKind, SharedClock, SideEffects,
    SimCtx, YieldReason,
};
use crate::Time;

/// Outcome of [`Kernel::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// All non-daemon processes completed.
    Completed,
    /// The horizon was reached with work still pending.
    Horizon,
}

/// Aggregate statistics about a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Number of events dispatched.
    pub events_dispatched: u64,
    /// Number of processes ever spawned.
    pub processes_spawned: u64,
    /// Number of event notifications delivered to waiters.
    pub notifications_delivered: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueueItem {
    Resume(Pid, ResumeKind),
    /// Timeout check for a process that issued `wait_timeout`; `epoch`
    /// invalidates the check if the process was notified first.
    Timeout(Pid, u64),
}

#[derive(PartialEq, Eq)]
struct Entry {
    time: Time,
    seq: u64,
    item: QueueItem,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Runnable,
    Waiting { event: EventId, epoch: u64 },
    Done,
}

struct ProcEntry {
    name: String,
    rendezvous: Arc<Rendezvous>,
    handle: Option<JoinHandle<()>>,
    state: ProcState,
    daemon: bool,
    /// Bumped every time the process blocks; stale timeout checks compare
    /// against it.
    wait_epoch: u64,
}

/// Deterministic discrete-event simulation kernel.
///
/// See the [crate-level documentation](crate) for the execution model.
pub struct Kernel {
    procs: Vec<ProcEntry>,
    queue: BinaryHeap<Reverse<Entry>>,
    waiters: HashMap<EventId, Vec<Pid>>,
    clock: Arc<SharedClock>,
    effects: Arc<SideEffects>,
    directory: Arc<Directory>,
    seq: u64,
    stats: KernelStats,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Create an empty kernel at virtual time zero.
    pub fn new() -> Self {
        Kernel {
            procs: Vec::new(),
            queue: BinaryHeap::new(),
            waiters: HashMap::new(),
            clock: Arc::new(SharedClock::new()),
            effects: Arc::new(SideEffects::default()),
            directory: Arc::new(Directory::default()),
            seq: 0,
            stats: KernelStats::default(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.clock.now.load(Ordering::Acquire)
    }

    /// Statistics for the run so far.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Allocate a fresh event token from outside the simulation.
    pub fn alloc_event(&self) -> EventId {
        EventId(self.clock.next_event_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Spawn a simulated process; it becomes runnable at the current
    /// virtual time. Returns its [`Pid`].
    pub fn spawn<F>(&mut self, name: impl Into<String>, body: F) -> Pid
    where
        F: FnOnce(SimCtx) + Send + 'static,
    {
        self.spawn_inner(name.into(), Box::new(body), false, None)
    }

    /// Spawn a *daemon* process: the simulation is considered complete
    /// once every non-daemon process has finished, even if daemons are
    /// still blocked or have pending events.
    pub fn spawn_daemon<F>(&mut self, name: impl Into<String>, body: F) -> Pid
    where
        F: FnOnce(SimCtx) + Send + 'static,
    {
        self.spawn_inner(name.into(), Box::new(body), true, None)
    }

    fn spawn_inner(
        &mut self,
        name: String,
        body: Box<dyn FnOnce(SimCtx) + Send + 'static>,
        daemon: bool,
        reserved: Option<Pid>,
    ) -> Pid {
        // Pids are allocated by the shared directory so runtime spawns
        // (which reserve before the kernel materializes them) stay
        // aligned with the kernel's process table.
        let pid = reserved.unwrap_or_else(|| self.directory.reserve(self.alloc_event()));
        debug_assert_eq!(pid, self.procs.len(), "directory/kernel pid skew");
        let rendezvous = Arc::new(Rendezvous::default());
        let ctx = SimCtx {
            pid,
            name: name.clone(),
            rendezvous: Arc::clone(&rendezvous),
            clock: Arc::clone(&self.clock),
            effects: Arc::clone(&self.effects),
            directory: Arc::clone(&self.directory),
        };
        let thread_name = format!("sim:{name}");
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || process_main(ctx, body))
            .expect("failed to spawn simulated process thread");
        self.procs.push(ProcEntry {
            name,
            rendezvous,
            handle: Some(handle),
            state: ProcState::Runnable,
            daemon,
            wait_epoch: 0,
        });
        self.stats.processes_spawned += 1;
        let now = self.now();
        self.push(now, QueueItem::Resume(pid, ResumeKind::Scheduled));
        pid
    }

    /// Notify an event from outside the simulation (e.g. test drivers).
    /// Waiters are woken at the current virtual time.
    pub fn notify(&mut self, event: EventId) {
        self.deliver_notification(event);
    }

    /// Has the process finished?
    pub fn is_done(&self, pid: Pid) -> bool {
        self.procs[pid].state == ProcState::Done
    }

    /// Name of a process.
    pub fn process_name(&self, pid: Pid) -> &str {
        &self.procs[pid].name
    }

    fn push(&mut self, time: Time, item: QueueItem) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Entry { time, seq, item }));
    }

    fn deliver_notification(&mut self, event: EventId) {
        if let Some(waiters) = self.waiters.remove(&event) {
            let now = self.now();
            for pid in waiters {
                // The waiter's epoch advances so stale timeout checks
                // become no-ops.
                self.procs[pid].wait_epoch += 1;
                self.procs[pid].state = ProcState::Runnable;
                self.stats.notifications_delivered += 1;
                self.push(now, QueueItem::Resume(pid, ResumeKind::Notified));
            }
        }
    }

    fn drain_side_effects(&mut self) {
        // Notifications first: a process that notified an event during its
        // slice wakes waiters *registered before its slice*; its own
        // subsequent wait (handled by the caller) is not self-woken.
        loop {
            let next = self.effects.notifications.lock().pop_front();
            match next {
                Some(event) => self.deliver_notification(event),
                None => break,
            }
        }
        loop {
            let next = self.effects.spawns.lock().pop_front();
            match next {
                Some((name, body, pid)) => {
                    self.spawn_inner(name, body, false, Some(pid));
                }
                None => break,
            }
        }
    }

    fn all_non_daemons_done(&self) -> bool {
        self.procs
            .iter()
            .all(|p| p.daemon || p.state == ProcState::Done)
    }

    /// Run the simulation until all non-daemon processes complete.
    pub fn run(&mut self) -> Result<(), SimError> {
        match self.run_until(Time::MAX)? {
            RunOutcome::Completed => Ok(()),
            RunOutcome::Horizon => unreachable!("horizon is Time::MAX"),
        }
    }

    /// Run the simulation until all non-daemon processes complete or the
    /// virtual clock would pass `horizon`.
    pub fn run_until(&mut self, horizon: Time) -> Result<RunOutcome, SimError> {
        loop {
            if self.all_non_daemons_done() && !self.procs.is_empty() {
                return Ok(RunOutcome::Completed);
            }
            let entry = match self.queue.pop() {
                Some(Reverse(e)) => e,
                None => {
                    if self.all_non_daemons_done() {
                        return Ok(RunOutcome::Completed);
                    }
                    let blocked = self
                        .procs
                        .iter()
                        .filter(|p| matches!(p.state, ProcState::Waiting { .. }) && !p.daemon)
                        .map(|p| p.name.clone())
                        .collect();
                    return Err(SimError::Deadlock(DeadlockInfo {
                        at: self.now(),
                        blocked,
                    }));
                }
            };
            if entry.time > horizon {
                // Not consumed: push back so a later run_until can resume.
                self.queue.push(Reverse(entry));
                self.clock.now.store(horizon, Ordering::Release);
                return Ok(RunOutcome::Horizon);
            }
            debug_assert!(entry.time >= self.now(), "time went backwards");
            self.clock.now.store(entry.time, Ordering::Release);
            match entry.item {
                QueueItem::Timeout(pid, epoch) => {
                    let stale = self.procs[pid].wait_epoch != epoch
                        || !matches!(self.procs[pid].state, ProcState::Waiting { .. });
                    if stale {
                        continue;
                    }
                    if let ProcState::Waiting { event, .. } = self.procs[pid].state {
                        if let Some(ws) = self.waiters.get_mut(&event) {
                            ws.retain(|&w| w != pid);
                            if ws.is_empty() {
                                self.waiters.remove(&event);
                            }
                        }
                    }
                    self.procs[pid].wait_epoch += 1;
                    self.procs[pid].state = ProcState::Runnable;
                    self.dispatch(pid, ResumeKind::TimedOut)?;
                }
                QueueItem::Resume(pid, kind) => {
                    if self.procs[pid].state == ProcState::Done {
                        continue;
                    }
                    self.dispatch(pid, kind)?;
                }
            }
        }
    }

    /// Resume `pid`, wait for its yield, then apply side effects and the
    /// yield reason.
    fn dispatch(&mut self, pid: Pid, kind: ResumeKind) -> Result<(), SimError> {
        self.stats.events_dispatched += 1;
        let reason = self.procs[pid].rendezvous.resume_and_wait(kind);
        self.drain_side_effects();
        let now = self.now();
        match reason {
            YieldReason::Advance(dt) => {
                self.push(now.saturating_add(dt), QueueItem::Resume(pid, ResumeKind::Scheduled));
            }
            YieldReason::YieldNow => {
                self.push(now, QueueItem::Resume(pid, ResumeKind::Scheduled));
            }
            YieldReason::Wait(event) => {
                let epoch = self.procs[pid].wait_epoch;
                self.procs[pid].state = ProcState::Waiting { event, epoch };
                self.waiters.entry(event).or_default().push(pid);
            }
            YieldReason::WaitTimeout(event, dt) => {
                let epoch = self.procs[pid].wait_epoch;
                self.procs[pid].state = ProcState::Waiting { event, epoch };
                self.waiters.entry(event).or_default().push(pid);
                self.push(now.saturating_add(dt), QueueItem::Timeout(pid, epoch));
            }
            YieldReason::Done => {
                self.procs[pid].state = ProcState::Done;
                let completion = self.directory.mark_finished(pid);
                self.deliver_notification(completion);
                if let Some(handle) = self.procs[pid].handle.take() {
                    let _ = handle.join();
                }
            }
            YieldReason::Panicked(message) => {
                self.procs[pid].state = ProcState::Done;
                let completion = self.directory.mark_finished(pid);
                self.deliver_notification(completion);
                let name = self.procs[pid].name.clone();
                if let Some(handle) = self.procs[pid].handle.take() {
                    let _ = handle.join();
                }
                return Err(SimError::ProcessPanicked { name, message });
            }
        }
        Ok(())
    }
}

impl Drop for Kernel {
    fn drop(&mut self) {
        // Unblock and join every process thread that is still parked.
        self.clock.shutting_down.store(true, Ordering::Release);
        for proc in &mut self.procs {
            if proc.state != ProcState::Done {
                proc.rendezvous.kill();
            }
            if let Some(handle) = proc.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering as AOrd};
    use std::sync::Arc;

    #[test]
    fn empty_kernel_completes() {
        let mut k = Kernel::new();
        assert!(k.run().is_ok());
        assert_eq!(k.now(), 0);
    }

    #[test]
    fn single_process_advances_time() {
        let mut k = Kernel::new();
        k.spawn("p", |ctx| {
            ctx.advance(10);
            ctx.advance(32);
        });
        k.run().unwrap();
        assert_eq!(k.now(), 42);
    }

    #[test]
    fn notify_wakes_waiter_at_notifier_time() {
        let mut k = Kernel::new();
        let e = k.alloc_event();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        k.spawn("waiter", move |ctx| {
            ctx.wait(e);
            seen2.store(ctx.now(), AOrd::SeqCst);
        });
        k.spawn("notifier", move |ctx| {
            ctx.advance(777);
            ctx.notify(e);
        });
        k.run().unwrap();
        assert_eq!(seen.load(AOrd::SeqCst), 777);
    }

    #[test]
    fn wait_timeout_fires_without_notification() {
        let mut k = Kernel::new();
        let e = k.alloc_event();
        let fired = Arc::new(AtomicU64::new(99));
        let f = Arc::clone(&fired);
        k.spawn("p", move |ctx| {
            let ok = ctx.wait_timeout(e, 50);
            f.store(u64::from(ok), AOrd::SeqCst);
            assert_eq!(ctx.now(), 50);
        });
        k.run().unwrap();
        assert_eq!(fired.load(AOrd::SeqCst), 0);
    }

    #[test]
    fn wait_timeout_notified_before_deadline() {
        let mut k = Kernel::new();
        let e = k.alloc_event();
        let fired = Arc::new(AtomicU64::new(99));
        let f = Arc::clone(&fired);
        k.spawn("p", move |ctx| {
            let ok = ctx.wait_timeout(e, 5_000);
            f.store(u64::from(ok), AOrd::SeqCst);
            assert_eq!(ctx.now(), 10);
        });
        k.spawn("n", move |ctx| {
            ctx.advance(10);
            ctx.notify(e);
        });
        k.run().unwrap();
        assert_eq!(fired.load(AOrd::SeqCst), 1);
    }

    #[test]
    fn deadlock_is_detected_and_named() {
        let mut k = Kernel::new();
        let e = k.alloc_event();
        k.spawn("stuck", move |ctx| {
            ctx.wait(e);
        });
        match k.run() {
            Err(SimError::Deadlock(info)) => {
                assert_eq!(info.blocked, vec!["stuck".to_string()]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn daemon_does_not_block_completion() {
        let mut k = Kernel::new();
        let e = k.alloc_event();
        k.spawn_daemon("idle", move |ctx| {
            ctx.wait(e); // never notified
        });
        k.spawn("work", |ctx| ctx.advance(5));
        k.run().unwrap();
        assert_eq!(k.now(), 5);
    }

    #[test]
    fn process_panic_is_reported() {
        let mut k = Kernel::new();
        k.spawn("bad", |_ctx| panic!("boom"));
        match k.run() {
            Err(SimError::ProcessPanicked { name, message }) => {
                assert_eq!(name, "bad");
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn runtime_spawn_runs_child() {
        let mut k = Kernel::new();
        let sum = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&sum);
        k.spawn("parent", move |ctx| {
            ctx.advance(3);
            let s2 = Arc::clone(&s);
            ctx.spawn("child", move |c| {
                c.advance(4);
                s2.store(c.now(), AOrd::SeqCst);
            });
            ctx.advance(100);
        });
        k.run().unwrap();
        assert_eq!(sum.load(AOrd::SeqCst), 7);
    }

    #[test]
    fn join_waits_for_child() {
        let mut k = Kernel::new();
        k.spawn("parent", |ctx| {
            let child = ctx.spawn("child", |c| {
                c.advance(500);
            });
            ctx.join(child);
            assert_eq!(ctx.now(), 500);
        });
        k.run().unwrap();
    }

    #[test]
    fn join_on_finished_process_returns_immediately() {
        let mut k = Kernel::new();
        k.spawn("parent", |ctx| {
            let child = ctx.spawn("quick", |_c| {});
            ctx.advance(1_000); // child finishes long before the join
            let before = ctx.now();
            ctx.join(child);
            assert_eq!(ctx.now(), before);
        });
        k.run().unwrap();
    }

    #[test]
    fn join_multiple_children_in_any_order() {
        let mut k = Kernel::new();
        k.spawn("parent", |ctx| {
            let slow = ctx.spawn("slow", |c| c.advance(900));
            let fast = ctx.spawn("fast", |c| c.advance(100));
            ctx.join(slow);
            ctx.join(fast);
            assert_eq!(ctx.now(), 900);
        });
        k.run().unwrap();
    }

    #[test]
    fn horizon_pauses_and_resumes() {
        let mut k = Kernel::new();
        k.spawn("p", |ctx| {
            ctx.advance(100);
            ctx.advance(100);
        });
        assert_eq!(k.run_until(150).unwrap(), RunOutcome::Horizon);
        assert_eq!(k.now(), 150);
        assert_eq!(k.run_until(1_000).unwrap(), RunOutcome::Completed);
        assert_eq!(k.now(), 200);
    }

    #[test]
    fn same_time_events_dispatch_in_fifo_order() {
        let mut k = Kernel::new();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..8 {
            let o = Arc::clone(&order);
            k.spawn(format!("p{i}"), move |ctx| {
                ctx.advance(10);
                o.lock().push(i);
            });
        }
        k.run().unwrap();
        assert_eq!(*order.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn determinism_two_runs_identical_stats() {
        fn run_once() -> (Time, KernelStats) {
            let mut k = Kernel::new();
            let e = k.alloc_event();
            for i in 0..10u64 {
                k.spawn(format!("w{i}"), move |ctx| {
                    ctx.advance(i * 7 + 1);
                    ctx.notify(e);
                    ctx.advance(3);
                });
            }
            k.spawn("collector", move |ctx| {
                for _ in 0..10 {
                    ctx.wait(e);
                }
            });
            k.run().unwrap();
            (k.now(), k.stats())
        }
        assert_eq!(run_once(), run_once());
    }
}
