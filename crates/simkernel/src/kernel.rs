//! The discrete-event kernel: event queue, scheduling loop, determinism,
//! and the sharded parallel execution modes.
//!
//! # Execution modes
//!
//! The kernel picks one of three algorithms from its [`KernelConfig`]:
//!
//! * **Sequential** (`shards == 1`, the default): the classic single
//!   `BinaryHeap` loop — one event popped at a time in `(time, seq)`
//!   order.
//! * **Threadsafe fallback** (`shards > 1`, lookahead `0`): the *same*
//!   sequential algorithm running over a shared
//!   `Mutex<BinaryHeap<Reverse<Entry>>>`. Whenever the minimum
//!   cross-shard channel latency collapses to zero there is no sound
//!   window to run shards concurrently in, so the kernel degrades to
//!   this queue and stays byte-identical to sequential execution by
//!   construction — correctness never depends on the partition.
//! * **Windowed parallel** (`shards > 1`, lookahead `> 0`): conservative
//!   parallel discrete-event simulation. Processes are partitioned into
//!   shards, each shard owns a local event heap, and all shards advance
//!   concurrently inside the time window `[T, T + lookahead)` where `T`
//!   is the global minimum pending event time. Cross-shard communication
//!   must use [`SimCtx::notify_after`] with `dt >= lookahead` (e.g. via
//!   [`LatentChannel`](crate::channel::LatentChannel)); deliveries are
//!   exchanged only at window boundaries and merged in the canonical
//!   `(time, producer pid, dispatch index, effect index)` order, so the
//!   schedule is independent of how shards interleave on the host.
//!
//! # Why determinism survives windowing
//!
//! Within a shard, events run in local `(time, seq)` order — the same
//! relative order the sequential kernel would use for that subset,
//! because a shard's pushes happen in its own dispatch order. Across
//! shards, the only interactions are timed notifications, which carry a
//! partition-independent tag and are applied single-threaded at window
//! boundaries in tag order with fresh global sequence numbers. Per-window
//! sequence numbers are drawn from disjoint per-shard blocks so no two
//! shards can mint the same `(time, seq)` key, and the block base always
//! exceeds every previously assigned number, preserving the global
//! old-before-new tie-break at equal times. Violations of the protocol
//! (zero-delay cross-shard wakeups, in-window spawns, `dt < lookahead`)
//! are *errors*, not silent nondeterminism — see
//! [`SimError::LookaheadViolation`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::error::{DeadlockInfo, SimError};
use crate::process::{
    process_main, Directory, EventId, Pid, Rendezvous, ResumeKind, SharedClock, SideEffects,
    SimCtx, YieldReason,
};
use crate::Time;

/// Per-window sequence numbers are drawn from disjoint per-shard blocks
/// of this size; the global counter jumps past all blocks at each window
/// boundary.
const SEQ_BLOCK: u64 = 1 << 32;

/// Outcome of [`Kernel::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// All non-daemon processes completed.
    Completed,
    /// The horizon was reached with work still pending.
    Horizon,
}

/// How the kernel executes: number of shards, the conservative window
/// width, and event-queue pre-sizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelConfig {
    /// Number of process shards. `1` (the default) is the sequential
    /// kernel; `> 1` enables the parallel modes described in the
    /// [module docs](self).
    pub shards: usize,
    /// Conservative window width in virtual nanoseconds. `0` (the
    /// default) derives the lookahead from the minimum latency declared
    /// by [`Kernel::declare_latency`] (e.g. by
    /// [`LatentChannel`](crate::channel::LatentChannel)); if latencies
    /// are declared *and* this is set, the smaller wins.
    pub lookahead: Time,
    /// Initial capacity of the event queue. Spawning grows it ahead of
    /// demand (twice the process count) so heap regrowth stays out of
    /// alloc-sensitive measurement loops.
    pub queue_capacity: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            shards: 1,
            lookahead: 0,
            queue_capacity: 64,
        }
    }
}

impl KernelConfig {
    /// Set the shard count (clamped to at least 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Set an explicit lookahead window.
    pub fn lookahead(mut self, lookahead: Time) -> Self {
        self.lookahead = lookahead;
        self
    }

    /// Set the initial event-queue capacity.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }
}

/// Aggregate statistics about a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Number of events dispatched.
    pub events_dispatched: u64,
    /// Number of processes ever spawned.
    pub processes_spawned: u64,
    /// Number of event notifications delivered to waiters.
    pub notifications_delivered: u64,
    /// High-water mark of the event queue (per shard-local queue under
    /// windowed execution), for sizing [`KernelConfig::queue_capacity`].
    pub max_queue_depth: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueueItem {
    Resume(Pid, ResumeKind),
    /// Timeout check for a process that issued `wait_timeout`; `epoch`
    /// invalidates the check if the process was notified first.
    Timeout(Pid, u64),
}

impl QueueItem {
    fn pid(&self) -> Pid {
        match *self {
            QueueItem::Resume(pid, _) | QueueItem::Timeout(pid, _) => pid,
        }
    }
}

#[derive(PartialEq, Eq)]
struct Entry {
    time: Time,
    seq: u64,
    item: QueueItem,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Partition-independent identity of one side effect: which process
/// produced it, during which of its dispatches, at which position in the
/// effect stream of that dispatch. Together with the delivery time this
/// totally orders timed notifications the same way for every shard
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EffectTag {
    pid: Pid,
    dispatch: u64,
    effect: u32,
}

/// A deferred notification: deliver `event` at `time`, ordered by
/// `(time, tag)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct TimedEntry {
    time: Time,
    tag: EffectTag,
    event: EventId,
}

/// A registered waiter, remembering the `(time, seq)` of the dispatch
/// that registered it. Wakeups are applied in this order — which is
/// exactly registration order under sequential execution, and the
/// canonical cross-shard order under windowed execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Waiter {
    pid: Pid,
    reg: (Time, u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Runnable,
    Waiting { event: EventId, epoch: u64 },
    Done,
}

struct ProcEntry {
    name: String,
    shard: usize,
    rendezvous: Arc<Rendezvous>,
    effects: Arc<SideEffects>,
    handle: Option<JoinHandle<()>>,
    state: ProcState,
    daemon: bool,
    /// Bumped every time the process blocks; stale timeout checks compare
    /// against it.
    wait_epoch: u64,
    /// Total dispatches of this process, the middle component of
    /// [`EffectTag`].
    dispatch_count: u64,
}

/// The event queue behind the sequential loop: a plain heap, or the
/// shared mutex-protected heap the zero-lookahead fallback runs on.
enum EventQueue {
    Local(BinaryHeap<Reverse<Entry>>),
    Shared(Arc<Mutex<BinaryHeap<Reverse<Entry>>>>),
}

impl EventQueue {
    fn new(shared: bool, capacity: usize) -> Self {
        if shared {
            EventQueue::Shared(Arc::new(Mutex::new(BinaryHeap::with_capacity(capacity))))
        } else {
            EventQueue::Local(BinaryHeap::with_capacity(capacity))
        }
    }

    /// Push an entry, returning the queue depth after the push.
    fn push(&mut self, entry: Entry) -> usize {
        match self {
            EventQueue::Local(h) => {
                h.push(Reverse(entry));
                h.len()
            }
            EventQueue::Shared(m) => {
                let mut h = m.lock();
                h.push(Reverse(entry));
                h.len()
            }
        }
    }

    fn pop(&mut self) -> Option<Entry> {
        match self {
            EventQueue::Local(h) => h.pop().map(|Reverse(e)| e),
            EventQueue::Shared(m) => m.lock().pop().map(|Reverse(e)| e),
        }
    }

    fn peek_key(&self) -> Option<(Time, u64)> {
        match self {
            EventQueue::Local(h) => h.peek().map(|Reverse(e)| (e.time, e.seq)),
            EventQueue::Shared(m) => m.lock().peek().map(|Reverse(e)| (e.time, e.seq)),
        }
    }

    fn len(&self) -> usize {
        match self {
            EventQueue::Local(h) => h.len(),
            EventQueue::Shared(m) => m.lock().len(),
        }
    }

    /// Grow the backing heap so at least `want` entries fit without
    /// reallocation.
    fn ensure_capacity(&mut self, want: usize) {
        match self {
            EventQueue::Local(h) => {
                if h.capacity() < want {
                    h.reserve(want - h.len());
                }
            }
            EventQueue::Shared(m) => {
                let mut h = m.lock();
                if h.capacity() < want {
                    let len = h.len();
                    h.reserve(want - len);
                }
            }
        }
    }
}

/// Deterministic discrete-event simulation kernel.
///
/// See the [crate-level documentation](crate) for the execution model and
/// the [module documentation](self) for the sharded modes.
pub struct Kernel {
    config: KernelConfig,
    procs: Vec<ProcEntry>,
    queue: EventQueue,
    /// Deferred notifications ([`SimCtx::notify_after`]), delivered in
    /// canonical `(time, tag)` order.
    timed: BinaryHeap<Reverse<TimedEntry>>,
    waiters: HashMap<EventId, Vec<Waiter>>,
    clock: Arc<SharedClock>,
    /// One virtual-time cell per shard, read by that shard's processes.
    shard_clocks: Vec<Arc<AtomicU64>>,
    directory: Arc<Directory>,
    seq: u64,
    stats: KernelStats,
    /// Minimum latency declared by channels, the default lookahead.
    min_latency: Option<Time>,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Create an empty sequential kernel at virtual time zero.
    pub fn new() -> Self {
        Self::with_config(KernelConfig::default())
    }

    /// Create an empty kernel with an explicit execution configuration.
    pub fn with_config(config: KernelConfig) -> Self {
        let shards = config.shards.max(1);
        Kernel {
            procs: Vec::new(),
            queue: EventQueue::new(shards > 1, config.queue_capacity),
            timed: BinaryHeap::new(),
            waiters: HashMap::new(),
            clock: Arc::new(SharedClock::new()),
            shard_clocks: (0..shards).map(|_| Arc::new(AtomicU64::new(0))).collect(),
            directory: Arc::new(Directory::default()),
            seq: 0,
            stats: KernelStats::default(),
            min_latency: None,
            config,
        }
    }

    /// The execution configuration this kernel was built with.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.clock.now.load(Ordering::Acquire)
    }

    /// Statistics for the run so far.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Allocate a fresh event token from outside the simulation.
    pub fn alloc_event(&self) -> EventId {
        EventId(self.clock.next_event_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Record that some channel in the simulation carries `latency`
    /// nanoseconds of modeled delay. The minimum declared latency is the
    /// default lookahead for windowed execution; declaring `0` collapses
    /// the lookahead and forces the threadsafe fallback.
    pub fn declare_latency(&mut self, latency: Time) {
        self.min_latency = Some(match self.min_latency {
            Some(cur) => cur.min(latency),
            None => latency,
        });
    }

    /// The window width windowed execution would use: the explicit
    /// [`KernelConfig::lookahead`] and/or the minimum declared channel
    /// latency, whichever is smaller (0 = no sound window, fallback).
    pub fn effective_lookahead(&self) -> Time {
        match (self.config.lookahead, self.min_latency) {
            (0, Some(m)) => m,
            (la, Some(m)) => la.min(m),
            (la, None) => la,
        }
    }

    /// Spawn a simulated process; it becomes runnable at the current
    /// virtual time. Returns its [`Pid`]. Processes are assigned to
    /// shards round-robin (`pid % shards`); use [`Kernel::spawn_on`] to
    /// pin placement.
    pub fn spawn<F>(&mut self, name: impl Into<String>, body: F) -> Pid
    where
        F: FnOnce(SimCtx) + Send + 'static,
    {
        self.spawn_inner(name.into(), Box::new(body), false, None, None)
    }

    /// Spawn a process pinned to a shard (`shard % shards`, so callers
    /// may pass a natural affinity key such as a CPU index directly).
    pub fn spawn_on<F>(&mut self, shard: usize, name: impl Into<String>, body: F) -> Pid
    where
        F: FnOnce(SimCtx) + Send + 'static,
    {
        self.spawn_inner(name.into(), Box::new(body), false, None, Some(shard))
    }

    /// Spawn a *daemon* process: the simulation is considered complete
    /// once every non-daemon process has finished, even if daemons are
    /// still blocked or have pending events.
    pub fn spawn_daemon<F>(&mut self, name: impl Into<String>, body: F) -> Pid
    where
        F: FnOnce(SimCtx) + Send + 'static,
    {
        self.spawn_inner(name.into(), Box::new(body), true, None, None)
    }

    fn spawn_inner(
        &mut self,
        name: String,
        body: Box<dyn FnOnce(SimCtx) + Send + 'static>,
        daemon: bool,
        reserved: Option<Pid>,
        shard_hint: Option<usize>,
    ) -> Pid {
        // Pids are allocated by the shared directory so runtime spawns
        // (which reserve before the kernel materializes them) stay
        // aligned with the kernel's process table.
        let pid = reserved.unwrap_or_else(|| self.directory.reserve(self.alloc_event()));
        debug_assert_eq!(pid, self.procs.len(), "directory/kernel pid skew");
        let nshards = self.shard_clocks.len();
        let shard = shard_hint.map_or(pid % nshards, |s| s % nshards);
        let rendezvous = Arc::new(Rendezvous::default());
        let effects = Arc::new(SideEffects::default());
        let ctx = SimCtx {
            pid,
            name: name.clone(),
            rendezvous: Arc::clone(&rendezvous),
            clock: Arc::clone(&self.clock),
            now_cell: Arc::clone(&self.shard_clocks[shard]),
            effects: Arc::clone(&effects),
            directory: Arc::clone(&self.directory),
        };
        let thread_name = format!("sim:{name}");
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || process_main(ctx, body))
            .expect("failed to spawn simulated process thread");
        self.procs.push(ProcEntry {
            name,
            shard,
            rendezvous,
            effects,
            handle: Some(handle),
            state: ProcState::Runnable,
            daemon,
            wait_epoch: 0,
            dispatch_count: 0,
        });
        self.stats.processes_spawned += 1;
        // Pre-size ahead of demand: each process typically keeps at most
        // a resume plus a timeout in flight.
        self.queue.ensure_capacity(self.procs.len() * 2);
        let now = self.now();
        self.push(now, QueueItem::Resume(pid, ResumeKind::Scheduled));
        pid
    }

    /// Notify an event from outside the simulation (e.g. test drivers).
    /// Waiters are woken at the current virtual time.
    pub fn notify(&mut self, event: EventId) {
        self.deliver_notification(event);
    }

    /// Has the process finished?
    pub fn is_done(&self, pid: Pid) -> bool {
        self.procs[pid].state == ProcState::Done
    }

    /// Name of a process.
    pub fn process_name(&self, pid: Pid) -> &str {
        &self.procs[pid].name
    }

    /// Shard a process was assigned to.
    pub fn shard_of(&self, pid: Pid) -> usize {
        self.procs[pid].shard
    }

    fn push(&mut self, time: Time, item: QueueItem) {
        let seq = self.seq;
        self.seq += 1;
        let depth = self.queue.push(Entry { time, seq, item });
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(depth as u64);
    }

    fn deliver_notification(&mut self, event: EventId) {
        if let Some(mut waiters) = self.waiters.remove(&event) {
            // Canonical wake order. Sequential registration already
            // appends in (time, seq) order, so this is a no-op there; it
            // matters for waiters registered by concurrent shards.
            waiters.sort_unstable_by_key(|w| w.reg);
            let now = self.now();
            for w in waiters {
                // The waiter's epoch advances so stale timeout checks
                // become no-ops.
                self.procs[w.pid].wait_epoch += 1;
                self.procs[w.pid].state = ProcState::Runnable;
                self.stats.notifications_delivered += 1;
                self.push(now, QueueItem::Resume(w.pid, ResumeKind::Notified));
            }
        }
    }

    fn drain_side_effects(&mut self, pid: Pid) {
        let effects = Arc::clone(&self.procs[pid].effects);
        let shard = self.procs[pid].shard;
        let dispatch = self.procs[pid].dispatch_count;
        let now = self.now();
        // Notifications first: a process that notified an event during its
        // slice wakes waiters *registered before its slice*; its own
        // subsequent wait (handled by the caller) is not self-woken.
        let mut effect_idx = 0u32;
        loop {
            let next = effects.notifications.lock().pop_front();
            match next {
                Some((event, 0)) => self.deliver_notification(event),
                Some((event, dt)) => {
                    self.timed.push(Reverse(TimedEntry {
                        time: now.saturating_add(dt),
                        tag: EffectTag {
                            pid,
                            dispatch,
                            effect: effect_idx,
                        },
                        event,
                    }));
                }
                None => break,
            }
            effect_idx += 1;
        }
        loop {
            let next = effects.spawns.lock().pop_front();
            match next {
                Some((name, body, child)) => {
                    // Children inherit their parent's shard so runtime
                    // process trees stay local.
                    self.spawn_inner(name, body, false, Some(child), Some(shard));
                }
                None => break,
            }
        }
    }

    fn all_non_daemons_done(&self) -> bool {
        self.procs
            .iter()
            .all(|p| p.daemon || p.state == ProcState::Done)
    }

    fn blocked_names(&self) -> Vec<String> {
        self.procs
            .iter()
            .filter(|p| matches!(p.state, ProcState::Waiting { .. }) && !p.daemon)
            .map(|p| p.name.clone())
            .collect()
    }

    /// Run the simulation until all non-daemon processes complete.
    pub fn run(&mut self) -> Result<(), SimError> {
        match self.run_until(Time::MAX)? {
            RunOutcome::Completed => Ok(()),
            RunOutcome::Horizon => unreachable!("horizon is Time::MAX"),
        }
    }

    /// Run the simulation until all non-daemon processes complete or the
    /// virtual clock would pass `horizon`.
    pub fn run_until(&mut self, horizon: Time) -> Result<RunOutcome, SimError> {
        let nshards = self.config.shards.max(1);
        let lookahead = self.effective_lookahead();
        if nshards > 1 && lookahead > 0 {
            self.run_windowed(horizon, nshards, lookahead)
        } else {
            self.run_sequential(horizon)
        }
    }

    /// The sequential scheduling loop, shared by the default mode and the
    /// zero-lookahead threadsafe fallback (which only swaps the queue
    /// representation).
    fn run_sequential(&mut self, horizon: Time) -> Result<RunOutcome, SimError> {
        loop {
            if self.all_non_daemons_done() && !self.procs.is_empty() {
                return Ok(RunOutcome::Completed);
            }
            // Next source: the timed-notification heap or the event queue;
            // timed deliveries win ties so a wakeup at time t precedes the
            // seq-ordered entries it creates at t.
            let take_timed = match (self.timed.peek(), self.queue.peek_key()) {
                (Some(Reverse(t)), Some((qt, _))) => t.time <= qt,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => {
                    if self.all_non_daemons_done() {
                        return Ok(RunOutcome::Completed);
                    }
                    return Err(SimError::Deadlock(DeadlockInfo {
                        at: self.now(),
                        blocked: self.blocked_names(),
                    }));
                }
            };
            if take_timed {
                let time = self.timed.peek().map(|Reverse(t)| t.time).expect("peeked");
                if time > horizon {
                    self.clock.now.store(horizon, Ordering::Release);
                    return Ok(RunOutcome::Horizon);
                }
                let Reverse(te) = self.timed.pop().expect("peeked");
                self.clock.now.store(te.time, Ordering::Release);
                self.deliver_notification(te.event);
                continue;
            }
            let entry = match self.queue.pop() {
                Some(e) => e,
                None => unreachable!("queue head vanished"),
            };
            if entry.time > horizon {
                // Not consumed: push back so a later run_until can resume.
                self.queue.push(entry);
                self.clock.now.store(horizon, Ordering::Release);
                return Ok(RunOutcome::Horizon);
            }
            debug_assert!(entry.time >= self.now(), "time went backwards");
            self.clock.now.store(entry.time, Ordering::Release);
            match entry.item {
                QueueItem::Timeout(pid, epoch) => {
                    let stale = self.procs[pid].wait_epoch != epoch
                        || !matches!(self.procs[pid].state, ProcState::Waiting { .. });
                    if stale {
                        continue;
                    }
                    if let ProcState::Waiting { event, .. } = self.procs[pid].state {
                        if let Some(ws) = self.waiters.get_mut(&event) {
                            ws.retain(|w| w.pid != pid);
                            if ws.is_empty() {
                                self.waiters.remove(&event);
                            }
                        }
                    }
                    self.procs[pid].wait_epoch += 1;
                    self.procs[pid].state = ProcState::Runnable;
                    self.dispatch(pid, ResumeKind::TimedOut, (entry.time, entry.seq))?;
                }
                QueueItem::Resume(pid, kind) => {
                    if self.procs[pid].state == ProcState::Done {
                        continue;
                    }
                    self.dispatch(pid, kind, (entry.time, entry.seq))?;
                }
            }
        }
    }

    /// Resume `pid`, wait for its yield, then apply side effects and the
    /// yield reason. `reg` is the `(time, seq)` of the dispatching entry,
    /// recorded on any wait this slice registers.
    fn dispatch(&mut self, pid: Pid, kind: ResumeKind, reg: (Time, u64)) -> Result<(), SimError> {
        self.stats.events_dispatched += 1;
        self.procs[pid].dispatch_count += 1;
        self.shard_clocks[self.procs[pid].shard].store(reg.0, Ordering::Release);
        let reason = self.procs[pid].rendezvous.resume_and_wait(kind);
        self.drain_side_effects(pid);
        let now = self.now();
        match reason {
            YieldReason::Advance(dt) => {
                self.push(now.saturating_add(dt), QueueItem::Resume(pid, ResumeKind::Scheduled));
            }
            YieldReason::YieldNow => {
                self.push(now, QueueItem::Resume(pid, ResumeKind::Scheduled));
            }
            YieldReason::Wait(event) => {
                let epoch = self.procs[pid].wait_epoch;
                self.procs[pid].state = ProcState::Waiting { event, epoch };
                self.waiters
                    .entry(event)
                    .or_default()
                    .push(Waiter { pid, reg });
            }
            YieldReason::WaitTimeout(event, dt) => {
                let epoch = self.procs[pid].wait_epoch;
                self.procs[pid].state = ProcState::Waiting { event, epoch };
                self.waiters
                    .entry(event)
                    .or_default()
                    .push(Waiter { pid, reg });
                self.push(now.saturating_add(dt), QueueItem::Timeout(pid, epoch));
            }
            YieldReason::Done => {
                self.procs[pid].state = ProcState::Done;
                let completion = self.directory.mark_finished(pid);
                self.deliver_notification(completion);
                if let Some(handle) = self.procs[pid].handle.take() {
                    let _ = handle.join();
                }
            }
            YieldReason::Panicked(message) => {
                self.procs[pid].state = ProcState::Done;
                let completion = self.directory.mark_finished(pid);
                self.deliver_notification(completion);
                let name = self.procs[pid].name.clone();
                if let Some(handle) = self.procs[pid].handle.take() {
                    let _ = handle.join();
                }
                return Err(SimError::ProcessPanicked { name, message });
            }
        }
        Ok(())
    }

    /// Conservative windowed parallel execution (see the module docs).
    fn run_windowed(
        &mut self,
        horizon: Time,
        nshards: usize,
        lookahead: Time,
    ) -> Result<RunOutcome, SimError> {
        // Pull the global queue apart into shard-local heaps; entries keep
        // their (time, seq) keys so local order matches global order.
        let mut shard_heaps: Vec<BinaryHeap<Reverse<Entry>>> = (0..nshards)
            .map(|_| BinaryHeap::with_capacity(self.queue.len() / nshards + 8))
            .collect();
        while let Some(e) = self.queue.pop() {
            let shard = self.procs[e.item.pid()].shard;
            shard_heaps[shard].push(Reverse(e));
        }

        let result = 'run: loop {
            let unfinished_count = self
                .procs
                .iter()
                .filter(|p| !p.daemon && p.state != ProcState::Done)
                .count();
            if unfinished_count == 0 && !self.procs.is_empty() {
                break 'run Ok(RunOutcome::Completed);
            }
            let next_queue = shard_heaps
                .iter()
                .filter_map(|h| h.peek().map(|Reverse(e)| e.time))
                .min();
            let next_timed = self.timed.peek().map(|Reverse(t)| t.time);
            let t = match (next_queue, next_timed) {
                (Some(q), Some(d)) => q.min(d),
                (Some(q), None) => q,
                (None, Some(d)) => d,
                (None, None) => {
                    if self.all_non_daemons_done() {
                        break 'run Ok(RunOutcome::Completed);
                    }
                    break 'run Err(SimError::Deadlock(DeadlockInfo {
                        at: self.now(),
                        blocked: self.blocked_names(),
                    }));
                }
            };
            if t > horizon {
                self.clock.now.store(horizon, Ordering::Release);
                break 'run Ok(RunOutcome::Horizon);
            }
            debug_assert!(t < Time::MAX, "windowed execution requires event times < Time::MAX");

            // Boundary phase (single-threaded): deliver the timed
            // notifications whose time *is* the global minimum, in
            // canonical (time, tag) order, pushing wakeups into the
            // waiters' shard heaps with fresh global sequence numbers.
            // Only the at-minimum entries are safe to deliver: every
            // shard has simulated up to t, so the waiter registrations
            // visible now are exactly the ones the sequential kernel
            // would see at t. Later deliveries wait for their own
            // boundary — and the window below never runs past them.
            while let Some(&Reverse(te)) = self.timed.peek() {
                if te.time > t {
                    break;
                }
                self.timed.pop();
                self.clock.now.store(te.time, Ordering::Release);
                if let Some(mut ws) = self.waiters.remove(&te.event) {
                    ws.sort_unstable_by_key(|w| w.reg);
                    for w in ws {
                        self.procs[w.pid].wait_epoch += 1;
                        self.procs[w.pid].state = ProcState::Runnable;
                        self.stats.notifications_delivered += 1;
                        let seq = self.seq;
                        self.seq += 1;
                        let shard = self.procs[w.pid].shard;
                        shard_heaps[shard].push(Reverse(Entry {
                            time: te.time,
                            seq,
                            item: QueueItem::Resume(w.pid, ResumeKind::Notified),
                        }));
                    }
                }
            }
            // The window may not overrun the earliest still-pending
            // delivery: its waiter set is only complete once the global
            // clock reaches it.
            let mut window_end = t
                .saturating_add(lookahead)
                .min(horizon.saturating_add(1));
            if let Some(&Reverse(te)) = self.timed.peek() {
                window_end = window_end.min(te.time);
            }

            // Window phase: one worker per shard, each running its local
            // heap up to (but excluding) window_end.
            let seq_base = self.seq;
            let directory = Arc::clone(&self.directory);
            let cells: Vec<Arc<AtomicU64>> = self.shard_clocks.clone();
            let waiters_mx = Mutex::new(std::mem::take(&mut self.waiters));
            let unfinished = AtomicUsize::new(unfinished_count);
            let outcomes: Vec<ShardWindowOutcome> = {
                let mut parts: Vec<Vec<(Pid, &mut ProcEntry)>> =
                    (0..nshards).map(|_| Vec::new()).collect();
                for (pid, p) in self.procs.iter_mut().enumerate() {
                    parts[p.shard].push((pid, p));
                }
                std::thread::scope(|s| {
                    let handles: Vec<_> = parts
                        .into_iter()
                        .zip(shard_heaps.iter_mut())
                        .enumerate()
                        .map(|(shard, (part, heap))| {
                            let cell = Arc::clone(&cells[shard]);
                            let dir = Arc::clone(&directory);
                            let waiters = &waiters_mx;
                            let unfinished = &unfinished;
                            s.spawn(move || {
                                run_shard_window(
                                    window_end,
                                    lookahead,
                                    seq_base + (shard as u64) * SEQ_BLOCK,
                                    heap,
                                    part,
                                    waiters,
                                    unfinished,
                                    &cell,
                                    &dir,
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard worker panicked"))
                        .collect()
                })
            };
            self.waiters = waiters_mx.into_inner();
            self.seq = seq_base
                .checked_add(nshards as u64 * SEQ_BLOCK)
                .expect("sequence space exhausted");
            let mut first_error: Option<((Time, u64), SimError)> = None;
            for o in outcomes {
                self.stats.events_dispatched += o.dispatched;
                self.stats.notifications_delivered += o.notifications;
                self.stats.max_queue_depth = self.stats.max_queue_depth.max(o.max_depth);
                for te in o.timed {
                    self.timed.push(Reverse(te));
                }
                if let Some((key, err)) = o.error {
                    let better = first_error.as_ref().is_none_or(|(k, _)| key < *k);
                    if better {
                        first_error = Some((key, err));
                    }
                }
            }
            let max_cell = self
                .shard_clocks
                .iter()
                .map(|c| c.load(Ordering::Acquire))
                .max()
                .unwrap_or(0);
            self.clock.now.fetch_max(max_cell, Ordering::AcqRel);
            if let Some((_, err)) = first_error {
                break 'run Err(err);
            }
        };

        // Fold the surviving shard-local entries back into the global
        // queue (their keys are preserved, so the heap restores the
        // canonical order) for a later run_until or drop.
        for heap in &mut shard_heaps {
            while let Some(Reverse(e)) = heap.pop() {
                self.queue.push(e);
            }
        }
        result
    }
}

/// Per-window result of one shard worker.
#[derive(Default)]
struct ShardWindowOutcome {
    dispatched: u64,
    notifications: u64,
    max_depth: u64,
    /// Timed notifications produced this window, merged into the global
    /// heap at the boundary.
    timed: Vec<TimedEntry>,
    /// First protocol violation or process failure, keyed by the
    /// dispatching entry so the coordinator reports the canonically
    /// earliest one.
    error: Option<((Time, u64), SimError)>,
}

/// Wake the local waiters of `event` at time `at`. Returns the name-less
/// pid of a foreign (cross-shard) waiter if one is registered — a
/// protocol violation under windowed execution.
fn wake_local_waiters(
    event: EventId,
    at: Time,
    procs: &mut HashMap<Pid, &mut ProcEntry>,
    heap: &mut BinaryHeap<Reverse<Entry>>,
    waiters: &Mutex<HashMap<EventId, Vec<Waiter>>>,
    seq: &mut u64,
    notifications: &mut u64,
) -> Result<(), Pid> {
    let Some(mut ws) = waiters.lock().remove(&event) else {
        return Ok(());
    };
    ws.sort_unstable_by_key(|w| w.reg);
    for w in ws {
        let Some(p) = procs.get_mut(&w.pid) else {
            return Err(w.pid);
        };
        p.wait_epoch += 1;
        p.state = ProcState::Runnable;
        *notifications += 1;
        let s = *seq;
        *seq += 1;
        heap.push(Reverse(Entry {
            time: at,
            seq: s,
            item: QueueItem::Resume(w.pid, ResumeKind::Notified),
        }));
    }
    Ok(())
}

/// One shard's slice of a window: run local entries in `(time, seq)`
/// order up to (excluding) `window_end`, delivering zero-delay
/// notifications locally and deferring latency-bearing ones to the
/// boundary.
#[allow(clippy::too_many_arguments)]
fn run_shard_window(
    window_end: Time,
    lookahead: Time,
    seq_start: u64,
    heap: &mut BinaryHeap<Reverse<Entry>>,
    part: Vec<(Pid, &mut ProcEntry)>,
    waiters: &Mutex<HashMap<EventId, Vec<Waiter>>>,
    unfinished: &AtomicUsize,
    clock_cell: &AtomicU64,
    directory: &Directory,
) -> ShardWindowOutcome {
    let mut procs: HashMap<Pid, &mut ProcEntry> = part.into_iter().collect();
    let mut seq = seq_start;
    let mut out = ShardWindowOutcome::default();
    let violation = |entry: &Entry, detail: String| {
        Some((
            (entry.time, entry.seq),
            SimError::LookaheadViolation {
                at: entry.time,
                detail,
            },
        ))
    };
    'window: loop {
        if unfinished.load(Ordering::Acquire) == 0 {
            break;
        }
        match heap.peek() {
            Some(Reverse(e)) if e.time < window_end => {}
            _ => break,
        }
        let Reverse(entry) = heap.pop().expect("peeked");
        clock_cell.store(entry.time, Ordering::Release);
        let (pid, kind) = match entry.item {
            QueueItem::Timeout(pid, epoch) => {
                let p = procs.get_mut(&pid).expect("foreign entry in shard heap");
                let stale =
                    p.wait_epoch != epoch || !matches!(p.state, ProcState::Waiting { .. });
                if stale {
                    continue;
                }
                if let ProcState::Waiting { event, .. } = p.state {
                    let mut ws = waiters.lock();
                    if let Some(v) = ws.get_mut(&event) {
                        v.retain(|w| w.pid != pid);
                        if v.is_empty() {
                            ws.remove(&event);
                        }
                    }
                }
                p.wait_epoch += 1;
                p.state = ProcState::Runnable;
                (pid, ResumeKind::TimedOut)
            }
            QueueItem::Resume(pid, kind) => {
                if procs.get(&pid).expect("foreign entry in shard heap").state
                    == ProcState::Done
                {
                    continue;
                }
                (pid, kind)
            }
        };
        out.dispatched += 1;
        let (reason, dispatch_idx, effects) = {
            let p = procs.get_mut(&pid).expect("dispatching pid");
            p.dispatch_count += 1;
            let effects = Arc::clone(&p.effects);
            (p.rendezvous.resume_and_wait(kind), p.dispatch_count, effects)
        };
        // Side effects: zero-delay notifications deliver to local waiters
        // immediately; delayed ones (>= lookahead) defer to the boundary.
        let mut effect_idx = 0u32;
        loop {
            let next = effects.notifications.lock().pop_front();
            let Some((event, dt)) = next else { break };
            if dt == 0 {
                if let Err(foreign) = wake_local_waiters(
                    event,
                    entry.time,
                    &mut procs,
                    heap,
                    waiters,
                    &mut seq,
                    &mut out.notifications,
                ) {
                    out.error = violation(
                        &entry,
                        format!(
                            "zero-delay notification from pid {pid} reached cross-shard \
                             waiter pid {foreign}; use notify_after(_, dt >= lookahead) \
                             or a latency-bearing channel"
                        ),
                    );
                    break 'window;
                }
            } else if dt < lookahead {
                out.error = violation(
                    &entry,
                    format!(
                        "notify_after delay {dt} from pid {pid} is shorter than the \
                         lookahead {lookahead}"
                    ),
                );
                break 'window;
            } else {
                out.timed.push(TimedEntry {
                    time: entry.time.saturating_add(dt),
                    tag: EffectTag {
                        pid,
                        dispatch: dispatch_idx,
                        effect: effect_idx,
                    },
                    event,
                });
            }
            effect_idx += 1;
        }
        if !effects.spawns.lock().is_empty() {
            out.error = violation(
                &entry,
                format!(
                    "pid {pid} spawned a process inside a parallel window; spawn \
                     processes before running, or run with lookahead 0"
                ),
            );
            break;
        }
        match reason {
            YieldReason::Advance(dt) => {
                let s = seq;
                seq += 1;
                heap.push(Reverse(Entry {
                    time: entry.time.saturating_add(dt),
                    seq: s,
                    item: QueueItem::Resume(pid, ResumeKind::Scheduled),
                }));
            }
            YieldReason::YieldNow => {
                let s = seq;
                seq += 1;
                heap.push(Reverse(Entry {
                    time: entry.time,
                    seq: s,
                    item: QueueItem::Resume(pid, ResumeKind::Scheduled),
                }));
            }
            YieldReason::Wait(event) => {
                let p = procs.get_mut(&pid).expect("dispatching pid");
                let epoch = p.wait_epoch;
                p.state = ProcState::Waiting { event, epoch };
                waiters.lock().entry(event).or_default().push(Waiter {
                    pid,
                    reg: (entry.time, entry.seq),
                });
            }
            YieldReason::WaitTimeout(event, dt) => {
                let epoch = {
                    let p = procs.get_mut(&pid).expect("dispatching pid");
                    let epoch = p.wait_epoch;
                    p.state = ProcState::Waiting { event, epoch };
                    epoch
                };
                waiters.lock().entry(event).or_default().push(Waiter {
                    pid,
                    reg: (entry.time, entry.seq),
                });
                let s = seq;
                seq += 1;
                heap.push(Reverse(Entry {
                    time: entry.time.saturating_add(dt),
                    seq: s,
                    item: QueueItem::Timeout(pid, epoch),
                }));
            }
            YieldReason::Done | YieldReason::Panicked(_) => {
                let daemon = {
                    let p = procs.get_mut(&pid).expect("dispatching pid");
                    p.state = ProcState::Done;
                    p.daemon
                };
                if !daemon {
                    unfinished.fetch_sub(1, Ordering::AcqRel);
                }
                let completion = directory.mark_finished(pid);
                if let Err(foreign) = wake_local_waiters(
                    completion,
                    entry.time,
                    &mut procs,
                    heap,
                    waiters,
                    &mut seq,
                    &mut out.notifications,
                ) {
                    out.error = violation(
                        &entry,
                        format!(
                            "completion of pid {pid} would wake cross-shard joiner \
                             pid {foreign}; pin joined processes to one shard"
                        ),
                    );
                    break;
                }
                if let Some(handle) = procs
                    .get_mut(&pid)
                    .expect("dispatching pid")
                    .handle
                    .take()
                {
                    let _ = handle.join();
                }
                if let YieldReason::Panicked(message) = reason {
                    let name = procs.get(&pid).expect("dispatching pid").name.clone();
                    out.error =
                        Some(((entry.time, entry.seq), SimError::ProcessPanicked { name, message }));
                    break;
                }
            }
        }
        debug_assert!(
            seq - seq_start < SEQ_BLOCK,
            "per-window sequence block exhausted"
        );
        out.max_depth = out.max_depth.max(heap.len() as u64);
    }
    out
}

impl Drop for Kernel {
    fn drop(&mut self) {
        // Unblock and join every process thread that is still parked.
        self.clock.shutting_down.store(true, Ordering::Release);
        for proc in &mut self.procs {
            if proc.state != ProcState::Done {
                proc.rendezvous.kill();
            }
            if let Some(handle) = proc.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Test-only surface over the kernel's internal ordering machinery, used
/// by the merge-order property tests. Hidden from the public API.
#[doc(hidden)]
pub mod testkit {
    use super::*;

    /// Pop order of a single global heap holding every `(time, seq)` key.
    pub fn global_pop_order(entries: &[(Time, u64)]) -> Vec<(Time, u64)> {
        let mut heap = BinaryHeap::with_capacity(entries.len());
        for &(time, seq) in entries {
            heap.push(Reverse(Entry {
                time,
                seq,
                item: QueueItem::Resume(0, ResumeKind::Scheduled),
            }));
        }
        let mut out = Vec::with_capacity(entries.len());
        while let Some(Reverse(e)) = heap.pop() {
            out.push((e.time, e.seq));
        }
        out
    }

    /// The windowed kernel's boundary merge: K shard-local heaps folded
    /// back into one global heap (exactly what `run_windowed` does on
    /// exit), then popped. Must equal [`global_pop_order`] over the same
    /// entries for any partition.
    pub fn boundary_merge_order(shards: &[Vec<(Time, u64)>]) -> Vec<(Time, u64)> {
        let mut local: Vec<BinaryHeap<Reverse<Entry>>> = shards
            .iter()
            .map(|batch| {
                let mut h = BinaryHeap::with_capacity(batch.len());
                for &(time, seq) in batch {
                    h.push(Reverse(Entry {
                        time,
                        seq,
                        item: QueueItem::Resume(0, ResumeKind::Scheduled),
                    }));
                }
                h
            })
            .collect();
        let mut global = BinaryHeap::new();
        for heap in &mut local {
            while let Some(entry) = heap.pop() {
                global.push(entry);
            }
        }
        let mut out = Vec::new();
        while let Some(Reverse(e)) = global.pop() {
            out.push((e.time, e.seq));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering as AOrd};
    use std::sync::Arc;

    #[test]
    fn empty_kernel_completes() {
        let mut k = Kernel::new();
        assert!(k.run().is_ok());
        assert_eq!(k.now(), 0);
    }

    #[test]
    fn single_process_advances_time() {
        let mut k = Kernel::new();
        k.spawn("p", |ctx| {
            ctx.advance(10);
            ctx.advance(32);
        });
        k.run().unwrap();
        assert_eq!(k.now(), 42);
    }

    #[test]
    fn notify_wakes_waiter_at_notifier_time() {
        let mut k = Kernel::new();
        let e = k.alloc_event();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        k.spawn("waiter", move |ctx| {
            ctx.wait(e);
            seen2.store(ctx.now(), AOrd::SeqCst);
        });
        k.spawn("notifier", move |ctx| {
            ctx.advance(777);
            ctx.notify(e);
        });
        k.run().unwrap();
        assert_eq!(seen.load(AOrd::SeqCst), 777);
    }

    #[test]
    fn notify_after_delivers_at_future_time() {
        let mut k = Kernel::new();
        let e = k.alloc_event();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        k.spawn("waiter", move |ctx| {
            ctx.wait(e);
            seen2.store(ctx.now(), AOrd::SeqCst);
        });
        k.spawn("notifier", move |ctx| {
            ctx.advance(100);
            ctx.notify_after(e, 50);
            // Notifier finishes at 100; delivery still happens at 150.
        });
        k.run().unwrap();
        assert_eq!(seen.load(AOrd::SeqCst), 150);
        assert_eq!(k.now(), 150);
    }

    #[test]
    fn notify_after_zero_behaves_like_notify() {
        let mut k = Kernel::new();
        let e = k.alloc_event();
        let seen = Arc::new(AtomicU64::new(u64::MAX));
        let seen2 = Arc::clone(&seen);
        k.spawn("waiter", move |ctx| {
            ctx.wait(e);
            seen2.store(ctx.now(), AOrd::SeqCst);
        });
        k.spawn("notifier", move |ctx| {
            ctx.advance(5);
            ctx.notify_after(e, 0);
        });
        k.run().unwrap();
        assert_eq!(seen.load(AOrd::SeqCst), 5);
    }

    #[test]
    fn wait_timeout_fires_without_notification() {
        let mut k = Kernel::new();
        let e = k.alloc_event();
        let fired = Arc::new(AtomicU64::new(99));
        let f = Arc::clone(&fired);
        k.spawn("p", move |ctx| {
            let ok = ctx.wait_timeout(e, 50);
            f.store(u64::from(ok), AOrd::SeqCst);
            assert_eq!(ctx.now(), 50);
        });
        k.run().unwrap();
        assert_eq!(fired.load(AOrd::SeqCst), 0);
    }

    #[test]
    fn wait_timeout_notified_before_deadline() {
        let mut k = Kernel::new();
        let e = k.alloc_event();
        let fired = Arc::new(AtomicU64::new(99));
        let f = Arc::clone(&fired);
        k.spawn("p", move |ctx| {
            let ok = ctx.wait_timeout(e, 5_000);
            f.store(u64::from(ok), AOrd::SeqCst);
            assert_eq!(ctx.now(), 10);
        });
        k.spawn("n", move |ctx| {
            ctx.advance(10);
            ctx.notify(e);
        });
        k.run().unwrap();
        assert_eq!(fired.load(AOrd::SeqCst), 1);
    }

    #[test]
    fn deadlock_is_detected_and_named() {
        let mut k = Kernel::new();
        let e = k.alloc_event();
        k.spawn("stuck", move |ctx| {
            ctx.wait(e);
        });
        match k.run() {
            Err(SimError::Deadlock(info)) => {
                assert_eq!(info.blocked, vec!["stuck".to_string()]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn daemon_does_not_block_completion() {
        let mut k = Kernel::new();
        let e = k.alloc_event();
        k.spawn_daemon("idle", move |ctx| {
            ctx.wait(e); // never notified
        });
        k.spawn("work", |ctx| ctx.advance(5));
        k.run().unwrap();
        assert_eq!(k.now(), 5);
    }

    #[test]
    fn process_panic_is_reported() {
        let mut k = Kernel::new();
        k.spawn("bad", |_ctx| panic!("boom"));
        match k.run() {
            Err(SimError::ProcessPanicked { name, message }) => {
                assert_eq!(name, "bad");
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn runtime_spawn_runs_child() {
        let mut k = Kernel::new();
        let sum = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&sum);
        k.spawn("parent", move |ctx| {
            ctx.advance(3);
            let s2 = Arc::clone(&s);
            ctx.spawn("child", move |c| {
                c.advance(4);
                s2.store(c.now(), AOrd::SeqCst);
            });
            ctx.advance(100);
        });
        k.run().unwrap();
        assert_eq!(sum.load(AOrd::SeqCst), 7);
    }

    #[test]
    fn join_waits_for_child() {
        let mut k = Kernel::new();
        k.spawn("parent", |ctx| {
            let child = ctx.spawn("child", |c| {
                c.advance(500);
            });
            ctx.join(child);
            assert_eq!(ctx.now(), 500);
        });
        k.run().unwrap();
    }

    #[test]
    fn join_on_finished_process_returns_immediately() {
        let mut k = Kernel::new();
        k.spawn("parent", |ctx| {
            let child = ctx.spawn("quick", |_c| {});
            ctx.advance(1_000); // child finishes long before the join
            let before = ctx.now();
            ctx.join(child);
            assert_eq!(ctx.now(), before);
        });
        k.run().unwrap();
    }

    #[test]
    fn join_multiple_children_in_any_order() {
        let mut k = Kernel::new();
        k.spawn("parent", |ctx| {
            let slow = ctx.spawn("slow", |c| c.advance(900));
            let fast = ctx.spawn("fast", |c| c.advance(100));
            ctx.join(slow);
            ctx.join(fast);
            assert_eq!(ctx.now(), 900);
        });
        k.run().unwrap();
    }

    #[test]
    fn horizon_pauses_and_resumes() {
        let mut k = Kernel::new();
        k.spawn("p", |ctx| {
            ctx.advance(100);
            ctx.advance(100);
        });
        assert_eq!(k.run_until(150).unwrap(), RunOutcome::Horizon);
        assert_eq!(k.now(), 150);
        assert_eq!(k.run_until(1_000).unwrap(), RunOutcome::Completed);
        assert_eq!(k.now(), 200);
    }

    #[test]
    fn same_time_events_dispatch_in_fifo_order() {
        let mut k = Kernel::new();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..8 {
            let o = Arc::clone(&order);
            k.spawn(format!("p{i}"), move |ctx| {
                ctx.advance(10);
                o.lock().push(i);
            });
        }
        k.run().unwrap();
        assert_eq!(*order.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn determinism_two_runs_identical_stats() {
        fn run_once() -> (Time, KernelStats) {
            let mut k = Kernel::new();
            let e = k.alloc_event();
            for i in 0..10u64 {
                k.spawn(format!("w{i}"), move |ctx| {
                    ctx.advance(i * 7 + 1);
                    ctx.notify(e);
                    ctx.advance(3);
                });
            }
            k.spawn("collector", move |ctx| {
                for _ in 0..10 {
                    ctx.wait(e);
                }
            });
            k.run().unwrap();
            (k.now(), k.stats())
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn max_queue_depth_is_tracked() {
        let mut k = Kernel::new();
        for i in 0..16 {
            k.spawn(format!("p{i}"), |ctx| ctx.advance(1));
        }
        k.run().unwrap();
        let depth = k.stats().max_queue_depth;
        assert!(depth >= 16, "expected at least 16, got {depth}");
    }

    #[test]
    fn shard_assignment_is_round_robin_and_pinnable() {
        let mut k = Kernel::with_config(KernelConfig::default().shards(3));
        let a = k.spawn("a", |_| {});
        let b = k.spawn("b", |_| {});
        let c = k.spawn("c", |_| {});
        let d = k.spawn_on(7, "d", |_| {});
        assert_eq!(k.shard_of(a), 0);
        assert_eq!(k.shard_of(b), 1);
        assert_eq!(k.shard_of(c), 2);
        assert_eq!(k.shard_of(d), 7 % 3);
        k.run().unwrap();
    }

    #[test]
    fn fallback_mode_matches_sequential_exactly() {
        fn run_with(shards: usize) -> (Time, KernelStats) {
            let mut k = Kernel::with_config(KernelConfig::default().shards(shards));
            let e = k.alloc_event();
            for i in 0..12u64 {
                k.spawn(format!("w{i}"), move |ctx| {
                    ctx.advance(i * 5 + 1);
                    ctx.notify(e);
                    ctx.advance(2);
                });
            }
            k.spawn("collector", move |ctx| {
                for _ in 0..12 {
                    ctx.wait(e);
                }
            });
            k.run().unwrap();
            (k.now(), k.stats())
        }
        // Zero lookahead: shards > 1 degrade to the shared-queue fallback
        // and must be byte-identical to the sequential kernel, including
        // the queue-depth gauge.
        assert_eq!(run_with(1), run_with(2));
        assert_eq!(run_with(1), run_with(4));
    }
}
