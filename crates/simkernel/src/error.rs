//! Error types reported by the simulation kernel.

use std::fmt;

use crate::Time;

/// Description of a deadlock: the virtual time at which the event queue
/// drained while processes were still blocked, and the names of the
/// blocked processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockInfo {
    /// Virtual time at which the kernel ran out of events.
    pub at: Time,
    /// Names of the processes still blocked on events.
    pub blocked: Vec<String>,
}

/// Errors surfaced by [`Kernel::run`](crate::Kernel::run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained while at least one process was still
    /// blocked waiting for an event that can no longer be notified.
    Deadlock(DeadlockInfo),
    /// A simulated process panicked; carries the process name and the
    /// panic payload rendered as a string.
    ProcessPanicked { name: String, message: String },
    /// `run_until` hit its horizon before the simulation finished.
    HorizonReached { at: Time },
    /// Windowed parallel execution detected an interaction that violates
    /// its conservative lookahead contract: a zero-delay notification
    /// reaching a waiter in another shard, a `notify_after` delay shorter
    /// than the lookahead, or a process spawned inside a window. The
    /// simulation is aborted rather than allowed to diverge from the
    /// sequential schedule.
    LookaheadViolation { at: Time, detail: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(info) => write!(
                f,
                "simulation deadlock at t={}ns; blocked processes: {}",
                info.at,
                info.blocked.join(", ")
            ),
            SimError::ProcessPanicked { name, message } => {
                write!(f, "simulated process '{name}' panicked: {message}")
            }
            SimError::HorizonReached { at } => {
                write!(f, "simulation horizon reached at t={at}ns")
            }
            SimError::LookaheadViolation { at, detail } => {
                write!(f, "lookahead violation at t={at}ns: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}
