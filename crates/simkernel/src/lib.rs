//! # sim-kernel — deterministic discrete-event simulation kernel
//!
//! This crate provides the execution substrate for the simulated STi7200
//! MPSoC used by the EMBera reproduction. It is a *conservative*,
//! fully deterministic discrete-event kernel in which simulated processes
//! are **thread-backed coroutines**: every process runs on a host thread,
//! but the kernel only ever lets one process run at a time, handing control
//! to the process whose next event fires earliest. Repeated runs of the
//! same simulation therefore produce bit-identical schedules.
//!
//! Virtual time is measured in [`Time`] units (nanoseconds of a global
//! reference clock). Processes interact with the kernel exclusively
//! through a [`SimCtx`] handle:
//!
//! * [`SimCtx::advance`] — consume virtual time,
//! * [`SimCtx::wait`] / [`SimCtx::wait_timeout`] — block on an [`EventId`],
//! * [`SimCtx::notify`] — wake all waiters of an event,
//! * [`SimCtx::spawn`] — create a new simulated process at runtime,
//! * [`SimCtx::now`] — read the virtual clock.
//!
//! Higher layers (the OS21-like RTOS, the EMBX middleware) build
//! semaphores, message queues and interrupt delivery from these
//! primitives.
//!
//! ## Example
//!
//! ```
//! use sim_kernel::Kernel;
//!
//! let mut kernel = Kernel::new();
//! let evt = kernel.alloc_event();
//! kernel.spawn("producer", move |ctx| {
//!     ctx.advance(100);
//!     ctx.notify(evt);
//! });
//! kernel.spawn("consumer", move |ctx| {
//!     ctx.wait(evt);
//!     assert_eq!(ctx.now(), 100);
//! });
//! kernel.run().unwrap();
//! assert_eq!(kernel.now(), 100);
//! ```

pub mod channel;
pub mod error;
pub mod kernel;
pub mod process;

pub use channel::{BoundedSimChannel, LatentChannel, SimChannel};
pub use error::{DeadlockInfo, SimError};
pub use kernel::{Kernel, KernelConfig, KernelStats, RunOutcome};
pub use process::{EventId, Pid, ResumeKind, SimCtx};

/// Virtual time, in nanoseconds of the global reference clock.
pub type Time = u64;

/// One microsecond in [`Time`] units.
pub const MICROSECOND: Time = 1_000;
/// One millisecond in [`Time`] units.
pub const MILLISECOND: Time = 1_000_000;
/// One second in [`Time`] units.
pub const SECOND: Time = 1_000_000_000;
