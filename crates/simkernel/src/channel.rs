//! FIFO channels between simulated processes, built on kernel events.
//!
//! [`SimChannel`] and [`BoundedSimChannel`] are *zero-time* channels:
//! they model only ordering and blocking, not transfer cost. Higher
//! layers (EMBX) add modeled copy costs by calling [`SimCtx::advance`]
//! around channel operations. [`LatentChannel`] carries an explicit
//! per-message delivery latency — the primitive that gives sharded
//! windowed execution its lookahead (see the
//! [`kernel` module docs](crate::kernel)).

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::Kernel;
use crate::process::{EventId, SimCtx};
use crate::Time;

/// Unbounded multi-producer multi-consumer FIFO channel between simulated
/// processes. Cloning shares the underlying queue.
pub struct SimChannel<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
    nonempty: EventId,
}

impl<T> Clone for SimChannel<T> {
    fn clone(&self) -> Self {
        SimChannel {
            inner: Arc::clone(&self.inner),
            nonempty: self.nonempty,
        }
    }
}

impl<T> SimChannel<T> {
    /// Create a channel, allocating its wakeup event from `ctx`.
    pub fn new(ctx: &SimCtx) -> Self {
        SimChannel {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            nonempty: ctx.alloc_event(),
        }
    }

    /// Create a channel using a pre-allocated event (for construction
    /// outside any process, e.g. from the kernel owner).
    pub fn with_event(nonempty: EventId) -> Self {
        SimChannel {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            nonempty,
        }
    }

    /// Enqueue an item and wake any waiting receivers. Never blocks.
    pub fn send(&self, ctx: &SimCtx, item: T) {
        self.inner.lock().push_back(item);
        ctx.notify(self.nonempty);
    }

    /// Dequeue an item, blocking in virtual time until one is available.
    pub fn recv(&self, ctx: &SimCtx) -> T {
        loop {
            if let Some(item) = self.inner.lock().pop_front() {
                return item;
            }
            ctx.wait(self.nonempty);
        }
    }

    /// Dequeue an item if one is immediately available.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Dequeue with a virtual-time deadline. `None` on timeout.
    pub fn recv_timeout(&self, ctx: &SimCtx, dt: crate::Time) -> Option<T> {
        let deadline = ctx.now().saturating_add(dt);
        loop {
            if let Some(item) = self.inner.lock().pop_front() {
                return Some(item);
            }
            let now = ctx.now();
            if now >= deadline {
                return None;
            }
            if !ctx.wait_timeout(self.nonempty, deadline - now) {
                // Timed out: one final non-blocking check to avoid racing a
                // same-instant send.
                return self.inner.lock().pop_front();
            }
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// Bounded FIFO channel: `send` blocks (in virtual time) while the queue
/// is at capacity. Models backpressure for middleware ports.
pub struct BoundedSimChannel<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
    capacity: usize,
    nonempty: EventId,
    nonfull: EventId,
}

impl<T> Clone for BoundedSimChannel<T> {
    fn clone(&self) -> Self {
        BoundedSimChannel {
            inner: Arc::clone(&self.inner),
            capacity: self.capacity,
            nonempty: self.nonempty,
            nonfull: self.nonfull,
        }
    }
}

impl<T> BoundedSimChannel<T> {
    /// Create a channel with the given capacity (must be ≥ 1).
    pub fn new(ctx: &SimCtx, capacity: usize) -> Self {
        assert!(capacity >= 1, "bounded channel capacity must be >= 1");
        BoundedSimChannel {
            inner: Arc::new(Mutex::new(VecDeque::with_capacity(capacity))),
            capacity,
            nonempty: ctx.alloc_event(),
            nonfull: ctx.alloc_event(),
        }
    }

    /// Create with pre-allocated events (for construction outside any
    /// process).
    pub fn with_events(capacity: usize, nonempty: EventId, nonfull: EventId) -> Self {
        assert!(capacity >= 1, "bounded channel capacity must be >= 1");
        BoundedSimChannel {
            inner: Arc::new(Mutex::new(VecDeque::with_capacity(capacity))),
            capacity,
            nonempty,
            nonfull,
        }
    }

    /// Capacity of the channel.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue an item, blocking in virtual time while the queue is full.
    pub fn send(&self, ctx: &SimCtx, item: T) {
        let mut slot = Some(item);
        loop {
            {
                let mut q = self.inner.lock();
                if q.len() < self.capacity {
                    q.push_back(slot.take().expect("item present"));
                    ctx.notify(self.nonempty);
                    return;
                }
            }
            ctx.wait(self.nonfull);
        }
    }

    /// Enqueue if space is immediately available; returns the item back
    /// on failure.
    pub fn try_send(&self, ctx: &SimCtx, item: T) -> Result<(), T> {
        let mut q = self.inner.lock();
        if q.len() < self.capacity {
            q.push_back(item);
            ctx.notify(self.nonempty);
            Ok(())
        } else {
            Err(item)
        }
    }

    /// Dequeue an item, blocking in virtual time until one is available.
    pub fn recv(&self, ctx: &SimCtx) -> T {
        loop {
            {
                let mut q = self.inner.lock();
                if let Some(item) = q.pop_front() {
                    ctx.notify(self.nonfull);
                    return item;
                }
            }
            ctx.wait(self.nonempty);
        }
    }

    /// Dequeue if an item is immediately available.
    pub fn try_recv(&self, ctx: &SimCtx) -> Option<T> {
        let mut q = self.inner.lock();
        let item = q.pop_front();
        if item.is_some() {
            ctx.notify(self.nonfull);
        }
        item
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// Unbounded FIFO channel whose messages take `latency` virtual
/// nanoseconds to arrive: an item sent at `t` becomes receivable at
/// `t + latency`.
///
/// Construction registers the latency with the kernel
/// ([`Kernel::declare_latency`]), so a simulation wired entirely from
/// latency-bearing channels derives its windowed-execution lookahead
/// automatically. A latency of `0` degrades to [`SimChannel`] semantics
/// (and collapses the kernel's lookahead, forcing the threadsafe
/// fallback under sharded execution).
///
/// Under windowed execution the FIFO order of items from *different
/// concurrent senders in different shards* is canonicalized by delivery
/// time only; point-to-point use (one sender per channel) is fully
/// deterministic for any shard count.
pub struct LatentChannel<T> {
    inner: Arc<Mutex<VecDeque<(Time, T)>>>,
    nonempty: EventId,
    latency: Time,
}

impl<T> Clone for LatentChannel<T> {
    fn clone(&self) -> Self {
        LatentChannel {
            inner: Arc::clone(&self.inner),
            nonempty: self.nonempty,
            latency: self.latency,
        }
    }
}

impl<T> LatentChannel<T> {
    /// Create a channel with the given delivery latency, allocating its
    /// wakeup event from the kernel and declaring the latency for
    /// lookahead derivation.
    pub fn new(kernel: &mut Kernel, latency: Time) -> Self {
        kernel.declare_latency(latency);
        LatentChannel {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            nonempty: kernel.alloc_event(),
            latency,
        }
    }

    /// The modeled delivery latency.
    pub fn latency(&self) -> Time {
        self.latency
    }

    /// Enqueue an item for delivery `latency` nanoseconds from now and
    /// schedule the receiver wakeup. Never blocks.
    pub fn send(&self, ctx: &SimCtx, item: T) {
        let deliver = ctx.now().saturating_add(self.latency);
        self.inner.lock().push_back((deliver, item));
        if self.latency == 0 {
            ctx.notify(self.nonempty);
        } else {
            ctx.notify_after(self.nonempty, self.latency);
        }
    }

    /// Dequeue the next *arrived* item, blocking in virtual time until
    /// one's delivery time is reached.
    pub fn recv(&self, ctx: &SimCtx) -> T {
        loop {
            {
                let mut q = self.inner.lock();
                if let Some(&(deliver, _)) = q.front() {
                    if deliver <= ctx.now() {
                        return q.pop_front().expect("peeked").1;
                    }
                }
            }
            ctx.wait(self.nonempty);
        }
    }

    /// Dequeue an arrived item if one is available right now.
    pub fn try_recv(&self, ctx: &SimCtx) -> Option<T> {
        let mut q = self.inner.lock();
        match q.front() {
            Some(&(deliver, _)) if deliver <= ctx.now() => q.pop_front().map(|(_, item)| item),
            _ => None,
        }
    }

    /// Number of queued items (arrived or in flight).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn channel_fifo_order() {
        let mut k = Kernel::new();
        let ch: SimChannel<u32> = SimChannel::with_event(k.alloc_event());
        let tx = ch.clone();
        k.spawn("producer", move |ctx| {
            for i in 0..100 {
                ctx.advance(1);
                tx.send(&ctx, i);
            }
        });
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        k.spawn("consumer", move |ctx| {
            for _ in 0..100 {
                out2.lock().push(ch.recv(&ctx));
            }
        });
        k.run().unwrap();
        assert_eq!(*out.lock(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let mut k = Kernel::new();
        let ch: BoundedSimChannel<u32> =
            BoundedSimChannel::with_events(2, k.alloc_event(), k.alloc_event());
        let tx = ch.clone();
        let producer_done_at = Arc::new(AtomicU64::new(0));
        let pd = Arc::clone(&producer_done_at);
        k.spawn("producer", move |ctx| {
            for i in 0..4 {
                tx.send(&ctx, i);
            }
            pd.store(ctx.now(), Ordering::SeqCst);
        });
        k.spawn("consumer", move |ctx| {
            for _ in 0..4 {
                ctx.advance(100);
                ch.recv(&ctx);
            }
        });
        k.run().unwrap();
        // Producer fills 2 slots at t=0 then must wait for consumer drains
        // at t=100 and t=200 to place items 3 and 4.
        assert!(producer_done_at.load(Ordering::SeqCst) >= 200);
    }

    #[test]
    fn recv_timeout_returns_none_when_empty() {
        let mut k = Kernel::new();
        let ch: SimChannel<u32> = SimChannel::with_event(k.alloc_event());
        k.spawn("c", move |ctx| {
            assert_eq!(ch.recv_timeout(&ctx, 50), None);
            assert_eq!(ctx.now(), 50);
        });
        k.run().unwrap();
    }

    #[test]
    fn recv_timeout_receives_item_sent_before_deadline() {
        let mut k = Kernel::new();
        let ch: SimChannel<u32> = SimChannel::with_event(k.alloc_event());
        let tx = ch.clone();
        k.spawn("p", move |ctx| {
            ctx.advance(20);
            tx.send(&ctx, 7);
        });
        k.spawn("c", move |ctx| {
            assert_eq!(ch.recv_timeout(&ctx, 50), Some(7));
            assert_eq!(ctx.now(), 20);
        });
        k.run().unwrap();
    }

    #[test]
    fn latent_channel_delivers_after_latency() {
        let mut k = Kernel::new();
        let ch: LatentChannel<u32> = LatentChannel::new(&mut k, 30);
        let tx = ch.clone();
        k.spawn("p", move |ctx| {
            ctx.advance(10);
            tx.send(&ctx, 42);
        });
        k.spawn("c", move |ctx| {
            assert_eq!(ch.recv(&ctx), 42);
            assert_eq!(ctx.now(), 40); // sent at 10 + latency 30
        });
        k.run().unwrap();
    }

    #[test]
    fn latent_channel_preserves_fifo_order() {
        let mut k = Kernel::new();
        let ch: LatentChannel<u32> = LatentChannel::new(&mut k, 5);
        let tx = ch.clone();
        k.spawn("p", move |ctx| {
            for i in 0..50 {
                ctx.advance(1);
                tx.send(&ctx, i);
            }
        });
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        k.spawn("c", move |ctx| {
            for _ in 0..50 {
                out2.lock().push(ch.recv(&ctx));
            }
        });
        k.run().unwrap();
        assert_eq!(*out.lock(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn latent_channel_declares_its_latency_for_lookahead() {
        let mut k = Kernel::new();
        let _a: LatentChannel<u8> = LatentChannel::new(&mut k, 30);
        let _b: LatentChannel<u8> = LatentChannel::new(&mut k, 10);
        assert_eq!(k.effective_lookahead(), 10);
    }
}
