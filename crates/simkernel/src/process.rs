//! Simulated processes and the [`SimCtx`] handle they run against.
//!
//! A simulated process is host thread that cooperates with the kernel in
//! strict lock-step: the kernel resumes it, the process runs until it
//! needs virtual time to pass (or an event to fire), then it yields back.
//! At most one process executes per kernel *shard* at any instant (one in
//! total under the default sequential configuration), and the dispatch
//! order within and across shards is fully determined by virtual time,
//! which is what makes the simulation deterministic.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::Time;

/// Identifier of a simulated process.
pub type Pid = usize;

/// An event token processes can wait on and notify.
///
/// Events are cheap: allocating one just bumps a counter. The kernel keeps
/// the waiter bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) u64);

/// Why the kernel resumed a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeKind {
    /// `advance` completed, or initial start, or a plain yield.
    Scheduled,
    /// The event the process was waiting on was notified.
    Notified,
    /// A `wait_timeout` deadline fired before the event was notified.
    TimedOut,
    /// The kernel is shutting down; the process must unwind.
    Killed,
}

/// What a process reports back to the kernel when it yields.
#[derive(Debug)]
pub(crate) enum YieldReason {
    /// Resume me after `dt` virtual nanoseconds.
    Advance(Time),
    /// Block me until `event` is notified.
    Wait(EventId),
    /// Block me until `event` is notified or `dt` elapses.
    WaitTimeout(EventId, Time),
    /// Reschedule me at the current time, after already-queued events.
    YieldNow,
    /// The process body returned.
    Done,
    /// The process body panicked with this message.
    Panicked(String),
}

/// Lock-step rendezvous between the kernel and one process thread.
#[derive(Default)]
pub(crate) struct Rendezvous {
    state: Mutex<RendezvousState>,
    cond: Condvar,
}

#[derive(Default)]
struct RendezvousState {
    /// Set by the kernel to hand control to the process.
    go: Option<ResumeKind>,
    /// Set by the process to hand control back.
    yielded: Option<YieldReason>,
}

impl Rendezvous {
    /// Kernel side: resume the process and block until it yields.
    pub(crate) fn resume_and_wait(&self, kind: ResumeKind) -> YieldReason {
        let mut st = self.state.lock();
        debug_assert!(st.go.is_none(), "double resume");
        st.go = Some(kind);
        self.cond.notify_all();
        loop {
            if let Some(reason) = st.yielded.take() {
                return reason;
            }
            self.cond.wait(&mut st);
        }
    }

    /// Process side: publish a yield reason and block until resumed.
    fn yield_and_wait(&self, reason: YieldReason) -> ResumeKind {
        let mut st = self.state.lock();
        debug_assert!(st.yielded.is_none(), "double yield");
        st.yielded = Some(reason);
        self.cond.notify_all();
        loop {
            if let Some(kind) = st.go.take() {
                return kind;
            }
            self.cond.wait(&mut st);
        }
    }

    /// Kernel-shutdown path: hand the process a `Killed` resume without
    /// waiting for a yield (the process thread exits instead of yielding).
    pub(crate) fn kill(&self) {
        let mut st = self.state.lock();
        st.go = Some(ResumeKind::Killed);
        self.cond.notify_all();
    }

    /// Process side: wait for the very first resume without yielding.
    fn wait_first(&self) -> ResumeKind {
        let mut st = self.state.lock();
        loop {
            if let Some(kind) = st.go.take() {
                return kind;
            }
            self.cond.wait(&mut st);
        }
    }
}

/// Side-effect queues a running process fills and the kernel drains after
/// each yield. One instance **per process**: in sharded execution several
/// processes run concurrently (one per shard), and per-process queues keep
/// each shard's effect stream private to the dispatching worker.
/// Notifications carry a delivery delay: `0` means "wake current waiters
/// when this slice ends" (the classic [`SimCtx::notify`]), a positive
/// delay defers delivery onto the kernel's timed-notification queue
/// ([`SimCtx::notify_after`]).
#[derive(Default)]
pub(crate) struct SideEffects {
    pub(crate) notifications: Mutex<VecDeque<(EventId, Time)>>,
    #[allow(clippy::type_complexity)]
    pub(crate) spawns:
        Mutex<VecDeque<(String, Box<dyn FnOnce(SimCtx) + Send + 'static>, Pid)>>,
}

/// Shared process directory: pid allocation, completion events and
/// finished flags — the state behind [`SimCtx::join`].
#[derive(Default)]
pub(crate) struct Directory {
    entries: Mutex<Vec<DirEntry>>,
}

pub(crate) struct DirEntry {
    pub(crate) finished: bool,
    pub(crate) completion: EventId,
}

impl Directory {
    /// Reserve the next pid, recording its completion event.
    pub(crate) fn reserve(&self, completion: EventId) -> Pid {
        let mut entries = self.entries.lock();
        entries.push(DirEntry {
            finished: false,
            completion,
        });
        entries.len() - 1
    }

    pub(crate) fn mark_finished(&self, pid: Pid) -> EventId {
        let mut entries = self.entries.lock();
        entries[pid].finished = true;
        entries[pid].completion
    }

    pub(crate) fn is_finished(&self, pid: Pid) -> bool {
        self.entries.lock()[pid].finished
    }

    pub(crate) fn completion(&self, pid: Pid) -> EventId {
        self.entries.lock()[pid].completion
    }
}

/// Shared, lock-free view of kernel state readable from process threads.
pub(crate) struct SharedClock {
    pub(crate) now: AtomicU64,
    pub(crate) next_event_id: AtomicU64,
    pub(crate) shutting_down: AtomicBool,
}

impl SharedClock {
    pub(crate) fn new() -> Self {
        SharedClock {
            now: AtomicU64::new(0),
            next_event_id: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
        }
    }
}

/// Panic payload used to unwind a process thread when the kernel kills it.
pub(crate) struct KilledToken;

/// Handle through which a simulated process interacts with the kernel.
///
/// All blocking operations (`advance`, `wait`, …) transfer control to the
/// kernel and only return once the kernel schedules this process again.
/// If the kernel is dropped mid-simulation the next blocking call unwinds
/// the process thread; user code never observes this (the unwind is caught
/// at the process boundary).
pub struct SimCtx {
    pub(crate) pid: Pid,
    pub(crate) name: String,
    pub(crate) rendezvous: Arc<Rendezvous>,
    pub(crate) clock: Arc<SharedClock>,
    /// Virtual time as seen by this process's shard. With one shard this
    /// tracks the global clock exactly; in windowed execution each shard
    /// advances its own copy inside the current time window.
    pub(crate) now_cell: Arc<AtomicU64>,
    pub(crate) effects: Arc<SideEffects>,
    pub(crate) directory: Arc<Directory>,
}

impl SimCtx {
    /// This process's identifier.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// This process's name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current virtual time in nanoseconds (this shard's view; identical
    /// to the global clock under sequential execution).
    pub fn now(&self) -> Time {
        self.now_cell.load(Ordering::Acquire)
    }

    /// Allocate a fresh event token. Never blocks.
    pub fn alloc_event(&self) -> EventId {
        EventId(self.clock.next_event_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Queue a notification for `event`. All processes currently waiting
    /// on it are woken (at the current virtual time) once this process
    /// next yields. Never blocks and never wakes the caller itself.
    pub fn notify(&self, event: EventId) {
        self.effects.notifications.lock().push_back((event, 0));
    }

    /// Queue a notification for `event` to be delivered `dt` virtual
    /// nanoseconds from now. Waiters registered at delivery time are
    /// woken then. This is the latency-bearing form of [`SimCtx::notify`]
    /// that gives sharded execution its lookahead: under windowed
    /// parallelism `dt` must be at least the kernel's lookahead, or the
    /// run fails with a lookahead violation.
    pub fn notify_after(&self, event: EventId, dt: Time) {
        self.effects.notifications.lock().push_back((event, dt));
    }

    /// Let `dt` nanoseconds of virtual time pass.
    pub fn advance(&self, dt: Time) {
        self.do_yield(YieldReason::Advance(dt));
    }

    /// Yield the processor, re-queueing this process at the current time
    /// *after* all already-scheduled same-time events. Lets same-time
    /// peers run.
    pub fn yield_now(&self) {
        self.do_yield(YieldReason::YieldNow);
    }

    /// Block until `event` is notified.
    pub fn wait(&self, event: EventId) {
        let kind = self.do_yield(YieldReason::Wait(event));
        debug_assert_eq!(kind, ResumeKind::Notified);
    }

    /// Block until `event` is notified or `dt` nanoseconds pass.
    /// Returns `true` if the event fired, `false` on timeout.
    pub fn wait_timeout(&self, event: EventId, dt: Time) -> bool {
        match self.do_yield(YieldReason::WaitTimeout(event, dt)) {
            ResumeKind::Notified => true,
            ResumeKind::TimedOut => false,
            other => unreachable!("unexpected resume {other:?}"),
        }
    }

    /// Spawn a new simulated process. It becomes runnable at the current
    /// virtual time, after already-queued same-time events. Returns its
    /// [`Pid`], usable with [`SimCtx::join`].
    pub fn spawn<F>(&self, name: impl Into<String>, body: F) -> Pid
    where
        F: FnOnce(SimCtx) + Send + 'static,
    {
        let pid = self.directory.reserve(self.alloc_event());
        self.effects
            .spawns
            .lock()
            .push_back((name.into(), Box::new(body), pid));
        pid
    }

    /// Block until process `pid` finishes (immediately returns if it
    /// already has).
    ///
    /// ```
    /// use sim_kernel::Kernel;
    ///
    /// let mut kernel = Kernel::new();
    /// kernel.spawn("parent", |ctx| {
    ///     let child = ctx.spawn("child", |c| c.advance(250));
    ///     ctx.join(child);
    ///     assert_eq!(ctx.now(), 250);
    /// });
    /// kernel.run().unwrap();
    /// ```
    pub fn join(&self, pid: Pid) {
        loop {
            if self.directory.is_finished(pid) {
                return;
            }
            let completion = self.directory.completion(pid);
            self.wait(completion);
        }
    }

    fn do_yield(&self, reason: YieldReason) -> ResumeKind {
        if self.clock.shutting_down.load(Ordering::Acquire) {
            std::panic::panic_any(KilledToken);
        }
        let kind = self.rendezvous.yield_and_wait(reason);
        if kind == ResumeKind::Killed {
            std::panic::panic_any(KilledToken);
        }
        kind
    }
}

/// Body of a process thread: wait for the initial resume, run the user
/// closure under `catch_unwind`, and report the outcome.
pub(crate) fn process_main(ctx: SimCtx, body: Box<dyn FnOnce(SimCtx) + Send + 'static>) {
    let rendezvous = Arc::clone(&ctx.rendezvous);
    let first = rendezvous.wait_first();
    if first == ResumeKind::Killed {
        return;
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || body(ctx)));
    match result {
        Ok(()) => {
            // Final yield: the kernel sees Done and never resumes us.
            let mut st = rendezvous.state.lock();
            st.yielded = Some(YieldReason::Done);
            rendezvous.cond.notify_all();
        }
        Err(payload) => {
            if payload.downcast_ref::<KilledToken>().is_some() {
                // Kernel shutdown: exit silently without reporting.
                return;
            }
            let message = payload_to_string(&*payload);
            let mut st = rendezvous.state.lock();
            st.yielded = Some(YieldReason::Panicked(message));
            rendezvous.cond.notify_all();
        }
    }
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
