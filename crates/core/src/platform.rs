//! Platform abstraction: how an [`AppSpec`] gets
//! deployed and what comes back when it finishes.

use crate::app::AppSpec;
use crate::error::EmberaError;
use crate::observe::report::ObservationReport;

/// Final report of a completed application run: one multi-level
/// observation report per component plus run-level totals. This is the
/// data behind the paper's Tables 1-3.
#[derive(Debug, Clone, Default)]
pub struct AppReport {
    /// Application name.
    pub app_name: String,
    /// Platform time from deployment to completion, ns.
    pub wall_time_ns: u64,
    /// Per-component reports, in component order.
    pub components: Vec<ObservationReport>,
}

impl AppReport {
    /// The report of a named component.
    pub fn component(&self, name: &str) -> Option<&ObservationReport> {
        self.components.iter().find(|r| r.component == name)
    }

    /// Sum of all data sends across components.
    pub fn total_sends(&self) -> u64 {
        self.components.iter().map(|r| r.app.total_sends).sum()
    }

    /// Sum of all data receives across components.
    pub fn total_receives(&self) -> u64 {
        self.components.iter().map(|r| r.app.total_receives).sum()
    }
}

/// A deployed, running application.
pub trait RunningApp {
    /// Block until every application component's behavior completes,
    /// shut down the observation service loops, and return the final
    /// observation reports.
    fn wait(self) -> Result<AppReport, EmberaError>;
}

/// A deployment target. The paper implements two: a 16-core SMP Linux
/// machine (§4) and the STi7200 MPSoC under OS21 (§5); this workspace
/// mirrors them with `embera-smp` and `embera-os21`.
pub trait Platform {
    /// Handle type for a deployed application.
    type Running: RunningApp;

    /// Instantiate components, wire connections and launch execution
    /// flows (the model's *deployment*, paper §4.1: "The deployment of
    /// any EMBera application is carried out by explicitly invoking
    /// control functions").
    fn deploy(&mut self, spec: AppSpec) -> Result<Self::Running, EmberaError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_lookup_and_totals() {
        let mut a = ObservationReport {
            component: "a".into(),
            ..Default::default()
        };
        a.app.total_sends = 3;
        let mut b = ObservationReport {
            component: "b".into(),
            ..Default::default()
        };
        b.app.total_receives = 3;
        let report = AppReport {
            app_name: "app".into(),
            wall_time_ns: 10,
            components: vec![a, b],
        };
        assert!(report.component("a").is_some());
        assert!(report.component("zzz").is_none());
        assert_eq!(report.total_sends(), 3);
        assert_eq!(report.total_receives(), 3);
    }
}
