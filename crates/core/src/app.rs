//! Application assembly: the builder, connection wiring, observer
//! auto-wiring, and deployment-time validation.

use std::collections::{HashMap, HashSet};

use crate::component::{ComponentSpec, INTROSPECTION};
use crate::error::EmberaError;
use crate::observe::topology::ObserverTopology;
use crate::observer::{
    is_observer_component, ObservationLog, ObserverBehavior, ObserverConfig,
    RegionObserverBehavior, RootObserverBehavior, OBSERVER_NAME, REGION_OBSERVER_PREFIX,
};
use crate::runtime::TraceConfig;
use crate::supervise::FaultPlan;

/// One end of a connection.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// Component name.
    pub component: String,
    /// Interface name on that component.
    pub interface: String,
}

impl Endpoint {
    /// Build an endpoint.
    pub fn new(component: impl Into<String>, interface: impl Into<String>) -> Self {
        Endpoint {
            component: component.into(),
            interface: interface.into(),
        }
    }
}

/// A connection "established by linking required and provided
/// interfaces" (paper §3.1): `from` is the required side (the sender),
/// `to` the provided side (the mailbox).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// Required-interface side.
    pub from: Endpoint,
    /// Provided-interface side.
    pub to: Endpoint,
}

/// A validated, deployable application description.
#[derive(Debug)]
pub struct AppSpec {
    /// Application name.
    pub name: String,
    /// Components, in addition order (the observer, if any, is last).
    pub components: Vec<ComponentSpec>,
    /// Validated connections.
    pub connections: Vec<Connection>,
    /// Whether an observer component was auto-wired.
    pub has_observer: bool,
    /// Event-tracing opt-in: when set, every backend routes the
    /// components' runtime events (sends, receives, compute, lifecycle,
    /// served observations) into sinks built by this configuration.
    pub trace: Option<TraceConfig>,
    /// Deterministic fault-injection plan applied by the shared
    /// component runtime on every backend (reproducible bit-for-bit on
    /// `embera-inproc`).
    pub faults: Option<FaultPlan>,
    /// Shared payload buffer pool for zero-allocation steady-state
    /// messaging ([`AppBuilder::with_buffer_pool`]). Backends that
    /// support it draw their send-side payload copies from the pool and
    /// expose it to behaviors through `Ctx::payload_pool`.
    pub pool: Option<crate::pool::BufferPool>,
}

impl AppSpec {
    /// Find a component index by name.
    pub fn component_index(&self, name: &str) -> Option<usize> {
        self.components.iter().position(|c| c.name == name)
    }

    /// The connection whose required side is `(component, interface)`.
    pub fn connection_from(&self, component: &str, interface: &str) -> Option<&Connection> {
        self.connections
            .iter()
            .find(|c| c.from.component == component && c.from.interface == interface)
    }

    /// Render the component graph in GraphViz dot format: one node per
    /// component (observer dashed), one edge per connection (observation
    /// wiring dotted). Paste into `dot -Tsvg` to get the paper's
    /// Figure 1/3/7-style diagrams for any application.
    ///
    /// ```
    /// use embera::behavior::behavior_fn;
    /// use embera::{AppBuilder, ComponentSpec};
    ///
    /// let mut app = AppBuilder::new("demo");
    /// app.add(ComponentSpec::new("a", behavior_fn(|_| Ok(()))).with_required("out"));
    /// app.add(ComponentSpec::new("b", behavior_fn(|_| Ok(()))).with_provided("in"));
    /// app.connect(("a", "out"), ("b", "in"));
    /// let dot = app.build().unwrap().to_dot();
    /// assert!(dot.contains("\"a\" -> \"b\""));
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph embera {\n  rankdir=LR;\n  node [shape=box];\n");
        for c in &self.components {
            let style = if is_observer_component(&c.name) {
                ", style=dashed"
            } else {
                ""
            };
            let _ = writeln!(out, "  \"{}\" [label=\"{}\"{}];", c.name, c.name, style);
        }
        for conn in &self.connections {
            let observation = conn.from.interface == crate::component::INTROSPECTION
                || conn.to.interface == crate::component::INTROSPECTION;
            let style = if observation { " [style=dotted]" } else { "" };
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\"]{};",
                conn.from.component, conn.to.component, conn.from.interface, style
            );
        }
        out.push_str("}\n");
        out
    }

    /// Names of components excluding the observer tree.
    pub fn application_components(&self) -> Vec<&str> {
        self.components
            .iter()
            .map(|c| c.name.as_str())
            .filter(|n| !is_observer_component(n))
            .collect()
    }
}

/// Builder of EMBera applications. Mirrors the paper's `main` function
/// in which "each one of the five components and its interfaces are
/// instantiated. Then, this function specifies the connections between
/// all the components" (§4.3, Figure 3b).
pub struct AppBuilder {
    name: String,
    components: Vec<ComponentSpec>,
    connections: Vec<Connection>,
    observer: Option<ObserverConfig>,
    trace: Option<TraceConfig>,
    faults: Option<FaultPlan>,
    pool: Option<crate::pool::BufferPool>,
}

impl AppBuilder {
    /// Start building an application.
    pub fn new(name: impl Into<String>) -> Self {
        AppBuilder {
            name: name.into(),
            components: Vec::new(),
            connections: Vec::new(),
            observer: None,
            trace: None,
            faults: None,
            pool: None,
        }
    }

    /// Add a component (the model's *creation* control operation).
    pub fn add(&mut self, component: ComponentSpec) -> &mut Self {
        self.components.push(component);
        self
    }

    /// Connect a required interface to a provided interface (the model's
    /// *interconnection* control operation). Validation happens in
    /// [`AppBuilder::build`].
    pub fn connect(&mut self, from: (&str, &str), to: (&str, &str)) -> &mut Self {
        self.connections.push(Connection {
            from: Endpoint::new(from.0, from.1),
            to: Endpoint::new(to.0, to.1),
        });
        self
    }

    /// Add an observer component that periodically queries every other
    /// component's observation interface. Returns the log the observer
    /// fills; keep it to inspect the collected reports.
    pub fn with_observer(&mut self, config: ObserverConfig) -> ObservationLog {
        let log = ObservationLog::new();
        self.observer = Some(config.with_log(log.clone()));
        log
    }

    /// Opt the application into event tracing: every deployed component
    /// gets a sink from `config` and the runtime emits detailed events
    /// (sends, receives, compute sections, lifecycle, served observation
    /// requests) on every backend — no behavior wrapping required.
    pub fn with_tracing(&mut self, config: TraceConfig) -> &mut Self {
        self.trace = Some(config);
        self
    }

    /// Attach a deterministic fault-injection plan (testing aid). The
    /// shared component runtime applies the plan on every backend; empty
    /// plans are discarded.
    pub fn with_faults(&mut self, plan: FaultPlan) -> &mut Self {
        self.faults = (!plan.is_empty()).then_some(plan);
        self
    }

    /// Attach a shared payload buffer pool. Backends that support it
    /// (currently `embera-smp`) serve their send-primitive payload
    /// copies from the pool and hand it to behaviors through
    /// `Ctx::payload_pool`, making steady-state messaging allocation
    /// free once the pool is warm.
    pub fn with_buffer_pool(&mut self, pool: crate::pool::BufferPool) -> &mut Self {
        self.pool = Some(pool);
        self
    }

    /// Attach a restart policy to an already-added component — the
    /// supervision hook for components created by application builders
    /// (e.g. the MJPEG pipeline). Panics if no component with that name
    /// has been added: supervising a typo is a configuration bug.
    pub fn restart_component(
        &mut self,
        name: &str,
        policy: crate::supervise::RestartPolicy,
    ) -> &mut Self {
        let c = self
            .components
            .iter_mut()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("restart_component: no component named '{name}'"));
        c.restart = Some(policy);
        self
    }

    /// Attach an overload policy to an already-added component — the
    /// overload hook for components created by application builders.
    /// Panics if no component with that name has been added.
    pub fn overload_component(
        &mut self,
        name: &str,
        policy: crate::overload::OverloadPolicy,
    ) -> &mut Self {
        let c = self
            .components
            .iter_mut()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("overload_component: no component named '{name}'"));
        c.overload = Some(policy);
        self
    }

    /// Validate and finalize the application.
    pub fn build(mut self) -> Result<AppSpec, EmberaError> {
        // Auto-wire the observer before validation so its connections are
        // checked like any other.
        let has_observer = self.observer.is_some();
        if let Some(config) = self.observer.take() {
            // The observer tree owns "Observer" and every "Observer.*"
            // name; a user component shadowing one would corrupt the
            // backends' application-completion accounting.
            for c in &self.components {
                if c.name == OBSERVER_NAME || c.name.starts_with("Observer.") {
                    return Err(EmberaError::Validation(format!(
                        "component name '{}' is reserved for the auto-wired observer",
                        c.name
                    )));
                }
            }
            let targets: Vec<String> =
                self.components.iter().map(|c| c.name.clone()).collect();
            match config.topology.clone() {
                ObserverTopology::Flat => {
                    if config.actuate.is_some() {
                        return Err(EmberaError::Validation(
                            "actuate requires a hierarchical observer topology \
                             (the root observer streams region summaries)"
                                .into(),
                        ));
                    }
                    self.wire_flat_observer(targets, config)
                }
                ObserverTopology::Sharded { regions } => {
                    let r = regions.clamp(1, targets.len().max(1));
                    let per = targets.len().div_ceil(r).max(1);
                    let groups: Vec<(String, Vec<String>)> = targets
                        .chunks(per)
                        .enumerate()
                        .map(|(i, chunk)| (format!("region{i}"), chunk.to_vec()))
                        .collect();
                    self.wire_hierarchical_observer(groups, config)?;
                }
                ObserverTopology::Grouped { groups } => {
                    let known: HashSet<&str> = targets.iter().map(|t| t.as_str()).collect();
                    let mut seen = HashSet::new();
                    for (label, members) in &groups {
                        for m in members {
                            if !known.contains(m.as_str()) {
                                return Err(EmberaError::Validation(format!(
                                    "observer group '{label}' lists unknown component '{m}'"
                                )));
                            }
                            if !seen.insert(m.as_str()) {
                                return Err(EmberaError::Validation(format!(
                                    "component '{m}' assigned to more than one observer group"
                                )));
                            }
                        }
                    }
                    self.wire_hierarchical_observer(groups, config)?;
                }
            }
        }
        self.validate()?;
        Ok(AppSpec {
            name: self.name,
            components: self.components,
            connections: self.connections,
            has_observer,
            trace: self.trace,
            faults: self.faults,
            pool: self.pool,
        })
    }

    /// The paper's flat topology: one observer component, wired to every
    /// component. Byte-identical to the pre-hierarchy auto-wiring.
    fn wire_flat_observer(&mut self, targets: Vec<String>, config: ObserverConfig) {
        let mut observer = ComponentSpec::new(
            OBSERVER_NAME,
            ObserverBehavior::new(targets.clone(), config),
        )
        .with_provided("observations");
        for t in &targets {
            observer = observer.with_required(format!("obs_{t}"));
        }
        for t in &targets {
            // Observer asks through obs_<t> -> t.introspection, and t
            // answers through t.introspection -> Observer.observations.
            self.connections.push(Connection {
                from: Endpoint::new(OBSERVER_NAME, format!("obs_{t}")),
                to: Endpoint::new(t.clone(), INTROSPECTION),
            });
            self.connections.push(Connection {
                from: Endpoint::new(t.clone(), INTROSPECTION),
                to: Endpoint::new(OBSERVER_NAME, "observations"),
            });
        }
        self.components.push(observer);
    }

    /// Two-level hierarchy: one regional observer per group (each wired
    /// to its members exactly like a flat observer), all rolling up to a
    /// root observer appended last.
    fn wire_hierarchical_observer(
        &mut self,
        groups: Vec<(String, Vec<String>)>,
        config: ObserverConfig,
    ) -> Result<(), EmberaError> {
        if let Some((done_component, _)) = &config.notify_done {
            let observed = groups
                .iter()
                .any(|(_, members)| members.iter().any(|m| m == done_component));
            if observed {
                return Err(EmberaError::Validation(format!(
                    "notify_done target '{done_component}' must not itself be observed \
                     (it can only finish after the observer tree does)"
                )));
            }
        }
        if let Some((actuate_component, _)) = &config.actuate {
            let observed = groups
                .iter()
                .any(|(_, members)| members.iter().any(|m| m == actuate_component));
            if observed {
                return Err(EmberaError::Validation(format!(
                    "actuate target '{actuate_component}' must not itself be observed \
                     (it consumes the observer tree's output)"
                )));
            }
        }
        for (idx, (label, members)) in groups.iter().enumerate() {
            let name = format!("{REGION_OBSERVER_PREFIX}{idx}");
            let mut regional = ComponentSpec::new(
                name.clone(),
                RegionObserverBehavior::new(label.clone(), members.clone(), config.clone()),
            )
            .with_provided("observations")
            .with_required("rollup");
            for m in members {
                regional = regional.with_required(format!("obs_{m}"));
            }
            for m in members {
                self.connections.push(Connection {
                    from: Endpoint::new(name.clone(), format!("obs_{m}")),
                    to: Endpoint::new(m.clone(), INTROSPECTION),
                });
                self.connections.push(Connection {
                    from: Endpoint::new(m.clone(), INTROSPECTION),
                    to: Endpoint::new(name.clone(), "observations"),
                });
            }
            self.connections.push(Connection {
                from: Endpoint::new(name, "rollup"),
                to: Endpoint::new(OBSERVER_NAME, "regions"),
            });
            self.components.push(regional);
        }
        let mut root = ComponentSpec::new(
            OBSERVER_NAME,
            RootObserverBehavior::new(groups.len(), config.clone()),
        )
        .with_provided("regions");
        if let Some((actuate_component, actuate_iface)) = &config.actuate {
            root = root.with_required("actuate");
            self.connections.push(Connection {
                from: Endpoint::new(OBSERVER_NAME, "actuate"),
                to: Endpoint::new(actuate_component.clone(), actuate_iface.clone()),
            });
        }
        if let Some((done_component, done_iface)) = &config.notify_done {
            root = root.with_required("done");
            self.connections.push(Connection {
                from: Endpoint::new(OBSERVER_NAME, "done"),
                to: Endpoint::new(done_component.clone(), done_iface.clone()),
            });
        }
        self.components.push(root);
        Ok(())
    }

    fn validate(&self) -> Result<(), EmberaError> {
        let err = |msg: String| Err(EmberaError::Validation(msg));

        // Unique, non-empty component names.
        let mut names = HashSet::new();
        for c in &self.components {
            if c.name.is_empty() {
                return err("component with empty name".into());
            }
            if !names.insert(c.name.as_str()) {
                return err(format!("duplicate component name '{}'", c.name));
            }
        }
        let by_name: HashMap<&str, &ComponentSpec> = self
            .components
            .iter()
            .map(|c| (c.name.as_str(), c))
            .collect();

        // Interface declarations: unique per role, 'introspection' is
        // reserved for the implicit observation pair.
        for c in &self.components {
            for list in [&c.provided, &c.required] {
                let mut seen = HashSet::new();
                for iface in list {
                    if iface == INTROSPECTION {
                        return err(format!(
                            "component '{}' declares reserved interface '{INTROSPECTION}'",
                            c.name
                        ));
                    }
                    if !seen.insert(iface.as_str()) {
                        return err(format!(
                            "component '{}' declares interface '{iface}' twice",
                            c.name
                        ));
                    }
                }
            }
        }

        // Connection endpoints must exist with the right roles.
        for conn in &self.connections {
            let Some(from) = by_name.get(conn.from.component.as_str()) else {
                return err(format!(
                    "connection from unknown component '{}'",
                    conn.from.component
                ));
            };
            if !from.has_required(&conn.from.interface) {
                return err(format!(
                    "component '{}' has no required interface '{}'",
                    conn.from.component, conn.from.interface
                ));
            }
            let Some(to) = by_name.get(conn.to.component.as_str()) else {
                return err(format!(
                    "connection to unknown component '{}'",
                    conn.to.component
                ));
            };
            if !to.has_provided(&conn.to.interface) {
                return err(format!(
                    "component '{}' has no provided interface '{}'",
                    conn.to.component, conn.to.interface
                ));
            }
        }

        // A required interface binds at most once.
        let mut bound = HashSet::new();
        for conn in &self.connections {
            if !bound.insert((&conn.from.component, &conn.from.interface)) {
                return err(format!(
                    "required interface '{}' of '{}' connected twice",
                    conn.from.interface, conn.from.component
                ));
            }
        }

        // Every *data* required interface must be bound (an unbound
        // introspection pair just means no observer is attached).
        for c in &self.components {
            for r in &c.required {
                if !bound.contains(&(&c.name, r)) {
                    return err(format!(
                        "required interface '{r}' of component '{}' is not connected",
                        c.name
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::behavior_fn;

    fn noop() -> impl crate::Behavior + 'static {
        behavior_fn(|_ctx| Ok(()))
    }

    fn two_component_builder() -> AppBuilder {
        let mut b = AppBuilder::new("app");
        b.add(ComponentSpec::new("a", noop()).with_required("out"));
        b.add(ComponentSpec::new("b", noop()).with_provided("in"));
        b.connect(("a", "out"), ("b", "in"));
        b
    }

    #[test]
    fn valid_app_builds() {
        let spec = two_component_builder().build().unwrap();
        assert_eq!(spec.components.len(), 2);
        assert_eq!(spec.connections.len(), 1);
        assert!(!spec.has_observer);
        assert!(spec.connection_from("a", "out").is_some());
    }

    #[test]
    fn duplicate_component_name_rejected() {
        let mut b = AppBuilder::new("app");
        b.add(ComponentSpec::new("x", noop()));
        b.add(ComponentSpec::new("x", noop()));
        assert!(matches!(b.build(), Err(EmberaError::Validation(_))));
    }

    #[test]
    fn unbound_required_interface_rejected() {
        let mut b = AppBuilder::new("app");
        b.add(ComponentSpec::new("a", noop()).with_required("out"));
        let e = b.build().unwrap_err();
        let EmberaError::Validation(msg) = e else {
            panic!()
        };
        assert!(msg.contains("not connected"), "{msg}");
    }

    #[test]
    fn double_binding_of_required_interface_rejected() {
        let mut b = AppBuilder::new("app");
        b.add(ComponentSpec::new("a", noop()).with_required("out"));
        b.add(ComponentSpec::new("b", noop()).with_provided("in1").with_provided("in2"));
        b.connect(("a", "out"), ("b", "in1"));
        b.connect(("a", "out"), ("b", "in2"));
        assert!(b.build().is_err());
    }

    #[test]
    fn fan_in_to_one_provided_interface_is_allowed() {
        let mut b = AppBuilder::new("app");
        b.add(ComponentSpec::new("a", noop()).with_required("out"));
        b.add(ComponentSpec::new("b", noop()).with_required("out"));
        b.add(ComponentSpec::new("sink", noop()).with_provided("in"));
        b.connect(("a", "out"), ("sink", "in"));
        b.connect(("b", "out"), ("sink", "in"));
        assert!(b.build().is_ok());
    }

    #[test]
    fn connection_to_unknown_interface_rejected() {
        let mut b = AppBuilder::new("app");
        b.add(ComponentSpec::new("a", noop()).with_required("out"));
        b.add(ComponentSpec::new("b", noop()));
        b.connect(("a", "out"), ("b", "nope"));
        assert!(b.build().is_err());
    }

    #[test]
    fn declaring_introspection_explicitly_rejected() {
        let mut b = AppBuilder::new("app");
        b.add(ComponentSpec::new("a", noop()).with_provided(INTROSPECTION));
        assert!(b.build().is_err());
    }

    #[test]
    fn observer_autowires_connections() {
        let mut b = two_component_builder();
        let _log = b.with_observer(ObserverConfig::default());
        let spec = b.build().unwrap();
        assert!(spec.has_observer);
        assert_eq!(spec.components.len(), 3);
        let obs = &spec.components[2];
        assert_eq!(obs.name, OBSERVER_NAME);
        assert_eq!(obs.provided, vec!["observations"]);
        assert_eq!(obs.required, vec!["obs_a", "obs_b"]);
        // 1 data connection + 2 per observed component.
        assert_eq!(spec.connections.len(), 1 + 4);
        assert_eq!(spec.application_components(), vec!["a", "b"]);
    }

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let spec = two_component_builder().build().unwrap();
        let dot = spec.to_dot();
        assert!(dot.starts_with("digraph embera {"));
        assert!(dot.contains("\"a\" [label=\"a\"];"));
        assert!(dot.contains("\"a\" -> \"b\" [label=\"out\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_export_marks_observer_wiring() {
        let mut b = two_component_builder();
        let _ = b.with_observer(ObserverConfig::default());
        let dot = b.build().unwrap().to_dot();
        assert!(dot.contains("style=dashed"), "observer node dashed");
        assert!(dot.contains("style=dotted"), "observation edges dotted");
    }

    #[test]
    fn sharded_observer_wires_regionals_and_root() {
        let mut b = AppBuilder::new("app");
        for n in ["a", "b", "c", "d"] {
            b.add(ComponentSpec::new(n, noop()));
        }
        let _log = b.with_observer(ObserverConfig::default().sharded(2));
        let spec = b.build().unwrap();
        assert!(spec.has_observer);
        // 4 app components + 2 regionals + root.
        assert_eq!(spec.components.len(), 7);
        assert_eq!(spec.components[4].name, "Observer.region0");
        assert_eq!(spec.components[5].name, "Observer.region1");
        let root = &spec.components[6];
        assert_eq!(root.name, OBSERVER_NAME);
        assert_eq!(root.provided, vec!["regions"]);
        assert!(root.required.is_empty());
        let r0 = &spec.components[4];
        assert_eq!(r0.provided, vec!["observations"]);
        assert_eq!(r0.required, vec!["rollup", "obs_a", "obs_b"]);
        // 2 per member (4 members) + 1 rollup per region (2 regions).
        assert_eq!(spec.connections.len(), 4 * 2 + 2);
        assert_eq!(spec.application_components(), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn grouped_observer_validates_membership() {
        let mk = || {
            let mut b = AppBuilder::new("app");
            b.add(ComponentSpec::new("a", noop()));
            b.add(ComponentSpec::new("b", noop()));
            b
        };
        let mut b = mk();
        b.with_observer(ObserverConfig::default().grouped(vec![(
            "g".into(),
            vec!["a".into(), "nope".into()],
        )]));
        assert!(matches!(b.build(), Err(EmberaError::Validation(_))));

        let mut b = mk();
        b.with_observer(ObserverConfig::default().grouped(vec![
            ("g1".into(), vec!["a".into()]),
            ("g2".into(), vec!["a".into()]),
        ]));
        assert!(matches!(b.build(), Err(EmberaError::Validation(_))));

        // Unlisted components are simply unobserved.
        let mut b = mk();
        b.with_observer(
            ObserverConfig::default().grouped(vec![("g".into(), vec!["a".into()])]),
        );
        let spec = b.build().unwrap();
        assert_eq!(spec.components.len(), 4); // a, b, regional, root
    }

    #[test]
    fn observer_names_are_reserved() {
        for bad in [OBSERVER_NAME, "Observer.region0", "Observer.custom"] {
            let mut b = AppBuilder::new("app");
            b.add(ComponentSpec::new(bad, noop()));
            b.with_observer(ObserverConfig::default());
            assert!(
                matches!(b.build(), Err(EmberaError::Validation(_))),
                "'{bad}' accepted"
            );
        }
    }

    #[test]
    fn notify_done_target_must_be_unobserved() {
        let mut b = AppBuilder::new("app");
        b.add(ComponentSpec::new("a", noop()));
        b.add(ComponentSpec::new("waiter", noop()).with_provided("done"));
        b.with_observer(
            ObserverConfig::default()
                .sharded(1)
                .notify_done("waiter", "done"),
        );
        // Sharded observes everything, including the waiter: rejected.
        assert!(matches!(b.build(), Err(EmberaError::Validation(_))));

        let mut b = AppBuilder::new("app");
        b.add(ComponentSpec::new("a", noop()));
        b.add(ComponentSpec::new("waiter", noop()).with_provided("done"));
        b.with_observer(
            ObserverConfig::default()
                .grouped(vec![("g".into(), vec!["a".into()])])
                .notify_done("waiter", "done"),
        );
        let spec = b.build().unwrap();
        let root = spec.components.last().unwrap();
        assert_eq!(root.required, vec!["done"]);
        assert!(spec
            .connections
            .iter()
            .any(|c| c.from.component == OBSERVER_NAME
                && c.from.interface == "done"
                && c.to.component == "waiter"));
    }

    #[test]
    fn actuate_wires_root_to_controller() {
        // Flat topology cannot actuate.
        let mut b = AppBuilder::new("app");
        b.add(ComponentSpec::new("a", noop()));
        b.add(ComponentSpec::new("ctl", noop()).with_provided("summaries"));
        b.with_observer(ObserverConfig::default().actuate("ctl", "summaries"));
        assert!(matches!(b.build(), Err(EmberaError::Validation(_))));

        // An observed actuate target is rejected.
        let mut b = AppBuilder::new("app");
        b.add(ComponentSpec::new("a", noop()));
        b.add(ComponentSpec::new("ctl", noop()).with_provided("summaries"));
        b.with_observer(
            ObserverConfig::default()
                .sharded(1)
                .actuate("ctl", "summaries"),
        );
        assert!(matches!(b.build(), Err(EmberaError::Validation(_))));

        // Grouped hierarchy with an unobserved controller wires up.
        let mut b = AppBuilder::new("app");
        b.add(ComponentSpec::new("a", noop()));
        b.add(ComponentSpec::new("ctl", noop()).with_provided("summaries"));
        b.with_observer(
            ObserverConfig::default()
                .grouped(vec![("g".into(), vec!["a".into()])])
                .actuate("ctl", "summaries"),
        );
        let spec = b.build().unwrap();
        let root = spec.components.last().unwrap();
        assert_eq!(root.required, vec!["actuate"]);
        assert!(spec
            .connections
            .iter()
            .any(|c| c.from.component == OBSERVER_NAME
                && c.from.interface == "actuate"
                && c.to.component == "ctl"
                && c.to.interface == "summaries"));
    }

    #[test]
    fn connecting_to_introspection_directly_is_allowed() {
        // A hand-rolled observer can target introspection itself.
        let mut b = AppBuilder::new("app");
        b.add(ComponentSpec::new("a", noop()));
        b.add(
            ComponentSpec::new("myobs", noop())
                .with_provided("replies")
                .with_required("ask_a"),
        );
        b.connect(("myobs", "ask_a"), ("a", INTROSPECTION));
        b.connect(("a", INTROSPECTION), ("myobs", "replies"));
        assert!(b.build().is_ok());
    }
}
