//! A shared payload buffer pool for zero-allocation steady-state
//! messaging.
//!
//! The paper's mailbox transport copies every payload at the send
//! primitive (the Figure 4 copy). Without a pool each copy is a fresh
//! heap allocation; with one, buffers cycle between senders, the
//! transport, and receivers: a sender serializes into a pooled buffer,
//! the transport draws a second pooled buffer for its copy and recycles
//! the sender's, and the receiver recycles the transport's once the
//! message is consumed. After a short warm-up the working set is
//! constant and the hot path performs **zero** heap allocations — the
//! `bench` crate proves this with a counting global allocator.
//!
//! Recycling is safe by construction: a buffer is only reclaimed when
//! its [`Bytes`] handle is *unique* (no clones or zero-copy slices
//! outlive it), so a stale view can never observe a refill.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

/// Counters describing a pool's lifetime behavior (all monotonically
/// increasing except `free`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers allocated on demand because the free list was empty.
    /// A fully prewarmed steady state keeps this at 0.
    pub grown: u64,
    /// Buffers successfully returned to the free list.
    pub recycled: u64,
    /// Recycle attempts rejected (buffer still shared, or storage of
    /// the wrong size) plus oversize payloads served outside the pool.
    pub dropped: u64,
    /// Buffers currently on the free list.
    pub free: u64,
}

struct PoolInner {
    free: Mutex<Vec<Bytes>>,
    buf_len: usize,
    grown: AtomicU64,
    recycled: AtomicU64,
    dropped: AtomicU64,
}

/// A pool of fixed-size byte buffers shared across an application
/// (clones share the same free list).
///
/// ```
/// use embera::BufferPool;
///
/// let pool = BufferPool::new(64);
/// pool.prewarm(2);
/// let b = pool.take_from(b"hello");
/// assert_eq!(&b[..], b"hello");
/// assert!(pool.recycle(b));
/// assert_eq!(pool.stats().grown, 0);
/// ```
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// Pool of buffers with `buf_len` bytes of storage each. Payloads
    /// longer than `buf_len` are served by plain allocation (and
    /// counted in [`PoolStats::dropped`]).
    pub fn new(buf_len: usize) -> Self {
        assert!(buf_len > 0, "pool buffer length must be positive");
        BufferPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                buf_len,
                grown: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Storage size of each pooled buffer.
    pub fn buf_len(&self) -> usize {
        self.inner.buf_len
    }

    /// Stock the free list with `n` fresh buffers up front, so steady
    /// state never grows the pool ([`PoolStats::grown`] stays 0).
    pub fn prewarm(&self, n: usize) {
        let mut free = self.inner.free.lock();
        free.reserve(n);
        for _ in 0..n {
            free.push(Bytes::from(vec![0u8; self.inner.buf_len]));
        }
    }

    /// A buffer holding a copy of `payload`: drawn from the free list
    /// when possible, freshly allocated otherwise (bumping `grown`, or
    /// `dropped` for oversize payloads that bypass the pool entirely).
    pub fn take_from(&self, payload: &[u8]) -> Bytes {
        if payload.len() > self.inner.buf_len {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return Bytes::from(payload.to_vec());
        }
        let reclaimed = self.inner.free.lock().pop();
        let mut buf = match reclaimed {
            Some(b) => b,
            None => {
                self.inner.grown.fetch_add(1, Ordering::Relaxed);
                Bytes::from(vec![0u8; self.inner.buf_len])
            }
        };
        let storage = buf
            .try_mut()
            .expect("free-list buffer must be unique");
        storage[..payload.len()].copy_from_slice(payload);
        buf.reset_view(payload.len());
        buf
    }

    /// A buffer whose first `len` bytes are produced **in place** by
    /// `fill` — the zero-copy variant of [`BufferPool::take_from`] for
    /// senders that serialize directly instead of staging through a
    /// scratch buffer (one full memcpy pass fewer on the hot path).
    /// `fill` receives exactly `len` writable bytes. Oversize requests
    /// fall back to a plain allocation, like `take_from`.
    pub fn take_with(&self, len: usize, fill: impl FnOnce(&mut [u8])) -> Bytes {
        if len > self.inner.buf_len {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            let mut v = vec![0u8; len];
            fill(&mut v);
            return Bytes::from(v);
        }
        let reclaimed = self.inner.free.lock().pop();
        let mut buf = match reclaimed {
            Some(b) => b,
            None => {
                self.inner.grown.fetch_add(1, Ordering::Relaxed);
                Bytes::from(vec![0u8; self.inner.buf_len])
            }
        };
        let storage = buf
            .try_mut()
            .expect("free-list buffer must be unique");
        fill(&mut storage[..len]);
        buf.reset_view(len);
        buf
    }

    /// Return a consumed buffer to the free list. Succeeds only when
    /// the handle is unique (no live clones or slices) and the storage
    /// came from this pool's size class; otherwise the buffer is simply
    /// dropped and `false` returned.
    pub fn recycle(&self, mut buf: Bytes) -> bool {
        if buf.is_unique() && buf.storage_len() == self.inner.buf_len {
            buf.reset_view(self.inner.buf_len);
            self.inner.free.lock().push(buf);
            self.inner.recycled.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            grown: self.inner.grown.load(Ordering::Relaxed),
            recycled: self.inner.recycled.load(Ordering::Relaxed),
            dropped: self.inner.dropped.load(Ordering::Relaxed),
            free: self.inner.free.lock().len() as u64,
        }
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("buf_len", &self.inner.buf_len)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prewarmed_round_trip_never_grows() {
        let pool = BufferPool::new(16);
        pool.prewarm(2);
        for i in 0..100u8 {
            let b = pool.take_from(&[i; 10]);
            assert_eq!(&b[..], &[i; 10]);
            assert!(pool.recycle(b));
        }
        let s = pool.stats();
        assert_eq!(s.grown, 0);
        assert_eq!(s.recycled, 100);
        assert_eq!(s.free, 2);
    }

    #[test]
    fn take_with_fills_in_place_and_recycles() {
        let pool = BufferPool::new(16);
        pool.prewarm(1);
        let b = pool.take_with(5, |dst| {
            assert_eq!(dst.len(), 5);
            dst.copy_from_slice(b"hello");
        });
        assert_eq!(&b[..], b"hello");
        assert!(pool.recycle(b));
        let s = pool.stats();
        assert_eq!((s.grown, s.recycled, s.free), (0, 1, 1));
        // Oversize requests bypass the pool, like take_from.
        let big = pool.take_with(32, |dst| dst.fill(7));
        assert_eq!(&big[..], &[7u8; 32]);
        assert!(!pool.recycle(big));
    }

    #[test]
    fn empty_pool_grows_on_demand() {
        let pool = BufferPool::new(8);
        let a = pool.take_from(b"aa");
        let b = pool.take_from(b"bb");
        assert_eq!(pool.stats().grown, 2);
        assert!(pool.recycle(a));
        assert!(pool.recycle(b));
        let c = pool.take_from(b"cc");
        assert_eq!(pool.stats().grown, 2, "recycled buffer must be reused");
        drop(c);
    }

    #[test]
    fn shared_buffer_is_not_recycled() {
        let pool = BufferPool::new(8);
        pool.prewarm(1);
        let b = pool.take_from(b"xyz");
        let view = b.slice(1..2);
        assert!(!pool.recycle(b), "live slice must block recycling");
        assert_eq!(&view[..], b"y");
        assert_eq!(pool.stats().dropped, 1);
    }

    #[test]
    fn oversize_payload_bypasses_pool() {
        let pool = BufferPool::new(4);
        pool.prewarm(1);
        let big = pool.take_from(&[7u8; 32]);
        assert_eq!(big.len(), 32);
        assert_eq!(pool.stats().free, 1, "pool stock untouched");
        assert!(!pool.recycle(big), "wrong size class is rejected");
    }

    #[test]
    fn clones_share_the_free_list() {
        let pool = BufferPool::new(8);
        let clone = pool.clone();
        let b = clone.take_from(b"hi");
        assert!(pool.recycle(b));
        assert_eq!(clone.stats().free, 1);
    }
}
