//! Behaviors: the user code inside a component, and the [`Ctx`] handle
//! the runtime hands it.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::error::EmberaError;
use crate::message::Message;

/// Class of computation, used by the simulated-MPSoC backend to pick
/// per-CPU throughput (mirrors `mpsoc_sim::ComputeClass`; kept separate
/// so the core model has no simulator dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkClass {
    /// Branchy control/integer code (parsing, Huffman decoding).
    Control,
    /// Dense DSP kernels (IDCT, filtering).
    Dsp,
    /// Bulk byte movement (reordering, memcpy-like loops).
    MemCopy,
}

/// A cost annotation describing work a behavior just performed.
///
/// This is how one behavior implementation drives both platforms: on the
/// SMP backend the real code already consumed real time and
/// [`Ctx::compute`] is a no-op; on the simulated STi7200 the annotation
/// advances virtual time according to the machine cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Work {
    /// Class of the computation.
    pub class: WorkClass,
    /// Abstract operation count (roughly: arithmetic ops retired).
    pub ops: u64,
    /// Bytes of memory traffic the computation streamed.
    pub mem_bytes: u64,
}

impl Work {
    /// Work of `ops` operations in `class` with no memory traffic.
    pub fn ops(class: WorkClass, ops: u64) -> Self {
        Work {
            class,
            ops,
            mem_bytes: 0,
        }
    }

    /// Attach memory traffic to the work item.
    pub fn with_mem(mut self, bytes: u64) -> Self {
        self.mem_bytes = bytes;
        self
    }
}

/// Handle through which a behavior interacts with its component runtime:
/// communication primitives, time, and cost annotation. Implemented by
/// each platform backend.
pub trait Ctx {
    /// Name of the component this behavior runs in.
    fn component(&self) -> &str;

    /// Send a raw message on a required interface.
    fn send_message(&mut self, required: &str, msg: Message) -> Result<(), EmberaError>;

    /// Receive the next raw message from a provided interface, blocking
    /// until one arrives.
    fn recv_message(&mut self, provided: &str) -> Result<Message, EmberaError>;

    /// Receive with a deadline in nanoseconds; `Ok(None)` on timeout.
    fn recv_message_timeout(
        &mut self,
        provided: &str,
        timeout_ns: u64,
    ) -> Result<Option<Message>, EmberaError>;

    /// Annotate completed work (drives virtual time on simulators).
    fn compute(&mut self, work: Work);

    /// Current platform time in nanoseconds (monotonic; virtual on
    /// simulators, wall-clock since deployment on the SMP backend).
    fn now_ns(&self) -> u64;

    /// True once the application is shutting down; long-running service
    /// behaviors (e.g. the observer) use it to exit their loops.
    fn should_stop(&self) -> bool;

    /// The application's shared payload buffer pool, when one is
    /// attached and the backend supports it (clones share the free
    /// list). Behaviors that serialize messages query this once at
    /// start-up; `None` (the default) means plain allocation.
    fn payload_pool(&self) -> Option<crate::pool::BufferPool> {
        None
    }

    /// Queue depth at the far end of required interface `required`
    /// (messages waiting in the peer's mailbox), when the backend can
    /// observe it cheaply. Load-aware senders use it to pick the
    /// least-loaded lane; `None` means the information is unavailable.
    fn route_depth(&self, _required: &str) -> Option<u64> {
        None
    }

    /// Send a data payload on a required interface (the paper's `send`
    /// primitive — counted by application-level observation and timed by
    /// middleware-level observation).
    fn send(&mut self, required: &str, payload: Bytes) -> Result<(), EmberaError> {
        self.send_message(required, Message::Data(payload))
    }

    /// Send a data payload with an absolute deadline (ns) riding the
    /// envelope. Downstream stages observe the deadline through
    /// [`Message::deadline_ns`] (or shed expired messages at ingress
    /// under a deadline-drop [`OverloadPolicy`](crate::OverloadPolicy)).
    fn send_deadlined(
        &mut self,
        required: &str,
        payload: Bytes,
        deadline_ns: u64,
    ) -> Result<(), EmberaError> {
        self.send_message(
            required,
            Message::Deadlined {
                payload,
                deadline_ns,
            },
        )
    }

    /// Receive a data payload from a provided interface (the paper's
    /// `receive` primitive). Deadlined payloads are accepted; the
    /// deadline is stripped (use [`Ctx::recv_message`] to see it).
    fn recv(&mut self, provided: &str) -> Result<Bytes, EmberaError> {
        match self.recv_message(provided)? {
            Message::Data(b) => Ok(b),
            Message::Deadlined { payload, .. } => Ok(payload),
            _ => Err(EmberaError::UnexpectedMessage {
                interface: provided.to_string(),
            }),
        }
    }

    /// Receive a data payload with a deadline; `Ok(None)` on timeout.
    fn recv_timeout(
        &mut self,
        provided: &str,
        timeout_ns: u64,
    ) -> Result<Option<Bytes>, EmberaError> {
        match self.recv_message_timeout(provided, timeout_ns)? {
            None => Ok(None),
            Some(Message::Data(b)) => Ok(Some(b)),
            Some(Message::Deadlined { payload, .. }) => Ok(Some(payload)),
            Some(_) => Err(EmberaError::UnexpectedMessage {
                interface: provided.to_string(),
            }),
        }
    }
}

/// User code of a component. The component is an *active* entity: the
/// runtime gives `run` its own execution flow (thread or simulated
/// task — paper §3.1).
pub trait Behavior: Send {
    /// Body of the component. Returning ends the component's application
    /// work; the runtime then keeps serving observation requests until
    /// the application terminates.
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError>;
}

/// Adapter turning a closure into a [`Behavior`].
pub struct FnBehavior<F>(pub F);

impl<F> Behavior for FnBehavior<F>
where
    F: FnMut(&mut dyn Ctx) -> Result<(), EmberaError> + Send,
{
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        (self.0)(ctx)
    }
}

/// Convenience constructor for closure behaviors.
pub fn behavior_fn<F>(f: F) -> FnBehavior<F>
where
    F: FnMut(&mut dyn Ctx) -> Result<(), EmberaError> + Send,
{
    FnBehavior(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_builders() {
        let w = Work::ops(WorkClass::Dsp, 1024).with_mem(64);
        assert_eq!(w.class, WorkClass::Dsp);
        assert_eq!(w.ops, 1024);
        assert_eq!(w.mem_bytes, 64);
    }
}
