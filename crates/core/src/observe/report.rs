//! Report data structures produced by observation.

use serde::{Deserialize, Serialize};

/// Operating-system-level observation (paper §4.2): "information about
/// the execution time and the memory occupation".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OsStats {
    /// Time elapsed between the start of the component and the
    /// termination of its code execution, ns. For a still-running
    /// component this is time since start.
    pub exec_time_ns: u64,
    /// Memory allocated for the component: its execution-flow stack plus
    /// the structures of its provided interfaces (the paper's formula:
    /// `pthread_attr_getstacksize` + `sizeof` of the interfaces).
    pub memory_bytes: u64,
    /// CPU time actually consumed (only meaningful on the RTOS backend,
    /// where OS21's `task_time` provides it; 0 elsewhere).
    pub cpu_time_ns: u64,
    /// Bytes of message payload currently queued in the component's
    /// provided-interface mailboxes — the dynamic part of the memory
    /// picture (drives the paper's announced "evolution of memory during
    /// the execution" extension, §6).
    pub queued_bytes: u64,
}

/// Timing accumulator snapshot for one primitive (send or receive).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingSnapshot {
    /// Number of operations measured.
    pub count: u64,
    /// Sum of durations, ns.
    pub total_ns: u64,
    /// Minimum duration, ns (0 when count is 0).
    pub min_ns: u64,
    /// Maximum duration, ns.
    pub max_ns: u64,
}

impl TimingSnapshot {
    /// Mean duration in ns (0 when no samples).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// One message-size histogram bucket of primitive timings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeBucket {
    /// Inclusive lower bound of the bucket, bytes.
    pub lo: u64,
    /// Exclusive upper bound (u64::MAX for the last bucket).
    pub hi: u64,
    /// Operations in the bucket.
    pub count: u64,
    /// Total duration of those operations, ns.
    pub total_ns: u64,
}

impl SizeBucket {
    /// Mean duration per operation in this bucket.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Middleware-level observation (paper §4.2): "information about the
/// execution time of send and receive operations by instrumenting send
/// and receive primitives".
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiddlewareStats {
    /// Timing of the `send` primitive.
    pub send: TimingSnapshot,
    /// Timing of the `receive` primitive (excluding blocking waits; the
    /// paper instruments the primitive's execution, not queue idleness).
    pub recv: TimingSnapshot,
    /// Send timings bucketed by message size (basis for Figure 4-style
    /// analyses).
    pub send_by_size: Vec<SizeBucket>,
    /// Total data bytes sent.
    pub bytes_sent: u64,
    /// Total data bytes received.
    pub bytes_received: u64,
}

/// Per-interface communication counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IfaceCounterSnapshot {
    /// Interface name.
    pub interface: String,
    /// Data messages sent through it (required interfaces).
    pub sends: u64,
    /// Data messages received from it (provided interfaces).
    pub receives: u64,
}

/// Application-level observation (paper §4.2): "the component structure
/// and the total number of communication operations performed".
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppStats {
    /// Per-interface counters, declaration order.
    pub interfaces: Vec<IfaceCounterSnapshot>,
    /// Total data sends (Table 2's `send` column).
    pub total_sends: u64,
    /// Total data receives (Table 2's `receive` column).
    pub total_receives: u64,
}

/// One interface in a structure listing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterfaceEntry {
    /// Interface name.
    pub name: String,
    /// `"provided"` or `"required"`.
    pub role: String,
}

/// The component-structure listing (paper Figure 5).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructureInfo {
    /// Component name.
    pub component: String,
    /// Interfaces: introspection provided, data provided (declaration
    /// order), introspection required, data required — the order of the
    /// paper's Figure 5.
    pub interfaces: Vec<InterfaceEntry>,
}

impl StructureInfo {
    /// Build the listing for a component with the given data interfaces.
    pub fn new(
        component: impl Into<String>,
        provided: &[String],
        required: &[String],
    ) -> Self {
        let mut interfaces = Vec::with_capacity(provided.len() + required.len() + 2);
        interfaces.push(InterfaceEntry {
            name: crate::component::INTROSPECTION.to_string(),
            role: "provided".to_string(),
        });
        for p in provided {
            interfaces.push(InterfaceEntry {
                name: p.clone(),
                role: "provided".to_string(),
            });
        }
        interfaces.push(InterfaceEntry {
            name: crate::component::INTROSPECTION.to_string(),
            role: "required".to_string(),
        });
        for r in required {
            interfaces.push(InterfaceEntry {
                name: r.clone(),
                role: "required".to_string(),
            });
        }
        StructureInfo {
            component: component.into(),
            interfaces,
        }
    }

    /// Render in the exact format of the paper's Figure 5:
    ///
    /// ```text
    /// Interfaces component [IDCT_1]
    /// ----------------------------
    /// [Interface] [Type]
    /// introspection provided
    /// _fetchIdct1 provided
    /// introspection required
    /// idctReorder required
    /// ```
    pub fn format_figure5(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Interfaces component [{}]\n", self.component));
        out.push_str("----------------------------\n");
        out.push_str("[Interface] [Type]\n");
        for e in &self.interfaces {
            out.push_str(&format!("{} {}\n", e.name, e.role));
        }
        out
    }
}

/// Liveness state of a component as seen by the supervision layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// Deployed, behavior not yet started.
    #[default]
    Created,
    /// Behavior executing.
    Running,
    /// Behavior blocked in a receive.
    Blocked,
    /// Behavior failed (error or contained panic).
    Faulted,
    /// Between a failed attempt and its policy-driven re-run.
    Restarting,
    /// Behavior completed.
    Finished,
}

/// Supervision-level observation: the answer to
/// [`ObsRequest::Health`](crate::observe::protocol::ObsRequest::Health).
/// Liveness and backlog signals travel over the same introspection
/// channel as the paper's performance counters, so an unmodified
/// observer can watch for stuck pipelines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthInfo {
    /// Current liveness state.
    pub state: HealthState,
    /// Platform time of the last observable progress (send, data
    /// receive, or compute), ns.
    pub last_progress_ns: u64,
    /// Messages currently queued in the component's provided-interface
    /// mailboxes.
    pub queued_messages: u64,
    /// Bytes of payload currently queued (same gauge as
    /// [`OsStats::queued_bytes`]).
    pub queued_bytes: u64,
    /// Restarts performed by the component's supervision policy so far.
    pub restarts: u64,
    /// Messages shed at ingress by a queue-bound overload policy
    /// (absent in reports produced before the overload layer existed).
    #[serde(default)]
    pub shed_messages: u64,
    /// Deadlined messages shed at ingress because their deadline had
    /// expired (the `DeadlineExceeded` count).
    #[serde(default)]
    pub expired_messages: u64,
}

impl HealthInfo {
    /// Watchdog predicate: has this component made no progress for more
    /// than `watchdog_ns` at observation time `now_ns`? Only `Running`
    /// and `Blocked` components can stall; terminal and not-yet-started
    /// states are excluded.
    pub fn is_stalled(&self, now_ns: u64, watchdog_ns: u64) -> bool {
        matches!(self.state, HealthState::Running | HealthState::Blocked)
            && now_ns.saturating_sub(self.last_progress_ns) > watchdog_ns
    }
}

/// The complete multi-level observation report of one component.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObservationReport {
    /// Component name.
    pub component: String,
    /// OS-level information.
    pub os: OsStats,
    /// Middleware-level information.
    pub middleware: MiddlewareStats,
    /// Application-level counters.
    pub app: AppStats,
    /// Component structure.
    pub structure: StructureInfo,
    /// Application-registered observation functions, sampled at report
    /// time (paper §6 extension).
    #[serde(default)]
    pub custom: Vec<crate::observe::custom::CustomMetric>,
    /// Supervision-level liveness snapshot (absent in reports produced
    /// before the supervision layer existed).
    #[serde(default)]
    pub health: Option<HealthInfo>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_exact_format() {
        let s = StructureInfo::new(
            "IDCT_1",
            &["_fetchIdct1".to_string()],
            &["idctReorder".to_string()],
        );
        let expected = "Interfaces component [IDCT_1]\n\
                        ----------------------------\n\
                        [Interface] [Type]\n\
                        introspection provided\n\
                        _fetchIdct1 provided\n\
                        introspection required\n\
                        idctReorder required\n";
        assert_eq!(s.format_figure5(), expected);
    }

    #[test]
    fn timing_mean_handles_empty() {
        assert_eq!(TimingSnapshot::default().mean_ns(), 0);
        let t = TimingSnapshot {
            count: 4,
            total_ns: 100,
            min_ns: 10,
            max_ns: 40,
        };
        assert_eq!(t.mean_ns(), 25);
    }

    #[test]
    fn size_bucket_mean() {
        let b = SizeBucket {
            lo: 0,
            hi: 1024,
            count: 2,
            total_ns: 10,
        };
        assert_eq!(b.mean_ns(), 5);
        assert_eq!(SizeBucket::default().mean_ns(), 0);
    }

    #[test]
    fn stall_detection_needs_a_live_state() {
        let mut h = HealthInfo {
            state: HealthState::Running,
            last_progress_ns: 1_000,
            ..Default::default()
        };
        assert!(!h.is_stalled(1_500, 1_000), "within deadline");
        assert!(h.is_stalled(3_000, 1_000), "past deadline");
        h.state = HealthState::Blocked;
        assert!(h.is_stalled(3_000, 1_000));
        h.state = HealthState::Finished;
        assert!(!h.is_stalled(3_000, 1_000), "terminal states never stall");
        h.state = HealthState::Created;
        assert!(!h.is_stalled(3_000, 1_000));
    }

    #[test]
    fn structure_orders_introspection_first_per_role() {
        let s = StructureInfo::new(
            "Reorder",
            &["_idct1Reorder".to_string(), "_idct2Reorder".to_string()],
            &[],
        );
        let names: Vec<&str> = s.interfaces.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "introspection",
                "_idct1Reorder",
                "_idct2Reorder",
                "introspection"
            ]
        );
    }
}
