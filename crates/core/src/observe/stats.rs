//! Per-component statistics, updated by the runtime at every
//! communication point and snapshotted by the observation engine.
//!
//! The structure is lock-free (atomics only) so that recording a send or
//! receive costs a handful of relaxed atomic adds — the observation
//! machinery must not distort the middleware timings it measures.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::observe::report::{
    AppStats, HealthInfo, HealthState, IfaceCounterSnapshot, MiddlewareStats, ObservationReport,
    OsStats, SizeBucket, StructureInfo, TimingSnapshot,
};

/// Supervision flag bits (`ComponentStats::flags`).
const FLAG_BLOCKED: u64 = 1;
const FLAG_FAULTED: u64 = 1 << 1;
const FLAG_RESTARTING: u64 = 1 << 2;

/// Message-size bucket boundaries (bytes) for send-timing histograms.
pub const SIZE_BUCKET_BOUNDS: [u64; 6] = [
    1024,
    4 * 1024,
    16 * 1024,
    64 * 1024,
    256 * 1024,
    u64::MAX,
];

#[derive(Default)]
struct TimingAtomic {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl TimingAtomic {
    fn new() -> Self {
        TimingAtomic {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    fn record(&self, dur_ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(dur_ns, Ordering::Relaxed);
        self.min_ns.fetch_min(dur_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(dur_ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> TimingSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        TimingSnapshot {
            count,
            total_ns: self.total_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 {
                0
            } else {
                self.min_ns.load(Ordering::Relaxed)
            },
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

#[derive(Default)]
struct IfaceAtomic {
    sends: AtomicU64,
    receives: AtomicU64,
}

#[derive(Default)]
struct BucketAtomic {
    count: AtomicU64,
    total_ns: AtomicU64,
}

/// Lifecycle state of a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifeState {
    /// Created but not yet started.
    Created,
    /// Behavior running.
    Running,
    /// Behavior finished (runtime may still serve observation).
    Finished,
}

/// All observable statistics of one component. Shared between the
/// component runtime (writer) and observation consumers (readers).
pub struct ComponentStats {
    name: String,
    provided: Vec<String>,
    required: Vec<String>,
    counters: HashMap<String, IfaceAtomic>,
    send_timing: TimingAtomic,
    recv_timing: TimingAtomic,
    send_buckets: Vec<BucketAtomic>,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    /// `u64::MAX` = not yet started/finished.
    started_ns: AtomicU64,
    finished_ns: AtomicU64,
    memory_bytes: AtomicU64,
    cpu_time_ns: AtomicU64,
    queued_bytes: AtomicU64,
    queued_messages: AtomicU64,
    /// Count of observable progress events (send push, data receive,
    /// compute). The hot path only bumps this counter — no clock read.
    progress_marks: AtomicU64,
    /// Counter value last folded into `last_progress_ns` by `health`.
    progress_seen: AtomicU64,
    /// Platform time of the component's last observable progress — the
    /// watchdog's input. Stamped lazily: `health` compares
    /// `progress_marks` against `progress_seen` and refreshes this with
    /// the caller's clock, so its granularity is the health poll
    /// interval (always far finer than a useful watchdog window).
    last_progress_ns: AtomicU64,
    /// `FLAG_*` supervision bits.
    flags: AtomicU64,
    restarts: AtomicU64,
    /// Messages shed at ingress by a queue-bound overload policy.
    shed_messages: AtomicU64,
    /// Deadlined messages shed at ingress because their deadline had
    /// already expired.
    expired_messages: AtomicU64,
}

impl ComponentStats {
    /// Stats for a component with the given data interfaces.
    pub fn new(name: impl Into<String>, provided: &[String], required: &[String]) -> Self {
        let mut counters = HashMap::new();
        for p in provided {
            counters.insert(p.clone(), IfaceAtomic::default());
        }
        for r in required {
            counters.entry(r.clone()).or_default();
        }
        ComponentStats {
            name: name.into(),
            provided: provided.to_vec(),
            required: required.to_vec(),
            counters,
            send_timing: TimingAtomic::new(),
            recv_timing: TimingAtomic::new(),
            send_buckets: SIZE_BUCKET_BOUNDS
                .iter()
                .map(|_| BucketAtomic::default())
                .collect(),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            started_ns: AtomicU64::new(u64::MAX),
            finished_ns: AtomicU64::new(u64::MAX),
            memory_bytes: AtomicU64::new(0),
            cpu_time_ns: AtomicU64::new(0),
            queued_bytes: AtomicU64::new(0),
            queued_messages: AtomicU64::new(0),
            progress_marks: AtomicU64::new(0),
            progress_seen: AtomicU64::new(0),
            last_progress_ns: AtomicU64::new(0),
            flags: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            shed_messages: AtomicU64::new(0),
            expired_messages: AtomicU64::new(0),
        }
    }

    /// Component name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record behavior start at platform time `now_ns`. Also clears the
    /// supervision flags and the finished timestamp, so a restarted
    /// component reads as `Running` again.
    pub fn mark_started(&self, now_ns: u64) {
        self.started_ns.store(now_ns, Ordering::Release);
        self.finished_ns.store(u64::MAX, Ordering::Release);
        self.flags.store(0, Ordering::Release);
        self.last_progress_ns.fetch_max(now_ns, Ordering::Relaxed);
    }

    /// Record behavior completion at platform time `now_ns`.
    pub fn mark_finished(&self, now_ns: u64) {
        self.finished_ns.store(now_ns, Ordering::Release);
    }

    /// Current lifecycle state.
    pub fn state(&self) -> LifeState {
        if self.finished_ns.load(Ordering::Acquire) != u64::MAX {
            LifeState::Finished
        } else if self.started_ns.load(Ordering::Acquire) != u64::MAX {
            LifeState::Running
        } else {
            LifeState::Created
        }
    }

    /// Set the component's accounted memory (stack + provided-interface
    /// structures; the backend computes the paper's formula).
    pub fn set_memory_bytes(&self, bytes: u64) {
        self.memory_bytes.store(bytes, Ordering::Release);
    }

    /// Set accumulated CPU time (RTOS backend only).
    pub fn set_cpu_time_ns(&self, ns: u64) {
        self.cpu_time_ns.store(ns, Ordering::Release);
    }

    /// Update the queued-payload gauge (runtime-maintained).
    pub fn set_queued_bytes(&self, bytes: u64) {
        self.queued_bytes.store(bytes, Ordering::Release);
    }

    /// Update the queued-message-count gauge (runtime-maintained).
    pub fn set_queued_messages(&self, count: u64) {
        self.queued_messages.store(count, Ordering::Release);
    }

    /// Record observable progress. Deliberately clock-free (a single
    /// relaxed increment): this runs on every send, data receive and
    /// compute annotation, where an extra `now()` per message is
    /// measurable on the SMP hot path.
    pub fn mark_progress(&self) {
        self.progress_marks.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark the component as blocked in (or released from) a receive.
    pub fn set_blocked(&self, blocked: bool) {
        if blocked {
            self.flags.fetch_or(FLAG_BLOCKED, Ordering::Release);
        } else {
            self.flags.fetch_and(!FLAG_BLOCKED, Ordering::Release);
        }
    }

    /// Mark the component as faulted (behavior failed terminally).
    pub fn mark_faulted(&self) {
        self.flags.fetch_or(FLAG_FAULTED, Ordering::Release);
    }

    /// Record one restart: the component is between failed attempt and
    /// re-run. Cleared by the next `mark_started`.
    pub fn mark_restarting(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
        let mut flags = self.flags.load(Ordering::Acquire);
        flags &= !(FLAG_FAULTED | FLAG_BLOCKED);
        flags |= FLAG_RESTARTING;
        self.flags.store(flags, Ordering::Release);
    }

    /// Number of restarts so far.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Record one message shed at ingress by a queue-bound overload
    /// policy (drop-oldest).
    pub fn record_shed(&self) {
        self.shed_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one deadlined message shed at ingress because its
    /// deadline had expired.
    pub fn record_expired(&self) {
        self.expired_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages shed by queue-bound overload policies so far.
    pub fn shed_messages(&self) -> u64 {
        self.shed_messages.load(Ordering::Relaxed)
    }

    /// Deadline-expired messages shed so far.
    pub fn expired_messages(&self) -> u64 {
        self.expired_messages.load(Ordering::Relaxed)
    }

    /// Supervision snapshot taken at platform time `now_ns`. Progress
    /// marks accumulated since the previous snapshot are folded into
    /// `last_progress_ns` here, with the caller's clock.
    pub fn health(&self, now_ns: u64) -> HealthInfo {
        let marks = self.progress_marks.load(Ordering::Relaxed);
        if marks != self.progress_seen.swap(marks, Ordering::Relaxed) {
            self.last_progress_ns.fetch_max(now_ns, Ordering::Relaxed);
        }
        let flags = self.flags.load(Ordering::Acquire);
        let state = if flags & FLAG_RESTARTING != 0 {
            HealthState::Restarting
        } else if flags & FLAG_FAULTED != 0 {
            HealthState::Faulted
        } else {
            match self.state() {
                LifeState::Finished => HealthState::Finished,
                LifeState::Running if flags & FLAG_BLOCKED != 0 => HealthState::Blocked,
                LifeState::Running => HealthState::Running,
                LifeState::Created => HealthState::Created,
            }
        };
        HealthInfo {
            state,
            last_progress_ns: self.last_progress_ns.load(Ordering::Relaxed),
            queued_messages: self.queued_messages.load(Ordering::Acquire),
            queued_bytes: self.queued_bytes.load(Ordering::Acquire),
            restarts: self.restarts(),
            shed_messages: self.shed_messages(),
            expired_messages: self.expired_messages(),
        }
    }

    /// Record a data send of `bytes` over `iface` taking `dur_ns`.
    pub fn record_send(&self, iface: &str, bytes: u64, dur_ns: u64) {
        if let Some(c) = self.counters.get(iface) {
            c.sends.fetch_add(1, Ordering::Relaxed);
        }
        self.send_timing.record(dur_ns);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        let idx = SIZE_BUCKET_BOUNDS
            .iter()
            .position(|&b| bytes < b)
            .unwrap_or(SIZE_BUCKET_BOUNDS.len() - 1);
        self.send_buckets[idx].count.fetch_add(1, Ordering::Relaxed);
        self.send_buckets[idx]
            .total_ns
            .fetch_add(dur_ns, Ordering::Relaxed);
    }

    /// Record a data receive of `bytes` from `iface` taking `dur_ns`
    /// (primitive execution time, not queue wait).
    pub fn record_receive(&self, iface: &str, bytes: u64, dur_ns: u64) {
        if let Some(c) = self.counters.get(iface) {
            c.receives.fetch_add(1, Ordering::Relaxed);
        }
        self.recv_timing.record(dur_ns);
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
    }

    /// OS-level snapshot; `now_ns` supplies "current time" for a
    /// still-running component.
    pub fn os_stats(&self, now_ns: u64) -> OsStats {
        let started = self.started_ns.load(Ordering::Acquire);
        let finished = self.finished_ns.load(Ordering::Acquire);
        let exec_time_ns = if started == u64::MAX {
            0
        } else if finished == u64::MAX {
            now_ns.saturating_sub(started)
        } else {
            finished.saturating_sub(started)
        };
        OsStats {
            exec_time_ns,
            memory_bytes: self.memory_bytes.load(Ordering::Acquire),
            cpu_time_ns: self.cpu_time_ns.load(Ordering::Acquire),
            queued_bytes: self.queued_bytes.load(Ordering::Acquire),
        }
    }

    /// Middleware-level snapshot.
    pub fn middleware_stats(&self) -> MiddlewareStats {
        let mut send_by_size = Vec::with_capacity(SIZE_BUCKET_BOUNDS.len());
        let mut lo = 0u64;
        for (i, &hi) in SIZE_BUCKET_BOUNDS.iter().enumerate() {
            send_by_size.push(SizeBucket {
                lo,
                hi,
                count: self.send_buckets[i].count.load(Ordering::Relaxed),
                total_ns: self.send_buckets[i].total_ns.load(Ordering::Relaxed),
            });
            lo = hi;
        }
        MiddlewareStats {
            send: self.send_timing.snapshot(),
            recv: self.recv_timing.snapshot(),
            send_by_size,
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
        }
    }

    /// Application-level snapshot (Table 2's counters).
    pub fn app_stats(&self) -> AppStats {
        let mut interfaces = Vec::new();
        let mut total_sends = 0;
        let mut total_receives = 0;
        for name in self.required.iter().chain(self.provided.iter()) {
            if interfaces
                .iter()
                .any(|e: &IfaceCounterSnapshot| &e.interface == name)
            {
                continue;
            }
            let c = &self.counters[name];
            let sends = c.sends.load(Ordering::Relaxed);
            let receives = c.receives.load(Ordering::Relaxed);
            total_sends += sends;
            total_receives += receives;
            interfaces.push(IfaceCounterSnapshot {
                interface: name.clone(),
                sends,
                receives,
            });
        }
        AppStats {
            interfaces,
            total_sends,
            total_receives,
        }
    }

    /// Structure listing (Figure 5).
    pub fn structure(&self) -> StructureInfo {
        StructureInfo::new(&self.name, &self.provided, &self.required)
    }

    /// Full multi-level report.
    pub fn full_report(&self, now_ns: u64) -> ObservationReport {
        ObservationReport {
            component: self.name.clone(),
            os: self.os_stats(now_ns),
            middleware: self.middleware_stats(),
            app: self.app_stats(),
            structure: self.structure(),
            custom: Vec::new(),
            health: Some(self.health(now_ns)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ComponentStats {
        ComponentStats::new(
            "IDCT_1",
            &["_fetchIdct1".to_string()],
            &["idctReorder".to_string()],
        )
    }

    #[test]
    fn lifecycle_and_exec_time() {
        let s = stats();
        assert_eq!(s.state(), LifeState::Created);
        assert_eq!(s.os_stats(100).exec_time_ns, 0);
        s.mark_started(1_000);
        assert_eq!(s.state(), LifeState::Running);
        assert_eq!(s.os_stats(1_500).exec_time_ns, 500);
        s.mark_finished(3_000);
        assert_eq!(s.state(), LifeState::Finished);
        assert_eq!(s.os_stats(99_999).exec_time_ns, 2_000);
    }

    #[test]
    fn counters_track_per_interface_and_totals() {
        let s = stats();
        s.record_send("idctReorder", 64, 10);
        s.record_send("idctReorder", 64, 12);
        s.record_receive("_fetchIdct1", 128, 9);
        let app = s.app_stats();
        assert_eq!(app.total_sends, 2);
        assert_eq!(app.total_receives, 1);
        let by_name: std::collections::HashMap<_, _> = app
            .interfaces
            .iter()
            .map(|e| (e.interface.as_str(), (e.sends, e.receives)))
            .collect();
        assert_eq!(by_name["idctReorder"], (2, 0));
        assert_eq!(by_name["_fetchIdct1"], (0, 1));
    }

    #[test]
    fn timing_min_max_mean() {
        let s = stats();
        s.record_send("idctReorder", 10, 5);
        s.record_send("idctReorder", 10, 15);
        let mw = s.middleware_stats();
        assert_eq!(mw.send.count, 2);
        assert_eq!(mw.send.min_ns, 5);
        assert_eq!(mw.send.max_ns, 15);
        assert_eq!(mw.send.mean_ns(), 10);
        assert_eq!(mw.recv.count, 0);
        assert_eq!(mw.recv.min_ns, 0);
        assert_eq!(mw.bytes_sent, 20);
    }

    #[test]
    fn size_buckets_partition_sends() {
        let s = stats();
        s.record_send("idctReorder", 100, 1); // < 1 KiB
        s.record_send("idctReorder", 2048, 1); // 1-4 KiB
        s.record_send("idctReorder", 1 << 20, 1); // >= 256 KiB
        let mw = s.middleware_stats();
        assert_eq!(mw.send_by_size[0].count, 1);
        assert_eq!(mw.send_by_size[1].count, 1);
        assert_eq!(mw.send_by_size[5].count, 1);
        let total: u64 = mw.send_by_size.iter().map(|b| b.count).sum();
        assert_eq!(total, 3, "every send falls in exactly one bucket");
    }

    #[test]
    fn unknown_interface_send_still_counts_globally() {
        // Defensive: runtimes validate interfaces before recording, but
        // the stats object must not panic on unknown names.
        let s = stats();
        s.record_send("nonexistent", 5, 1);
        assert_eq!(s.app_stats().total_sends, 0);
        assert_eq!(s.middleware_stats().send.count, 1);
    }

    #[test]
    fn health_follows_lifecycle_and_flags() {
        let s = stats();
        assert_eq!(s.health(0).state, HealthState::Created);
        s.mark_started(1_000);
        assert_eq!(s.health(1_000).state, HealthState::Running);
        assert_eq!(s.health(1_000).last_progress_ns, 1_000);
        s.set_blocked(true);
        assert_eq!(s.health(2_000).state, HealthState::Blocked);
        s.set_blocked(false);
        s.mark_progress();
        assert_eq!(s.health(3_000).last_progress_ns, 3_000);
        s.mark_faulted();
        assert_eq!(s.health(3_000).state, HealthState::Faulted);
        s.mark_restarting();
        let h = s.health(3_000);
        assert_eq!(h.state, HealthState::Restarting);
        assert_eq!(h.restarts, 1);
        // A restart looks like a fresh start: running again, flags clear.
        s.mark_started(4_000);
        assert_eq!(s.health(4_000).state, HealthState::Running);
        s.mark_finished(5_000);
        assert_eq!(s.health(5_000).state, HealthState::Finished);
    }

    #[test]
    fn full_report_is_coherent() {
        let s = stats();
        s.mark_started(0);
        s.record_send("idctReorder", 64, 7);
        s.mark_finished(1_000);
        s.set_memory_bytes(8 << 20);
        let r = s.full_report(2_000);
        assert_eq!(r.component, "IDCT_1");
        assert_eq!(r.os.exec_time_ns, 1_000);
        assert_eq!(r.os.memory_bytes, 8 << 20);
        assert_eq!(r.app.total_sends, 1);
        assert_eq!(r.structure.interfaces.len(), 4);
    }
}
