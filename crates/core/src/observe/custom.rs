//! Pluggable observation functions — the paper's §6 agenda: "We will
//! concentrate our future work on what functions should be provided
//! with the observation interface, how to select the events to be
//! observed, how to set the treatments to apply."
//!
//! A [`MetricSource`] is an observation function registered on a
//! component at assembly time; the component runtime samples it when an
//! [`ObsRequest::Custom`](crate::ObsRequest) (or `Full`) arrives, so
//! arbitrary application- or domain-level gauges travel over the same
//! observation interface as the built-in three levels — still without
//! touching the behavior's code path.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// One sampled custom metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomMetric {
    /// Metric name, e.g. `"frames_completed"`.
    pub name: String,
    /// Sampled value.
    pub value: f64,
}

/// An observation function: a named gauge the runtime can sample at any
/// time. Implementations must be cheap and non-blocking (they run inside
/// the observation service path).
pub trait MetricSource: Send + Sync {
    /// Metric name.
    fn name(&self) -> &str;
    /// Sample the current value.
    fn sample(&self) -> f64;
}

/// A closure-backed metric source.
pub struct FnMetric<F> {
    name: String,
    f: F,
}

impl<F: Fn() -> f64 + Send + Sync> FnMetric<F> {
    /// Build a metric from a closure.
    pub fn new(name: impl Into<String>, f: F) -> Arc<Self> {
        Arc::new(FnMetric {
            name: name.into(),
            f,
        })
    }
}

impl<F: Fn() -> f64 + Send + Sync> MetricSource for FnMetric<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&self) -> f64 {
        (self.f)()
    }
}

/// Sample a registry of sources.
pub fn sample_all(sources: &[Arc<dyn MetricSource>]) -> Vec<CustomMetric> {
    sources
        .iter()
        .map(|s| CustomMetric {
            name: s.name().to_string(),
            value: s.sample(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fn_metric_samples_live_state() {
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        let metric = FnMetric::new("work_items", move || c.load(Ordering::Relaxed) as f64);
        assert_eq!(metric.sample(), 0.0);
        counter.store(41, Ordering::Relaxed);
        assert_eq!(metric.sample(), 41.0);
        assert_eq!(metric.name(), "work_items");
    }

    #[test]
    fn sample_all_preserves_registration_order() {
        let sources: Vec<Arc<dyn MetricSource>> = vec![
            FnMetric::new("a", || 1.0),
            FnMetric::new("b", || 2.0),
        ];
        let metrics = sample_all(&sources);
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].name, "a");
        assert_eq!(metrics[1].value, 2.0);
    }
}
