//! The EMBera observation model: request/reply protocol, per-component
//! statistics, reports, and the engine that answers requests.
//!
//! "We have decided to explicitly model the observation in EMBera. For
//! this purpose, we have defined a new control interface dedicated to
//! observation, that we have called observation interface." (paper §3.3)
//!
//! Observation covers three levels (paper §4.2): the operating system
//! (execution time, memory occupation), the middleware (timing of the
//! communication primitives) and the application (component structure
//! and communication counters). All information is gathered by the
//! component *runtime* — "without modifying the application code".

pub mod custom;
pub mod engine;
pub mod protocol;
pub mod report;
pub mod stats;
pub mod topology;
