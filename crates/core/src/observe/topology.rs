//! Hierarchical observation: region assignment, adaptive sampling
//! policy, and the rolled-up summaries regional observers send to the
//! root observer.
//!
//! The paper's observer (§3.3) is a single component polling every
//! other component — exact, but O(components) traffic per round from
//! one mailbox. At 10k-component scale that flat loop is the
//! bottleneck, so observation can instead be arranged as a two-level
//! tree: components are partitioned into *regions*, each region gets a
//! regional observer that polls only its members and periodically
//! rolls a [`RegionSummary`] up to a root observer. The flat topology
//! remains the default and is wiring-identical to the seed design for
//! paper-parity runs.

use serde::{Deserialize, Serialize};

/// How observer components are arranged over the application.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum ObserverTopology {
    /// One observer component polls every component directly (the
    /// paper's design, and the default). Wiring is byte-identical to
    /// the pre-hierarchy observer.
    #[default]
    Flat,
    /// Components are partitioned into `regions` contiguous groups by
    /// deployment index; each group gets a regional observer, all of
    /// which roll up to one root observer.
    Sharded {
        /// Number of regions (clamped to at least 1 and at most the
        /// component count at build time).
        regions: usize,
    },
    /// Explicit region assignment: `(region_label, member_components)`.
    /// Components not listed in any group are not observed.
    Grouped {
        /// Region label and member component names, in rollup order.
        groups: Vec<(String, Vec<String>)>,
    },
}

/// Adaptive per-component sampling: back off on quiet components,
/// tighten when a component's health delta crosses a threshold.
///
/// The schedule is pure counter arithmetic over polling rounds — no
/// wall-clock reads, no randomness — so on `embera-inproc` the exact
/// sequence of served observation requests is bit-for-bit reproducible
/// (the property the fault-injection tests rely on).
///
/// A component's *health signature* is `(terminal-state flag, restarts,
/// queued_messages)`. Ordinary `Running`↔`Blocked` flapping is normal
/// scheduling, not a health event, and does not count as a delta;
/// backlog growth, restarts, and terminal transitions do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingPolicy {
    /// Stride (in rounds) used for hot components. 1 = every round.
    pub base_stride: u64,
    /// Ceiling the stride doubles up to while a component stays quiet.
    pub max_stride: u64,
    /// Consecutive unchanged polls before the stride starts doubling.
    pub quiet_after: u32,
    /// Health-delta threshold that snaps the stride back to
    /// `base_stride`: queue-depth change of at least this many
    /// messages, any restart, or a terminal transition.
    pub hot_delta: u64,
}

impl Default for SamplingPolicy {
    fn default() -> Self {
        SamplingPolicy {
            base_stride: 1,
            max_stride: 64,
            quiet_after: 1,
            hot_delta: 2,
        }
    }
}

/// Deterministic per-target adaptive schedule state (one per observed
/// component, owned by the polling observer).
#[derive(Debug, Clone)]
pub(crate) struct AdaptiveSampler {
    policy: Option<SamplingPolicy>,
    /// Per target: (next round due, current stride, consecutive quiet
    /// polls, last signature) — `None` signature until first reply.
    state: Vec<(u64, u64, u32, Option<HealthSignature>)>,
}

/// The part of a health reply the sampler reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HealthSignature {
    pub terminal: bool,
    pub restarts: u64,
    pub queued_messages: u64,
}

impl AdaptiveSampler {
    pub(crate) fn new(targets: usize, policy: Option<SamplingPolicy>) -> Self {
        let base = policy.map(|p| p.base_stride.max(1)).unwrap_or(1);
        AdaptiveSampler {
            policy,
            state: vec![(0, base, 0, None); targets],
        }
    }

    /// Indices due for polling this round. Without a policy every
    /// target is due every round (the seed behavior).
    pub(crate) fn due(&self, round: u64) -> Vec<usize> {
        if self.policy.is_none() {
            return (0..self.state.len()).collect();
        }
        self.state
            .iter()
            .enumerate()
            .filter(|(_, s)| round >= s.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Record the reply observed for target `i` in `round` and schedule
    /// its next poll.
    pub(crate) fn observe(&mut self, i: usize, round: u64, sig: HealthSignature) {
        let Some(p) = self.policy else { return };
        let (next, stride, quiet, last) = &mut self.state[i];
        let hot = match last {
            None => true, // first observation: stay at base stride
            Some(prev) => {
                prev.terminal != sig.terminal
                    || sig.restarts != prev.restarts
                    || sig.queued_messages.abs_diff(prev.queued_messages) >= p.hot_delta
            }
        };
        if hot {
            *stride = p.base_stride.max(1);
            *quiet = 0;
        } else if sig.terminal {
            // Terminal states are (near-)absorbing: once a component has
            // been seen terminal twice with nothing else changing, only a
            // supervised restart can revive it — jump straight to the
            // maximum stride instead of doubling toward it. At 10k
            // components this is what stops finished regions from being
            // re-swept every few rounds.
            *quiet += 1;
            *stride = p.max_stride.max(1);
        } else {
            *quiet += 1;
            if *quiet >= p.quiet_after {
                *stride = (*stride * 2).min(p.max_stride.max(1));
            }
        }
        *last = Some(sig);
        *next = round + *stride;
    }
}

/// What a regional observer rolls up to the root each round: counts of
/// member states plus the sum of the members' latest communication
/// counters (when the configured request carries them).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionSummary {
    /// Region label (e.g. `region0`, or the `Grouped` name).
    pub region: String,
    /// Number of components assigned to the region.
    pub components: u64,
    /// Polling round that produced this summary.
    pub round: u64,
    /// Observation requests this region has issued so far (cumulative).
    pub polls: u64,
    /// Members whose latest health state is `Finished`.
    pub finished: u64,
    /// Members whose latest health state is `Faulted`.
    pub faulted: u64,
    /// Members with at least one watchdog stall on record.
    pub stalled: u64,
    /// Sum of the members' latest `AppStats::total_sends` (0 when the
    /// configured request does not carry app counters).
    pub total_sends: u64,
    /// Sum of the members' latest `AppStats::total_receives`.
    pub total_receives: u64,
    /// Sum of the members' latest queued message gauges.
    pub queued_messages: u64,
    /// Sum of the members' messages shed by queue-bound overload
    /// policies (absent in summaries from before the overload layer).
    #[serde(default)]
    pub shed_messages: u64,
    /// Sum of the members' deadline-expired shed messages.
    #[serde(default)]
    pub expired_messages: u64,
}

impl RegionSummary {
    /// True when every member of the region has reached a terminal
    /// state (`Finished` or `Faulted`).
    pub fn all_terminal(&self) -> bool {
        self.finished + self.faulted >= self.components
    }
}

/// Aggregate of the latest summary from every region, as computed by
/// [`ObservationLog::rollup`](crate::observer::ObservationLog::rollup).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RollupTotals {
    /// Regions that have reported at least once.
    pub regions: u64,
    /// Total observed components across those regions.
    pub components: u64,
    /// Members in `Finished` state.
    pub finished: u64,
    /// Members in `Faulted` state.
    pub faulted: u64,
    /// Observation requests issued across all regions.
    pub polls: u64,
    /// Sum of member data sends.
    pub total_sends: u64,
    /// Sum of member data receives.
    pub total_receives: u64,
    /// Sum of member messages shed by queue-bound overload policies.
    pub shed_messages: u64,
    /// Sum of member deadline-expired shed messages.
    pub expired_messages: u64,
    /// True when every reporting region is all-terminal.
    pub all_terminal: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(terminal: bool, restarts: u64, queued: u64) -> HealthSignature {
        HealthSignature {
            terminal,
            restarts,
            queued_messages: queued,
        }
    }

    #[test]
    fn no_policy_polls_everything_every_round() {
        let s = AdaptiveSampler::new(3, None);
        assert_eq!(s.due(0), vec![0, 1, 2]);
        assert_eq!(s.due(17), vec![0, 1, 2]);
    }

    #[test]
    fn quiet_component_backs_off_exponentially() {
        let p = SamplingPolicy::default();
        let mut s = AdaptiveSampler::new(1, Some(p));
        let mut round = 0;
        let mut polls = vec![];
        while round < 40 {
            if s.due(round).contains(&0) {
                polls.push(round);
                s.observe(0, round, sig(false, 0, 0));
            }
            round += 1;
        }
        // First poll is "hot" (no baseline), then strides double:
        // 0, +1, +2, +4, +8, +16 …
        assert_eq!(polls, vec![0, 1, 3, 7, 15, 31]);
    }

    #[test]
    fn hot_delta_snaps_back_to_base_stride() {
        let p = SamplingPolicy::default();
        let mut s = AdaptiveSampler::new(1, Some(p));
        s.observe(0, 0, sig(false, 0, 0));
        s.observe(0, 1, sig(false, 0, 0)); // quiet → stride 2
        assert!(!s.due(2).contains(&0));
        assert!(s.due(3).contains(&0));
        // Backlog jumps by >= hot_delta: back to every round.
        s.observe(0, 3, sig(false, 0, 5));
        assert!(s.due(4).contains(&0));
        // Restart and terminal transitions are hot too.
        s.observe(0, 4, sig(false, 1, 5));
        assert!(s.due(5).contains(&0));
        s.observe(0, 5, sig(true, 1, 5));
        assert!(s.due(6).contains(&0));
    }

    #[test]
    fn small_queue_jitter_stays_quiet() {
        let p = SamplingPolicy::default(); // hot_delta = 2
        let mut s = AdaptiveSampler::new(1, Some(p));
        s.observe(0, 0, sig(false, 0, 0));
        s.observe(0, 1, sig(false, 0, 1)); // |1-0| < 2 → quiet
        assert!(!s.due(2).contains(&0), "stride doubled despite jitter");
    }

    #[test]
    fn stable_terminal_jumps_to_max_stride() {
        let p = SamplingPolicy::default();
        let mut s = AdaptiveSampler::new(1, Some(p));
        // Round 0: first observation, already finished — the terminal
        // *flip* (None -> terminal) counts as hot, base stride.
        s.observe(0, 0, sig(true, 0, 0));
        assert!(s.due(1).contains(&0));
        // Round 1: still terminal, nothing changed — absorbing state,
        // so the next poll jumps straight to max_stride away.
        s.observe(0, 1, sig(true, 0, 0));
        assert!(
            !s.due(p.max_stride).contains(&0),
            "due before max stride elapsed"
        );
        assert!(s.due(1 + p.max_stride).contains(&0));
    }

    #[test]
    fn summary_terminal_accounting() {
        let mut s = RegionSummary {
            region: "r".into(),
            components: 3,
            finished: 2,
            faulted: 0,
            ..Default::default()
        };
        assert!(!s.all_terminal());
        s.faulted = 1;
        assert!(s.all_terminal());
    }
}
