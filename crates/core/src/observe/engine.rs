//! The observation engine: answers [`ObsRequest`]s from a component's
//! statistics. Runs inside the component runtime, so observation needs
//! no changes to application code (the paper's headline property).

use std::sync::Arc;

use crate::observe::custom::{sample_all, MetricSource};
use crate::observe::protocol::{ObsReply, ObsRequest};
use crate::observe::report::ObservationReport;
use crate::observe::stats::ComponentStats;

/// Answers observation requests for one component.
#[derive(Clone)]
pub struct ObsEngine {
    stats: Arc<ComponentStats>,
    metrics: Arc<Vec<Arc<dyn MetricSource>>>,
}

impl ObsEngine {
    /// Engine over the component's shared statistics.
    pub fn new(stats: Arc<ComponentStats>) -> Self {
        ObsEngine {
            stats,
            metrics: Arc::new(Vec::new()),
        }
    }

    /// Engine with application-registered observation functions.
    pub fn with_metrics(stats: Arc<ComponentStats>, metrics: Vec<Arc<dyn MetricSource>>) -> Self {
        ObsEngine {
            stats,
            metrics: Arc::new(metrics),
        }
    }

    /// The underlying statistics.
    pub fn stats(&self) -> &Arc<ComponentStats> {
        &self.stats
    }

    /// The component's full report including custom metrics.
    pub fn full_report(&self, now_ns: u64) -> ObservationReport {
        let mut report = self.stats.full_report(now_ns);
        report.custom = sample_all(&self.metrics);
        report
    }

    /// Produce the reply for `request` at platform time `now_ns`.
    pub fn answer(&self, request: ObsRequest, now_ns: u64) -> ObsReply {
        match request {
            ObsRequest::OsStats => ObsReply::Os(self.stats.os_stats(now_ns)),
            ObsRequest::MiddlewareStats => ObsReply::Middleware(self.stats.middleware_stats()),
            ObsRequest::AppStats => ObsReply::App(self.stats.app_stats()),
            ObsRequest::Structure => ObsReply::Structure(self.stats.structure()),
            ObsRequest::Custom => ObsReply::Custom(sample_all(&self.metrics)),
            ObsRequest::Health => ObsReply::Health(self.stats.health(now_ns)),
            ObsRequest::Full => ObsReply::Full(Box::new(self.full_report(now_ns))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ObsEngine {
        let stats = Arc::new(ComponentStats::new(
            "Fetch",
            &[],
            &["fetchIdct1".to_string()],
        ));
        stats.mark_started(0);
        stats.record_send("fetchIdct1", 100, 3);
        ObsEngine::new(stats)
    }

    #[test]
    fn custom_metrics_flow_through_replies() {
        let stats = Arc::new(ComponentStats::new("c", &[], &[]));
        let metric = crate::observe::custom::FnMetric::new("gauge", || 7.5);
        let e = ObsEngine::with_metrics(stats, vec![metric]);
        match e.answer(ObsRequest::Custom, 0) {
            ObsReply::Custom(m) => {
                assert_eq!(m.len(), 1);
                assert_eq!(m[0].name, "gauge");
                assert_eq!(m[0].value, 7.5);
            }
            other => panic!("wrong reply {other:?}"),
        }
        match e.answer(ObsRequest::Full, 0) {
            ObsReply::Full(r) => assert_eq!(r.custom.len(), 1),
            other => panic!("wrong reply {other:?}"),
        }
    }

    #[test]
    fn each_request_gets_matching_reply_kind() {
        let e = engine();
        assert!(matches!(e.answer(ObsRequest::OsStats, 10), ObsReply::Os(_)));
        assert!(matches!(
            e.answer(ObsRequest::MiddlewareStats, 10),
            ObsReply::Middleware(_)
        ));
        assert!(matches!(
            e.answer(ObsRequest::AppStats, 10),
            ObsReply::App(_)
        ));
        assert!(matches!(
            e.answer(ObsRequest::Structure, 10),
            ObsReply::Structure(_)
        ));
        assert!(matches!(
            e.answer(ObsRequest::Health, 10),
            ObsReply::Health(_)
        ));
        assert!(matches!(e.answer(ObsRequest::Full, 10), ObsReply::Full(_)));
    }

    #[test]
    fn answers_reflect_recorded_activity() {
        let e = engine();
        if let ObsReply::App(app) = e.answer(ObsRequest::AppStats, 10) {
            assert_eq!(app.total_sends, 1);
        } else {
            unreachable!()
        }
        if let ObsReply::Full(r) = e.answer(ObsRequest::Full, 42) {
            assert_eq!(r.os.exec_time_ns, 42, "running component: now - start");
        } else {
            unreachable!()
        }
    }
}
