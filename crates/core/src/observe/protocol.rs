//! The observation request/reply protocol carried over the
//! `introspection` interfaces.

use serde::{Deserialize, Serialize};

use crate::observe::custom::CustomMetric;
use crate::observe::report::{
    AppStats, HealthInfo, MiddlewareStats, ObservationReport, OsStats, StructureInfo,
};
use crate::observe::topology::RegionSummary;

/// What an observer asks of a component (paper §3.3: "The observation
/// interface may provide functions related to each level such as memory
/// and system time, communication time, and application structure").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObsRequest {
    /// OS-level: execution time and memory.
    OsStats,
    /// Middleware-level: send/receive primitive timings.
    MiddlewareStats,
    /// Application-level: communication counters.
    AppStats,
    /// Application-level: the component's interface structure
    /// (Figure 5).
    Structure,
    /// Application-registered observation functions
    /// ([`MetricSource`](crate::observe::custom::MetricSource)s).
    Custom,
    /// Supervision: liveness state, last-progress timestamp, queue
    /// depth, restart count.
    Health,
    /// Everything at once.
    Full,
}

/// The component runtime's answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObsReply {
    /// Answer to [`ObsRequest::OsStats`].
    Os(OsStats),
    /// Answer to [`ObsRequest::MiddlewareStats`].
    Middleware(MiddlewareStats),
    /// Answer to [`ObsRequest::AppStats`].
    App(AppStats),
    /// Answer to [`ObsRequest::Structure`].
    Structure(StructureInfo),
    /// Answer to [`ObsRequest::Custom`].
    Custom(Vec<CustomMetric>),
    /// Answer to [`ObsRequest::Health`].
    Health(HealthInfo),
    /// Answer to [`ObsRequest::Full`]. Boxed: the full report dwarfs
    /// every other variant, and replies are moved through mail queues.
    Full(Box<ObservationReport>),
    /// Not a component's answer at all: a regional observer's rolled-up
    /// summary, sent *up* the observer tree to the root. Reuses the
    /// reply envelope so the hierarchy needs no new message kind and no
    /// backend changes.
    Region(RegionSummary),
}

impl ObsReply {
    /// Extract the full report if this is a [`ObsReply::Full`] reply.
    pub fn into_full(self) -> Option<ObservationReport> {
        match self {
            ObsReply::Full(r) => Some(*r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn into_full_extracts_only_full() {
        let full = ObsReply::Full(Box::default());
        assert!(full.into_full().is_some());
        let os = ObsReply::Os(OsStats::default());
        assert!(os.into_full().is_none());
    }
}
