//! Error type shared across the component model and its backends.

use std::fmt;

/// Errors of the EMBera model and platform backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmberaError {
    /// The application specification is invalid (duplicate names,
    /// dangling connection endpoint, unbound required interface, …).
    Validation(String),
    /// A behavior referenced an interface its component does not declare.
    UnknownInterface {
        /// Component whose behavior made the call.
        component: String,
        /// The interface name used.
        interface: String,
    },
    /// A send was attempted on a required interface with no connection.
    Disconnected {
        /// Component whose behavior made the call.
        component: String,
        /// The unbound required interface.
        interface: String,
    },
    /// A receive could not complete because the application is shutting
    /// down and no more messages will arrive.
    Terminated,
    /// A data receive produced a non-data message (protocol confusion).
    UnexpectedMessage {
        /// Interface on which the message arrived.
        interface: String,
    },
    /// A behavior panicked; the panic was contained by the component
    /// runtime instead of poisoning the rest of the application.
    BehaviorPanic {
        /// Component whose behavior panicked.
        component: String,
        /// Stringified panic payload (`""` when the payload was not a
        /// string).
        payload: String,
    },
    /// Backend-specific failure.
    Platform(String),
}

impl fmt::Display for EmberaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmberaError::Validation(msg) => write!(f, "invalid application: {msg}"),
            EmberaError::UnknownInterface {
                component,
                interface,
            } => write!(f, "component '{component}' has no interface '{interface}'"),
            EmberaError::Disconnected {
                component,
                interface,
            } => write!(
                f,
                "required interface '{interface}' of component '{component}' is not connected"
            ),
            EmberaError::Terminated => write!(f, "application terminated"),
            EmberaError::UnexpectedMessage { interface } => {
                write!(f, "non-data message on data interface '{interface}'")
            }
            EmberaError::BehaviorPanic { component, payload } => {
                write!(f, "behavior of component '{component}' panicked: {payload}")
            }
            EmberaError::Platform(msg) => write!(f, "platform error: {msg}"),
        }
    }
}

impl std::error::Error for EmberaError {}
