//! Overload policies: bounded queues, load shedding, and deadline
//! drops.
//!
//! The paper's thesis is that component-based *observation* should
//! steer the application at runtime. Observation alone does not keep a
//! system healthy under arrival pressure, though: when offered load
//! exceeds capacity, unbounded mailboxes grow without limit and every
//! frame's latency degrades together. An [`OverloadPolicy`] attached to
//! a [`ComponentSpec`](crate::ComponentSpec) makes the overload
//! response explicit and *observable*: every shed message is counted in
//! the component's health ([`HealthInfo::shed_messages`](crate::HealthInfo::shed_messages) /
//! [`HealthInfo::expired_messages`](crate::HealthInfo)), rolled up
//! through regional observers into
//! [`RollupTotals`](crate::RollupTotals), and emitted as a
//! [`TraceEventKind::Shed`](crate::TraceEventKind) trace event — so the
//! shed decisions themselves are bit-for-bit reproducible on the
//! deterministic inproc backend.
//!
//! Enforcement points (shared [`ComponentRuntime`](crate::ComponentRuntime),
//! identical on every backend):
//!
//! * **Ingress** ([`OverloadKind::DropOldest`],
//!   [`OverloadKind::DeadlineDrop`]): applied when the component pops a
//!   data message from one of its own provided interfaces. Drop-oldest
//!   sheds the popped (oldest) message while the queue — popped message
//!   included — exceeds `max_queue`; deadline-drop sheds messages
//!   whose [`Message::Deadlined`](crate::Message) envelope has already
//!   expired.
//! * **Egress** ([`OverloadKind::Block`]): applied when the component
//!   *sends*; the send spins (bounded polls) while the destination
//!   mailbox holds `max_queue` or more messages, back-pressuring the
//!   producer instead of queueing unboundedly. Backends that cannot
//!   observe remote queue depth (`route_depth` → `None`: inproc, os21)
//!   degrade to the historical unbounded behavior.

use serde::{Deserialize, Serialize};

/// How a component responds to overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverloadKind {
    /// Bounded-queue backpressure at egress: sends block (poll + yield)
    /// while the destination mailbox is at or above `max_queue`.
    Block,
    /// Bounded-queue shedding at ingress: while the queue (the popped
    /// data message included) exceeds `max_queue`, the popped (oldest)
    /// message is shed, keeping the `max_queue` newest.
    DropOldest,
    /// Deadline shedding at ingress: popped
    /// [`Message::Deadlined`](crate::Message) envelopes whose deadline
    /// has already passed are shed without doing their work.
    DeadlineDrop,
}

/// An overload policy for one component. Attach with
/// [`ComponentSpec::with_overload`](crate::ComponentSpec::with_overload)
/// or [`AppBuilder::overload_component`](crate::AppBuilder::overload_component).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverloadPolicy {
    /// The response strategy.
    pub kind: OverloadKind,
    /// Queue bound, in messages. Unused by [`OverloadKind::DeadlineDrop`].
    pub max_queue: u64,
    /// Poll interval while blocked (ns), used by [`OverloadKind::Block`].
    pub poll_ns: u64,
}

impl OverloadPolicy {
    /// Bounded-queue egress backpressure: block sends while the
    /// destination holds `max_queue` or more messages.
    pub fn block(max_queue: u64) -> Self {
        OverloadPolicy {
            kind: OverloadKind::Block,
            max_queue,
            poll_ns: 100_000,
        }
    }

    /// Bounded-queue ingress shedding: keep at most `max_queue` queued
    /// messages per provided interface, shedding the oldest beyond it.
    pub fn drop_oldest(max_queue: u64) -> Self {
        OverloadPolicy {
            kind: OverloadKind::DropOldest,
            max_queue,
            poll_ns: 100_000,
        }
    }

    /// Deadline-drop ingress shedding: shed already-expired
    /// [`Message::Deadlined`](crate::Message) envelopes.
    pub fn deadline_drop() -> Self {
        OverloadPolicy {
            kind: OverloadKind::DeadlineDrop,
            max_queue: 0,
            poll_ns: 100_000,
        }
    }

    /// Override the blocked-send poll interval.
    pub fn with_poll_ns(mut self, poll_ns: u64) -> Self {
        self.poll_ns = poll_ns;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_pick_kinds() {
        assert_eq!(OverloadPolicy::block(8).kind, OverloadKind::Block);
        assert_eq!(OverloadPolicy::block(8).max_queue, 8);
        assert_eq!(
            OverloadPolicy::drop_oldest(4).kind,
            OverloadKind::DropOldest
        );
        assert_eq!(
            OverloadPolicy::deadline_drop().kind,
            OverloadKind::DeadlineDrop
        );
        assert_eq!(
            OverloadPolicy::block(1).with_poll_ns(50).poll_ns,
            50
        );
    }

    #[test]
    fn policy_is_copy_and_comparable() {
        let p = OverloadPolicy::drop_oldest(16);
        let q = p;
        assert_eq!(p, q);
        assert_ne!(p, OverloadPolicy::drop_oldest(17));
    }
}
