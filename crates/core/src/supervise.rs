//! Supervision: restart policies, fault aggregation, and the
//! deterministic fault-injection plan.
//!
//! The paper's observer reads counters from *healthy* components; this
//! module is the layer that keeps the observation story intact when a
//! component misbehaves. A panicking behavior is contained by the shared
//! runtime and attributed ([`EmberaError::BehaviorPanic`]), an optional
//! [`RestartPolicy`] re-runs the behavior in place, every component
//! failure of a run is aggregated into a [`FaultReport`] (no silent
//! first-error truncation), and a [`FaultPlan`] lets tests inject
//! message drops/corruption/delays and behavior panics at exact,
//! reproducible points — bit-for-bit deterministic on the
//! `embera-inproc` logical-clock backend, best-effort elsewhere.

use std::collections::HashMap;
use std::fmt;

use crate::error::EmberaError;

/// What happens when a component exhausts its restart budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Escalation {
    /// The failure escalates to the application: fail-fast shutdown, the
    /// same termination protocol an unsupervised failure triggers.
    #[default]
    Escalate,
    /// The failure stays contained to this component: it is recorded in
    /// the run's [`FaultReport`] but the rest of the application keeps
    /// running to completion.
    OneForOne,
}

/// Restart policy of one component
/// ([`ComponentSpec::with_restart`](crate::ComponentSpec::with_restart)).
///
/// When the behavior returns an error (including a contained panic), the
/// runtime re-runs it in place — same execution flow, same mailboxes —
/// up to `max_restarts` times, pausing `backoff_ns` between attempts.
/// `Terminated` never triggers a restart: it means the application is
/// already shutting down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Maximum number of re-runs after the first failure.
    pub max_restarts: u32,
    /// Pause before each re-run, ns (virtual time on simulated
    /// backends).
    pub backoff_ns: u64,
    /// What to do once `max_restarts` is exhausted.
    pub escalation: Escalation,
    /// True discards messages queued on the component's data provided
    /// interfaces before the re-run; false (default) preserves them so
    /// the restarted behavior resumes the backlog.
    pub drain_mailboxes: bool,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 1,
            backoff_ns: 0,
            escalation: Escalation::Escalate,
            drain_mailboxes: false,
        }
    }
}

/// What an injected message fault does to the targeted message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The message is silently discarded (never reaches the transport).
    Drop,
    /// The payload's first byte is flipped (`^ 0xFF`) before delivery.
    Corrupt,
    /// Delivery is preceded by a pause of the given ns (virtual time on
    /// simulated backends, best-effort sleep on SMP).
    Delay(u64),
}

/// One injected fault on a component's outgoing data messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageFault {
    /// Sending component.
    pub component: String,
    /// Required interface the message leaves through.
    pub interface: String,
    /// Zero-based index of the targeted data send on that interface.
    pub nth: u64,
    /// What to do to it.
    pub action: FaultAction,
}

/// One injected behavior panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicFault {
    /// Component whose behavior will panic.
    pub component: String,
    /// Zero-based index of the data receive at which the panic fires
    /// (the message is consumed and lost — exactly what a real mid-work
    /// panic does).
    pub iteration: u64,
}

/// A deterministic fault-injection plan, attached to an application with
/// [`AppBuilder::with_faults`](crate::AppBuilder::with_faults).
///
/// Faults are applied by the shared component runtime, so the *counting*
/// (message *n* on interface *i*, receive iteration *k*) is identical on
/// every backend; on `embera-inproc` the single-threaded logical-clock
/// scheduler additionally makes the surrounding interleaving — and
/// therefore the whole run — reproducible bit-for-bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Message-level faults.
    pub message_faults: Vec<MessageFault>,
    /// Behavior-panic faults.
    pub panic_faults: Vec<PanicFault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop data message `nth` sent by `component` on `interface`.
    pub fn drop_message(
        mut self,
        component: impl Into<String>,
        interface: impl Into<String>,
        nth: u64,
    ) -> Self {
        self.message_faults.push(MessageFault {
            component: component.into(),
            interface: interface.into(),
            nth,
            action: FaultAction::Drop,
        });
        self
    }

    /// Corrupt data message `nth` sent by `component` on `interface`.
    pub fn corrupt_message(
        mut self,
        component: impl Into<String>,
        interface: impl Into<String>,
        nth: u64,
    ) -> Self {
        self.message_faults.push(MessageFault {
            component: component.into(),
            interface: interface.into(),
            nth,
            action: FaultAction::Corrupt,
        });
        self
    }

    /// Delay data message `nth` sent by `component` on `interface` by
    /// `delay_ns`.
    pub fn delay_message(
        mut self,
        component: impl Into<String>,
        interface: impl Into<String>,
        nth: u64,
        delay_ns: u64,
    ) -> Self {
        self.message_faults.push(MessageFault {
            component: component.into(),
            interface: interface.into(),
            nth,
            action: FaultAction::Delay(delay_ns),
        });
        self
    }

    /// Panic `component`'s behavior at data-receive `iteration`.
    pub fn panic_on_iteration(mut self, component: impl Into<String>, iteration: u64) -> Self {
        self.panic_faults.push(PanicFault {
            component: component.into(),
            iteration,
        });
        self
    }

    /// True if the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.message_faults.is_empty() && self.panic_faults.is_empty()
    }

    /// The runtime-local fault state for one component (`None` when the
    /// plan holds nothing for it — the common, zero-overhead case).
    pub(crate) fn for_component(&self, component: &str) -> Option<ComponentFaults> {
        let mut sends: HashMap<String, IfaceFaults> = HashMap::new();
        for f in self
            .message_faults
            .iter()
            .filter(|f| f.component == component)
        {
            sends
                .entry(f.interface.clone())
                .or_default()
                .faults
                .push((f.nth, f.action));
        }
        let panic_at = self
            .panic_faults
            .iter()
            .filter(|f| f.component == component)
            .map(|f| f.iteration)
            .min();
        if sends.is_empty() && panic_at.is_none() {
            return None;
        }
        Some(ComponentFaults {
            sends,
            panic_at,
            recvs: 0,
        })
    }
}

#[derive(Default)]
pub(crate) struct IfaceFaults {
    /// Data sends seen so far on this interface.
    count: u64,
    faults: Vec<(u64, FaultAction)>,
}

/// Per-component fault state the runtime consults on its hot paths.
pub(crate) struct ComponentFaults {
    sends: HashMap<String, IfaceFaults>,
    panic_at: Option<u64>,
    /// Data receives seen so far (all interfaces).
    recvs: u64,
}

impl ComponentFaults {
    /// Advance the send counter for `interface`; returns the action to
    /// apply to this message, if any.
    pub(crate) fn on_send(&mut self, interface: &str) -> Option<FaultAction> {
        let state = self.sends.get_mut(interface)?;
        let idx = state.count;
        state.count += 1;
        state
            .faults
            .iter()
            .find(|(nth, _)| *nth == idx)
            .map(|(_, a)| *a)
    }

    /// Advance the receive counter; returns the iteration number if the
    /// behavior must panic *now*.
    pub(crate) fn on_recv(&mut self) -> Option<u64> {
        let idx = self.recvs;
        self.recvs += 1;
        (self.panic_at == Some(idx)).then_some(idx)
    }
}

/// Every component failure of one application run, originating faults
/// first. Replaces the old first-error-wins truncation in
/// `RunningApp::wait`: secondary `Terminated` drains are still reported,
/// just after the failures that caused them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// `(component, error)` pairs: non-`Terminated` failures in the
    /// order the backend recorded them, then `Terminated` secondaries.
    pub failures: Vec<(String, EmberaError)>,
}

impl FaultReport {
    /// Build a report from a backend's raw error list; `None` when no
    /// component failed.
    pub fn from_errors(errors: Vec<(String, EmberaError)>) -> Option<FaultReport> {
        if errors.is_empty() {
            return None;
        }
        let (primary, secondary): (Vec<_>, Vec<_>) = errors
            .into_iter()
            .partition(|(_, e)| !matches!(e, EmberaError::Terminated));
        let mut failures = primary;
        failures.extend(secondary);
        Some(FaultReport { failures })
    }

    /// The originating failure (first non-`Terminated` error, or the
    /// first error if every component merely drained out).
    pub fn primary(&self) -> &(String, EmberaError) {
        &self.failures[0]
    }

    /// Render as the application-level error `RunningApp::wait` returns.
    pub fn into_error(self) -> EmberaError {
        EmberaError::Platform(self.to_string())
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (name, e) = self.primary();
        write!(f, "component '{name}' failed: {e}")?;
        if self.failures.len() > 1 {
            write!(f, " [{} components faulted:", self.failures.len())?;
            for (i, (name, e)) in self.failures.iter().enumerate() {
                let sep = if i == 0 { " " } else { "; " };
                write!(f, "{sep}{name}: {e}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// Fold a backend's collected error list into the application result:
/// `Ok` when nothing failed, otherwise the aggregated [`FaultReport`] as
/// an error. All three backends' `RunningApp::wait` implementations go
/// through here, so multi-fault reporting is uniform.
pub fn fault_result(errors: Vec<(String, EmberaError)>) -> Result<(), EmberaError> {
    match FaultReport::from_errors(errors) {
        Some(report) => Err(report.into_error()),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_filters_per_component() {
        let plan = FaultPlan::new()
            .drop_message("a", "out", 3)
            .corrupt_message("b", "out", 0)
            .panic_on_iteration("a", 5);
        let mut a = plan.for_component("a").unwrap();
        assert!(plan.for_component("zzz").is_none());
        // Sends 0..2 pass, 3 dropped.
        assert_eq!(a.on_send("out"), None);
        assert_eq!(a.on_send("out"), None);
        assert_eq!(a.on_send("out"), None);
        assert_eq!(a.on_send("out"), Some(FaultAction::Drop));
        assert_eq!(a.on_send("out"), None);
        // Unlisted interface untouched.
        assert_eq!(a.on_send("other"), None);
        // Receives 0..4 pass, 5 panics.
        for _ in 0..5 {
            assert_eq!(a.on_recv(), None);
        }
        assert_eq!(a.on_recv(), Some(5));
        assert_eq!(a.on_recv(), None);
    }

    #[test]
    fn fault_report_orders_originating_failures_first() {
        let errors = vec![
            ("late".to_string(), EmberaError::Terminated),
            ("culprit".to_string(), EmberaError::Platform("boom".into())),
            ("peer".to_string(), EmberaError::Terminated),
        ];
        let report = FaultReport::from_errors(errors).unwrap();
        assert_eq!(report.primary().0, "culprit");
        assert_eq!(report.failures.len(), 3);
        let msg = report.to_string();
        assert!(msg.starts_with("component 'culprit' failed:"), "{msg}");
        assert!(msg.contains("late") && msg.contains("peer"), "{msg}");
    }

    #[test]
    fn fault_result_empty_is_ok() {
        assert!(fault_result(Vec::new()).is_ok());
        assert!(fault_result(vec![("x".into(), EmberaError::Terminated)]).is_err());
    }

    #[test]
    fn single_failure_message_matches_legacy_format() {
        let report = FaultReport::from_errors(vec![(
            "src".to_string(),
            EmberaError::Platform("injected fault".into()),
        )])
        .unwrap();
        assert_eq!(
            report.to_string(),
            "component 'src' failed: platform error: injected fault"
        );
    }

    #[test]
    fn restart_policy_defaults() {
        let p = RestartPolicy::default();
        assert_eq!(p.max_restarts, 1);
        assert_eq!(p.escalation, Escalation::Escalate);
        assert!(!p.drain_mailboxes);
    }
}
