//! # embera — a component model for MPSoC with first-class observation
//!
//! This crate is the Rust reproduction of the **EMBera** model from
//! *"Towards a Component-based Observation of MPSoC"* (Prada-Rojas,
//! Marangonzova-Martin, Georgiev, Méhaut, Santana — INRIA RR-6905,
//! 2009).
//!
//! An EMBera application is "composed of a number of interconnected
//! components. A component is a software entity with a well-defined
//! functionality" exposing **provided** and **required** interfaces;
//! connections link required to provided interfaces, and components are
//! *active* — each has its own execution flow (paper §3.1).
//!
//! The model's distinguishing feature is first-class **observation**
//! (§3.3): every component carries an implicit `introspection`
//! provided/required interface pair, served by the component *runtime*
//! (not user code), through which an **observer component** collects
//! execution data at three levels:
//!
//! * **operating system** — execution time and memory occupation,
//! * **middleware** — timing of the `send`/`receive` primitives,
//! * **application** — component structure and communication counters.
//!
//! Applications are described platform-independently ([`AppBuilder`] →
//! [`AppSpec`]) and deployed through a [`Platform`] implementation. Two
//! backends exist in this workspace, mirroring the paper's two
//! implementations: `embera-smp` (components as native threads with FIFO
//! mailboxes — paper §4) and `embera-os21` (components as OS21 tasks
//! communicating through EMBX distributed objects on the simulated
//! STi7200 — paper §5).
//!
//! ```
//! use bytes::Bytes;
//! use embera::{AppBuilder, Behavior, ComponentSpec, Ctx, EmberaError};
//!
//! struct Producer;
//! impl Behavior for Producer {
//!     fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
//!         ctx.send("out", Bytes::from_static(b"hello"))
//!     }
//! }
//! struct Consumer;
//! impl Behavior for Consumer {
//!     fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
//!         let msg = ctx.recv("in")?;
//!         assert_eq!(&msg[..], b"hello");
//!         Ok(())
//!     }
//! }
//!
//! let mut app = AppBuilder::new("demo");
//! app.add(ComponentSpec::new("producer", Producer).with_required("out"));
//! app.add(ComponentSpec::new("consumer", Consumer).with_provided("in"));
//! app.connect(("producer", "out"), ("consumer", "in"));
//! let spec = app.build().unwrap();
//! assert_eq!(spec.components.len(), 2);
//! ```

pub mod app;
pub mod behavior;
pub mod component;
pub mod error;
pub mod message;
pub mod observe;
pub mod observer;
pub mod overload;
pub mod platform;
pub mod pool;
pub mod runtime;
pub mod supervise;

pub use app::{AppBuilder, AppSpec, Connection, Endpoint};
pub use behavior::{Behavior, Ctx, FnBehavior, Work, WorkClass};
pub use component::{ComponentSpec, Placement, INTROSPECTION};
pub use error::EmberaError;
pub use message::Message;
pub use observe::custom::{CustomMetric, FnMetric, MetricSource};
pub use observe::protocol::{ObsReply, ObsRequest};
pub use observe::report::{
    AppStats, HealthInfo, HealthState, IfaceCounterSnapshot, MiddlewareStats, ObservationReport,
    OsStats, StructureInfo, TimingSnapshot,
};
pub use observe::stats::ComponentStats;
pub use observe::topology::{ObserverTopology, RegionSummary, RollupTotals, SamplingPolicy};
pub use observer::{
    decode_region_summary, encode_region_summary, is_observer_component, ObservationLog,
    ObserverBehavior, ObserverConfig, RegionObserverBehavior, RootObserverBehavior, StallRecord,
    OBSERVER_NAME, REGION_OBSERVER_PREFIX, ROOT_REGION,
};
pub use overload::{OverloadKind, OverloadPolicy};
pub use platform::{AppReport, Platform, RunningApp};
pub use pool::{BufferPool, PoolStats};
pub use runtime::{ComponentRuntime, TraceConfig, TraceEventKind, TraceSink};
pub use supervise::{Escalation, FaultAction, FaultPlan, FaultReport, RestartPolicy};
