//! The observer component: "the information obtained, accessible through
//! the observation interface, is gathered and analyzed by a new
//! component connected to the observation interfaces. We have named it
//! the observer component." (paper §3.3)
//!
//! The observer is an ordinary [`Behavior`]: it communicates exclusively
//! through EMBera interfaces, so the same observer runs unchanged on the
//! SMP backend and on the simulated MPSoC.
//!
//! Observation can be arranged in two topologies
//! ([`ObserverTopology`]): the paper's *flat* design — one observer
//! polling every component — and a two-level *hierarchy* in which
//! regional observers each poll a subset of components and roll
//! [`RegionSummary`] aggregates up to a root observer. The flat design
//! stays the default and is wiring-identical to the seed implementation
//! for paper-parity runs; the hierarchy is what keeps observation
//! affordable at 10k-component scale.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::behavior::{Behavior, Ctx};
use crate::error::EmberaError;
use crate::message::Message;
use crate::observe::protocol::{ObsReply, ObsRequest};
use crate::observe::report::{HealthState, ObservationReport};
use crate::observe::topology::{
    AdaptiveSampler, HealthSignature, ObserverTopology, RegionSummary, RollupTotals,
    SamplingPolicy,
};

/// Reserved name of the auto-wired (root) observer component.
pub const OBSERVER_NAME: &str = "Observer";

/// Name prefix of auto-wired regional observer components
/// (`Observer.region0`, `Observer.region1`, …).
pub const REGION_OBSERVER_PREFIX: &str = "Observer.region";

/// Region label used by the flat observer's records (there is only one
/// poller, the root itself).
pub const ROOT_REGION: &str = "root";

/// True for any auto-wired observer component — the root observer or a
/// regional observer. Backends use this (instead of comparing against
/// [`OBSERVER_NAME`]) to keep observers out of application-completion
/// accounting.
pub fn is_observer_component(name: &str) -> bool {
    name == OBSERVER_NAME || name.starts_with(REGION_OBSERVER_PREFIX)
}

/// One collected observation.
#[derive(Debug, Clone)]
pub struct ObservationRecord {
    /// Platform time at which the reply was received, ns.
    pub at_ns: u64,
    /// Polling round that produced it.
    pub round: u64,
    /// The observed component's report.
    pub report: ObservationReport,
}

/// One watchdog violation: a component whose health reply showed no
/// progress for longer than the observer's configured deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallRecord {
    /// Region whose observer detected the stall ([`ROOT_REGION`] for the
    /// flat topology) — under the hierarchy, the poll timestamp that
    /// tripped the watchdog is the *regional* observer's, so the stall
    /// must stay attributable to the region that reported it.
    pub region: String,
    /// The stalled component.
    pub component: String,
    /// Observer time when the stall was detected, ns.
    pub at_ns: u64,
    /// The component's last reported progress timestamp, ns.
    pub last_progress_ns: u64,
    /// The component's reported liveness state at detection time.
    pub state: HealthState,
}

/// Shared log of everything the observer collected.
#[derive(Clone, Default)]
pub struct ObservationLog {
    records: Arc<Mutex<Vec<ObservationRecord>>>,
    stalls: Arc<Mutex<Vec<StallRecord>>>,
    summaries: Arc<Mutex<Vec<RegionSummary>>>,
}

impl ObservationLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn push(&self, record: ObservationRecord) {
        self.records.lock().push(record);
    }

    /// Snapshot of all records.
    pub fn records(&self) -> Vec<ObservationRecord> {
        self.records.lock().clone()
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Append a watchdog violation.
    pub(crate) fn push_stall(&self, stall: StallRecord) {
        self.stalls.lock().push(stall);
    }

    /// Snapshot of all watchdog violations detected so far.
    pub fn stalls(&self) -> Vec<StallRecord> {
        self.stalls.lock().clone()
    }

    /// Names of components with at least one watchdog violation,
    /// first-detection order, deduplicated.
    pub fn stalled_components(&self) -> Vec<String> {
        let stalls = self.stalls.lock();
        let mut names: Vec<String> = Vec::new();
        for s in stalls.iter() {
            if !names.contains(&s.component) {
                names.push(s.component.clone());
            }
        }
        names
    }

    /// Latest report per component, in first-seen order.
    pub fn latest_by_component(&self) -> Vec<ObservationReport> {
        let records = self.records.lock();
        let mut order: Vec<String> = Vec::new();
        let mut latest: std::collections::HashMap<String, ObservationReport> =
            std::collections::HashMap::new();
        for r in records.iter() {
            if !latest.contains_key(&r.report.component) {
                order.push(r.report.component.clone());
            }
            latest.insert(r.report.component.clone(), r.report.clone());
        }
        order.into_iter().filter_map(|n| latest.remove(&n)).collect()
    }

    /// Append a region summary received by the root observer.
    pub(crate) fn push_summary(&self, summary: RegionSummary) {
        self.summaries.lock().push(summary);
    }

    /// Every region summary the root observer received, arrival order.
    pub fn summaries(&self) -> Vec<RegionSummary> {
        self.summaries.lock().clone()
    }

    /// Aggregate of the *latest* summary from each region (`None` until
    /// the root observer has received at least one summary). Under the
    /// flat topology no summaries flow, so this stays `None`.
    pub fn rollup(&self) -> Option<RollupTotals> {
        let summaries = self.summaries.lock();
        if summaries.is_empty() {
            return None;
        }
        let mut latest: Vec<(&str, &RegionSummary)> = Vec::new();
        for s in summaries.iter() {
            if let Some(slot) = latest.iter_mut().find(|(n, _)| *n == s.region) {
                slot.1 = s;
            } else {
                latest.push((s.region.as_str(), s));
            }
        }
        let mut t = RollupTotals {
            regions: latest.len() as u64,
            all_terminal: true,
            ..Default::default()
        };
        for (_, s) in &latest {
            t.components += s.components;
            t.finished += s.finished;
            t.faulted += s.faulted;
            t.polls += s.polls;
            t.total_sends += s.total_sends;
            t.total_receives += s.total_receives;
            t.shed_messages += s.shed_messages;
            t.expired_messages += s.expired_messages;
            if !s.all_terminal() {
                t.all_terminal = false;
            }
        }
        Some(t)
    }
}

/// Configuration of the observer's polling loop.
#[derive(Clone)]
pub struct ObserverConfig {
    /// Pause between polling rounds, ns.
    pub interval_ns: u64,
    /// Stop after this many rounds (`None` = run until app shutdown).
    pub max_rounds: Option<u64>,
    /// Per-reply receive deadline within a round, ns.
    pub reply_timeout_ns: u64,
    /// What to ask each round — the paper's §6 "how to select the events
    /// to be observed". Default: [`ObsRequest::Full`]. Narrower requests
    /// (e.g. only [`ObsRequest::AppStats`]) reduce observation traffic.
    pub request: ObsRequest,
    /// Watchdog deadline, ns: when a health-carrying reply shows no
    /// progress for longer than this, a [`StallRecord`] is logged.
    /// 0 (default) disables the watchdog.
    pub watchdog_ns: u64,
    /// How observers are arranged over the application
    /// (default: [`ObserverTopology::Flat`], the paper's design).
    pub topology: ObserverTopology,
    /// Adaptive per-component sampling (`None` = poll every target every
    /// round, the seed behavior). Meaningful with health-carrying
    /// requests ([`ObsRequest::Health`] / [`ObsRequest::Full`]); without
    /// health data every component looks quiet and simply backs off.
    pub sampling: Option<SamplingPolicy>,
    /// Hierarchical topologies only: `(component, provided_interface)`
    /// the root observer sends one data message to once every region has
    /// reported all its members terminal. Lets an application component
    /// block until observation of the whole run has converged. The
    /// target component must not itself be observed (use
    /// [`ObserverTopology::Grouped`] and leave it out of every group).
    pub notify_done: Option<(String, String)>,
    /// Hierarchical topologies only: `(component, provided_interface)`
    /// the root observer streams every received [`RegionSummary`] to,
    /// encoded with [`encode_region_summary`] — the observation→actuation
    /// feed a controller component (e.g. an autoscaler) consumes. An
    /// empty sentinel payload is sent when the root exits. Like
    /// [`ObserverConfig::notify_done`], the target must not itself be
    /// observed.
    pub actuate: Option<(String, String)>,
    pub(crate) log: ObservationLog,
}

impl Default for ObserverConfig {
    fn default() -> Self {
        ObserverConfig {
            interval_ns: 1_000_000, // 1 ms between rounds
            max_rounds: None,
            reply_timeout_ns: 100_000_000, // 100 ms
            request: ObsRequest::Full,
            watchdog_ns: 0,
            topology: ObserverTopology::Flat,
            sampling: None,
            notify_done: None,
            actuate: None,
            log: ObservationLog::new(),
        }
    }
}

impl ObserverConfig {
    /// Poll a fixed number of rounds.
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = Some(rounds);
        self
    }

    /// Set the inter-round interval.
    pub fn interval_ns(mut self, ns: u64) -> Self {
        self.interval_ns = ns;
        self
    }

    /// Select which observation level to poll.
    pub fn request(mut self, request: ObsRequest) -> Self {
        self.request = request;
        self
    }

    /// Enable the stall watchdog with the given no-progress deadline.
    pub fn watchdog_ns(mut self, ns: u64) -> Self {
        self.watchdog_ns = ns;
        self
    }

    /// Choose the observer topology.
    pub fn topology(mut self, topology: ObserverTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Shorthand for a sharded two-level hierarchy with `regions`
    /// regional observers.
    pub fn sharded(self, regions: usize) -> Self {
        self.topology(ObserverTopology::Sharded { regions })
    }

    /// Shorthand for an explicitly grouped two-level hierarchy.
    pub fn grouped(self, groups: Vec<(String, Vec<String>)>) -> Self {
        self.topology(ObserverTopology::Grouped { groups })
    }

    /// Set the adaptive sampling policy.
    pub fn sampling(mut self, policy: SamplingPolicy) -> Self {
        self.sampling = Some(policy);
        self
    }

    /// Enable adaptive sampling with the default policy.
    pub fn adaptive(self) -> Self {
        self.sampling(SamplingPolicy::default())
    }

    /// Have the root observer send one data message to
    /// `(component, interface)` once every region is all-terminal.
    pub fn notify_done(
        mut self,
        component: impl Into<String>,
        interface: impl Into<String>,
    ) -> Self {
        self.notify_done = Some((component.into(), interface.into()));
        self
    }

    /// Have the root observer stream every region summary it receives to
    /// `(component, interface)`, closing the observation→actuation loop.
    pub fn actuate(
        mut self,
        component: impl Into<String>,
        interface: impl Into<String>,
    ) -> Self {
        self.actuate = Some((component.into(), interface.into()));
        self
    }

    pub(crate) fn with_log(mut self, log: ObservationLog) -> Self {
        self.log = log;
        self
    }
}

/// Fixed-field little-endian wire encoding of a [`RegionSummary`] for
/// the [`ObserverConfig::actuate`] feed:
/// `label_len u16 | label bytes | 11 × u64` (components, round, polls,
/// finished, faulted, stalled, total_sends, total_receives,
/// queued_messages, shed_messages, expired_messages). Deliberately not
/// serde: controller components parse it allocation-light inside their
/// control loop.
pub fn encode_region_summary(s: &RegionSummary) -> bytes::Bytes {
    let label = s.region.as_bytes();
    let mut out = Vec::with_capacity(2 + label.len() + 11 * 8);
    out.extend_from_slice(&(label.len() as u16).to_le_bytes());
    out.extend_from_slice(label);
    for v in [
        s.components,
        s.round,
        s.polls,
        s.finished,
        s.faulted,
        s.stalled,
        s.total_sends,
        s.total_receives,
        s.queued_messages,
        s.shed_messages,
        s.expired_messages,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    bytes::Bytes::from(out)
}

/// Inverse of [`encode_region_summary`]; `None` on malformed input.
pub fn decode_region_summary(buf: &[u8]) -> Option<RegionSummary> {
    if buf.len() < 2 {
        return None;
    }
    let label_len = u16::from_le_bytes([buf[0], buf[1]]) as usize;
    let fields_at = 2 + label_len;
    if buf.len() != fields_at + 11 * 8 {
        return None;
    }
    let region = std::str::from_utf8(&buf[2..fields_at]).ok()?.to_string();
    let mut vals = [0u64; 11];
    for (i, v) in vals.iter_mut().enumerate() {
        let at = fields_at + i * 8;
        *v = u64::from_le_bytes(buf[at..at + 8].try_into().ok()?);
    }
    Some(RegionSummary {
        region,
        components: vals[0],
        round: vals[1],
        polls: vals[2],
        finished: vals[3],
        faulted: vals[4],
        stalled: vals[5],
        total_sends: vals[6],
        total_receives: vals[7],
        queued_messages: vals[8],
        shed_messages: vals[9],
        expired_messages: vals[10],
    })
}

/// Lift a (possibly partial) reply into a sparse report so every request
/// kind lands in the same log. Region summaries are tree-internal
/// traffic, not component reports.
fn lift_reply(from: String, reply: ObsReply) -> Option<ObservationReport> {
    match reply {
        ObsReply::Full(report) => Some(*report),
        ObsReply::Os(os) => Some(ObservationReport {
            component: from,
            os,
            ..Default::default()
        }),
        ObsReply::Middleware(middleware) => Some(ObservationReport {
            component: from,
            middleware,
            ..Default::default()
        }),
        ObsReply::App(app) => Some(ObservationReport {
            component: from,
            app,
            ..Default::default()
        }),
        ObsReply::Structure(structure) => Some(ObservationReport {
            component: from,
            structure,
            ..Default::default()
        }),
        ObsReply::Custom(custom) => Some(ObservationReport {
            component: from,
            custom,
            ..Default::default()
        }),
        ObsReply::Health(health) => Some(ObservationReport {
            component: from,
            health: Some(health),
            ..Default::default()
        }),
        ObsReply::Region(_) => None,
    }
}

/// The sampler's view of a report.
fn health_signature(report: &ObservationReport) -> HealthSignature {
    match &report.health {
        Some(h) => HealthSignature {
            terminal: matches!(h.state, HealthState::Faulted | HealthState::Finished),
            restarts: h.restarts,
            queued_messages: h.queued_messages,
        },
        None => HealthSignature {
            terminal: false,
            restarts: 0,
            queued_messages: 0,
        },
    }
}

/// The flat observer behavior: each round, sends the configured
/// [`ObsRequest`] to every due target's observation interface and logs
/// the replies.
pub struct ObserverBehavior {
    targets: Vec<String>,
    config: ObserverConfig,
}

impl ObserverBehavior {
    /// Observer over the given target components.
    pub fn new(targets: Vec<String>, config: ObserverConfig) -> Self {
        ObserverBehavior { targets, config }
    }

    /// The log this observer fills.
    pub fn log(&self) -> ObservationLog {
        self.config.log.clone()
    }
}

impl Behavior for ObserverBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        let index: HashMap<&str, usize> = self
            .targets
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut sampler = AdaptiveSampler::new(self.targets.len(), self.config.sampling);
        let mut round: u64 = 0;
        loop {
            if ctx.should_stop() {
                return Ok(());
            }
            if let Some(max) = self.config.max_rounds {
                if round >= max {
                    return Ok(());
                }
            }
            // Fan the configured request out to every due target.
            let due = sampler.due(round);
            for &i in &due {
                let iface = format!("obs_{}", self.targets[i]);
                ctx.send_message(
                    &iface,
                    Message::ObsRequest {
                        from: OBSERVER_NAME.to_string(),
                        request: self.config.request,
                    },
                )?;
            }
            // Collect the replies.
            let mut pending = due.len();
            while pending > 0 {
                if ctx.should_stop() {
                    return Ok(());
                }
                match ctx.recv_message_timeout("observations", self.config.reply_timeout_ns)? {
                    Some(Message::ObsReply { from, reply }) => {
                        if let Some(report) = lift_reply(from, *reply) {
                            let at_ns = ctx.now_ns();
                            // Watchdog: any reply carrying health (Health
                            // or Full) is checked against the deadline.
                            if self.config.watchdog_ns > 0 {
                                if let Some(h) = &report.health {
                                    if h.is_stalled(at_ns, self.config.watchdog_ns) {
                                        self.config.log.push_stall(StallRecord {
                                            region: ROOT_REGION.to_string(),
                                            component: report.component.clone(),
                                            at_ns,
                                            last_progress_ns: h.last_progress_ns,
                                            state: h.state,
                                        });
                                    }
                                }
                            }
                            if let Some(&i) = index.get(report.component.as_str()) {
                                sampler.observe(i, round, health_signature(&report));
                            }
                            self.config.log.push(ObservationRecord {
                                at_ns,
                                round,
                                report,
                            });
                        }
                        pending -= 1;
                    }
                    Some(_) => { /* ignore stray traffic */ }
                    None => break, // target quiesced; move on
                }
            }
            round += 1;
            // Pace the next round; the timeout doubles as a sleep.
            let _ = ctx.recv_message_timeout("observations", self.config.interval_ns)?;
        }
    }
}

/// A regional observer: polls only its region's members, logs their
/// reports (exactly like the flat observer), and after every polling
/// round sends a [`RegionSummary`] up its `rollup` interface to the
/// root. Exits on its own once every member has reached a terminal
/// state — final counters are safe to collect because the component
/// runtime keeps answering introspection after a behavior finishes.
pub struct RegionObserverBehavior {
    region: String,
    targets: Vec<String>,
    config: ObserverConfig,
}

impl RegionObserverBehavior {
    /// Regional observer labeled `region` over the given members.
    pub fn new(region: impl Into<String>, targets: Vec<String>, config: ObserverConfig) -> Self {
        RegionObserverBehavior {
            region: region.into(),
            targets,
            config,
        }
    }
}

impl Behavior for RegionObserverBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        let n = self.targets.len();
        let index: HashMap<&str, usize> = self
            .targets
            .iter()
            .enumerate()
            .map(|(i, t)| (t.as_str(), i))
            .collect();
        let mut sampler = AdaptiveSampler::new(n, self.config.sampling);
        let mut latest_health: Vec<Option<crate::observe::report::HealthInfo>> = vec![None; n];
        let mut latest_counters: Vec<(u64, u64)> = vec![(0, 0); n];
        let mut stalled: Vec<bool> = vec![false; n];
        let mut polls: u64 = 0;
        let mut round: u64 = 0;
        loop {
            if ctx.should_stop() {
                return Ok(());
            }
            if let Some(max) = self.config.max_rounds {
                if round >= max {
                    return Ok(());
                }
            }
            let due = sampler.due(round);
            for &i in &due {
                let iface = format!("obs_{}", self.targets[i]);
                ctx.send_message(
                    &iface,
                    Message::ObsRequest {
                        from: self.region.clone(),
                        request: self.config.request,
                    },
                )?;
            }
            polls += due.len() as u64;
            let mut pending = due.len();
            while pending > 0 {
                if ctx.should_stop() {
                    return Ok(());
                }
                match ctx.recv_message_timeout("observations", self.config.reply_timeout_ns)? {
                    Some(Message::ObsReply { from, reply }) => {
                        if let Some(report) = lift_reply(from, *reply) {
                            let at_ns = ctx.now_ns();
                            if let Some(&i) = index.get(report.component.as_str()) {
                                if let Some(h) = &report.health {
                                    latest_health[i] = Some(*h);
                                    if self.config.watchdog_ns > 0
                                        && h.is_stalled(at_ns, self.config.watchdog_ns)
                                    {
                                        stalled[i] = true;
                                        self.config.log.push_stall(StallRecord {
                                            region: self.region.clone(),
                                            component: report.component.clone(),
                                            at_ns,
                                            last_progress_ns: h.last_progress_ns,
                                            state: h.state,
                                        });
                                    }
                                }
                                if report.app.total_sends > 0 || report.app.total_receives > 0 {
                                    latest_counters[i] =
                                        (report.app.total_sends, report.app.total_receives);
                                }
                                sampler.observe(i, round, health_signature(&report));
                            }
                            self.config.log.push(ObservationRecord {
                                at_ns,
                                round,
                                report,
                            });
                        }
                        pending -= 1;
                    }
                    Some(_) => {}
                    None => break,
                }
            }
            if !due.is_empty() {
                // Roll the region's state up to the root.
                let mut summary = RegionSummary {
                    region: self.region.clone(),
                    components: n as u64,
                    round,
                    polls,
                    ..Default::default()
                };
                for (i, h) in latest_health.iter().enumerate() {
                    if let Some(h) = h {
                        match h.state {
                            HealthState::Finished => summary.finished += 1,
                            HealthState::Faulted => summary.faulted += 1,
                            _ => {}
                        }
                        summary.queued_messages += h.queued_messages;
                        summary.shed_messages += h.shed_messages;
                        summary.expired_messages += h.expired_messages;
                    }
                    if stalled[i] {
                        summary.stalled += 1;
                    }
                    summary.total_sends += latest_counters[i].0;
                    summary.total_receives += latest_counters[i].1;
                }
                let complete = summary.all_terminal();
                ctx.send_message(
                    "rollup",
                    Message::ObsReply {
                        from: self.region.clone(),
                        reply: Box::new(ObsReply::Region(summary)),
                    },
                )?;
                if complete {
                    return Ok(());
                }
            }
            round += 1;
            let _ = ctx.recv_message_timeout("observations", self.config.interval_ns)?;
        }
    }
}

/// The root observer of a hierarchical topology: receives
/// [`RegionSummary`] messages on its `regions` interface, records them
/// in the shared log (see [`ObservationLog::rollup`]), and — once every
/// region has reported all its members terminal — optionally notifies a
/// designated application component and exits.
pub struct RootObserverBehavior {
    regions: usize,
    config: ObserverConfig,
}

impl RootObserverBehavior {
    /// Root over `regions` regional observers.
    pub fn new(regions: usize, config: ObserverConfig) -> Self {
        RootObserverBehavior { regions, config }
    }

    /// The log this observer fills.
    pub fn log(&self) -> ObservationLog {
        self.config.log.clone()
    }
}

impl Behavior for RootObserverBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        let mut latest: HashMap<String, RegionSummary> = HashMap::new();
        loop {
            if ctx.should_stop() {
                return Ok(());
            }
            match ctx.recv_message_timeout("regions", self.config.reply_timeout_ns)? {
                Some(Message::ObsReply { reply, .. }) => {
                    if let ObsReply::Region(summary) = *reply {
                        self.config.log.push_summary(summary.clone());
                        if self.config.actuate.is_some() {
                            // Observation→actuation: stream the summary
                            // to the configured controller component.
                            ctx.send("actuate", encode_region_summary(&summary))?;
                        }
                        latest.insert(summary.region.clone(), summary);
                        if latest.len() >= self.regions
                            && latest.values().all(|s| s.all_terminal())
                        {
                            if self.config.actuate.is_some() {
                                // Empty sentinel: the controller's exit
                                // signal.
                                ctx.send("actuate", bytes::Bytes::new())?;
                            }
                            if self.config.notify_done.is_some() {
                                ctx.send("done", bytes::Bytes::from_static(&[1]))?;
                            }
                            return Ok(());
                        }
                    }
                }
                Some(_) => { /* ignore stray traffic */ }
                None => { /* keep waiting; should_stop is checked above */ }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::report::ObservationReport;

    #[test]
    fn log_latest_by_component_keeps_last() {
        let log = ObservationLog::new();
        for round in 0..3u64 {
            for name in ["a", "b"] {
                let mut report = ObservationReport {
                    component: name.to_string(),
                    ..Default::default()
                };
                report.os.exec_time_ns = round;
                log.push(ObservationRecord {
                    at_ns: round,
                    round,
                    report,
                });
            }
        }
        assert_eq!(log.len(), 6);
        let latest = log.latest_by_component();
        assert_eq!(latest.len(), 2);
        assert!(latest.iter().all(|r| r.os.exec_time_ns == 2));
        assert_eq!(latest[0].component, "a");
    }

    #[test]
    fn config_builders() {
        let c = ObserverConfig::default()
            .rounds(5)
            .interval_ns(42)
            .watchdog_ns(7)
            .sharded(4)
            .adaptive()
            .notify_done("waiter", "done");
        assert_eq!(c.max_rounds, Some(5));
        assert_eq!(c.interval_ns, 42);
        assert_eq!(c.watchdog_ns, 7);
        assert_eq!(c.topology, ObserverTopology::Sharded { regions: 4 });
        assert!(c.sampling.is_some());
        assert_eq!(
            c.notify_done,
            Some(("waiter".to_string(), "done".to_string()))
        );
    }

    #[test]
    fn stall_log_dedups_component_names() {
        let log = ObservationLog::new();
        assert!(log.stalls().is_empty());
        for at_ns in [10, 20] {
            log.push_stall(StallRecord {
                region: ROOT_REGION.to_string(),
                component: "IDCT_1".to_string(),
                at_ns,
                last_progress_ns: 1,
                state: HealthState::Blocked,
            });
        }
        log.push_stall(StallRecord {
            region: "region1".to_string(),
            component: "Fetch".to_string(),
            at_ns: 30,
            last_progress_ns: 2,
            state: HealthState::Running,
        });
        assert_eq!(log.stalls().len(), 3);
        assert_eq!(log.stalled_components(), vec!["IDCT_1", "Fetch"]);
        assert_eq!(log.stalls()[2].region, "region1");
    }

    #[test]
    fn observer_name_classification() {
        assert!(is_observer_component(OBSERVER_NAME));
        assert!(is_observer_component("Observer.region0"));
        assert!(is_observer_component("Observer.region17"));
        assert!(!is_observer_component("Observe"));
        assert!(!is_observer_component("Fetch"));
        assert!(!is_observer_component("observer"));
    }

    #[test]
    fn rollup_aggregates_latest_summary_per_region() {
        let log = ObservationLog::new();
        assert!(log.rollup().is_none());
        log.push_summary(RegionSummary {
            region: "region0".into(),
            components: 2,
            finished: 1,
            total_sends: 10,
            total_receives: 10,
            polls: 4,
            ..Default::default()
        });
        // A newer summary for region0 supersedes the first.
        log.push_summary(RegionSummary {
            region: "region0".into(),
            components: 2,
            finished: 2,
            total_sends: 20,
            total_receives: 20,
            polls: 8,
            ..Default::default()
        });
        log.push_summary(RegionSummary {
            region: "region1".into(),
            components: 1,
            finished: 1,
            total_sends: 5,
            total_receives: 5,
            polls: 3,
            ..Default::default()
        });
        let t = log.rollup().unwrap();
        assert_eq!(t.regions, 2);
        assert_eq!(t.components, 3);
        assert_eq!(t.finished, 3);
        assert_eq!(t.total_sends, 25);
        assert_eq!(t.total_receives, 25);
        assert_eq!(t.polls, 11);
        assert!(t.all_terminal);
    }

    #[test]
    fn region_summary_codec_round_trips() {
        let s = RegionSummary {
            region: "left".into(),
            components: 4,
            round: 9,
            polls: 36,
            finished: 3,
            faulted: 1,
            stalled: 2,
            total_sends: 100,
            total_receives: 99,
            queued_messages: 7,
            shed_messages: 5,
            expired_messages: 11,
        };
        let wire = encode_region_summary(&s);
        assert_eq!(decode_region_summary(&wire), Some(s));
        assert_eq!(decode_region_summary(&[]), None);
        assert_eq!(decode_region_summary(&wire[..wire.len() - 1]), None);
    }

    #[test]
    fn region_reply_is_not_a_component_report() {
        assert!(lift_reply("region0".into(), ObsReply::Region(RegionSummary::default())).is_none());
        assert!(lift_reply(
            "a".into(),
            ObsReply::Health(crate::observe::report::HealthInfo::default())
        )
        .is_some());
    }
}
