//! The observer component: "the information obtained, accessible through
//! the observation interface, is gathered and analyzed by a new
//! component connected to the observation interfaces. We have named it
//! the observer component." (paper §3.3)
//!
//! The observer is an ordinary [`Behavior`]: it communicates exclusively
//! through EMBera interfaces, so the same observer runs unchanged on the
//! SMP backend and on the simulated MPSoC.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::behavior::{Behavior, Ctx};
use crate::error::EmberaError;
use crate::message::Message;
use crate::observe::protocol::{ObsReply, ObsRequest};
use crate::observe::report::{HealthState, ObservationReport};


/// Reserved name of the auto-wired observer component.
pub const OBSERVER_NAME: &str = "Observer";

/// One collected observation.
#[derive(Debug, Clone)]
pub struct ObservationRecord {
    /// Platform time at which the reply was received, ns.
    pub at_ns: u64,
    /// Polling round that produced it.
    pub round: u64,
    /// The observed component's report.
    pub report: ObservationReport,
}

/// One watchdog violation: a component whose health reply showed no
/// progress for longer than the observer's configured deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallRecord {
    /// The stalled component.
    pub component: String,
    /// Observer time when the stall was detected, ns.
    pub at_ns: u64,
    /// The component's last reported progress timestamp, ns.
    pub last_progress_ns: u64,
    /// The component's reported liveness state at detection time.
    pub state: HealthState,
}

/// Shared log of everything the observer collected.
#[derive(Clone, Default)]
pub struct ObservationLog {
    records: Arc<Mutex<Vec<ObservationRecord>>>,
    stalls: Arc<Mutex<Vec<StallRecord>>>,
}

impl ObservationLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn push(&self, record: ObservationRecord) {
        self.records.lock().push(record);
    }

    /// Snapshot of all records.
    pub fn records(&self) -> Vec<ObservationRecord> {
        self.records.lock().clone()
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Append a watchdog violation.
    pub(crate) fn push_stall(&self, stall: StallRecord) {
        self.stalls.lock().push(stall);
    }

    /// Snapshot of all watchdog violations detected so far.
    pub fn stalls(&self) -> Vec<StallRecord> {
        self.stalls.lock().clone()
    }

    /// Names of components with at least one watchdog violation,
    /// first-detection order, deduplicated.
    pub fn stalled_components(&self) -> Vec<String> {
        let stalls = self.stalls.lock();
        let mut names: Vec<String> = Vec::new();
        for s in stalls.iter() {
            if !names.contains(&s.component) {
                names.push(s.component.clone());
            }
        }
        names
    }

    /// Latest report per component, in first-seen order.
    pub fn latest_by_component(&self) -> Vec<ObservationReport> {
        let records = self.records.lock();
        let mut order: Vec<String> = Vec::new();
        let mut latest: std::collections::HashMap<String, ObservationReport> =
            std::collections::HashMap::new();
        for r in records.iter() {
            if !latest.contains_key(&r.report.component) {
                order.push(r.report.component.clone());
            }
            latest.insert(r.report.component.clone(), r.report.clone());
        }
        order.into_iter().filter_map(|n| latest.remove(&n)).collect()
    }
}

/// Configuration of the observer's polling loop.
#[derive(Clone)]
pub struct ObserverConfig {
    /// Pause between polling rounds, ns.
    pub interval_ns: u64,
    /// Stop after this many rounds (`None` = run until app shutdown).
    pub max_rounds: Option<u64>,
    /// Per-reply receive deadline within a round, ns.
    pub reply_timeout_ns: u64,
    /// What to ask each round — the paper's §6 "how to select the events
    /// to be observed". Default: [`ObsRequest::Full`]. Narrower requests
    /// (e.g. only [`ObsRequest::AppStats`]) reduce observation traffic.
    pub request: ObsRequest,
    /// Watchdog deadline, ns: when a health-carrying reply shows no
    /// progress for longer than this, a [`StallRecord`] is logged.
    /// 0 (default) disables the watchdog.
    pub watchdog_ns: u64,
    pub(crate) log: ObservationLog,
}

impl Default for ObserverConfig {
    fn default() -> Self {
        ObserverConfig {
            interval_ns: 1_000_000, // 1 ms between rounds
            max_rounds: None,
            reply_timeout_ns: 100_000_000, // 100 ms
            request: ObsRequest::Full,
            watchdog_ns: 0,
            log: ObservationLog::new(),
        }
    }
}

impl ObserverConfig {
    /// Poll a fixed number of rounds.
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = Some(rounds);
        self
    }

    /// Set the inter-round interval.
    pub fn interval_ns(mut self, ns: u64) -> Self {
        self.interval_ns = ns;
        self
    }

    /// Select which observation level to poll.
    pub fn request(mut self, request: ObsRequest) -> Self {
        self.request = request;
        self
    }

    /// Enable the stall watchdog with the given no-progress deadline.
    pub fn watchdog_ns(mut self, ns: u64) -> Self {
        self.watchdog_ns = ns;
        self
    }

    pub(crate) fn with_log(mut self, log: ObservationLog) -> Self {
        self.log = log;
        self
    }
}

/// The observer behavior: each round, sends an [`ObsRequest::Full`] to
/// every target's observation interface and logs the replies.
pub struct ObserverBehavior {
    targets: Vec<String>,
    config: ObserverConfig,
}

impl ObserverBehavior {
    /// Observer over the given target components.
    pub fn new(targets: Vec<String>, config: ObserverConfig) -> Self {
        ObserverBehavior { targets, config }
    }

    /// The log this observer fills.
    pub fn log(&self) -> ObservationLog {
        self.config.log.clone()
    }
}

impl Behavior for ObserverBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        let mut round: u64 = 0;
        loop {
            if ctx.should_stop() {
                return Ok(());
            }
            if let Some(max) = self.config.max_rounds {
                if round >= max {
                    return Ok(());
                }
            }
            // Fan the configured request out to every target.
            for t in &self.targets {
                let iface = format!("obs_{t}");
                ctx.send_message(
                    &iface,
                    Message::ObsRequest {
                        from: OBSERVER_NAME.to_string(),
                        request: self.config.request,
                    },
                )?;
            }
            // Collect the replies.
            let mut pending = self.targets.len();
            while pending > 0 {
                if ctx.should_stop() {
                    return Ok(());
                }
                match ctx.recv_message_timeout("observations", self.config.reply_timeout_ns)? {
                    Some(Message::ObsReply { from, reply }) => {
                        // Lift partial replies into a (sparse) report so
                        // every request kind lands in the same log.
                        let report = match *reply {
                            ObsReply::Full(report) => Some(*report),
                            ObsReply::Os(os) => Some(ObservationReport {
                                component: from,
                                os,
                                ..Default::default()
                            }),
                            ObsReply::Middleware(middleware) => Some(ObservationReport {
                                component: from,
                                middleware,
                                ..Default::default()
                            }),
                            ObsReply::App(app) => Some(ObservationReport {
                                component: from,
                                app,
                                ..Default::default()
                            }),
                            ObsReply::Structure(structure) => Some(ObservationReport {
                                component: from,
                                structure,
                                ..Default::default()
                            }),
                            ObsReply::Custom(custom) => Some(ObservationReport {
                                component: from,
                                custom,
                                ..Default::default()
                            }),
                            ObsReply::Health(health) => Some(ObservationReport {
                                component: from,
                                health: Some(health),
                                ..Default::default()
                            }),
                        };
                        if let Some(report) = report {
                            let at_ns = ctx.now_ns();
                            // Watchdog: any reply carrying health (Health
                            // or Full) is checked against the deadline.
                            if self.config.watchdog_ns > 0 {
                                if let Some(h) = &report.health {
                                    if h.is_stalled(at_ns, self.config.watchdog_ns) {
                                        self.config.log.push_stall(StallRecord {
                                            component: report.component.clone(),
                                            at_ns,
                                            last_progress_ns: h.last_progress_ns,
                                            state: h.state,
                                        });
                                    }
                                }
                            }
                            self.config.log.push(ObservationRecord {
                                at_ns,
                                round,
                                report,
                            });
                        }
                        pending -= 1;
                    }
                    Some(_) => { /* ignore stray traffic */ }
                    None => break, // target quiesced; move on
                }
            }
            round += 1;
            // Pace the next round; the timeout doubles as a sleep.
            let _ = ctx.recv_message_timeout("observations", self.config.interval_ns)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::report::ObservationReport;

    #[test]
    fn log_latest_by_component_keeps_last() {
        let log = ObservationLog::new();
        for round in 0..3u64 {
            for name in ["a", "b"] {
                let mut report = ObservationReport {
                    component: name.to_string(),
                    ..Default::default()
                };
                report.os.exec_time_ns = round;
                log.push(ObservationRecord {
                    at_ns: round,
                    round,
                    report,
                });
            }
        }
        assert_eq!(log.len(), 6);
        let latest = log.latest_by_component();
        assert_eq!(latest.len(), 2);
        assert!(latest.iter().all(|r| r.os.exec_time_ns == 2));
        assert_eq!(latest[0].component, "a");
    }

    #[test]
    fn config_builders() {
        let c = ObserverConfig::default()
            .rounds(5)
            .interval_ns(42)
            .watchdog_ns(7);
        assert_eq!(c.max_rounds, Some(5));
        assert_eq!(c.interval_ns, 42);
        assert_eq!(c.watchdog_ns, 7);
    }

    #[test]
    fn stall_log_dedups_component_names() {
        let log = ObservationLog::new();
        assert!(log.stalls().is_empty());
        for at_ns in [10, 20] {
            log.push_stall(StallRecord {
                component: "IDCT_1".to_string(),
                at_ns,
                last_progress_ns: 1,
                state: HealthState::Blocked,
            });
        }
        log.push_stall(StallRecord {
            component: "Fetch".to_string(),
            at_ns: 30,
            last_progress_ns: 2,
            state: HealthState::Running,
        });
        assert_eq!(log.stalls().len(), 3);
        assert_eq!(log.stalled_components(), vec!["IDCT_1", "Fetch"]);
    }
}
