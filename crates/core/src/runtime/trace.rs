//! First-class event tracing hooks for the shared component runtime.
//!
//! The paper's §6 announces "an event-trace-support for collecting
//! detailed events"; the `embera-trace` crate implements the collector
//! side (rings, analysis, export). These types are the *runtime* side:
//! a minimal sink interface the [`ComponentRuntime`] emits into, so
//! tracing is an application-level opt-in ([`crate::AppBuilder::with_tracing`])
//! instead of a per-behavior decorator, and works identically on every
//! backend.
//!
//! The core model deliberately knows nothing about rings or trace
//! formats — only this narrow emission interface — which keeps the
//! dependency arrow pointing from `embera-trace` to `embera`, never the
//! other way.
//!
//! [`ComponentRuntime`]: crate::runtime::ComponentRuntime

use std::fmt;
use std::sync::Arc;

/// What the runtime is reporting. Mirrors the collector-side event
/// vocabulary of `embera-trace` (which maps these one-to-one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Behavior entered `run`.
    BehaviorStart,
    /// Behavior returned from `run`; `a` = 1 if it returned an error.
    BehaviorEnd,
    /// A send primitive began; `a` = payload bytes.
    SendStart,
    /// The send completed; `a` = payload bytes, `b` = duration ns.
    SendEnd,
    /// A receive returned a message; `a` = payload bytes, `b` =
    /// duration ns of the primitive.
    Recv,
    /// A compute annotation completed; `a` = abstract ops, `b` =
    /// duration ns (0 on backends where compute is free).
    Compute,
    /// The runtime answered an observation request (invisible to the
    /// behavior — only first-class tracing can see these).
    ObsServed,
    /// The behavior panicked and the runtime contained it.
    BehaviorPanic,
    /// Supervision is re-running a failed behavior; `a` = restart
    /// attempt number (1-based), `b` = backoff ns.
    Restart,
    /// The fault-injection plan fired; `a` = action code (0 drop,
    /// 1 corrupt, 2 delay), `b` = payload bytes of the targeted message.
    FaultInjected,
    /// An overload policy shed a message at component ingress; `a` =
    /// reason code (0 queue-bound drop-oldest, 1 deadline expired),
    /// `b` = payload bytes of the shed message.
    Shed,
}

/// Receives trace events for one component. Implemented by
/// `embera-trace`'s `TraceHandle`; test code can implement it directly.
pub trait TraceSink: Send {
    /// Record one event. Called from the component's execution flow;
    /// must not block.
    fn emit(&self, ts_ns: u64, kind: TraceEventKind, a: u64, b: u64);
}

/// A sink factory: one [`TraceSink`] per component, keyed by name.
type SinkFactory = dyn Fn(&str) -> Box<dyn TraceSink> + Send + Sync;

/// Per-application tracing opt-in: a factory producing one
/// [`TraceSink`] per component at deployment time.
///
/// Carried by [`AppSpec`](crate::AppSpec) (see
/// [`AppBuilder::with_tracing`](crate::AppBuilder::with_tracing)), so
/// the *application description* — not the backend, not the behavior —
/// decides whether a run is traced.
#[derive(Clone)]
pub struct TraceConfig {
    factory: Arc<SinkFactory>,
}

impl TraceConfig {
    /// Tracing configuration from a per-component sink factory. The
    /// factory is invoked once per deployed component with the
    /// component's name.
    pub fn new(factory: impl Fn(&str) -> Box<dyn TraceSink> + Send + Sync + 'static) -> Self {
        TraceConfig {
            factory: Arc::new(factory),
        }
    }

    /// Create the sink for one component.
    pub fn sink_for(&self, component: &str) -> Box<dyn TraceSink> {
        (self.factory)(component)
    }
}

impl fmt::Debug for TraceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceConfig").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    struct VecSink(Arc<Mutex<Vec<(u64, TraceEventKind)>>>);
    impl TraceSink for VecSink {
        fn emit(&self, ts_ns: u64, kind: TraceEventKind, _a: u64, _b: u64) {
            self.0.lock().push((ts_ns, kind));
        }
    }

    #[test]
    fn factory_builds_one_sink_per_component() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let config = TraceConfig::new(move |_name| Box::new(VecSink(Arc::clone(&log2))));
        let a = config.sink_for("a");
        let b = config.sink_for("b");
        a.emit(1, TraceEventKind::BehaviorStart, 0, 0);
        b.emit(2, TraceEventKind::BehaviorEnd, 0, 0);
        assert_eq!(log.lock().len(), 2);
        assert!(format!("{config:?}").contains("TraceConfig"));
    }
}
