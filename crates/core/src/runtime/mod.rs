//! The platform-agnostic component runtime.
//!
//! The paper's headline property is that a component is "observed
//! without modifying its code" because the *runtime* — not user code —
//! serves the `introspection` interface (§4.2). This module is that
//! runtime, written once: introspection request draining and reply
//! routing, queued-bytes gauge refresh, send/receive timing and counter
//! recording, required-interface resolution with a uniform error
//! contract, the behavior lifecycle, the post-behavior quiescent
//! observation loop, and opt-in event tracing.
//!
//! A platform backend contributes only a [`Transport`]: how messages
//! move, what they cost, what time it is, and how an idle component
//! waits. `embera-smp` implements it over mailboxes and host threads,
//! `embera-os21` over EMBX distributed objects and simulated-kernel
//! event waits, and `embera-inproc` over plain `VecDeque`s on a single
//! thread — all three run behaviors through the same
//! [`ComponentRuntime`] and therefore expose byte-for-byte identical
//! observation semantics.
//!
//! # The error contract
//!
//! Every backend surfaces the same errors for the same misuse:
//!
//! * send on an interface the component never declared as required →
//!   [`EmberaError::UnknownInterface`];
//! * send on a *declared* required interface that has no connection →
//!   [`EmberaError::Disconnected`] (only reachable through hand-built
//!   [`AppSpec`](crate::AppSpec)s — [`crate::AppBuilder`] validation
//!   rejects unbound data required interfaces up front);
//! * send on the implicit `introspection` required interface with no
//!   observer attached → silently dropped (`Ok`), because observation
//!   wiring is optional by design;
//! * receive on an undeclared provided interface →
//!   [`EmberaError::UnknownInterface`];
//! * blocking receive interrupted by application shutdown →
//!   [`EmberaError::Terminated`] (a timed receive reports `Ok(None)`).
//!
//! `tests/conformance.rs` in the workspace root pins this contract —
//! plus FIFO ordering, introspection-while-blocked service, and counter
//! conservation — against all three backends.

mod trace;

pub use trace::{TraceConfig, TraceEventKind, TraceSink};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::behavior::{Behavior, Ctx, Work};
use crate::component::INTROSPECTION;
use crate::error::EmberaError;
use crate::message::Message;
use crate::observe::engine::ObsEngine;
use crate::observe::protocol::ObsReply;
use crate::observe::stats::ComponentStats;
use crate::overload::{OverloadKind, OverloadPolicy};
use crate::supervise::{ComponentFaults, Escalation, FaultAction, FaultPlan, RestartPolicy};

/// What a platform backend must provide to host components: message
/// movement with costs, time, shutdown visibility, and parking.
///
/// All methods take `&mut self`: a transport belongs to exactly one
/// component's execution flow. Interfaces are keyed by name — the
/// transport resolves them to its own endpoint type (mailbox,
/// distributed object, queue).
pub trait Transport {
    /// Current platform time, ns (monotonic; virtual on simulators).
    fn now_ns(&self) -> u64;

    /// True once the application is shutting down.
    fn is_shutdown(&self) -> bool;

    /// Is this required interface connected to a peer?
    fn has_route(&self, required: &str) -> bool;

    /// Does this component own an inbox for this provided interface?
    fn has_inbox(&self, provided: &str) -> bool;

    /// Deliver `msg` through the connected required interface `required`
    /// (caller guarantees [`Transport::has_route`]). Returns the cost of
    /// the send primitive in ns — what middleware-level observation
    /// records.
    fn push(&mut self, required: &str, msg: Message) -> u64;

    /// Non-blocking take of the next message queued on provided
    /// interface `provided`, with the receive primitive's cost in ns.
    fn try_pop(&mut self, provided: &str) -> Option<(Message, u64)>;

    /// Non-blocking take of the next introspection request, polled at
    /// every communication point. Equivalent to
    /// `try_pop(INTROSPECTION)` minus the cost sample (observation
    /// traffic is never recorded); backends may override it with a
    /// cheaper clock-free path so the poll stays off the data plane's
    /// critical path.
    fn poll_obs(&mut self) -> Option<Message> {
        self.try_pop(INTROSPECTION).map(|(msg, _cost)| msg)
    }

    /// Bytes currently queued across all of this component's provided
    /// interfaces (the observer's queue-occupation gauge).
    fn queued_bytes(&self) -> u64;

    /// Block briefly waiting for activity on `provided` (a message, a
    /// shutdown, or — bounded by `deadline_ns` in platform time — a
    /// timeout). May wake spuriously or early: the runtime re-checks
    /// inboxes, deadline and shutdown around every park. Must not park
    /// past the point where introspection requests would go unserved for
    /// unbounded time.
    fn park_recv(&mut self, provided: &str, deadline_ns: Option<u64>);

    /// Block in the post-behavior quiescent loop until there may be
    /// introspection work or shutdown. Returning `false` ends the
    /// quiescent service (for run-to-completion backends with no way to
    /// wait); `true` lets the loop re-check.
    fn park_quiescent(&mut self) -> bool;

    /// Account a completed [`Work`] annotation (advances virtual time on
    /// simulated backends; free on real silicon).
    fn compute(&mut self, work: Work);

    /// The behavior returned (with `error` if it failed): account
    /// completion, trigger fail-fast shutdown, wake peers — whatever the
    /// platform's termination protocol requires.
    fn behavior_finished(&mut self, error: Option<EmberaError>);

    /// Like [`Transport::behavior_finished`] with an error, but the
    /// failure stays contained to this component
    /// ([`Escalation::OneForOne`]): record it and account completion
    /// *without* the fail-fast application shutdown. The default falls
    /// back to the escalating path.
    fn behavior_finished_contained(&mut self, error: EmberaError) {
        self.behavior_finished(Some(error));
    }

    /// Messages (not bytes) currently queued across this component's
    /// provided interfaces — the supervision layer's queue-depth gauge.
    /// Backends without a cheap count may return 0.
    fn queued_messages(&self) -> u64 {
        0
    }

    /// Best-effort pause of this execution flow for `ns` (restart
    /// backoff, injected message delays). Virtual-time backends advance
    /// their clock; the default is a no-op.
    fn delay(&mut self, _ns: u64) {}

    /// Discard queued *data* messages on every provided interface
    /// (restart with [`RestartPolicy::drain_mailboxes`]); introspection
    /// traffic is preserved. The default is a no-op.
    fn drain_inboxes(&mut self) {}

    /// Last-moment patch of an outgoing introspection reply with data
    /// only the platform knows (e.g. RTOS per-task CPU time).
    fn refine_reply(&mut self, _reply: &mut ObsReply) {}

    /// The application's shared payload [`crate::BufferPool`], when one was
    /// attached ([`crate::AppBuilder::with_buffer_pool`]) and this
    /// backend threads it through. Behaviors draw serialization buffers
    /// from it and recycle consumed payloads into it; `None` (the
    /// default) means plain allocation everywhere.
    fn payload_pool(&self) -> Option<&crate::pool::BufferPool> {
        None
    }

    /// Messages currently queued at the *far end* of required interface
    /// `required` — the peer mailbox's depth, used by load-aware
    /// dispatchers to pick the least-loaded lane. `None` (the default)
    /// means the backend cannot observe peer queues cheaply.
    fn route_depth(&self, _required: &str) -> Option<u64> {
        None
    }

    /// Messages currently queued on this component's provided interface
    /// `provided` — the per-inbox depth that queue-bound overload
    /// policies enforce against. The default falls back to the
    /// component-wide [`Transport::queued_messages`] count, which is
    /// exact for single-inbox components.
    fn inbox_depth(&self, _provided: &str) -> u64 {
        self.queued_messages()
    }

    /// The component's execution flow is about to end (behavior done and
    /// quiescent service finished).
    fn on_exit(&mut self) {}
}

/// The one per-component runtime shared by every backend: owns the
/// observation machinery and the [`Ctx`] implementation, delegating all
/// platform specifics to a [`Transport`].
pub struct ComponentRuntime<T: Transport> {
    name: String,
    /// Data required interfaces the component *declared* — the line
    /// between [`EmberaError::UnknownInterface`] and
    /// [`EmberaError::Disconnected`] on unrouted sends.
    required: Vec<String>,
    transport: T,
    stats: Arc<ComponentStats>,
    engine: ObsEngine,
    /// False disables observation recording and introspection service
    /// (the overhead-ablation configuration).
    observe: bool,
    trace: Option<Box<dyn TraceSink>>,
    /// Supervision policy ([`crate::ComponentSpec::with_restart`]).
    restart: Option<RestartPolicy>,
    /// This component's slice of the application's fault-injection plan
    /// (`None` — the overwhelmingly common case — costs one branch).
    faults: Option<ComponentFaults>,
    /// Overload response ([`crate::ComponentSpec::with_overload`]):
    /// ingress shedding or egress backpressure enforced by this runtime.
    overload: Option<OverloadPolicy>,
}

impl<T: Transport> ComponentRuntime<T> {
    /// Runtime for one component. `required` is the component's declared
    /// data required interfaces ([`crate::ComponentSpec::required`]);
    /// `engine` answers introspection over the component's shared stats.
    pub fn new(
        name: impl Into<String>,
        required: Vec<String>,
        transport: T,
        engine: ObsEngine,
        observe: bool,
        trace: Option<Box<dyn TraceSink>>,
    ) -> Self {
        let stats = Arc::clone(engine.stats());
        ComponentRuntime {
            name: name.into(),
            required,
            transport,
            stats,
            engine,
            observe,
            trace,
            restart: None,
            faults: None,
            overload: None,
        }
    }

    /// The component's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attach the component's restart policy (backends thread
    /// [`crate::ComponentSpec::restart`] through here at deployment).
    pub fn set_restart_policy(&mut self, policy: Option<RestartPolicy>) {
        self.restart = policy;
    }

    /// Extract this component's slice of the application's
    /// fault-injection plan (backends thread
    /// [`crate::AppSpec::faults`](crate::AppSpec) through here).
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.faults = plan.for_component(&self.name);
    }

    /// Attach the component's overload policy (backends thread
    /// [`crate::ComponentSpec::overload`] through here at deployment).
    pub fn set_overload_policy(&mut self, policy: Option<OverloadPolicy>) {
        self.overload = policy;
    }

    /// The underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    fn emit(&self, ts_ns: u64, kind: TraceEventKind, a: u64, b: u64) {
        if let Some(sink) = &self.trace {
            sink.emit(ts_ns, kind, a, b);
        }
    }

    /// Timestamp for trace bracketing: 0 when tracing is off, so hot
    /// send/receive paths skip the platform clock read entirely (on the
    /// SMP backend each read is a real `clock_gettime`).
    fn trace_now(&self) -> u64 {
        if self.trace.is_some() {
            self.transport.now_ns()
        } else {
            0
        }
    }

    /// Drain and answer pending observation requests (non-blocking).
    /// Called at every communication point and from the quiescent loop,
    /// so an observer can query a component that is blocked in `recv` or
    /// long since finished.
    pub fn service_introspection(&mut self) {
        if !self.observe || !self.transport.has_inbox(INTROSPECTION) {
            return;
        }
        while let Some(msg) = self.transport.poll_obs() {
            let Message::ObsRequest { from: _, request } = msg else {
                continue; // stray traffic on the observation inbox
            };
            self.refresh_queued_gauge();
            let now = self.transport.now_ns();
            let mut reply = self.engine.answer(request, now);
            self.transport.refine_reply(&mut reply);
            if self.transport.has_route(INTROSPECTION) {
                self.transport.push(
                    INTROSPECTION,
                    Message::ObsReply {
                        from: self.name.clone(),
                        reply: Box::new(reply),
                    },
                );
            }
            // With no observer connected the reply is dropped: nobody is
            // listening on the introspection required interface.
            self.emit(now, TraceEventKind::ObsServed, 1, 0);
        }
    }

    fn refresh_queued_gauge(&self) {
        self.stats.set_queued_bytes(self.transport.queued_bytes());
        self.stats
            .set_queued_messages(self.transport.queued_messages());
    }

    /// Run the behavior under this runtime's [`Ctx`]: lifecycle marks,
    /// trace bracketing, panic containment, and a final gauge refresh.
    /// A panic inside the behavior is caught and attributed as
    /// [`EmberaError::BehaviorPanic`] — it never unwinds into the
    /// backend's execution-flow machinery.
    pub fn run_behavior(&mut self, behavior: &mut dyn Behavior) -> Result<(), EmberaError> {
        self.stats.mark_started(self.transport.now_ns());
        self.emit(self.transport.now_ns(), TraceEventKind::BehaviorStart, 0, 0);
        let outcome = {
            let mut ctx = RuntimeCtx { rt: self };
            catch_unwind(AssertUnwindSafe(|| behavior.run(&mut ctx)))
        };
        let result = match outcome {
            Ok(result) => result,
            Err(payload) => Err(EmberaError::BehaviorPanic {
                component: self.name.clone(),
                payload: panic_payload_string(payload.as_ref()),
            }),
        };
        if matches!(result, Err(EmberaError::BehaviorPanic { .. })) {
            self.emit(self.transport.now_ns(), TraceEventKind::BehaviorPanic, 0, 0);
        }
        self.emit(
            self.transport.now_ns(),
            TraceEventKind::BehaviorEnd,
            u64::from(result.is_err()),
            0,
        );
        self.stats.mark_finished(self.transport.now_ns());
        if matches!(&result, Err(e) if !matches!(e, EmberaError::Terminated)) {
            self.stats.mark_faulted();
        }
        self.refresh_queued_gauge();
        result
    }

    /// Quiescent observation service: after its behavior returns, a
    /// component keeps answering introspection requests until the whole
    /// application terminates (paper §4.2 — finished components remain
    /// observable).
    pub fn serve_quiescent(&mut self) {
        while !self.transport.is_shutdown() {
            self.service_introspection();
            // Re-check before parking: a shutdown signalled while we were
            // serving must not be slept through (on event-driven backends
            // the wakeup it sent is consumed by the check above).
            if self.transport.is_shutdown() {
                break;
            }
            if !self.transport.park_quiescent() {
                break;
            }
        }
    }

    /// Full execution-flow body: behavior (re-run under the restart
    /// policy, if any), termination accounting, quiescent observation
    /// service, exit hook. This is what a backend runs in the
    /// component's thread/task/turn.
    pub fn run_to_completion(mut self, mut behavior: Box<dyn Behavior>) {
        let mut restarts: u32 = 0;
        let result = loop {
            let result = self.run_behavior(behavior.as_mut());
            let Err(e) = &result else { break result };
            // `Terminated` is cooperative shutdown, not a fault; and once
            // the application is going down a re-run could only drain out
            // again.
            let restartable =
                !matches!(e, EmberaError::Terminated) && !self.transport.is_shutdown();
            match self.restart {
                Some(policy) if restartable && restarts < policy.max_restarts => {
                    restarts += 1;
                    self.stats.mark_restarting();
                    self.emit(
                        self.transport.now_ns(),
                        TraceEventKind::Restart,
                        u64::from(restarts),
                        policy.backoff_ns,
                    );
                    if policy.drain_mailboxes {
                        self.transport.drain_inboxes();
                    }
                    if policy.backoff_ns > 0 {
                        self.transport.delay(policy.backoff_ns);
                    }
                }
                _ => break result,
            }
        };
        match (result.err(), self.restart) {
            // Budget exhausted under OneForOne: the failure is recorded
            // but stays contained — no fail-fast application shutdown.
            (Some(e), Some(policy))
                if policy.escalation == Escalation::OneForOne
                    && !matches!(e, EmberaError::Terminated) =>
            {
                self.transport.behavior_finished_contained(e);
            }
            (err, _) => self.transport.behavior_finished(err),
        }
        self.serve_quiescent();
        self.transport.on_exit();
    }

    /// Shared receive loop: service introspection, poll the inbox, honor
    /// deadline and shutdown, park. `Ok(None)` means the deadline passed
    /// (or shutdown ended a timed wait) without a message.
    fn recv_inner(
        &mut self,
        provided: &str,
        deadline_ns: Option<u64>,
    ) -> Result<Option<Message>, EmberaError> {
        if !self.transport.has_inbox(provided) {
            return Err(EmberaError::UnknownInterface {
                component: self.name.clone(),
                interface: provided.to_string(),
            });
        }
        let t0 = self.trace_now();
        // Health: flag the component Blocked only once it actually parks,
        // and clear the flag on every exit path.
        let mut parked = false;
        loop {
            self.service_introspection();
            if let Some((msg, cost)) = self.transport.try_pop(provided) {
                if parked {
                    self.stats.set_blocked(false);
                    parked = false;
                }
                // Overload ingress enforcement: shed the popped message
                // (never recorded as a receive — sends = receives + shed
                // in the rollup) and keep draining. Shed decisions are a
                // pure function of queue depth / message deadline against
                // the platform clock, so they are bit-for-bit
                // reproducible on the deterministic inproc backend.
                if msg.is_data() {
                    if let Some(policy) = self.overload {
                        match policy.kind {
                            OverloadKind::DropOldest => {
                                // Depth including the popped message
                                // exceeds the bound: this message is the
                                // oldest — shed it, keep the newest.
                                if self.transport.inbox_depth(provided) >= policy.max_queue {
                                    self.stats.record_shed();
                                    self.stats.mark_progress();
                                    self.emit(
                                        self.trace_now(),
                                        TraceEventKind::Shed,
                                        0,
                                        msg.data_len() as u64,
                                    );
                                    continue;
                                }
                            }
                            OverloadKind::DeadlineDrop => {
                                if let Some(deadline) = msg.deadline_ns() {
                                    if self.transport.now_ns() >= deadline {
                                        self.stats.record_expired();
                                        self.stats.mark_progress();
                                        self.emit(
                                            self.trace_now(),
                                            TraceEventKind::Shed,
                                            1,
                                            msg.data_len() as u64,
                                        );
                                        continue;
                                    }
                                }
                            }
                            OverloadKind::Block => {} // egress-side policy
                        }
                    }
                }
                if msg.is_data() && self.observe {
                    self.stats
                        .record_receive(provided, msg.data_len() as u64, cost);
                    self.stats.mark_progress();
                }
                let t1 = self.trace_now();
                self.emit(
                    t1,
                    TraceEventKind::Recv,
                    msg.data_len() as u64,
                    t1.saturating_sub(t0),
                );
                // Fault injection: panic the behavior at data-receive
                // iteration k — after the pop, so the message is consumed
                // and lost exactly as in a real mid-work panic.
                if msg.is_data() {
                    if let Some(faults) = self.faults.as_mut() {
                        if let Some(k) = faults.on_recv() {
                            std::panic::panic_any(format!(
                                "injected fault: panic at receive iteration {k}"
                            ));
                        }
                    }
                }
                return Ok(Some(msg));
            }
            if let Some(d) = deadline_ns {
                if self.transport.now_ns() >= d {
                    if parked {
                        self.stats.set_blocked(false);
                    }
                    return Ok(None);
                }
            }
            if self.transport.is_shutdown() {
                // A timed wait reports the timeout path; a blocking wait
                // becomes `Terminated` in `recv_message`.
                if parked {
                    self.stats.set_blocked(false);
                }
                return Ok(None);
            }
            if self.observe && !parked {
                parked = true;
                self.stats.set_blocked(true);
            }
            self.transport.park_recv(provided, deadline_ns);
        }
    }
}

/// Deterministically corrupt a data message: flip the first payload
/// byte. Empty payloads pass through unchanged (nothing to corrupt).
fn corrupt_data(msg: Message) -> Message {
    match msg {
        Message::Data(data) if !data.is_empty() => {
            let mut bytes = data.to_vec();
            bytes[0] ^= 0xFF;
            Message::Data(bytes.into())
        }
        Message::Deadlined {
            payload,
            deadline_ns,
        } if !payload.is_empty() => {
            let mut bytes = payload.to_vec();
            bytes[0] ^= 0xFF;
            Message::Deadlined {
                payload: bytes.into(),
                deadline_ns,
            }
        }
        other => other,
    }
}

/// Render a caught panic payload for [`EmberaError::BehaviorPanic`].
fn panic_payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::new()
    }
}

/// The one true [`Ctx`] implementation, handed to behaviors on every
/// backend.
struct RuntimeCtx<'a, T: Transport> {
    rt: &'a mut ComponentRuntime<T>,
}

impl<T: Transport> Ctx for RuntimeCtx<'_, T> {
    fn component(&self) -> &str {
        &self.rt.name
    }

    fn send_message(&mut self, required: &str, msg: Message) -> Result<(), EmberaError> {
        let rt = &mut *self.rt;
        if !rt.transport.has_route(required) {
            if required == INTROSPECTION {
                return Ok(()); // no observer attached: drop silently
            }
            return Err(if rt.required.iter().any(|r| r == required) {
                EmberaError::Disconnected {
                    component: rt.name.clone(),
                    interface: required.to_string(),
                }
            } else {
                EmberaError::UnknownInterface {
                    component: rt.name.clone(),
                    interface: required.to_string(),
                }
            });
        }
        let is_data = msg.is_data();
        let bytes = msg.data_len() as u64;
        let mut msg = msg;
        // Fault injection on outgoing data messages.
        if is_data {
            if let Some(faults) = rt.faults.as_mut() {
                match faults.on_send(required) {
                    Some(FaultAction::Drop) => {
                        rt.emit(rt.trace_now(), TraceEventKind::FaultInjected, 0, bytes);
                        rt.service_introspection();
                        return Ok(()); // never reaches the transport
                    }
                    Some(FaultAction::Corrupt) => {
                        rt.emit(rt.trace_now(), TraceEventKind::FaultInjected, 1, bytes);
                        msg = corrupt_data(msg);
                    }
                    Some(FaultAction::Delay(ns)) => {
                        rt.emit(rt.trace_now(), TraceEventKind::FaultInjected, 2, bytes);
                        rt.transport.delay(ns);
                    }
                    None => {}
                }
            }
        }
        // Overload egress backpressure: a Block policy bounds every
        // destination mailbox this component sends into. Only effective
        // on backends that can observe peer queue depth (`route_depth`);
        // the rest keep the historical unbounded behavior.
        if is_data {
            if let Some(policy) = rt.overload {
                if policy.kind == OverloadKind::Block {
                    while !rt.transport.is_shutdown() {
                        match rt.transport.route_depth(required) {
                            Some(depth) if depth >= policy.max_queue => {
                                rt.service_introspection();
                                rt.transport.delay(policy.poll_ns);
                            }
                            _ => break,
                        }
                    }
                }
            }
        }
        let t0 = rt.trace_now();
        rt.emit(t0, TraceEventKind::SendStart, bytes, 0);
        let cost = rt.transport.push(required, msg);
        if is_data && rt.observe {
            rt.stats.record_send(required, bytes, cost);
            rt.stats.mark_progress();
        }
        let t1 = rt.trace_now();
        rt.emit(t1, TraceEventKind::SendEnd, bytes, t1.saturating_sub(t0));
        rt.service_introspection();
        Ok(())
    }

    fn recv_message(&mut self, provided: &str) -> Result<Message, EmberaError> {
        match self.rt.recv_inner(provided, None)? {
            Some(m) => Ok(m),
            None => Err(EmberaError::Terminated),
        }
    }

    fn recv_message_timeout(
        &mut self,
        provided: &str,
        timeout_ns: u64,
    ) -> Result<Option<Message>, EmberaError> {
        let deadline = self.rt.transport.now_ns().saturating_add(timeout_ns);
        self.rt.recv_inner(provided, Some(deadline))
    }

    fn compute(&mut self, work: Work) {
        let t0 = self.rt.trace_now();
        self.rt.transport.compute(work);
        if self.rt.observe {
            self.rt.stats.mark_progress();
        }
        let t1 = self.rt.trace_now();
        self.rt
            .emit(t1, TraceEventKind::Compute, work.ops, t1.saturating_sub(t0));
    }

    fn now_ns(&self) -> u64 {
        self.rt.transport.now_ns()
    }

    fn should_stop(&self) -> bool {
        self.rt.transport.is_shutdown()
    }

    fn payload_pool(&self) -> Option<crate::pool::BufferPool> {
        self.rt.transport.payload_pool().cloned()
    }

    fn route_depth(&self, required: &str) -> Option<u64> {
        self.rt.transport.route_depth(required)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::behavior_fn;
    use bytes::Bytes;
    use std::collections::{HashMap, VecDeque};

    /// A minimal loopback transport: a route delivers into this
    /// component's own inbox of the same name unless remapped through
    /// `route_to`. Time is a counter bumped by every operation.
    #[derive(Default)]
    struct Loopback {
        inboxes: HashMap<String, VecDeque<Message>>,
        routes: Vec<String>,
        route_to: HashMap<String, String>,
        clock: u64,
        shutdown: bool,
        finished: Arc<parking_lot::Mutex<Option<Option<EmberaError>>>>,
    }

    impl Transport for Loopback {
        fn now_ns(&self) -> u64 {
            self.clock
        }
        fn is_shutdown(&self) -> bool {
            self.shutdown
        }
        fn has_route(&self, required: &str) -> bool {
            self.routes.iter().any(|r| r == required)
        }
        fn has_inbox(&self, provided: &str) -> bool {
            self.inboxes.contains_key(provided)
        }
        fn push(&mut self, required: &str, msg: Message) -> u64 {
            self.clock += 10;
            let target = self
                .route_to
                .get(required)
                .cloned()
                .unwrap_or_else(|| required.to_string());
            self.inboxes.entry(target).or_default().push_back(msg);
            10
        }
        fn try_pop(&mut self, provided: &str) -> Option<(Message, u64)> {
            let msg = self.inboxes.get_mut(provided)?.pop_front()?;
            self.clock += 5;
            Some((msg, 5))
        }
        fn queued_bytes(&self) -> u64 {
            self.inboxes
                .values()
                .flatten()
                .map(|m| m.data_len() as u64)
                .sum()
        }
        fn park_recv(&mut self, _provided: &str, deadline_ns: Option<u64>) {
            self.clock = match deadline_ns {
                Some(d) => self.clock.max(d),
                None => {
                    self.shutdown = true; // nothing else can wake us
                    self.clock + 1
                }
            };
        }
        fn park_quiescent(&mut self) -> bool {
            self.shutdown = true;
            true
        }
        fn inbox_depth(&self, provided: &str) -> u64 {
            self.inboxes
                .get(provided)
                .map(|q| q.len() as u64)
                .unwrap_or(0)
        }
        fn compute(&mut self, work: Work) {
            self.clock += work.ops;
        }
        fn behavior_finished(&mut self, error: Option<EmberaError>) {
            *self.finished.lock() = Some(error);
        }
    }

    fn runtime_with(transport: Loopback, required: &[&str]) -> ComponentRuntime<Loopback> {
        let declared: Vec<String> = transport.inboxes.keys().cloned().collect();
        let stats = Arc::new(ComponentStats::new(
            "c",
            &declared,
            &required.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        ));
        ComponentRuntime::new(
            "c",
            required.iter().map(|s| s.to_string()).collect(),
            transport,
            ObsEngine::new(stats),
            true,
            None,
        )
    }

    #[test]
    fn send_records_middleware_and_app_stats() {
        let mut t = Loopback::default();
        t.routes.push("out".into());
        t.inboxes.insert("out".into(), VecDeque::new());
        let mut rt = runtime_with(t, &["out"]);
        let mut b = behavior_fn(|ctx| {
            ctx.send("out", Bytes::from_static(b"hello"))?;
            assert_eq!(ctx.recv("out")?.as_ref(), b"hello");
            Ok(())
        });
        rt.run_behavior(&mut b).unwrap();
        let report = rt.engine.full_report(rt.transport.now_ns());
        assert_eq!(report.app.total_sends, 1);
        assert_eq!(report.app.total_receives, 1);
        assert_eq!(report.middleware.send.total_ns, 10);
        assert_eq!(report.middleware.recv.total_ns, 5);
    }

    #[test]
    fn error_contract_unknown_vs_disconnected() {
        let mut rt = runtime_with(Loopback::default(), &["declared"]);
        let mut b = behavior_fn(|ctx| {
            match ctx.send("declared", Bytes::new()) {
                Err(EmberaError::Disconnected { interface, .. }) => {
                    assert_eq!(interface, "declared");
                }
                other => panic!("declared-but-unbound must be Disconnected, got {other:?}"),
            }
            match ctx.send("ghost", Bytes::new()) {
                Err(EmberaError::UnknownInterface { interface, .. }) => {
                    assert_eq!(interface, "ghost");
                }
                other => panic!("undeclared must be UnknownInterface, got {other:?}"),
            }
            // Unbound introspection is silently dropped.
            ctx.send_message(
                INTROSPECTION,
                Message::ObsRequest {
                    from: "c".into(),
                    request: crate::ObsRequest::Full,
                },
            )?;
            match ctx.recv("nowhere") {
                Err(EmberaError::UnknownInterface { .. }) => Ok(()),
                other => panic!("recv on undeclared inbox must fail, got {other:?}"),
            }
        });
        rt.run_behavior(&mut b).unwrap();
    }

    #[test]
    fn blocking_recv_maps_shutdown_to_terminated() {
        let mut t = Loopback::default();
        t.inboxes.insert("in".into(), VecDeque::new());
        let mut rt = runtime_with(t, &[]);
        let mut b = behavior_fn(|ctx| match ctx.recv("in") {
            Err(EmberaError::Terminated) => Ok(()),
            other => panic!("expected Terminated, got {other:?}"),
        });
        rt.run_behavior(&mut b).unwrap();
        // Timed receive reports the timeout path instead.
        let mut b2 = behavior_fn(|ctx| {
            assert!(ctx.recv_timeout("in", 100)?.is_none());
            Ok(())
        });
        rt.run_behavior(&mut b2).unwrap();
    }

    #[test]
    fn run_to_completion_reports_error_and_serves_quiescent() {
        let mut t = Loopback::default();
        t.inboxes.insert(INTROSPECTION.to_string(), VecDeque::new());
        let finished = Arc::clone(&t.finished);
        let rt = runtime_with(t, &[]);
        rt.run_to_completion(Box::new(behavior_fn(|_| {
            Err(EmberaError::Platform("boom".into()))
        })));
        // The transport's termination hook saw the behavior's error, and
        // the quiescent loop exited (Loopback's park_quiescent shuts the
        // app down, or run_to_completion would never return).
        let seen = finished.lock().take();
        match seen {
            Some(Some(EmberaError::Platform(msg))) => assert_eq!(msg, "boom"),
            other => panic!("behavior_finished not called with error: {other:?}"),
        }
    }

    #[test]
    fn panic_is_contained_and_attributed() {
        let t = Loopback::default();
        let finished = Arc::clone(&t.finished);
        let rt = runtime_with(t, &[]);
        rt.run_to_completion(Box::new(behavior_fn(|_| panic!("kaboom"))));
        let seen = finished.lock().take();
        match seen {
            Some(Some(EmberaError::BehaviorPanic { component, payload })) => {
                assert_eq!(component, "c");
                assert!(payload.contains("kaboom"), "{payload}");
            }
            other => panic!("expected contained panic, got {other:?}"),
        }
    }

    #[test]
    fn restart_policy_reruns_failed_behavior() {
        let t = Loopback::default();
        let finished = Arc::clone(&t.finished);
        let mut rt = runtime_with(t, &[]);
        rt.set_restart_policy(Some(RestartPolicy {
            max_restarts: 2,
            ..Default::default()
        }));
        let stats = Arc::clone(&rt.stats);
        let mut attempts = 0u32;
        rt.run_to_completion(Box::new(behavior_fn(move |_ctx| {
            attempts += 1;
            if attempts < 2 {
                Err(EmberaError::Platform("flaky".into()))
            } else {
                Ok(())
            }
        })));
        assert_eq!(
            finished.lock().take(),
            Some(None),
            "second attempt succeeded, so the app sees no error"
        );
        assert_eq!(stats.restarts(), 1, "restarted exactly once");
        assert_eq!(
            stats.health(0).state,
            crate::observe::report::HealthState::Finished
        );
    }

    #[test]
    fn exhausted_one_for_one_budget_stays_contained() {
        let t = Loopback::default();
        let finished = Arc::clone(&t.finished);
        let mut rt = runtime_with(t, &[]);
        rt.set_restart_policy(Some(RestartPolicy {
            max_restarts: 1,
            escalation: Escalation::OneForOne,
            ..Default::default()
        }));
        let stats = Arc::clone(&rt.stats);
        rt.run_to_completion(Box::new(behavior_fn(|_| {
            Err(EmberaError::Platform("always".into()))
        })));
        // Loopback has no contained override, so the default forwards to
        // behavior_finished — the error is still recorded.
        let seen = finished.lock().take();
        match seen {
            Some(Some(EmberaError::Platform(msg))) => assert_eq!(msg, "always"),
            other => panic!("{other:?}"),
        }
        assert_eq!(stats.restarts(), 1);
        assert_eq!(
            stats.health(0).state,
            crate::observe::report::HealthState::Faulted
        );
    }

    #[test]
    fn fault_plan_drops_and_corrupts_deterministically() {
        let mut t = Loopback::default();
        t.routes.push("out".into());
        t.inboxes.insert("out".into(), VecDeque::new());
        let mut rt = runtime_with(t, &["out"]);
        let plan = FaultPlan::new()
            .drop_message("c", "out", 1)
            .corrupt_message("c", "out", 2);
        rt.set_fault_plan(&plan);
        let mut b = behavior_fn(|ctx| {
            for i in 0..3u8 {
                ctx.send("out", Bytes::from(vec![i, 0x55]))?;
            }
            Ok(())
        });
        rt.run_behavior(&mut b).unwrap();
        // The dropped message never reached the transport and is not
        // counted as a send.
        assert_eq!(rt.engine.full_report(0).app.total_sends, 2);
        let payloads: Vec<Vec<u8>> = rt.transport.inboxes["out"]
            .iter()
            .map(|m| match m {
                Message::Data(d) => d.to_vec(),
                _ => Vec::new(),
            })
            .collect();
        assert_eq!(payloads, vec![vec![0, 0x55], vec![2 ^ 0xFF, 0x55]]);
    }

    #[test]
    fn fault_plan_panics_on_receive_iteration() {
        let mut t = Loopback::default();
        t.routes.push("out".into());
        t.inboxes.insert("out".into(), VecDeque::new());
        let finished = Arc::clone(&t.finished);
        let mut rt = runtime_with(t, &["out"]);
        rt.set_fault_plan(&FaultPlan::new().panic_on_iteration("c", 1));
        rt.run_to_completion(Box::new(behavior_fn(|ctx| {
            for _ in 0..3 {
                ctx.send("out", Bytes::from_static(b"m"))?;
            }
            for _ in 0..3 {
                ctx.recv("out")?;
            }
            Ok(())
        })));
        let seen = finished.lock().take();
        match seen {
            Some(Some(EmberaError::BehaviorPanic { payload, .. })) => {
                assert!(payload.contains("iteration 1"), "{payload}");
            }
            other => panic!("expected injected panic, got {other:?}"),
        }
    }

    #[test]
    fn drop_oldest_sheds_at_ingress() {
        let mut t = Loopback::default();
        t.routes.push("out".into());
        t.inboxes.insert("out".into(), VecDeque::new());
        let mut rt = runtime_with(t, &["out"]);
        rt.set_overload_policy(Some(crate::OverloadPolicy::drop_oldest(2)));
        let stats = Arc::clone(&rt.stats);
        let mut b = behavior_fn(|ctx| {
            for i in 0..5u8 {
                ctx.send("out", Bytes::from(vec![i]))?;
            }
            // 5 queued against a bound of 2: the 3 oldest are shed, the
            // newest 2 delivered.
            assert_eq!(ctx.recv("out")?.as_ref(), &[3]);
            assert_eq!(ctx.recv("out")?.as_ref(), &[4]);
            Ok(())
        });
        rt.run_behavior(&mut b).unwrap();
        assert_eq!(stats.shed_messages(), 3);
        assert_eq!(stats.expired_messages(), 0);
        let app = rt.engine.full_report(0).app;
        assert_eq!(app.total_sends, 5);
        assert_eq!(app.total_receives, 2, "shed messages are not receives");
        assert_eq!(stats.health(0).shed_messages, 3);
    }

    #[test]
    fn deadline_drop_sheds_expired_envelopes() {
        let mut t = Loopback::default();
        t.routes.push("out".into());
        t.inboxes.insert("out".into(), VecDeque::new());
        let mut rt = runtime_with(t, &["out"]);
        rt.set_overload_policy(Some(crate::OverloadPolicy::deadline_drop()));
        let stats = Arc::clone(&rt.stats);
        let mut b = behavior_fn(|ctx| {
            // Loopback's clock advances on every send, so deadline 0 has
            // always expired by receive time.
            ctx.send_deadlined("out", Bytes::from_static(b"late"), 0)?;
            ctx.send_deadlined("out", Bytes::from_static(b"fresh"), u64::MAX)?;
            ctx.send("out", Bytes::from_static(b"plain"))?;
            assert_eq!(ctx.recv("out")?.as_ref(), b"fresh");
            assert_eq!(ctx.recv("out")?.as_ref(), b"plain");
            Ok(())
        });
        rt.run_behavior(&mut b).unwrap();
        assert_eq!(stats.expired_messages(), 1);
        assert_eq!(stats.shed_messages(), 0);
        assert_eq!(stats.health(0).expired_messages, 1);
    }

    #[test]
    fn block_policy_is_inert_without_route_depth() {
        // Loopback's route_depth is None (the default): a Block policy
        // must degrade to the historical unbounded send.
        let mut t = Loopback::default();
        t.routes.push("out".into());
        t.inboxes.insert("out".into(), VecDeque::new());
        let mut rt = runtime_with(t, &["out"]);
        rt.set_overload_policy(Some(crate::OverloadPolicy::block(1)));
        let mut b = behavior_fn(|ctx| {
            for i in 0..4u8 {
                ctx.send("out", Bytes::from(vec![i]))?;
            }
            for i in 0..4u8 {
                assert_eq!(ctx.recv("out")?.as_ref(), &[i]);
            }
            Ok(())
        });
        rt.run_behavior(&mut b).unwrap();
    }

    #[test]
    fn introspection_served_during_blocked_recv() {
        let mut t = Loopback::default();
        t.inboxes.insert("in".into(), VecDeque::new());
        t.inboxes.insert(INTROSPECTION.to_string(), VecDeque::new());
        t.inboxes.get_mut(INTROSPECTION).unwrap().push_back(Message::ObsRequest {
            from: "tester".into(),
            request: crate::ObsRequest::AppStats,
        });
        t.routes.push(INTROSPECTION.to_string());
        t.route_to.insert(INTROSPECTION.to_string(), "replies".into());
        t.inboxes.insert("replies".into(), VecDeque::new());
        let mut rt = runtime_with(t, &[]);
        let mut b = behavior_fn(|ctx| {
            let _ = ctx.recv_timeout("in", 50)?;
            Ok(())
        });
        rt.run_behavior(&mut b).unwrap();
        // The request queued before the recv must have been answered
        // exactly once, with the reply routed out through the
        // introspection required interface.
        let replies = rt
            .transport
            .inboxes
            .get("replies")
            .unwrap()
            .iter()
            .filter(|m| matches!(m, Message::ObsReply { .. }))
            .count();
        assert_eq!(replies, 1);
    }
}
