//! Component specifications: name, interfaces, behavior, placement.

use std::sync::Arc;

use crate::behavior::Behavior;
use crate::observe::custom::MetricSource;
use crate::overload::OverloadPolicy;
use crate::supervise::RestartPolicy;

/// Name of the implicit observation interface pair created "by default
/// on any EMBera component" (paper §4.2). Each component has both an
/// `introspection` provided interface (receives observation requests)
/// and an `introspection` required interface (returns the requested
/// information).
pub const INTROSPECTION: &str = "introspection";

/// Where a component should be deployed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The platform chooses (SMP: any core; MPSoC backend rejects this —
    /// every component must name its CPU, as in the paper's one binary
    /// per CPU deployment, §5.1).
    Any,
    /// Pin to a specific CPU.
    Cpu(usize),
}

/// Specification of one component: identity, declared data interfaces,
/// behavior, stack size and placement.
pub struct ComponentSpec {
    /// Unique component name.
    pub name: String,
    /// Data provided interfaces (mailboxes), in declaration order.
    pub provided: Vec<String>,
    /// Data required interfaces (connection endpoints), in declaration
    /// order.
    pub required: Vec<String>,
    /// The component's code.
    pub behavior: Box<dyn Behavior>,
    /// Stack size of the component's execution flow, bytes. Default is
    /// 8 MiB, matching the Linux thread stack the paper measured
    /// ("the memory values obtained for Linux thread stack correspond to
    /// 8 392 kb", §4.4 — i.e. the glibc default).
    pub stack_bytes: u64,
    /// Deployment placement.
    pub placement: Placement,
    /// Application-registered observation functions (paper §6
    /// extension); sampled by the runtime on `Custom`/`Full` requests.
    pub metrics: Vec<Arc<dyn MetricSource>>,
    /// Supervision: how the runtime reacts when the behavior fails
    /// (error or contained panic). `None` keeps the historical
    /// fail-fast semantics.
    pub restart: Option<RestartPolicy>,
    /// Overload response: bounded-queue backpressure or load shedding
    /// enforced by the runtime at this component's ingress/egress.
    /// `None` keeps the historical unbounded semantics.
    pub overload: Option<OverloadPolicy>,
}

impl ComponentSpec {
    /// A component named `name` running `behavior`, with no data
    /// interfaces yet and default stack/placement.
    pub fn new(name: impl Into<String>, behavior: impl Behavior + 'static) -> Self {
        ComponentSpec {
            name: name.into(),
            provided: Vec::new(),
            required: Vec::new(),
            behavior: Box::new(behavior),
            stack_bytes: 8 * 1024 * 1024,
            placement: Placement::Any,
            metrics: Vec::new(),
            restart: None,
            overload: None,
        }
    }

    /// Declare a data provided interface.
    pub fn with_provided(mut self, iface: impl Into<String>) -> Self {
        self.provided.push(iface.into());
        self
    }

    /// Declare a data required interface.
    pub fn with_required(mut self, iface: impl Into<String>) -> Self {
        self.required.push(iface.into());
        self
    }

    /// Set the stack size.
    pub fn with_stack_bytes(mut self, bytes: u64) -> Self {
        self.stack_bytes = bytes;
        self
    }

    /// Pin to a CPU.
    pub fn on_cpu(mut self, cpu: usize) -> Self {
        self.placement = Placement::Cpu(cpu);
        self
    }

    /// Register an observation function on this component.
    pub fn with_metric(mut self, metric: Arc<dyn MetricSource>) -> Self {
        self.metrics.push(metric);
        self
    }

    /// Supervise this component with a restart policy.
    pub fn with_restart(mut self, policy: RestartPolicy) -> Self {
        self.restart = Some(policy);
        self
    }

    /// Bound this component's queues with an overload policy.
    pub fn with_overload(mut self, policy: OverloadPolicy) -> Self {
        self.overload = Some(policy);
        self
    }

    /// Does the component declare this provided interface (including the
    /// implicit introspection interface)?
    pub fn has_provided(&self, iface: &str) -> bool {
        iface == INTROSPECTION || self.provided.iter().any(|p| p == iface)
    }

    /// Does the component declare this required interface (including the
    /// implicit introspection interface)?
    pub fn has_required(&self, iface: &str) -> bool {
        iface == INTROSPECTION || self.required.iter().any(|r| r == iface)
    }
}

impl std::fmt::Debug for ComponentSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentSpec")
            .field("name", &self.name)
            .field("provided", &self.provided)
            .field("required", &self.required)
            .field("stack_bytes", &self.stack_bytes)
            .field("placement", &self.placement)
            .field("restart", &self.restart)
            .field("overload", &self.overload)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::behavior_fn;

    fn spec() -> ComponentSpec {
        ComponentSpec::new("IDCT_1", behavior_fn(|_ctx| Ok(())))
            .with_provided("_fetchIdct1")
            .with_required("idctReorder")
    }

    #[test]
    fn builder_accumulates_interfaces() {
        let s = spec();
        assert_eq!(s.provided, vec!["_fetchIdct1"]);
        assert_eq!(s.required, vec!["idctReorder"]);
        assert_eq!(s.stack_bytes, 8 * 1024 * 1024);
        assert_eq!(s.placement, Placement::Any);
    }

    #[test]
    fn introspection_is_implicit_on_both_sides() {
        let s = spec();
        assert!(s.has_provided(INTROSPECTION));
        assert!(s.has_required(INTROSPECTION));
        assert!(s.has_provided("_fetchIdct1"));
        assert!(!s.has_provided("idctReorder"));
        assert!(s.has_required("idctReorder"));
        assert!(!s.has_required("_fetchIdct1"));
    }

    #[test]
    fn placement_and_stack_override() {
        let s = spec().on_cpu(2).with_stack_bytes(16 * 1024);
        assert_eq!(s.placement, Placement::Cpu(2));
        assert_eq!(s.stack_bytes, 16 * 1024);
    }
}
