//! Messages exchanged over EMBera connections.

use bytes::Bytes;

use crate::observe::protocol::{ObsReply, ObsRequest};

/// A message traveling over a connection. Communication is "a simple one
/// way asynchronous message-oriented mechanism" (paper §4.1); data
/// payloads are opaque bytes. Observation traffic travels over the
/// dedicated `introspection` interfaces using the same mechanism.
#[derive(Debug, Clone)]
pub enum Message {
    /// Application payload. Cheap to clone ([`Bytes`] is reference
    /// counted).
    Data(Bytes),
    /// Application payload with a deadline riding the envelope: the
    /// absolute platform time (ns) by which downstream stages should
    /// have finished with it. Stages may skip or shed work on expired
    /// messages instead of silently burning CPU (overload robustness).
    Deadlined {
        /// The payload, identical in role to [`Message::Data`].
        payload: Bytes,
        /// Absolute deadline in platform nanoseconds.
        deadline_ns: u64,
    },
    /// A request for observation information, carrying the requester's
    /// component name so the reply can be routed.
    ObsRequest {
        /// Name of the requesting component (usually the observer).
        from: String,
        /// What is being asked.
        request: ObsRequest,
    },
    /// A reply to an observation request.
    ObsReply {
        /// Name of the observed component.
        from: String,
        /// The requested information.
        reply: Box<ObsReply>,
    },
}

impl Message {
    /// Payload length for data messages; observation messages count as 0
    /// application bytes.
    pub fn data_len(&self) -> usize {
        match self {
            Message::Data(b) => b.len(),
            Message::Deadlined { payload, .. } => payload.len(),
            _ => 0,
        }
    }

    /// Is this an application data message?
    pub fn is_data(&self) -> bool {
        matches!(self, Message::Data(_) | Message::Deadlined { .. })
    }

    /// Absolute deadline riding the envelope, if any.
    pub fn deadline_ns(&self) -> Option<u64> {
        match self {
            Message::Deadlined { deadline_ns, .. } => Some(*deadline_ns),
            _ => None,
        }
    }

    /// The data payload, for both plain and deadlined data messages.
    pub fn payload(&self) -> Option<&Bytes> {
        match self {
            Message::Data(b) => Some(b),
            Message::Deadlined { payload, .. } => Some(payload),
            _ => None,
        }
    }

    /// Approximate wire size of the message in bytes, used by backends
    /// to charge transfer costs (observation messages are small control
    /// frames).
    pub fn wire_size(&self) -> usize {
        match self {
            Message::Data(b) => b.len(),
            Message::Deadlined { payload, .. } => payload.len() + 8,
            Message::ObsRequest { .. } => 64,
            Message::ObsReply { .. } => 512,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_len_reflects_payload() {
        let m = Message::Data(Bytes::from_static(b"abcd"));
        assert_eq!(m.data_len(), 4);
        assert!(m.is_data());
        assert_eq!(m.wire_size(), 4);
    }

    #[test]
    fn deadlined_counts_as_data() {
        let m = Message::Deadlined {
            payload: Bytes::from_static(b"abcd"),
            deadline_ns: 77,
        };
        assert_eq!(m.data_len(), 4);
        assert!(m.is_data());
        assert_eq!(m.deadline_ns(), Some(77));
        assert_eq!(m.payload().map(|b| b.len()), Some(4));
        assert_eq!(m.wire_size(), 12);
    }

    #[test]
    fn observation_messages_are_not_data() {
        let m = Message::ObsRequest {
            from: "observer".into(),
            request: ObsRequest::Full,
        };
        assert_eq!(m.data_len(), 0);
        assert!(!m.is_data());
        assert!(m.wire_size() > 0);
    }
}
