//! Property-based tests of the observation statistics invariants.

use proptest::prelude::*;

use embera::ComponentStats;

#[derive(Debug, Clone)]
enum Op {
    Send { iface: usize, bytes: u64, dur: u64 },
    Recv { iface: usize, bytes: u64, dur: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3, 0u64..1_000_000, 0u64..10_000)
            .prop_map(|(iface, bytes, dur)| Op::Send { iface, bytes, dur }),
        (0usize..3, 0u64..1_000_000, 0u64..10_000)
            .prop_map(|(iface, bytes, dur)| Op::Recv { iface, bytes, dur }),
    ]
}

proptest! {
    #[test]
    fn counters_and_timings_are_conserved(ops in prop::collection::vec(op_strategy(), 0..500)) {
        let ifaces = ["a".to_string(), "b".to_string(), "c".to_string()];
        let stats = ComponentStats::new("c", &ifaces[..2], &ifaces[2..]);
        let mut sends = 0u64;
        let mut recvs = 0u64;
        let mut bytes_sent = 0u64;
        let mut send_ns = 0u64;
        let mut max_send = 0u64;
        for op in &ops {
            match *op {
                Op::Send { iface, bytes, dur } => {
                    stats.record_send(&ifaces[iface], bytes, dur);
                    sends += 1;
                    bytes_sent += bytes;
                    send_ns += dur;
                    max_send = max_send.max(dur);
                }
                Op::Recv { iface, bytes, dur } => {
                    stats.record_receive(&ifaces[iface], bytes, dur);
                    recvs += 1;
                }
            }
        }
        let app = stats.app_stats();
        prop_assert_eq!(app.total_sends, sends);
        prop_assert_eq!(app.total_receives, recvs);
        // Per-interface counters sum to totals.
        let sum_s: u64 = app.interfaces.iter().map(|e| e.sends).sum();
        let sum_r: u64 = app.interfaces.iter().map(|e| e.receives).sum();
        prop_assert_eq!(sum_s, sends);
        prop_assert_eq!(sum_r, recvs);

        let mw = stats.middleware_stats();
        prop_assert_eq!(mw.send.count, sends);
        prop_assert_eq!(mw.send.total_ns, send_ns);
        prop_assert_eq!(mw.send.max_ns, max_send);
        prop_assert_eq!(mw.bytes_sent, bytes_sent);
        prop_assert!(mw.send.min_ns <= mw.send.max_ns);
        // Histogram buckets partition all sends.
        let bucket_total: u64 = mw.send_by_size.iter().map(|b| b.count).sum();
        prop_assert_eq!(bucket_total, sends);
        let bucket_ns: u64 = mw.send_by_size.iter().map(|b| b.total_ns).sum();
        prop_assert_eq!(bucket_ns, send_ns);
    }

    #[test]
    fn exec_time_is_consistent_for_any_timestamps(
        start in 0u64..1_000_000,
        run_for in 0u64..1_000_000,
        observe_after in 0u64..2_000_000,
    ) {
        let stats = ComponentStats::new("c", &[], &[]);
        stats.mark_started(start);
        let os_running = stats.os_stats(start + observe_after);
        prop_assert_eq!(os_running.exec_time_ns, observe_after);
        stats.mark_finished(start + run_for);
        let os_done = stats.os_stats(start + observe_after + 999);
        prop_assert_eq!(os_done.exec_time_ns, run_for);
    }
}
