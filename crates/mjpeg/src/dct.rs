//! 8×8 forward and inverse Discrete Cosine Transform (type-II / type-III),
//! separable implementation over `f32`.
//!
//! This is the kernel the paper's IDCT components execute (§3.2). The
//! implementation favours clarity and exactness over speed — the
//! *simulated* execution cost is supplied by work annotations, and on
//! the SMP backend the decode workload is tiny next to communication.

use std::f32::consts::PI;

/// Number of pixels in a block.
pub const BLOCK_SIZE: usize = 64;
/// Block edge length.
pub const N: usize = 8;

/// Precomputed cos((2x+1) u π / 16) table, `COS[x][u]`.
fn cos_table() -> &'static [[f32; N]; N] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f32; N]; N]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0.0f32; N]; N];
        for (x, row) in t.iter_mut().enumerate() {
            for (u, v) in row.iter_mut().enumerate() {
                *v = (((2 * x + 1) as f32) * (u as f32) * PI / 16.0).cos();
            }
        }
        t
    })
}

fn alpha(u: usize) -> f32 {
    if u == 0 {
        1.0 / (2.0f32).sqrt()
    } else {
        1.0
    }
}

/// Forward 2-D DCT of a level-shifted block (row-major, values typically
/// in [-128, 127]). Output coefficients in natural (row-major) order.
pub fn fdct(block: &[f32; BLOCK_SIZE]) -> [f32; BLOCK_SIZE] {
    let cos = cos_table();
    let mut out = [0.0f32; BLOCK_SIZE];
    // Rows then columns (separable).
    let mut tmp = [0.0f32; BLOCK_SIZE];
    for y in 0..N {
        for u in 0..N {
            let mut s = 0.0;
            for x in 0..N {
                s += block[y * N + x] * cos[x][u];
            }
            tmp[y * N + u] = s;
        }
    }
    for u in 0..N {
        for v in 0..N {
            let mut s = 0.0;
            for y in 0..N {
                s += tmp[y * N + u] * cos[y][v];
            }
            out[v * N + u] = 0.25 * alpha(u) * alpha(v) * s;
        }
    }
    out
}

/// Inverse 2-D DCT; returns the level-shifted spatial block.
pub fn idct(coeffs: &[f32; BLOCK_SIZE]) -> [f32; BLOCK_SIZE] {
    let cos = cos_table();
    let mut tmp = [0.0f32; BLOCK_SIZE];
    for v in 0..N {
        for x in 0..N {
            let mut s = 0.0;
            for u in 0..N {
                s += alpha(u) * coeffs[v * N + u] * cos[x][u];
            }
            tmp[v * N + x] = s;
        }
    }
    let mut out = [0.0f32; BLOCK_SIZE];
    for x in 0..N {
        for y in 0..N {
            let mut s = 0.0;
            for v in 0..N {
                s += alpha(v) * tmp[v * N + x] * cos[y][v];
            }
            out[y * N + x] = 0.25 * s;
        }
    }
    out
}

/// IDCT over integer (dequantized) coefficients, producing clamped u8
/// pixels (adds back the +128 level shift).
pub fn idct_to_pixels(coeffs: &[i32; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
    let mut f = [0.0f32; BLOCK_SIZE];
    for (dst, &src) in f.iter_mut().zip(coeffs.iter()) {
        *dst = src as f32;
    }
    let spatial = idct(&f);
    let mut out = [0u8; BLOCK_SIZE];
    for (dst, &v) in out.iter_mut().zip(spatial.iter()) {
        *dst = (v + 128.0).round().clamp(0.0, 255.0) as u8;
    }
    out
}

/// Level-shift u8 pixels to centered f32 for the forward transform.
pub fn pixels_to_centered(pixels: &[u8; BLOCK_SIZE]) -> [f32; BLOCK_SIZE] {
    let mut out = [0.0f32; BLOCK_SIZE];
    for (dst, &p) in out.iter_mut().zip(pixels.iter()) {
        *dst = p as f32 - 128.0;
    }
    out
}

// ---------------------------------------------------------------------
// Fast integer kernels (AAN: Arai, Agui, Nakajima 1988).
//
// The 1-D 8-point transform is factored so only 5 multiplications
// remain inside the butterfly network; the per-frequency output scales
// aan[u]·aan[v] are constant and get folded into the (de)quantization
// tables, so the hot loop is adds, subs and a handful of fixed-point
// multiplies. Arithmetic is i64 with AAN_FRAC_BITS fractional bits —
// wide enough that the only precision loss is the final rounding, which
// keeps the pixel output within ±1 of the exact float transform.
// ---------------------------------------------------------------------

/// Fractional bits used by the fixed-point AAN kernels and the folded
/// (de)quantization tables.
pub const AAN_FRAC_BITS: u32 = 12;

/// Which DCT kernel a decode/encode path runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DctKind {
    /// The exact separable float transform (the seed implementation,
    /// kept as the correctness oracle).
    #[default]
    ReferenceFloat,
    /// Fixed-point AAN butterflies with scales folded into quantization.
    FastAan,
    /// The AAN butterflies vectorized over i64 SIMD lanes
    /// ([`crate::simd`]); bit-exact with [`DctKind::FastAan`], falling
    /// back to it where no vector unit is available.
    FastSimd,
}

/// AAN per-frequency scale factors: `aan[0] = 1`, `aan[k] =
/// cos(kπ/16)·√2`. The 2-D transform's residual scale is
/// `aan[u]·aan[v]`, folded into quant tables by
/// [`crate::quant::fast_dequant_table`].
pub fn aan_scales() -> &'static [f64; N] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; N]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0f64; N];
        t[0] = 1.0;
        for (k, v) in t.iter_mut().enumerate().skip(1) {
            *v = (k as f64 * std::f64::consts::PI / 16.0).cos() * std::f64::consts::SQRT_2;
        }
        t
    })
}

// Butterfly constants at AAN_FRAC_BITS fractional bits.
const FIX_1_414213562: i64 = 5793; // √2
const FIX_1_847759065: i64 = 7568; // 2·cos(π/8)
const FIX_1_082392200: i64 = 4433; // √2·cos(3π/8)/cos... (c2−c6 path)
const FIX_2_613125930: i64 = 10703; // (c2+c6 path)
const FIX_0_707106781: i64 = 2896; // 1/√2
const FIX_0_382683433: i64 = 1568; // sin(π/8)
const FIX_0_541196100: i64 = 2217;
const FIX_1_306562965: i64 = 5352;

#[inline(always)]
fn fmul(a: i64, c: i64) -> i64 {
    (a * c + (1 << (AAN_FRAC_BITS - 1))) >> AAN_FRAC_BITS
}

/// One 1-D AAN inverse pass over 8 values at stride `stride`.
#[inline(always)]
fn idct_1d(data: &mut [i64; BLOCK_SIZE], base: usize, stride: usize) {
    let at = |i: usize| base + i * stride;

    // Even part.
    let tmp0 = data[at(0)];
    let tmp1 = data[at(2)];
    let tmp2 = data[at(4)];
    let tmp3 = data[at(6)];
    let tmp10 = tmp0 + tmp2;
    let tmp11 = tmp0 - tmp2;
    let tmp13 = tmp1 + tmp3;
    let tmp12 = fmul(tmp1 - tmp3, FIX_1_414213562) - tmp13;
    let e0 = tmp10 + tmp13;
    let e3 = tmp10 - tmp13;
    let e1 = tmp11 + tmp12;
    let e2 = tmp11 - tmp12;

    // Odd part.
    let tmp4 = data[at(1)];
    let tmp5 = data[at(3)];
    let tmp6 = data[at(5)];
    let tmp7 = data[at(7)];
    let z13 = tmp6 + tmp5;
    let z10 = tmp6 - tmp5;
    let z11 = tmp4 + tmp7;
    let z12 = tmp4 - tmp7;
    let o7 = z11 + z13;
    let t11 = fmul(z11 - z13, FIX_1_414213562);
    let z5 = fmul(z10 + z12, FIX_1_847759065);
    let t10 = fmul(z12, FIX_1_082392200) - z5;
    let t12 = z5 - fmul(z10, FIX_2_613125930);
    let o6 = t12 - o7;
    let o5 = t11 - o6;
    let o4 = t10 + o5;

    data[at(0)] = e0 + o7;
    data[at(7)] = e0 - o7;
    data[at(1)] = e1 + o6;
    data[at(6)] = e1 - o6;
    data[at(2)] = e2 + o5;
    data[at(5)] = e2 - o5;
    data[at(4)] = e3 + o4;
    data[at(3)] = e3 - o4;
}

/// Fast integer IDCT over coefficients that were dequantized with
/// [`crate::quant::fast_dequant_table`] (i.e. carry the AAN scales at
/// `2^AAN_FRAC_BITS`); returns clamped u8 pixels with the +128 level
/// shift restored. This is the production kernel of the pipeline's IDCT
/// components when [`DctKind::FastAan`] is selected.
pub fn idct_scaled_to_pixels(coeffs: &[i32; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
    let mut w = [0i64; BLOCK_SIZE];
    for (dst, &src) in w.iter_mut().zip(coeffs.iter()) {
        *dst = src as i64;
    }
    for col in 0..N {
        idct_1d(&mut w, col, N);
    }
    for row in 0..N {
        idct_1d(&mut w, row * N, 1);
    }
    // The two passes contribute the DCT's 8× gain on top of the 2^12
    // fixed-point scale: descale by 2^(AAN_FRAC_BITS + 3), rounding.
    const DESCALE: u32 = AAN_FRAC_BITS + 3;
    let mut out = [0u8; BLOCK_SIZE];
    for (dst, &v) in out.iter_mut().zip(w.iter()) {
        let p = ((v + (1 << (DESCALE - 1))) >> DESCALE) + 128;
        *dst = p.clamp(0, 255) as u8;
    }
    out
}

/// Fast integer IDCT over plain dequantized coefficients (the same
/// input domain as [`idct_to_pixels`]): applies the AAN prescale
/// internally, then runs the integer butterflies. Used where the folded
/// dequant table isn't in play — most importantly the ±1-of-reference
/// property tests.
pub fn idct_fast_to_pixels(coeffs: &[i32; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
    use std::sync::OnceLock;
    static PRESCALE: OnceLock<[i32; BLOCK_SIZE]> = OnceLock::new();
    let pre = PRESCALE.get_or_init(|| {
        let aan = aan_scales();
        let mut t = [0i32; BLOCK_SIZE];
        for v in 0..N {
            for u in 0..N {
                t[v * N + u] =
                    (aan[u] * aan[v] * (1u32 << AAN_FRAC_BITS) as f64).round() as i32;
            }
        }
        t
    });
    let mut scaled = [0i32; BLOCK_SIZE];
    for (dst, (&c, &p)) in scaled.iter_mut().zip(coeffs.iter().zip(pre.iter())) {
        let s = c as i64 * p as i64;
        *dst = s.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
    }
    idct_scaled_to_pixels(&scaled)
}

/// One 1-D AAN forward pass over 8 values at stride `stride`.
#[inline(always)]
fn fdct_1d(data: &mut [i64; BLOCK_SIZE], base: usize, stride: usize) {
    let at = |i: usize| base + i * stride;

    let tmp0 = data[at(0)] + data[at(7)];
    let tmp7 = data[at(0)] - data[at(7)];
    let tmp1 = data[at(1)] + data[at(6)];
    let tmp6 = data[at(1)] - data[at(6)];
    let tmp2 = data[at(2)] + data[at(5)];
    let tmp5 = data[at(2)] - data[at(5)];
    let tmp3 = data[at(3)] + data[at(4)];
    let tmp4 = data[at(3)] - data[at(4)];

    // Even part.
    let tmp10 = tmp0 + tmp3;
    let tmp13 = tmp0 - tmp3;
    let tmp11 = tmp1 + tmp2;
    let tmp12 = tmp1 - tmp2;
    data[at(0)] = tmp10 + tmp11;
    data[at(4)] = tmp10 - tmp11;
    let z1 = fmul(tmp12 + tmp13, FIX_0_707106781);
    data[at(2)] = tmp13 + z1;
    data[at(6)] = tmp13 - z1;

    // Odd part.
    let t10 = tmp4 + tmp5;
    let t11 = tmp5 + tmp6;
    let t12 = tmp6 + tmp7;
    let z5 = fmul(t10 - t12, FIX_0_382683433);
    let z2 = fmul(t10, FIX_0_541196100) + z5;
    let z4 = fmul(t12, FIX_1_306562965) + z5;
    let z3 = fmul(t11, FIX_0_707106781);
    let z11 = tmp7 + z3;
    let z13 = tmp7 - z3;
    data[at(5)] = z13 + z2;
    data[at(3)] = z13 - z2;
    data[at(1)] = z11 + z4;
    data[at(7)] = z11 - z4;
}

/// Fast integer forward DCT of a level-shifted block. Output
/// coefficients are scaled by `8·aan[u]·aan[v]·2^AAN_FRAC_BITS` relative
/// to the true DCT — [`crate::quant::fast_quant_divisors`] folds that
/// scale into the quantization divisors so no separate descale pass
/// runs.
pub fn fdct_fast_scaled(block: &[i32; BLOCK_SIZE]) -> [i64; BLOCK_SIZE] {
    let mut w = [0i64; BLOCK_SIZE];
    for (dst, &src) in w.iter_mut().zip(block.iter()) {
        *dst = (src as i64) << AAN_FRAC_BITS;
    }
    for row in 0..N {
        fdct_1d(&mut w, row * N, 1);
    }
    for col in 0..N {
        fdct_1d(&mut w, col, N);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_only_block_transforms_to_flat() {
        // A coefficient block with only DC set inverse-transforms to a
        // constant block of DC/8.
        let mut c = [0.0f32; BLOCK_SIZE];
        c[0] = 80.0;
        let s = idct(&c);
        for &v in &s {
            assert!((v - 10.0).abs() < 1e-4, "expected 10, got {v}");
        }
    }

    #[test]
    fn fdct_of_flat_block_is_dc_only() {
        let block = [32.0f32; BLOCK_SIZE];
        let c = fdct(&block);
        assert!((c[0] - 256.0).abs() < 1e-3, "DC = 8 * value: {}", c[0]);
        for &v in &c[1..] {
            assert!(v.abs() < 1e-3, "AC leakage: {v}");
        }
    }

    #[test]
    fn round_trip_is_near_identity() {
        let mut block = [0.0f32; BLOCK_SIZE];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i as f32 * 7.3).sin() * 100.0).round();
        }
        let rec = idct(&fdct(&block));
        for (a, b) in block.iter().zip(rec.iter()) {
            assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn pixel_round_trip_within_one_level() {
        let mut px = [0u8; BLOCK_SIZE];
        for (i, p) in px.iter_mut().enumerate() {
            *p = ((i * 37 + 11) % 256) as u8;
        }
        let c = fdct(&pixels_to_centered(&px));
        let mut ci = [0i32; BLOCK_SIZE];
        for (d, &s) in ci.iter_mut().zip(c.iter()) {
            *d = s.round() as i32;
        }
        let rec = idct_to_pixels(&ci);
        for (a, b) in px.iter().zip(rec.iter()) {
            assert!((*a as i32 - *b as i32).abs() <= 1, "{a} vs {b}");
        }
    }

    #[test]
    fn fast_idct_matches_reference_within_one_level() {
        // Deterministic pseudo-random dequantized coefficient blocks in
        // the baseline-JPEG-representable range.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for trial in 0..200 {
            let mut c = [0i32; BLOCK_SIZE];
            for v in c.iter_mut() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *v = ((x >> 33) as i32 % 2048) - 1024;
            }
            let reference = idct_to_pixels(&c);
            let fast = idct_fast_to_pixels(&c);
            for (i, (&a, &b)) in reference.iter().zip(fast.iter()).enumerate() {
                assert!(
                    (a as i32 - b as i32).abs() <= 1,
                    "trial {trial} pixel {i}: reference {a} vs fast {b}"
                );
            }
        }
    }

    #[test]
    fn fast_idct_dc_only_is_flat() {
        let mut c = [0i32; BLOCK_SIZE];
        c[0] = 80;
        let px = idct_fast_to_pixels(&c);
        for &p in &px {
            assert!((p as i32 - 138).abs() <= 1, "expected ~138, got {p}");
        }
    }

    #[test]
    fn fast_fdct_agrees_with_float_fdct() {
        let mut x: u64 = 0xD1B5_4A32_D192_ED03;
        for _ in 0..100 {
            let mut px = [0u8; BLOCK_SIZE];
            for p in px.iter_mut() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *p = (x >> 56) as u8;
            }
            let float_coeffs = fdct(&pixels_to_centered(&px));
            let mut centered = [0i32; BLOCK_SIZE];
            for (d, &p) in centered.iter_mut().zip(px.iter()) {
                *d = p as i32 - 128;
            }
            let scaled = fdct_fast_scaled(&centered);
            let aan = aan_scales();
            for v in 0..N {
                for u in 0..N {
                    let n = v * N + u;
                    let denom = 8.0 * aan[u] * aan[v] * (1u32 << AAN_FRAC_BITS) as f64;
                    let fast = scaled[n] as f64 / denom;
                    let err = (float_coeffs[n] as f64 - fast).abs();
                    assert!(err <= 0.75, "coeff ({u},{v}): {} vs {fast}", float_coeffs[n]);
                }
            }
        }
    }

    #[test]
    fn energy_is_preserved() {
        // Parseval: sum of squares is invariant under orthonormal DCT.
        let mut block = [0.0f32; BLOCK_SIZE];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (i as f32) - 31.5;
        }
        let c = fdct(&block);
        let e_spatial: f32 = block.iter().map(|v| v * v).sum();
        let e_freq: f32 = c.iter().map(|v| v * v).sum();
        assert!(
            (e_spatial - e_freq).abs() / e_spatial < 1e-4,
            "{e_spatial} vs {e_freq}"
        );
    }
}
