//! 8×8 forward and inverse Discrete Cosine Transform (type-II / type-III),
//! separable implementation over `f32`.
//!
//! This is the kernel the paper's IDCT components execute (§3.2). The
//! implementation favours clarity and exactness over speed — the
//! *simulated* execution cost is supplied by work annotations, and on
//! the SMP backend the decode workload is tiny next to communication.

use std::f32::consts::PI;

/// Number of pixels in a block.
pub const BLOCK_SIZE: usize = 64;
/// Block edge length.
pub const N: usize = 8;

/// Precomputed cos((2x+1) u π / 16) table, `COS[x][u]`.
fn cos_table() -> &'static [[f32; N]; N] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f32; N]; N]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0.0f32; N]; N];
        for (x, row) in t.iter_mut().enumerate() {
            for (u, v) in row.iter_mut().enumerate() {
                *v = (((2 * x + 1) as f32) * (u as f32) * PI / 16.0).cos();
            }
        }
        t
    })
}

fn alpha(u: usize) -> f32 {
    if u == 0 {
        1.0 / (2.0f32).sqrt()
    } else {
        1.0
    }
}

/// Forward 2-D DCT of a level-shifted block (row-major, values typically
/// in [-128, 127]). Output coefficients in natural (row-major) order.
pub fn fdct(block: &[f32; BLOCK_SIZE]) -> [f32; BLOCK_SIZE] {
    let cos = cos_table();
    let mut out = [0.0f32; BLOCK_SIZE];
    // Rows then columns (separable).
    let mut tmp = [0.0f32; BLOCK_SIZE];
    for y in 0..N {
        for u in 0..N {
            let mut s = 0.0;
            for x in 0..N {
                s += block[y * N + x] * cos[x][u];
            }
            tmp[y * N + u] = s;
        }
    }
    for u in 0..N {
        for v in 0..N {
            let mut s = 0.0;
            for y in 0..N {
                s += tmp[y * N + u] * cos[y][v];
            }
            out[v * N + u] = 0.25 * alpha(u) * alpha(v) * s;
        }
    }
    out
}

/// Inverse 2-D DCT; returns the level-shifted spatial block.
pub fn idct(coeffs: &[f32; BLOCK_SIZE]) -> [f32; BLOCK_SIZE] {
    let cos = cos_table();
    let mut tmp = [0.0f32; BLOCK_SIZE];
    for v in 0..N {
        for x in 0..N {
            let mut s = 0.0;
            for u in 0..N {
                s += alpha(u) * coeffs[v * N + u] * cos[x][u];
            }
            tmp[v * N + x] = s;
        }
    }
    let mut out = [0.0f32; BLOCK_SIZE];
    for x in 0..N {
        for y in 0..N {
            let mut s = 0.0;
            for v in 0..N {
                s += alpha(v) * tmp[v * N + x] * cos[y][v];
            }
            out[y * N + x] = 0.25 * s;
        }
    }
    out
}

/// IDCT over integer (dequantized) coefficients, producing clamped u8
/// pixels (adds back the +128 level shift).
pub fn idct_to_pixels(coeffs: &[i32; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
    let mut f = [0.0f32; BLOCK_SIZE];
    for (dst, &src) in f.iter_mut().zip(coeffs.iter()) {
        *dst = src as f32;
    }
    let spatial = idct(&f);
    let mut out = [0u8; BLOCK_SIZE];
    for (dst, &v) in out.iter_mut().zip(spatial.iter()) {
        *dst = (v + 128.0).round().clamp(0.0, 255.0) as u8;
    }
    out
}

/// Level-shift u8 pixels to centered f32 for the forward transform.
pub fn pixels_to_centered(pixels: &[u8; BLOCK_SIZE]) -> [f32; BLOCK_SIZE] {
    let mut out = [0.0f32; BLOCK_SIZE];
    for (dst, &p) in out.iter_mut().zip(pixels.iter()) {
        *dst = p as f32 - 128.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_only_block_transforms_to_flat() {
        // A coefficient block with only DC set inverse-transforms to a
        // constant block of DC/8.
        let mut c = [0.0f32; BLOCK_SIZE];
        c[0] = 80.0;
        let s = idct(&c);
        for &v in &s {
            assert!((v - 10.0).abs() < 1e-4, "expected 10, got {v}");
        }
    }

    #[test]
    fn fdct_of_flat_block_is_dc_only() {
        let block = [32.0f32; BLOCK_SIZE];
        let c = fdct(&block);
        assert!((c[0] - 256.0).abs() < 1e-3, "DC = 8 * value: {}", c[0]);
        for &v in &c[1..] {
            assert!(v.abs() < 1e-3, "AC leakage: {v}");
        }
    }

    #[test]
    fn round_trip_is_near_identity() {
        let mut block = [0.0f32; BLOCK_SIZE];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i as f32 * 7.3).sin() * 100.0).round();
        }
        let rec = idct(&fdct(&block));
        for (a, b) in block.iter().zip(rec.iter()) {
            assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn pixel_round_trip_within_one_level() {
        let mut px = [0u8; BLOCK_SIZE];
        for (i, p) in px.iter_mut().enumerate() {
            *p = ((i * 37 + 11) % 256) as u8;
        }
        let c = fdct(&pixels_to_centered(&px));
        let mut ci = [0i32; BLOCK_SIZE];
        for (d, &s) in ci.iter_mut().zip(c.iter()) {
            *d = s.round() as i32;
        }
        let rec = idct_to_pixels(&ci);
        for (a, b) in px.iter().zip(rec.iter()) {
            assert!((*a as i32 - *b as i32).abs() <= 1, "{a} vs {b}");
        }
    }

    #[test]
    fn energy_is_preserved() {
        // Parseval: sum of squares is invariant under orthonormal DCT.
        let mut block = [0.0f32; BLOCK_SIZE];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (i as f32) - 31.5;
        }
        let c = fdct(&block);
        let e_spatial: f32 = block.iter().map(|v| v * v).sum();
        let e_freq: f32 = c.iter().map(|v| v * v).sum();
        assert!(
            (e_spatial - e_freq).abs() / e_spatial < 1e-4,
            "{e_spatial} vs {e_freq}"
        );
    }
}
