//! SIMD inverse-DCT kernel: the same fixed-point AAN butterfly network
//! as [`crate::dct::idct_scaled_to_pixels`], vectorized over i64 lanes.
//!
//! **Bit-exactness.** The scalar kernel runs a column pass (one 1-D
//! butterfly per column) followed by a row pass. Vectorizing across
//! columns makes every butterfly operation elementwise — each lane
//! performs *exactly* the i64 additions, subtractions, multiplies and
//! arithmetic shifts of the scalar code, in the same order. The row
//! pass reuses the identical column-pass code over the transposed
//! matrix (a transpose is pure data movement). The output is therefore
//! byte-identical to the scalar kernel on every input, which the
//! property tests in `tests/` assert.
//!
//! **Dispatch.** [`active_level`] picks the widest instruction set the
//! CPU supports at first use (`AVX2` → 4×i64 lanes, else `SSE2` →
//! 2×i64 lanes; SSE2 is part of the x86-64 baseline). Non-x86-64
//! builds, and builds where the `EMBERA_SIMD=scalar` environment
//! override is set, fall back to the scalar kernel — `DctKind::FastSimd`
//! is always safe to select.

use crate::dct::{idct_scaled_to_pixels, BLOCK_SIZE};

/// Instruction-set level the SIMD kernel dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Scalar fallback (non-x86-64, or forced via `EMBERA_SIMD=scalar`).
    Scalar,
    /// 2×i64 lanes; baseline on every x86-64 CPU.
    Sse2,
    /// 4×i64 lanes; runtime-detected.
    Avx2,
}

impl SimdLevel {
    /// Stable lowercase name, used in bench provenance records.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// The level [`idct_scaled_to_pixels_simd`] dispatches to, resolved once.
///
/// `EMBERA_SIMD` (`scalar` | `sse2` | `avx2`) caps the level below what
/// the CPU supports — it can force the fallback for testing, never force
/// an unsupported instruction set.
pub fn active_level() -> SimdLevel {
    use std::sync::OnceLock;
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let detected = detect_level();
        match std::env::var("EMBERA_SIMD").as_deref() {
            Ok("scalar") => SimdLevel::Scalar,
            Ok("sse2") if detected != SimdLevel::Scalar => SimdLevel::Sse2,
            _ => detected,
        }
    })
}

#[cfg(target_arch = "x86_64")]
fn detect_level() -> SimdLevel {
    if is_x86_feature_detected!("avx2") {
        SimdLevel::Avx2
    } else {
        SimdLevel::Sse2
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_level() -> SimdLevel {
    SimdLevel::Scalar
}

/// SIMD IDCT over AAN-prescaled coefficients (same input domain as
/// [`crate::dct::idct_scaled_to_pixels`], i.e. dequantized with
/// [`crate::quant::fast_dequant_table`]); byte-identical output.
pub fn idct_scaled_to_pixels_simd(coeffs: &[i32; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::idct_scaled_to_pixels(coeffs) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { sse2::idct_scaled_to_pixels(coeffs) },
        _ => idct_scaled_to_pixels(coeffs),
    }
}

// ---------------------------------------------------------------------
// Shared butterfly definition.
//
// The 1-D AAN inverse butterfly over 8 vector registers, written once
// as a macro so the AVX2 and SSE2 kernels are lane-width-generic while
// still compiling to plain intrinsics inside `#[target_feature]`
// functions. `$add`/`$sub`/`$fmul` are elementwise i64 ops supplied by
// each backend; the structure mirrors `dct::idct_1d` line for line.
// ---------------------------------------------------------------------

macro_rules! idct_butterfly {
    ($v:ident, $add:ident, $sub:ident, $fmul:ident) => {{
        // Even part.
        let tmp10 = $add($v[0], $v[4]);
        let tmp11 = $sub($v[0], $v[4]);
        let tmp13 = $add($v[2], $v[6]);
        let tmp12 = $sub($fmul($sub($v[2], $v[6]), FIX_1_414213562), tmp13);
        let e0 = $add(tmp10, tmp13);
        let e3 = $sub(tmp10, tmp13);
        let e1 = $add(tmp11, tmp12);
        let e2 = $sub(tmp11, tmp12);

        // Odd part.
        let z13 = $add($v[5], $v[3]);
        let z10 = $sub($v[5], $v[3]);
        let z11 = $add($v[1], $v[7]);
        let z12 = $sub($v[1], $v[7]);
        let o7 = $add(z11, z13);
        let t11 = $fmul($sub(z11, z13), FIX_1_414213562);
        let z5 = $fmul($add(z10, z12), FIX_1_847759065);
        let t10 = $sub($fmul(z12, FIX_1_082392200), z5);
        let t12 = $sub(z5, $fmul(z10, FIX_2_613125930));
        let o6 = $sub(t12, o7);
        let o5 = $sub(t11, o6);
        let o4 = $add(t10, o5);

        $v[0] = $add(e0, o7);
        $v[7] = $sub(e0, o7);
        $v[1] = $add(e1, o6);
        $v[6] = $sub(e1, o6);
        $v[2] = $add(e2, o5);
        $v[5] = $sub(e2, o5);
        $v[4] = $add(e3, o4);
        $v[3] = $sub(e3, o4);
    }};
}

// Butterfly constants, duplicated from dct.rs (kept private there); the
// consistency test below guards against drift.
const FIX_1_414213562: i64 = 5793;
const FIX_1_847759065: i64 = 7568;
const FIX_1_082392200: i64 = 4433;
const FIX_2_613125930: i64 = 10703;
const AAN_FRAC_BITS: u32 = crate::dct::AAN_FRAC_BITS;
const DESCALE: i32 = AAN_FRAC_BITS as i32 + 3;

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use std::arch::x86_64::*;

    #[inline(always)]
    unsafe fn add(a: __m256i, b: __m256i) -> __m256i {
        _mm256_add_epi64(a, b)
    }

    #[inline(always)]
    unsafe fn sub(a: __m256i, b: __m256i) -> __m256i {
        _mm256_sub_epi64(a, b)
    }

    /// Arithmetic shift right of i64 lanes (AVX2 has no `srai_epi64`):
    /// logical shift, then OR in the sign bits.
    #[inline(always)]
    unsafe fn sra64(x: __m256i, s: i32) -> __m256i {
        let sign = _mm256_cmpgt_epi64(_mm256_setzero_si256(), x);
        _mm256_or_si256(
            _mm256_srl_epi64(x, _mm_cvtsi32_si128(s)),
            _mm256_sll_epi64(sign, _mm_cvtsi32_si128(64 - s)),
        )
    }

    /// Low 64 bits of `a * c` for a small positive constant `c < 2^32`:
    /// split `a` into 32-bit halves; `c`'s high half is zero, so
    /// `lo64(a·c) = a_lo·c + (a_hi·c << 32)`. Matches the scalar i64
    /// product exactly (no overflow occurs for this kernel's ranges).
    #[inline(always)]
    unsafe fn mul_const(a: __m256i, c: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, c);
        let hi = _mm256_mul_epu32(_mm256_srli_epi64::<32>(a), c);
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(hi))
    }

    /// `fmul(a, c) = (a·c + 2^11) >> 12`, elementwise — identical to
    /// `dct::fmul`.
    #[inline(always)]
    unsafe fn fmul(a: __m256i, c: i64) -> __m256i {
        let prod = mul_const(a, _mm256_set1_epi64x(c));
        sra64(
            _mm256_add_epi64(prod, _mm256_set1_epi64x(1 << (AAN_FRAC_BITS - 1))),
            AAN_FRAC_BITS as i32,
        )
    }

    /// 1-D butterfly over 8 registers of 4 columns each.
    #[inline(always)]
    unsafe fn butterfly(v: &mut [__m256i; 8]) {
        idct_butterfly!(v, add, sub, fmul);
    }

    /// Transpose a 4×4 block of i64 held in 4 registers.
    #[inline(always)]
    unsafe fn transpose4(r: [__m256i; 4]) -> [__m256i; 4] {
        let t0 = _mm256_unpacklo_epi64(r[0], r[1]);
        let t1 = _mm256_unpackhi_epi64(r[0], r[1]);
        let t2 = _mm256_unpacklo_epi64(r[2], r[3]);
        let t3 = _mm256_unpackhi_epi64(r[2], r[3]);
        [
            _mm256_permute2x128_si256::<0x20>(t0, t2),
            _mm256_permute2x128_si256::<0x20>(t1, t3),
            _mm256_permute2x128_si256::<0x31>(t0, t2),
            _mm256_permute2x128_si256::<0x31>(t1, t3),
        ]
    }

    /// Transpose the 8×8 i64 matrix held as (left-half, right-half)
    /// register pairs per row.
    #[inline(always)]
    unsafe fn transpose8(lo: &mut [__m256i; 8], hi: &mut [__m256i; 8]) {
        let a = transpose4([lo[0], lo[1], lo[2], lo[3]]);
        let b = transpose4([hi[0], hi[1], hi[2], hi[3]]);
        let c = transpose4([lo[4], lo[5], lo[6], lo[7]]);
        let d = transpose4([hi[4], hi[5], hi[6], hi[7]]);
        lo[..4].copy_from_slice(&a);
        hi[..4].copy_from_slice(&c);
        lo[4..].copy_from_slice(&b);
        hi[4..].copy_from_slice(&d);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn idct_scaled_to_pixels(coeffs: &[i32; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        // Widen each row of 8 i32 coefficients to two registers of 4 i64.
        let mut lo = [_mm256_setzero_si256(); 8];
        let mut hi = [_mm256_setzero_si256(); 8];
        for r in 0..8 {
            let row = _mm256_loadu_si256(coeffs.as_ptr().add(r * 8) as *const __m256i);
            lo[r] = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(row));
            hi[r] = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(row));
        }

        // Column pass: registers are rows, lanes are columns, so the
        // butterfly runs 4 columns at a time.
        butterfly(&mut lo);
        butterfly(&mut hi);

        // Row pass: same butterfly over the transposed matrix.
        transpose8(&mut lo, &mut hi);
        butterfly(&mut lo);
        butterfly(&mut hi);
        transpose8(&mut lo, &mut hi);

        // Descale `((v + 2^14) >> 15) + 128`, clamp to [0, 255], narrow.
        let round = _mm256_set1_epi64x(1 << (DESCALE - 1));
        let mut out = [0u8; BLOCK_SIZE];
        let mut tmp = [0i64; 4];
        for r in 0..8 {
            for (half, base) in [(lo[r], 0usize), (hi[r], 4usize)] {
                let v = sra64(_mm256_add_epi64(half, round), DESCALE);
                _mm256_storeu_si256(tmp.as_mut_ptr() as *mut __m256i, v);
                for (k, &t) in tmp.iter().enumerate() {
                    out[r * 8 + base + k] = (t + 128).clamp(0, 255) as u8;
                }
            }
        }
        out
    }
}

#[cfg(target_arch = "x86_64")]
mod sse2 {
    use super::*;
    use std::arch::x86_64::*;

    #[inline(always)]
    unsafe fn add(a: __m128i, b: __m128i) -> __m128i {
        _mm_add_epi64(a, b)
    }

    #[inline(always)]
    unsafe fn sub(a: __m128i, b: __m128i) -> __m128i {
        _mm_sub_epi64(a, b)
    }

    /// Arithmetic i64 shift right via logical shift + sign fill. SSE2
    /// also lacks 64-bit compares, so the sign mask comes from
    /// broadcasting each lane's top dword and shifting in its sign.
    #[inline(always)]
    unsafe fn sra64(x: __m128i, s: i32) -> __m128i {
        let sign = _mm_srai_epi32::<31>(_mm_shuffle_epi32::<0b11_11_01_01>(x));
        _mm_or_si128(
            _mm_srl_epi64(x, _mm_cvtsi32_si128(s)),
            _mm_sll_epi64(sign, _mm_cvtsi32_si128(64 - s)),
        )
    }

    /// Low 64 bits of `a · c` for small positive constant `c` (see the
    /// AVX2 twin).
    #[inline(always)]
    unsafe fn mul_const(a: __m128i, c: __m128i) -> __m128i {
        let lo = _mm_mul_epu32(a, c);
        let hi = _mm_mul_epu32(_mm_srli_epi64::<32>(a), c);
        _mm_add_epi64(lo, _mm_slli_epi64::<32>(hi))
    }

    #[inline(always)]
    unsafe fn fmul(a: __m128i, c: i64) -> __m128i {
        let prod = mul_const(a, _mm_set1_epi64x(c));
        sra64(
            _mm_add_epi64(prod, _mm_set1_epi64x(1 << (AAN_FRAC_BITS - 1))),
            AAN_FRAC_BITS as i32,
        )
    }

    #[inline(always)]
    unsafe fn butterfly(v: &mut [__m128i; 8]) {
        idct_butterfly!(v, add, sub, fmul);
    }

    /// Transpose the 8×8 i64 matrix held as 4 registers of 2 lanes per
    /// row (`m[r][q]` covers columns 2q, 2q+1): swap 2×2 lane blocks
    /// with unpack pairs.
    #[inline(always)]
    unsafe fn transpose8(m: &mut [[__m128i; 4]; 8]) {
        for bi in 0..4 {
            for bj in bi..4 {
                let a = m[2 * bi][bj];
                let b = m[2 * bi + 1][bj];
                let t0 = _mm_unpacklo_epi64(a, b);
                let t1 = _mm_unpackhi_epi64(a, b);
                if bi == bj {
                    m[2 * bi][bj] = t0;
                    m[2 * bi + 1][bj] = t1;
                } else {
                    let c = m[2 * bj][bi];
                    let d = m[2 * bj + 1][bi];
                    m[2 * bi][bj] = _mm_unpacklo_epi64(c, d);
                    m[2 * bi + 1][bj] = _mm_unpackhi_epi64(c, d);
                    m[2 * bj][bi] = t0;
                    m[2 * bj + 1][bi] = t1;
                }
            }
        }
    }

    // The column gather/scatter loops index `m`'s *second* dimension
    // with a fixed lane offset — iterator rewrites obscure that.
    #[allow(clippy::needless_range_loop)]
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn idct_scaled_to_pixels(coeffs: &[i32; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        // m[r][q] holds row r, columns 2q..2q+2 as i64 lanes.
        let mut m = [[_mm_setzero_si128(); 4]; 8];
        for r in 0..8 {
            for q in 0..4 {
                let c0 = coeffs[r * 8 + 2 * q] as i64;
                let c1 = coeffs[r * 8 + 2 * q + 1] as i64;
                m[r][q] = _mm_set_epi64x(c1, c0);
            }
        }

        for q in 0..4 {
            let mut col = [
                m[0][q], m[1][q], m[2][q], m[3][q], m[4][q], m[5][q], m[6][q], m[7][q],
            ];
            butterfly(&mut col);
            for (r, v) in col.into_iter().enumerate() {
                m[r][q] = v;
            }
        }

        transpose8(&mut m);
        for q in 0..4 {
            let mut col = [
                m[0][q], m[1][q], m[2][q], m[3][q], m[4][q], m[5][q], m[6][q], m[7][q],
            ];
            butterfly(&mut col);
            for (r, v) in col.into_iter().enumerate() {
                m[r][q] = v;
            }
        }
        transpose8(&mut m);

        let round = _mm_set1_epi64x(1 << (DESCALE - 1));
        let mut out = [0u8; BLOCK_SIZE];
        let mut tmp = [0i64; 2];
        for r in 0..8 {
            for q in 0..4 {
                let v = sra64(_mm_add_epi64(m[r][q], round), DESCALE);
                _mm_storeu_si128(tmp.as_mut_ptr() as *mut __m128i, v);
                out[r * 8 + 2 * q] = (tmp[0] + 128).clamp(0, 255) as u8;
                out[r * 8 + 2 * q + 1] = (tmp[1] + 128).clamp(0, 255) as u8;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_blocks(seed: u64, n: usize, range: i32) -> Vec<[i32; BLOCK_SIZE]> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                let mut c = [0i32; BLOCK_SIZE];
                for v in c.iter_mut() {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    *v = ((x >> 33) as i32 % (2 * range)) - range;
                }
                c
            })
            .collect()
    }

    #[test]
    fn dispatch_matches_scalar_on_random_blocks() {
        for c in lcg_blocks(0xDEAD_BEEF_CAFE_F00D, 500, 1 << 20) {
            assert_eq!(idct_scaled_to_pixels_simd(&c), idct_scaled_to_pixels(&c));
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn every_supported_level_matches_scalar() {
        // Bypass the env-resolved dispatch and exercise each backend
        // directly, including saturation edges.
        let mut blocks = lcg_blocks(0x1234_5678_9ABC_DEF0, 300, i32::MAX / 4096);
        let mut dc_max = [0i32; BLOCK_SIZE];
        dc_max[0] = i32::MAX;
        let mut dc_min = [0i32; BLOCK_SIZE];
        dc_min[0] = i32::MIN + 1;
        blocks.push(dc_max);
        blocks.push(dc_min);
        blocks.push([0i32; BLOCK_SIZE]);
        for c in &blocks {
            let want = idct_scaled_to_pixels(c);
            assert_eq!(unsafe { sse2::idct_scaled_to_pixels(c) }, want, "sse2");
            if is_x86_feature_detected!("avx2") {
                assert_eq!(unsafe { avx2::idct_scaled_to_pixels(c) }, want, "avx2");
            }
        }
    }

    #[test]
    fn butterfly_constants_match_dct() {
        // simd.rs duplicates dct.rs's private fixed-point constants;
        // re-derive them here so silent drift is impossible.
        let f = |x: f64| (x * (1u32 << AAN_FRAC_BITS) as f64).round() as i64;
        assert_eq!(FIX_1_414213562, f(std::f64::consts::SQRT_2));
        assert_eq!(FIX_1_847759065, f(1.847759065));
        assert_eq!(FIX_1_082392200, f(1.082392200));
        assert_eq!(FIX_2_613125930, f(2.613125930));
    }
}
