//! Standard JFIF/JPEG file emission and parsing (ITU-T T.81 baseline
//! sequential DCT, JFIF 1.01 container).
//!
//! The workload container (`frame.rs`) stores bare entropy-coded
//! segments for speed; this module produces and consumes *real* `.jpg`
//! files — SOI/APP0/DQT/SOF0/DHT/SOS/EOI markers with Annex-K tables —
//! so the codec substrate is verifiable against any external JPEG
//! implementation. Grayscale (1 component) and color (3 components,
//! 4:4:4, interleaved MCUs) are supported; odd dimensions are handled
//! by edge-replication padding at encode and cropping at decode.

use crate::bitstream::{BitReader, BitWriter};
use crate::codec::{decode_block_with, encode_block_with, place_block};
use crate::color::{planes_from_rgb, rgb_from_planes};
use crate::dct::{idct_to_pixels, BLOCK_SIZE, N};
use crate::huffman::{HuffDecoder, HuffEncoder, HuffSpec};
use crate::quant::{
    dequantize_reorder, scaled_qtable, scaled_qtable_chroma, ZIGZAG,
};

const SOI: u16 = 0xFFD8;
const APP0: u16 = 0xFFE0;
const DQT: u16 = 0xFFDB;
const SOF0: u16 = 0xFFC0;
const DHT: u16 = 0xFFC4;
const SOS: u16 = 0xFFDA;
const EOI: u16 = 0xFFD9;
const DRI: u16 = 0xFFDD;
const RST0: u8 = 0xD0;

/// Decode-side allocation cap. SOF0 dimensions are attacker-controlled
/// (up to 65535×65535 ≈ 4.3 GB per plane); refuse anything above 64 M
/// pixels before allocating planes.
const MAX_PIXELS: u64 = 1 << 26;

/// Decoded pixel data of a parsed JFIF file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JfifPixels {
    /// Single-component luminance image.
    Gray(Vec<u8>),
    /// Interleaved RGB (3 bytes per pixel).
    Rgb(Vec<u8>),
}

/// A decoded JFIF image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JfifImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Pixel data.
    pub pixels: JfifPixels,
}

fn put_marker(out: &mut Vec<u8>, marker: u16) {
    out.extend_from_slice(&marker.to_be_bytes());
}

fn put_segment(out: &mut Vec<u8>, marker: u16, payload: &[u8]) {
    put_marker(out, marker);
    out.extend_from_slice(&((payload.len() + 2) as u16).to_be_bytes());
    out.extend_from_slice(payload);
}

fn app0_jfif() -> Vec<u8> {
    let mut p = Vec::new();
    p.extend_from_slice(b"JFIF\0");
    p.extend_from_slice(&[1, 1]); // version 1.01
    p.push(0); // aspect-ratio units
    p.extend_from_slice(&1u16.to_be_bytes()); // x density
    p.extend_from_slice(&1u16.to_be_bytes()); // y density
    p.extend_from_slice(&[0, 0]); // no thumbnail
    p
}

fn dqt_segment(id: u8, table_natural: &[u16; BLOCK_SIZE]) -> Vec<u8> {
    let mut p = Vec::with_capacity(65);
    p.push(id); // Pq=0 (8-bit), Tq=id
    for k in 0..BLOCK_SIZE {
        p.push(table_natural[ZIGZAG[k]] as u8); // DQT stores zigzag order
    }
    p
}

fn dht_segment(class: u8, id: u8, spec: &HuffSpec) -> Vec<u8> {
    let mut p = Vec::with_capacity(17 + spec.values.len());
    p.push((class << 4) | id);
    p.extend_from_slice(&spec.bits);
    p.extend_from_slice(&spec.values);
    p
}

/// Pad a plane to 8-aligned dimensions by edge replication.
fn pad_plane(src: &[u8], w: usize, h: usize) -> (Vec<u8>, usize, usize) {
    let pw = w.div_ceil(N) * N;
    let ph = h.div_ceil(N) * N;
    if pw == w && ph == h {
        return (src.to_vec(), w, h);
    }
    let mut out = vec![0u8; pw * ph];
    for y in 0..ph {
        let sy = y.min(h - 1);
        for x in 0..pw {
            let sx = x.min(w - 1);
            out[y * pw + x] = src[sy * w + sx];
        }
    }
    (out, pw, ph)
}

fn block_at(plane: &[u8], stride: usize, bx: usize, by: usize) -> [u8; BLOCK_SIZE] {
    let mut block = [0u8; BLOCK_SIZE];
    for row in 0..N {
        let src = (by + row) * stride + bx;
        block[row * N..row * N + N].copy_from_slice(&plane[src..src + N]);
    }
    block
}

fn sof0_segment(width: usize, height: usize, ncomp: u8) -> Vec<u8> {
    let mut p = Vec::new();
    p.push(8); // precision
    p.extend_from_slice(&(height as u16).to_be_bytes());
    p.extend_from_slice(&(width as u16).to_be_bytes());
    p.push(ncomp);
    for c in 0..ncomp {
        p.push(c + 1); // component id
        p.push(0x11); // 4:4:4 sampling
        p.push(u8::from(c > 0)); // qtable: 0 luma, 1 chroma
    }
    p
}

fn sos_segment(ncomp: u8) -> Vec<u8> {
    let mut p = Vec::new();
    p.push(ncomp);
    for c in 0..ncomp {
        p.push(c + 1);
        let t = u8::from(c > 0); // table id: 0 luma, 1 chroma
        p.push((t << 4) | t);
    }
    p.extend_from_slice(&[0, 63, 0]); // full spectral selection, no approx
    p
}

/// Encode a grayscale image as a complete JFIF/JPEG file.
///
/// ```
/// use mjpeg::jfif::{decode_jfif, encode_jfif_gray, JfifPixels};
///
/// let image = vec![128u8; 16 * 16];
/// let file = encode_jfif_gray(&image, 16, 16, 90);
/// assert_eq!(&file[..2], &[0xFF, 0xD8]); // SOI: a real .jpg
/// let decoded = decode_jfif(&file).unwrap();
/// assert_eq!((decoded.width, decoded.height), (16, 16));
/// assert!(matches!(decoded.pixels, JfifPixels::Gray(_)));
/// ```
pub fn encode_jfif_gray(pixels: &[u8], width: usize, height: usize, quality: u8) -> Vec<u8> {
    encode_jfif_gray_dri(pixels, width, height, quality, 0)
}

/// Encode a grayscale JFIF file with a restart interval of
/// `restart_interval` MCUs (0 = no restart markers). Restart markers
/// (T.81 §B.2.4.4) reset the DC predictor and byte-align the stream so
/// a decoder can resynchronize after corruption.
pub fn encode_jfif_gray_dri(
    pixels: &[u8],
    width: usize,
    height: usize,
    quality: u8,
    restart_interval: u16,
) -> Vec<u8> {
    assert_eq!(pixels.len(), width * height);
    let qtable = scaled_qtable(quality);
    let (plane, pw, ph) = pad_plane(pixels, width, height);

    let mut out = Vec::new();
    put_marker(&mut out, SOI);
    put_segment(&mut out, APP0, &app0_jfif());
    put_segment(&mut out, DQT, &dqt_segment(0, &qtable));
    put_segment(&mut out, SOF0, &sof0_segment(width, height, 1));
    put_segment(&mut out, DHT, &dht_segment(0, 0, &HuffSpec::luma_dc()));
    put_segment(&mut out, DHT, &dht_segment(1, 0, &HuffSpec::luma_ac()));
    if restart_interval > 0 {
        put_segment(&mut out, DRI, &restart_interval.to_be_bytes());
    }
    put_segment(&mut out, SOS, &sos_segment(1));

    let dc_enc = HuffEncoder::new(&HuffSpec::luma_dc());
    let ac_enc = HuffEncoder::new(&HuffSpec::luma_ac());
    let mut writer = BitWriter::new();
    let mut dc_pred = 0;
    let mut mcu = 0u32;
    let mut rst = 0u8;
    for by in (0..ph).step_by(N) {
        for bx in (0..pw).step_by(N) {
            if restart_interval > 0 && mcu > 0 && mcu.is_multiple_of(restart_interval as u32) {
                // Flush to a byte boundary, emit RSTn, reset prediction.
                out.extend_from_slice(&std::mem::take(&mut writer).finish());
                out.extend_from_slice(&[0xFF, RST0 + rst]);
                rst = (rst + 1) % 8;
                dc_pred = 0;
            }
            let block = block_at(&plane, pw, bx, by);
            dc_pred = encode_block_with(&mut writer, &dc_enc, &ac_enc, &qtable, dc_pred, &block);
            mcu += 1;
        }
    }
    out.extend_from_slice(&writer.finish());
    put_marker(&mut out, EOI);
    out
}

/// Encode an interleaved-RGB image as a complete color JFIF/JPEG file
/// (YCbCr, 4:4:4).
pub fn encode_jfif_rgb(rgb: &[u8], width: usize, height: usize, quality: u8) -> Vec<u8> {
    assert_eq!(rgb.len(), width * height * 3);
    let luma_q = scaled_qtable(quality);
    let chroma_q = scaled_qtable_chroma(quality);
    let (y, cb, cr) = planes_from_rgb(rgb);
    let (yp, pw, ph) = pad_plane(&y, width, height);
    let (cbp, _, _) = pad_plane(&cb, width, height);
    let (crp, _, _) = pad_plane(&cr, width, height);

    let mut out = Vec::new();
    put_marker(&mut out, SOI);
    put_segment(&mut out, APP0, &app0_jfif());
    put_segment(&mut out, DQT, &dqt_segment(0, &luma_q));
    put_segment(&mut out, DQT, &dqt_segment(1, &chroma_q));
    put_segment(&mut out, SOF0, &sof0_segment(width, height, 3));
    put_segment(&mut out, DHT, &dht_segment(0, 0, &HuffSpec::luma_dc()));
    put_segment(&mut out, DHT, &dht_segment(1, 0, &HuffSpec::luma_ac()));
    put_segment(&mut out, DHT, &dht_segment(0, 1, &HuffSpec::chroma_dc()));
    put_segment(&mut out, DHT, &dht_segment(1, 1, &HuffSpec::chroma_ac()));
    put_segment(&mut out, SOS, &sos_segment(3));

    let luma_dc = HuffEncoder::new(&HuffSpec::luma_dc());
    let luma_ac = HuffEncoder::new(&HuffSpec::luma_ac());
    let chroma_dc = HuffEncoder::new(&HuffSpec::chroma_dc());
    let chroma_ac = HuffEncoder::new(&HuffSpec::chroma_ac());
    let mut writer = BitWriter::new();
    let mut preds = [0i32; 3];
    // 4:4:4 interleave: each MCU carries one block per component.
    for by in (0..ph).step_by(N) {
        for bx in (0..pw).step_by(N) {
            preds[0] = encode_block_with(
                &mut writer,
                &luma_dc,
                &luma_ac,
                &luma_q,
                preds[0],
                &block_at(&yp, pw, bx, by),
            );
            preds[1] = encode_block_with(
                &mut writer,
                &chroma_dc,
                &chroma_ac,
                &chroma_q,
                preds[1],
                &block_at(&cbp, pw, bx, by),
            );
            preds[2] = encode_block_with(
                &mut writer,
                &chroma_dc,
                &chroma_ac,
                &chroma_q,
                preds[2],
                &block_at(&crp, pw, bx, by),
            );
        }
    }
    out.extend_from_slice(&writer.finish());
    put_marker(&mut out, EOI);
    out
}

#[derive(Debug, Clone, Copy)]
struct ComponentInfo {
    qtable: usize,
    dc_table: usize,
    ac_table: usize,
}

/// Parse and decode a baseline JFIF/JPEG file produced by this module
/// (or any encoder using baseline sequential, 4:4:4 or single-component,
/// no restart markers).
pub fn decode_jfif(bytes: &[u8]) -> Result<JfifImage, String> {
    let mut pos = 0usize;
    let read_u16 = |bytes: &[u8], pos: usize| -> Result<u16, String> {
        bytes
            .get(pos..pos + 2)
            .map(|s| u16::from_be_bytes([s[0], s[1]]))
            .ok_or_else(|| "truncated file".to_string())
    };
    if read_u16(bytes, 0)? != SOI {
        return Err("missing SOI marker".into());
    }
    pos += 2;

    let mut qtables: [Option<[u16; BLOCK_SIZE]>; 4] = [None; 4];
    let mut dc_tables: [Option<HuffDecoder>; 4] = [None, None, None, None];
    let mut ac_tables: [Option<HuffDecoder>; 4] = [None, None, None, None];
    let mut width = 0usize;
    let mut height = 0usize;
    let mut components: Vec<(u8 /*id*/, usize /*qtable*/)> = Vec::new();
    let mut restart_interval: u16 = 0;
    let mut scan: Option<(Vec<ComponentInfo>, usize /*scan data start*/)> = None;

    while scan.is_none() {
        let marker = read_u16(bytes, pos)?;
        pos += 2;
        if marker == EOI {
            return Err("EOI before SOS".into());
        }
        let len = read_u16(bytes, pos)? as usize;
        if len < 2 || pos + len > bytes.len() {
            return Err(format!("bad segment length {len} at {pos}"));
        }
        let payload = &bytes[pos + 2..pos + len];
        pos += len;
        match marker {
            APP0 => { /* metadata; ignored */ }
            DRI => {
                if payload.len() != 2 {
                    return Err("bad DRI length".into());
                }
                restart_interval = u16::from_be_bytes([payload[0], payload[1]]);
            }
            DQT => {
                let mut p = 0;
                while p < payload.len() {
                    let pq_tq = payload[p];
                    if pq_tq >> 4 != 0 {
                        return Err("16-bit quantization tables unsupported".into());
                    }
                    let id = (pq_tq & 0x0F) as usize;
                    if id >= qtables.len() {
                        return Err(format!("quantization table id {id} out of range"));
                    }
                    if p + 65 > payload.len() {
                        return Err("truncated DQT".into());
                    }
                    let mut t = [0u16; BLOCK_SIZE];
                    for k in 0..BLOCK_SIZE {
                        t[ZIGZAG[k]] = payload[p + 1 + k] as u16;
                    }
                    qtables[id] = Some(t);
                    p += 65;
                }
            }
            DHT => {
                let mut p = 0;
                while p < payload.len() {
                    if p + 17 > payload.len() {
                        return Err("truncated DHT".into());
                    }
                    let class = payload[p] >> 4;
                    let id = (payload[p] & 0x0F) as usize;
                    if id >= dc_tables.len() {
                        return Err(format!("Huffman table id {id} out of range"));
                    }
                    let mut bits = [0u8; 16];
                    bits.copy_from_slice(&payload[p + 1..p + 17]);
                    let nvals: usize = bits.iter().map(|&b| b as usize).sum();
                    if p + 17 + nvals > payload.len() {
                        return Err("truncated DHT values".into());
                    }
                    let spec = HuffSpec {
                        bits,
                        values: payload[p + 17..p + 17 + nvals].to_vec(),
                    };
                    if !spec.is_valid() {
                        return Err("over-subscribed Huffman table".into());
                    }
                    let dec = HuffDecoder::new(&spec);
                    if class == 0 {
                        dc_tables[id] = Some(dec);
                    } else {
                        ac_tables[id] = Some(dec);
                    }
                    p += 17 + nvals;
                }
            }
            SOF0 => {
                if payload.len() < 6 {
                    return Err("truncated SOF0".into());
                }
                if payload[0] != 8 {
                    return Err("only 8-bit precision supported".into());
                }
                height = u16::from_be_bytes([payload[1], payload[2]]) as usize;
                width = u16::from_be_bytes([payload[3], payload[4]]) as usize;
                let ncomp = payload[5] as usize;
                if ncomp != 1 && ncomp != 3 {
                    return Err(format!("{ncomp} components unsupported"));
                }
                if payload.len() < 6 + ncomp * 3 {
                    return Err("truncated SOF0 component list".into());
                }
                if width as u64 * height as u64 > MAX_PIXELS {
                    return Err(format!(
                        "image {width}x{height} exceeds the {MAX_PIXELS}-pixel decode limit"
                    ));
                }
                for c in 0..ncomp {
                    let o = 6 + c * 3;
                    if payload[o + 1] != 0x11 {
                        return Err("only 4:4:4 sampling supported".into());
                    }
                    components.push((payload[o], payload[o + 2] as usize));
                }
            }
            SOS => {
                if components.is_empty() {
                    return Err("SOS before SOF0".into());
                }
                if payload.is_empty() {
                    return Err("empty SOS".into());
                }
                let ncomp = payload[0] as usize;
                if ncomp != components.len() {
                    return Err("SOS/SOF0 component mismatch".into());
                }
                if payload.len() < 1 + ncomp * 2 + 3 {
                    return Err("truncated SOS component list".into());
                }
                let mut infos = Vec::new();
                for c in 0..ncomp {
                    let id = payload[1 + c * 2];
                    let tables = payload[2 + c * 2];
                    let (comp_id, qtable) = components
                        .iter()
                        .find(|(cid, _)| *cid == id)
                        .ok_or_else(|| format!("SOS references unknown component {id}"))?;
                    let _ = comp_id;
                    let info = ComponentInfo {
                        qtable: *qtable,
                        dc_table: (tables >> 4) as usize,
                        ac_table: (tables & 0x0F) as usize,
                    };
                    if info.qtable >= qtables.len()
                        || info.dc_table >= dc_tables.len()
                        || info.ac_table >= ac_tables.len()
                    {
                        return Err("SOS references out-of-range table id".into());
                    }
                    infos.push(info);
                }
                scan = Some((infos, pos));
            }
            0xFFC1..=0xFFCF => return Err("only baseline SOF0 supported".into()),
            _ => { /* skip unknown segment */ }
        }
    }

    let (infos, scan_start) = scan.expect("loop exits with scan set");
    // Entropy data runs until EOI; stuffed 0xFF00 pairs and RSTn markers
    // stay inside.
    let mut end = scan_start;
    while end + 1 < bytes.len() {
        if bytes[end] == 0xFF
            && bytes[end + 1] != 0x00
            && !(RST0..=RST0 + 7).contains(&bytes[end + 1])
        {
            break;
        }
        end += 1;
    }
    if read_u16(bytes, end)? != EOI {
        return Err("missing EOI marker".into());
    }
    // Split the scan into restart segments (whole scan when no DRI).
    let mut segments: Vec<&[u8]> = Vec::new();
    {
        let mut seg_start = scan_start;
        let mut i = scan_start;
        while i + 1 < end {
            if bytes[i] == 0xFF && (RST0..=RST0 + 7).contains(&bytes[i + 1]) {
                segments.push(&bytes[seg_start..i]);
                i += 2;
                seg_start = i;
            } else {
                i += 1;
            }
        }
        segments.push(&bytes[seg_start..end]);
    }
    if restart_interval == 0 && segments.len() > 1 {
        return Err("restart markers present without DRI".into());
    }

    // Decode MCUs.
    let pw = width.div_ceil(N) * N;
    let ph = height.div_ceil(N) * N;
    let mut planes: Vec<Vec<u8>> = infos.iter().map(|_| vec![0u8; pw * ph]).collect();
    let mut preds = vec![0i32; infos.len()];
    let mut seg_iter = segments.into_iter();
    let mut reader = BitReader::new(seg_iter.next().expect("at least one segment"));
    let blocks_x = pw / N;
    let blocks_y = ph / N;
    for mcu in 0..blocks_x * blocks_y {
        if restart_interval > 0 && mcu > 0 && mcu % restart_interval as usize == 0 {
            // Restart boundary: next segment, predictors reset.
            reader = BitReader::new(
                seg_iter
                    .next()
                    .ok_or_else(|| format!("missing restart segment before MCU {mcu}"))?,
            );
            preds.iter_mut().for_each(|p| *p = 0);
        }
        for (c, info) in infos.iter().enumerate() {
            let dc = dc_tables[info.dc_table]
                .as_ref()
                .ok_or_else(|| format!("missing DC table {}", info.dc_table))?;
            let ac = ac_tables[info.ac_table]
                .as_ref()
                .ok_or_else(|| format!("missing AC table {}", info.ac_table))?;
            let q = qtables[info.qtable]
                .as_ref()
                .ok_or_else(|| format!("missing quantization table {}", info.qtable))?;
            let (zz, dc_val) = decode_block_with(&mut reader, dc, ac, preds[c])
                .map_err(|e| format!("MCU {mcu} component {c}: {e}"))?;
            preds[c] = dc_val;
            let coeffs = dequantize_reorder(&zz, q);
            let px = idct_to_pixels(&coeffs);
            place_block(&mut planes[c], pw, mcu, &px);
        }
    }

    // Crop padding.
    let crop = |plane: &[u8]| -> Vec<u8> {
        let mut out = Vec::with_capacity(width * height);
        for y in 0..height {
            out.extend_from_slice(&plane[y * pw..y * pw + width]);
        }
        out
    };
    let pixels = if infos.len() == 1 {
        JfifPixels::Gray(crop(&planes[0]))
    } else {
        JfifPixels::Rgb(rgb_from_planes(
            &crop(&planes[0]),
            &crop(&planes[1]),
            &crop(&planes[2]),
        ))
    };
    Ok(JfifImage {
        width,
        height,
        pixels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::psnr;

    fn gray_image(w: usize, h: usize) -> Vec<u8> {
        (0..w * h)
            .map(|i| {
                let x = i % w;
                let y = i / w;
                ((x * 2 + y * 3) % 256) as u8
            })
            .collect()
    }

    fn rgb_image(w: usize, h: usize) -> Vec<u8> {
        let mut v = Vec::with_capacity(w * h * 3);
        for y in 0..h {
            for x in 0..w {
                v.push((x * 255 / w) as u8);
                v.push((y * 255 / h) as u8);
                v.push(((x + y) * 128 / (w + h)) as u8);
            }
        }
        v
    }

    #[test]
    fn gray_file_round_trips() {
        let (w, h) = (48, 24);
        let img = gray_image(w, h);
        let file = encode_jfif_gray(&img, w, h, 90);
        // Valid marker structure.
        assert_eq!(&file[..2], &[0xFF, 0xD8]);
        assert_eq!(&file[file.len() - 2..], &[0xFF, 0xD9]);
        let decoded = decode_jfif(&file).unwrap();
        assert_eq!(decoded.width, w);
        assert_eq!(decoded.height, h);
        let JfifPixels::Gray(px) = decoded.pixels else {
            panic!("expected grayscale")
        };
        assert!(psnr(&img, &px) > 30.0);
    }

    #[test]
    fn color_file_round_trips() {
        let (w, h) = (32, 32);
        let img = rgb_image(w, h);
        let file = encode_jfif_rgb(&img, w, h, 90);
        let decoded = decode_jfif(&file).unwrap();
        let JfifPixels::Rgb(px) = decoded.pixels else {
            panic!("expected color")
        };
        assert_eq!(px.len(), img.len());
        assert!(psnr(&img, &px) > 28.0, "PSNR {}", psnr(&img, &px));
    }

    #[test]
    fn odd_dimensions_pad_and_crop() {
        let (w, h) = (13, 9);
        let img = gray_image(w, h);
        let file = encode_jfif_gray(&img, w, h, 85);
        let decoded = decode_jfif(&file).unwrap();
        assert_eq!(decoded.width, 13);
        assert_eq!(decoded.height, 9);
        let JfifPixels::Gray(px) = decoded.pixels else {
            panic!()
        };
        assert_eq!(px.len(), 13 * 9);
        assert!(psnr(&img, &px) > 25.0);
    }

    #[test]
    fn file_contains_expected_marker_sequence() {
        let file = encode_jfif_rgb(&rgb_image(16, 16), 16, 16, 75);
        // SOI, APP0, 2x DQT, SOF0, 4x DHT, SOS in order.
        let find_all = |marker: u8| -> Vec<usize> {
            file.windows(2)
                .enumerate()
                .filter(|(_, w)| w[0] == 0xFF && w[1] == marker)
                .map(|(i, _)| i)
                .collect()
        };
        assert_eq!(find_all(0xD8).first(), Some(&0));
        assert_eq!(find_all(0xDB).len(), 2, "two DQT segments");
        assert!(find_all(0xC4).len() >= 4, "four DHT segments");
        assert_eq!(find_all(0xC0).len(), 1, "one SOF0");
        assert!(!find_all(0xDA).is_empty(), "SOS present");
    }

    #[test]
    fn truncated_and_corrupt_files_rejected() {
        let file = encode_jfif_gray(&gray_image(16, 16), 16, 16, 75);
        assert!(decode_jfif(&file[..file.len() / 2]).is_err());
        assert!(decode_jfif(&[]).is_err());
        assert!(decode_jfif(&[0x12, 0x34]).is_err());
        let mut bad = file.clone();
        bad[0] = 0x00; // break SOI
        assert!(decode_jfif(&bad).is_err());
    }

    #[test]
    fn oversized_dimensions_rejected_before_allocation() {
        // A 4-byte patch of the SOF0 height/width fields must not make
        // the decoder allocate gigabytes: the dimension cap rejects it.
        let mut file = encode_jfif_gray(&gray_image(16, 16), 16, 16, 75);
        let sof = file
            .windows(2)
            .position(|w| w == [0xFF, 0xC0])
            .expect("no SOF0");
        // SOF0 payload: len u16 | precision | height u16 | width u16 ...
        file[sof + 5..sof + 9].copy_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(decode_jfif(&file).is_err());
    }

    #[test]
    fn oversubscribed_huffman_table_rejected() {
        // Fuzz-found (repro fuzz, seed 1): a DHT whose code-length
        // histogram over-subscribes the code space made the canonical
        // code counter run past the decoder's primary LUT. The spec
        // fails the Kraft check and the parser must reject it.
        let mut file = encode_jfif_gray(&gray_image(16, 16), 16, 16, 75);
        let dht = file
            .windows(2)
            .position(|w| w == [0xFF, 0xC4])
            .expect("no DHT");
        // DHT payload: len u16 | class/id | bits[16] | values. This is
        // the 12-symbol DC table; claim all 12 codes are 1 bit long.
        // The total count (and so the segment length) is unchanged, but
        // only 2 codes of length 1 exist — the spec over-subscribes.
        let mut bits = [0u8; 16];
        bits[0] = 12;
        file[dht + 5..dht + 21].copy_from_slice(&bits);
        assert!(matches!(decode_jfif(&file), Err(e) if e.contains("Huffman")));
    }

    #[test]
    fn fuzzed_mutations_never_panic() {
        // Fuzz-style regression over mutated headers and entropy data:
        // every public decode entry point must return Ok or Err on
        // corrupt input, never panic. Deterministic LCG so a failure
        // reproduces byte-for-byte.
        let seeds = [
            encode_jfif_gray(&gray_image(24, 16), 24, 16, 75),
            encode_jfif_rgb(&rgb_image(16, 8), 16, 8, 60),
            encode_jfif_gray_dri(&gray_image(48, 24), 48, 24, 90, 3),
        ];
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for file in &seeds {
            // Single-byte corruptions, biased toward the header area
            // where the structural parsers live.
            for _ in 0..400 {
                let mut m = file.clone();
                let idx = if rng() % 2 == 0 {
                    rng() % m.len().min(64)
                } else {
                    rng() % m.len()
                };
                m[idx] = (rng() % 256) as u8;
                let _ = decode_jfif(&m);
            }
            // Truncations at every prefix length (coarse stride plus the
            // full tail) — the classic half-written-file shape.
            for cut in (0..file.len()).step_by(7).chain(file.len() - 8..file.len()) {
                let _ = decode_jfif(&file[..cut]);
            }
            // Double corruptions: marker bytes and lengths together.
            for _ in 0..200 {
                let mut m = file.clone();
                let a = rng() % m.len();
                let b = rng() % m.len();
                m[a] ^= 0xFF;
                m[b] = (rng() % 256) as u8;
                let _ = decode_jfif(&m);
            }
        }
    }

    #[test]
    fn restart_markers_round_trip() {
        let (w, h) = (48, 24); // 18 MCUs
        let img = gray_image(w, h);
        for dri in [1u16, 3, 6, 18, 100] {
            let file = encode_jfif_gray_dri(&img, w, h, 90, dri);
            let decoded = decode_jfif(&file).unwrap();
            let JfifPixels::Gray(px) = decoded.pixels else {
                panic!()
            };
            assert!(psnr(&img, &px) > 30.0, "DRI {dri}: PSNR {}", psnr(&img, &px));
        }
    }

    #[test]
    fn restart_file_contains_rst_markers() {
        let (w, h) = (48, 24);
        let file = encode_jfif_gray_dri(&gray_image(w, h), w, h, 90, 6);
        // 18 MCUs / 6 = boundaries after MCU 6 and 12 -> RST0, RST1.
        let rst_count = file
            .windows(2)
            .filter(|p| p[0] == 0xFF && (0xD0..=0xD7).contains(&p[1]))
            .count();
        assert_eq!(rst_count, 2);
        // And a DRI segment advertising the interval.
        assert!(file
            .windows(4)
            .any(|p| p[0] == 0xFF && p[1] == 0xDD && p[2] == 0 && p[3] == 4 + 2 - 2));
    }

    #[test]
    fn restart_limits_corruption_spread() {
        // Corrupt entropy bits inside one restart segment: decoding may
        // garble that segment, but later segments still decode (the
        // whole point of restart markers).
        let (w, h) = (48, 24);
        let img = gray_image(w, h);
        let file = encode_jfif_gray_dri(&img, w, h, 90, 3);
        // Find the first RST marker; corrupt a byte shortly before it
        // (inside segment 0), keeping 0xFF stuffing intact.
        let rst_pos = file
            .windows(2)
            .position(|p| p[0] == 0xFF && (0xD0..=0xD7).contains(&p[1]))
            .expect("has restart markers");
        let mut bad = file.clone();
        let target = rst_pos - 3;
        assert_ne!(bad[target], 0xFF);
        assert_ne!(bad[target - 1], 0xFF, "avoid creating a marker");
        bad[target] ^= 0x55;
        if bad[target] == 0xFF {
            bad[target] = 0x7F;
        }
        // Decoding may fail inside the corrupt segment or produce noise
        // there; when it succeeds, pixels after the first restart
        // boundary must still be faithful.
        if let Ok(decoded) = decode_jfif(&bad) {
            let JfifPixels::Gray(px) = decoded.pixels else {
                panic!()
            };
            // Compare the second half of the image (MCUs >= 9, i.e. the
            // bottom row of blocks) against a clean decode.
            let clean = match decode_jfif(&file).unwrap().pixels {
                JfifPixels::Gray(p) => p,
                _ => unreachable!(),
            };
            let half = w * (h / 2);
            let tail_psnr = psnr(&clean[half..], &px[half..]);
            assert!(
                tail_psnr > 30.0,
                "tail must survive corruption: PSNR {tail_psnr}"
            );
        }
    }

    #[test]
    fn gray_decode_matches_internal_codec() {
        // The JFIF path and the raw-segment path share the block codec;
        // pixel output must agree exactly for 8-aligned images.
        let (w, h) = (48, 24);
        let img = gray_image(w, h);
        let q = 75;
        let file = encode_jfif_gray(&img, w, h, q);
        let jfif = decode_jfif(&file).unwrap();
        let raw = crate::codec::decode_frame(&crate::codec::encode_frame(&img, w, h, q), w, h, q)
            .unwrap();
        let JfifPixels::Gray(px) = jfif.pixels else {
            panic!()
        };
        assert_eq!(px, raw);
    }

    #[test]
    fn neutral_gray_rgb_survives_color_path() {
        let (w, h) = (16, 16);
        let img: Vec<u8> = (0..w * h).flat_map(|i| [(i % 256) as u8; 3]).collect();
        let file = encode_jfif_rgb(&img, w, h, 95);
        let decoded = decode_jfif(&file).unwrap();
        let JfifPixels::Rgb(px) = decoded.pixels else {
            panic!()
        };
        // Gray input must stay gray (channels equal within quant error).
        for p in px.chunks_exact(3) {
            assert!((p[0] as i32 - p[1] as i32).abs() <= 6, "{p:?}");
            assert!((p[1] as i32 - p[2] as i32).abs() <= 6, "{p:?}");
        }
    }
}
