//! Deterministic synthetic video generation: the paper's two input files
//! (578 and 3000 JPEG images of identical dimensions, §4.3) are not
//! available, so we synthesize streams with the same *structure* — same
//! frame count, same per-image block count — and real encoded content.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codec::encode_frame;
use crate::frame::{EncodedFrame, FrameHeader, MjpegStream};

/// Default frame geometry: 48×24 = 18 blocks, matching the block count
/// the paper's Table 2 implies (10 386 sends = 18 blocks × 577 frames).
pub const DEFAULT_WIDTH: usize = 48;
/// Default frame height.
pub const DEFAULT_HEIGHT: usize = 24;
/// Default encoding quality.
pub const DEFAULT_QUALITY: u8 = 75;

/// Render frame `t` of the synthetic video: a moving diagonal gradient
/// with a drifting bright disc and deterministic sensor noise.
pub fn render_frame(t: usize, width: usize, height: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut px = vec![0u8; width * height];
    let cx = (t * 3) % width;
    let cy = (t * 2) % height;
    for y in 0..height {
        for x in 0..width {
            let gradient = ((x + y + t) * 255 / (width + height)) as i32;
            let dx = x as i32 - cx as i32;
            let dy = y as i32 - cy as i32;
            let disc = if dx * dx + dy * dy < 36 { 80 } else { 0 };
            let noise: i32 = rng.random_range(-6..=6);
            px[y * width + x] = (gradient + disc + noise).clamp(0, 255) as u8;
        }
    }
    px
}

/// Synthesize an encoded MJPEG stream of `frames` frames.
pub fn synthesize_stream(
    frames: usize,
    width: usize,
    height: usize,
    quality: u8,
    seed: u64,
) -> MjpegStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let header = FrameHeader {
        width: width as u16,
        height: height as u16,
        quality,
    };
    let frames = (0..frames)
        .map(|t| EncodedFrame {
            header,
            data: encode_frame(&render_frame(t, width, height, &mut rng), width, height, quality),
        })
        .collect();
    MjpegStream { frames }
}

/// The paper's small input: 578 images (§4.3).
pub fn paper_stream_578() -> MjpegStream {
    synthesize_stream(578, DEFAULT_WIDTH, DEFAULT_HEIGHT, DEFAULT_QUALITY, 0x578)
}

/// The paper's large input: 3000 images (§4.3).
pub fn paper_stream_3000() -> MjpegStream {
    synthesize_stream(3000, DEFAULT_WIDTH, DEFAULT_HEIGHT, DEFAULT_QUALITY, 0x3000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_frame, psnr};

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize_stream(5, 48, 24, 75, 42);
        let b = synthesize_stream(5, 48, 24, 75, 42);
        assert_eq!(a, b);
        let c = synthesize_stream(5, 48, 24, 75, 43);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn every_synthesized_frame_decodes() {
        let s = synthesize_stream(10, 48, 24, 75, 7);
        assert_eq!(s.len(), 10);
        let mut rng = StdRng::seed_from_u64(7);
        for (t, f) in s.frames.iter().enumerate() {
            let decoded = decode_frame(&f.data, 48, 24, 75).unwrap();
            let original = render_frame(t, 48, 24, &mut rng);
            let p = psnr(&original, &decoded);
            assert!(p > 28.0, "frame {t}: PSNR {p:.1} dB");
        }
    }

    #[test]
    fn frames_have_paper_block_count() {
        let s = synthesize_stream(2, DEFAULT_WIDTH, DEFAULT_HEIGHT, DEFAULT_QUALITY, 1);
        assert_eq!(s.frames[0].header.blocks(), 18);
    }

    #[test]
    fn consecutive_frames_differ() {
        let s = synthesize_stream(3, 48, 24, 75, 9);
        assert_ne!(s.frames[0].data, s.frames[1].data);
        assert_ne!(s.frames[1].data, s.frames[2].data);
    }
}
