//! RGB ↔ YCbCr conversion (JFIF full-range BT.601) for color JPEG.

/// Convert one RGB pixel to full-range YCbCr (JFIF definition).
pub fn rgb_to_ycbcr(r: u8, g: u8, b: u8) -> (u8, u8, u8) {
    let (r, g, b) = (r as f32, g as f32, b as f32);
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = -0.168736 * r - 0.331264 * g + 0.5 * b + 128.0;
    let cr = 0.5 * r - 0.418688 * g - 0.081312 * b + 128.0;
    (
        y.round().clamp(0.0, 255.0) as u8,
        cb.round().clamp(0.0, 255.0) as u8,
        cr.round().clamp(0.0, 255.0) as u8,
    )
}

/// Convert one full-range YCbCr pixel back to RGB.
pub fn ycbcr_to_rgb(y: u8, cb: u8, cr: u8) -> (u8, u8, u8) {
    let y = y as f32;
    let cb = cb as f32 - 128.0;
    let cr = cr as f32 - 128.0;
    let r = y + 1.402 * cr;
    let g = y - 0.344136 * cb - 0.714136 * cr;
    let b = y + 1.772 * cb;
    (
        r.round().clamp(0.0, 255.0) as u8,
        g.round().clamp(0.0, 255.0) as u8,
        b.round().clamp(0.0, 255.0) as u8,
    )
}

/// Split an interleaved RGB image into Y, Cb, Cr planes.
pub fn planes_from_rgb(rgb: &[u8]) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    assert!(rgb.len().is_multiple_of(3));
    let n = rgb.len() / 3;
    let mut y = Vec::with_capacity(n);
    let mut cb = Vec::with_capacity(n);
    let mut cr = Vec::with_capacity(n);
    for px in rgb.chunks_exact(3) {
        let (py, pcb, pcr) = rgb_to_ycbcr(px[0], px[1], px[2]);
        y.push(py);
        cb.push(pcb);
        cr.push(pcr);
    }
    (y, cb, cr)
}

/// Merge Y, Cb, Cr planes back into interleaved RGB, through the
/// vectorized bulk path where the CPU has one.
pub fn rgb_from_planes(y: &[u8], cb: &[u8], cr: &[u8]) -> Vec<u8> {
    assert_eq!(y.len(), cb.len());
    assert_eq!(y.len(), cr.len());
    let mut rgb = vec![0u8; y.len() * 3];
    ycbcr_to_rgb_slice(y, cb, cr, &mut rgb);
    rgb
}

/// Bulk YCbCr→RGB over planes, writing interleaved RGB into `out`
/// (`3 × y.len()` bytes). Byte-identical to calling [`ycbcr_to_rgb`]
/// per pixel: the SIMD path performs the same f32 operations in the
/// same order, and emulates `f32::round` + clamp exactly (see
/// `round_clamp_exact`).
pub fn ycbcr_to_rgb_slice(y: &[u8], cb: &[u8], cr: &[u8], out: &mut [u8]) {
    assert_eq!(y.len(), cb.len());
    assert_eq!(y.len(), cr.len());
    assert_eq!(out.len(), y.len() * 3);
    let mut i = 0;
    #[cfg(target_arch = "x86_64")]
    if crate::simd::active_level() != crate::simd::SimdLevel::Scalar {
        // SSE2 is part of the x86-64 baseline; process 4 pixels a step.
        while i + 4 <= y.len() {
            unsafe { sse2_ycbcr4(&y[i..], &cb[i..], &cr[i..], &mut out[3 * i..]) };
            i += 4;
        }
    }
    for k in i..y.len() {
        let (r, g, b) = ycbcr_to_rgb(y[k], cb[k], cr[k]);
        out[3 * k] = r;
        out[3 * k + 1] = g;
        out[3 * k + 2] = b;
    }
}

/// Convert 4 pixels with SSE2. The f32 arithmetic mirrors
/// [`ycbcr_to_rgb`] operation for operation (no FMA contraction, same
/// association), so the lane values are bitwise equal to the scalar
/// intermediates; rounding happens in f64 where `x + 0.5` is exact,
/// making `trunc(x + 0.5)` clamped to `[0, 255]` equal to
/// `x.round().clamp(0.0, 255.0)` for every f32 `x` (negative lanes all
/// clamp to 0 either way; non-negative lanes get exact half-away
/// rounding).
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn sse2_ycbcr4(y: &[u8], cb: &[u8], cr: &[u8], out: &mut [u8]) {
    use std::arch::x86_64::*;
    let load4 = |s: &[u8]| {
        _mm_cvtepi32_ps(_mm_set_epi32(
            s[3] as i32,
            s[2] as i32,
            s[1] as i32,
            s[0] as i32,
        ))
    };
    let yf = load4(y);
    let off = _mm_set1_ps(128.0);
    let cbf = _mm_sub_ps(load4(cb), off);
    let crf = _mm_sub_ps(load4(cr), off);

    let r = _mm_add_ps(yf, _mm_mul_ps(_mm_set1_ps(1.402), crf));
    let g = _mm_sub_ps(
        _mm_sub_ps(yf, _mm_mul_ps(_mm_set1_ps(0.344_136), cbf)),
        _mm_mul_ps(_mm_set1_ps(0.714_136), crf),
    );
    let b = _mm_add_ps(yf, _mm_mul_ps(_mm_set1_ps(1.772), cbf));

    let round_clamp_exact = |v: __m128| -> [i32; 4] {
        let half = _mm_set1_pd(0.5);
        let lo = _mm_cvttpd_epi32(_mm_add_pd(_mm_cvtps_pd(v), half));
        let hi = _mm_cvttpd_epi32(_mm_add_pd(
            _mm_cvtps_pd(_mm_movehl_ps(v, v)),
            half,
        ));
        let q = _mm_unpacklo_epi64(lo, hi);
        let q = _mm_max_epi16(q, _mm_setzero_si128());
        let q = _mm_min_epi16(q, _mm_set1_epi32(255));
        let mut lanes = [0i32; 4];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, q);
        lanes
    };
    let (rr, gg, bb) = (round_clamp_exact(r), round_clamp_exact(g), round_clamp_exact(b));
    for k in 0..4 {
        out[3 * k] = rr[k] as u8;
        out[3 * k + 1] = gg[k] as u8;
        out[3 * k + 2] = bb[k] as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primaries_map_to_expected_luma() {
        assert_eq!(rgb_to_ycbcr(255, 255, 255).0, 255);
        assert_eq!(rgb_to_ycbcr(0, 0, 0), (0, 128, 128));
        // Pure green carries most luma of the primaries.
        let (yr, _, _) = rgb_to_ycbcr(255, 0, 0);
        let (yg, _, _) = rgb_to_ycbcr(0, 255, 0);
        let (yb, _, _) = rgb_to_ycbcr(0, 0, 255);
        assert!(yg > yr && yr > yb);
    }

    #[test]
    fn gray_pixels_have_neutral_chroma() {
        for v in [0u8, 51, 128, 200, 255] {
            let (y, cb, cr) = rgb_to_ycbcr(v, v, v);
            assert_eq!(y, v);
            assert!((cb as i32 - 128).abs() <= 1);
            assert!((cr as i32 - 128).abs() <= 1);
        }
    }

    #[test]
    fn round_trip_error_is_tiny() {
        for r in (0..=255).step_by(17) {
            for g in (0..=255).step_by(23) {
                for b in (0..=255).step_by(29) {
                    let (y, cb, cr) = rgb_to_ycbcr(r as u8, g as u8, b as u8);
                    let (r2, g2, b2) = ycbcr_to_rgb(y, cb, cr);
                    assert!((r - r2 as i32).abs() <= 2, "{r} {g} {b}");
                    assert!((g - g2 as i32).abs() <= 2, "{r} {g} {b}");
                    assert!((b - b2 as i32).abs() <= 2, "{r} {g} {b}");
                }
            }
        }
    }

    #[test]
    fn bulk_conversion_is_bit_exact_vs_scalar() {
        // Randomized triples plus saturation edges; the bulk path must
        // match the per-pixel scalar conversion byte for byte.
        let mut x: u64 = 0xC0FF_EE00_D15E_A5E5;
        let mut y = vec![0u8; 1031];
        let mut cb = vec![0u8; 1031];
        let mut cr = vec![0u8; 1031];
        for i in 0..y.len() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            y[i] = (x >> 40) as u8;
            cb[i] = (x >> 48) as u8;
            cr[i] = (x >> 56) as u8;
        }
        // Force extremes into the head (SIMD lanes) and tail (scalar
        // remainder — length 1031 % 4 != 0).
        for (i, &(a, b, c)) in [(0, 0, 0), (255, 255, 255), (0, 255, 0), (255, 0, 255)]
            .iter()
            .enumerate()
        {
            y[i] = a;
            cb[i] = b;
            cr[i] = c;
            let t = y.len() - 1 - i;
            y[t] = a;
            cb[t] = b;
            cr[t] = c;
        }
        let bulk = rgb_from_planes(&y, &cb, &cr);
        for i in 0..y.len() {
            let (r, g, b) = ycbcr_to_rgb(y[i], cb[i], cr[i]);
            assert_eq!(
                (bulk[3 * i], bulk[3 * i + 1], bulk[3 * i + 2]),
                (r, g, b),
                "pixel {i}: y={} cb={} cr={}",
                y[i],
                cb[i],
                cr[i]
            );
        }
    }

    #[test]
    fn plane_split_merge_round_trips() {
        let rgb: Vec<u8> = (0..3 * 64).map(|i| (i * 7 % 256) as u8).collect();
        let (y, cb, cr) = planes_from_rgb(&rgb);
        let back = rgb_from_planes(&y, &cb, &cr);
        assert_eq!(back.len(), rgb.len());
        for (a, b) in rgb.iter().zip(back.iter()) {
            assert!((*a as i32 - *b as i32).abs() <= 2);
        }
    }
}
