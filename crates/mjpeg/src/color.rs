//! RGB ↔ YCbCr conversion (JFIF full-range BT.601) for color JPEG.

/// Convert one RGB pixel to full-range YCbCr (JFIF definition).
pub fn rgb_to_ycbcr(r: u8, g: u8, b: u8) -> (u8, u8, u8) {
    let (r, g, b) = (r as f32, g as f32, b as f32);
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = -0.168736 * r - 0.331264 * g + 0.5 * b + 128.0;
    let cr = 0.5 * r - 0.418688 * g - 0.081312 * b + 128.0;
    (
        y.round().clamp(0.0, 255.0) as u8,
        cb.round().clamp(0.0, 255.0) as u8,
        cr.round().clamp(0.0, 255.0) as u8,
    )
}

/// Convert one full-range YCbCr pixel back to RGB.
pub fn ycbcr_to_rgb(y: u8, cb: u8, cr: u8) -> (u8, u8, u8) {
    let y = y as f32;
    let cb = cb as f32 - 128.0;
    let cr = cr as f32 - 128.0;
    let r = y + 1.402 * cr;
    let g = y - 0.344136 * cb - 0.714136 * cr;
    let b = y + 1.772 * cb;
    (
        r.round().clamp(0.0, 255.0) as u8,
        g.round().clamp(0.0, 255.0) as u8,
        b.round().clamp(0.0, 255.0) as u8,
    )
}

/// Split an interleaved RGB image into Y, Cb, Cr planes.
pub fn planes_from_rgb(rgb: &[u8]) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    assert!(rgb.len().is_multiple_of(3));
    let n = rgb.len() / 3;
    let mut y = Vec::with_capacity(n);
    let mut cb = Vec::with_capacity(n);
    let mut cr = Vec::with_capacity(n);
    for px in rgb.chunks_exact(3) {
        let (py, pcb, pcr) = rgb_to_ycbcr(px[0], px[1], px[2]);
        y.push(py);
        cb.push(pcb);
        cr.push(pcr);
    }
    (y, cb, cr)
}

/// Merge Y, Cb, Cr planes back into interleaved RGB.
pub fn rgb_from_planes(y: &[u8], cb: &[u8], cr: &[u8]) -> Vec<u8> {
    assert_eq!(y.len(), cb.len());
    assert_eq!(y.len(), cr.len());
    let mut rgb = Vec::with_capacity(y.len() * 3);
    for i in 0..y.len() {
        let (r, g, b) = ycbcr_to_rgb(y[i], cb[i], cr[i]);
        rgb.extend_from_slice(&[r, g, b]);
    }
    rgb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primaries_map_to_expected_luma() {
        assert_eq!(rgb_to_ycbcr(255, 255, 255).0, 255);
        assert_eq!(rgb_to_ycbcr(0, 0, 0), (0, 128, 128));
        // Pure green carries most luma of the primaries.
        let (yr, _, _) = rgb_to_ycbcr(255, 0, 0);
        let (yg, _, _) = rgb_to_ycbcr(0, 255, 0);
        let (yb, _, _) = rgb_to_ycbcr(0, 0, 255);
        assert!(yg > yr && yr > yb);
    }

    #[test]
    fn gray_pixels_have_neutral_chroma() {
        for v in [0u8, 51, 128, 200, 255] {
            let (y, cb, cr) = rgb_to_ycbcr(v, v, v);
            assert_eq!(y, v);
            assert!((cb as i32 - 128).abs() <= 1);
            assert!((cr as i32 - 128).abs() <= 1);
        }
    }

    #[test]
    fn round_trip_error_is_tiny() {
        for r in (0..=255).step_by(17) {
            for g in (0..=255).step_by(23) {
                for b in (0..=255).step_by(29) {
                    let (y, cb, cr) = rgb_to_ycbcr(r as u8, g as u8, b as u8);
                    let (r2, g2, b2) = ycbcr_to_rgb(y, cb, cr);
                    assert!((r - r2 as i32).abs() <= 2, "{r} {g} {b}");
                    assert!((g - g2 as i32).abs() <= 2, "{r} {g} {b}");
                    assert!((b - b2 as i32).abs() <= 2, "{r} {g} {b}");
                }
            }
        }
    }

    #[test]
    fn plane_split_merge_round_trips() {
        let rgb: Vec<u8> = (0..3 * 64).map(|i| (i * 7 % 256) as u8).collect();
        let (y, cb, cr) = planes_from_rgb(&rgb);
        let back = rgb_from_planes(&y, &cb, &cr);
        assert_eq!(back.len(), rgb.len());
        for (a, b) in rgb.iter().zip(back.iter()) {
            assert!((*a as i32 - *b as i32).abs() <= 2);
        }
    }
}
