//! # mjpeg — baseline JPEG codec and Motion-JPEG workload for EMBera
//!
//! The paper's evaluation workload is "an existing application for
//! decoding a stream of independent and individually encoded JPEG
//! images. The decoding process is done by dividing each individual
//! image in smaller blocks. Each block is decoded mainly by applying a
//! Huffman algorithm, a pixel reordering and the Inverse Discrete Cosine
//! Transformation (IDCT). Then, all the blocks are reordered in order to
//! reconstitute original images." (§3.2)
//!
//! The original input files are unavailable, so this crate provides the
//! whole path from scratch:
//!
//! * a **baseline JPEG codec** (8×8 FDCT/IDCT, Annex-K quantization and
//!   Huffman tables with IJG quality scaling, zigzag ordering, bit-level
//!   entropy coding with 0xFF stuffing) — [`codec`], [`dct`], [`quant`],
//!   [`huffman`], [`bitstream`];
//! * a **Motion-JPEG stream** container and a deterministic synthetic
//!   video generator — [`frame`], [`workload`]. The default geometry is
//!   48×24 grayscale = **18 blocks per image**, matching the paper's
//!   Table 2 counts (10 386 sends = 18 × 577; the paper's numbers imply
//!   the first frame is consumed for pipeline configuration and its
//!   blocks are not forwarded — this pipeline reproduces that);
//! * the **componentized decoder** as EMBera behaviors — [`pipeline`]:
//!   `Fetch` (entropy decode + dequantize + reorder), `IDCT` components,
//!   `Reorder` (frame reassembly), and the merged `Fetch-Reorder` used
//!   on the MPSoC deployment (paper §5.3, Figure 7).

pub mod bitstream;
pub mod codec;
pub mod color;
pub mod dct;
pub mod frame;
pub mod huffman;
pub mod jfif;
pub mod overload;
pub mod pipeline;
pub mod quant;
pub mod simd;
pub mod workload;

pub use codec::{decode_frame, decode_frame_with, encode_frame, encode_frame_with};
pub use dct::DctKind;
pub use jfif::{decode_jfif, encode_jfif_gray, encode_jfif_rgb, JfifImage, JfifPixels};
pub use frame::{FrameHeader, MjpegStream};
pub use pipeline::{
    build_mpsoc_app, build_smp_app, pipeline_pool, BatchView, DispatchPolicy, FetchBehavior,
    FetchReorderBehavior, IdctBehavior, MjpegAppConfig, ReorderBehavior, WorkProfile,
};
pub use overload::{
    build_overload_app, ArrivalProcess, AutoscaleConfig, LoadGenBehavior, OverloadConfig,
    OverloadProbe, Pacing,
};
pub use simd::{active_level, SimdLevel};
pub use workload::synthesize_stream;
