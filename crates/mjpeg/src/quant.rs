//! Quantization tables (ITU-T T.81 Annex K.1), IJG quality scaling, and
//! zigzag coefficient ordering.

use crate::dct::BLOCK_SIZE;

/// Annex K.1 luminance quantization table, natural (row-major) order.
pub const LUMA_QTABLE: [u16; BLOCK_SIZE] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Annex K.2 chrominance quantization table, natural (row-major) order.
pub const CHROMA_QTABLE: [u16; BLOCK_SIZE] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// Zigzag scan order: `ZIGZAG[k]` is the natural-order index of the k-th
/// coefficient in scan order (T.81 Figure 5).
pub const ZIGZAG: [usize; BLOCK_SIZE] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// Scale the base table for a quality factor in [1, 100] using the IJG
/// formula (quality 50 = base table; higher = finer quantization).
pub fn scaled_qtable(quality: u8) -> [u16; BLOCK_SIZE] {
    scale_base_table(&LUMA_QTABLE, quality)
}

/// Scale the chrominance base table for a quality factor.
pub fn scaled_qtable_chroma(quality: u8) -> [u16; BLOCK_SIZE] {
    scale_base_table(&CHROMA_QTABLE, quality)
}

/// IJG quality scaling of an arbitrary base table.
pub fn scale_base_table(base: &[u16; BLOCK_SIZE], quality: u8) -> [u16; BLOCK_SIZE] {
    let q = quality.clamp(1, 100) as i32;
    let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
    let mut out = [0u16; BLOCK_SIZE];
    for (dst, &b) in out.iter_mut().zip(base.iter()) {
        let v = (b as i32 * scale + 50) / 100;
        *dst = v.clamp(1, 255) as u16;
    }
    out
}

/// Quantize natural-order DCT coefficients and emit them in zigzag order.
pub fn quantize_zigzag(coeffs: &[f32; BLOCK_SIZE], qtable: &[u16; BLOCK_SIZE]) -> [i16; BLOCK_SIZE] {
    let mut out = [0i16; BLOCK_SIZE];
    for (k, dst) in out.iter_mut().enumerate() {
        let n = ZIGZAG[k];
        let q = qtable[n] as f32;
        *dst = (coeffs[n] / q).round() as i16;
    }
    out
}

/// Dequantize zigzag-ordered coefficients back into natural order — the
/// paper's "pixel reordering" stage performed by the Fetch component.
pub fn dequantize_reorder(zz: &[i16; BLOCK_SIZE], qtable: &[u16; BLOCK_SIZE]) -> [i32; BLOCK_SIZE] {
    let mut out = [0i32; BLOCK_SIZE];
    for (k, &v) in zz.iter().enumerate() {
        let n = ZIGZAG[k];
        out[n] = v as i32 * qtable[n] as i32;
    }
    out
}

/// Dequantization table for the fast integer IDCT: the quantizer step and
/// the AAN per-frequency output scales are folded into one fixed-point
/// multiplier, so dequantization + DCT prescaling costs a single integer
/// multiply per coefficient (see [`crate::dct::idct_scaled_to_pixels`]).
/// Entries are `q[n] · aan[u] · aan[v] · 2^AAN_FRAC_BITS` in natural
/// order.
pub fn fast_dequant_table(qtable: &[u16; BLOCK_SIZE]) -> [i32; BLOCK_SIZE] {
    let aan = crate::dct::aan_scales();
    let mut out = [0i32; BLOCK_SIZE];
    for v in 0..8 {
        for u in 0..8 {
            let n = v * 8 + u;
            let s = qtable[n] as f64 * aan[u] * aan[v]
                * (1u32 << crate::dct::AAN_FRAC_BITS) as f64;
            out[n] = s.round() as i32;
        }
    }
    out
}

/// Fast-path fusion of dequantize + reorder + AAN prescale: zigzag input,
/// natural-order output scaled for [`crate::dct::idct_scaled_to_pixels`].
pub fn dequantize_reorder_scaled(
    zz: &[i16; BLOCK_SIZE],
    ftable: &[i32; BLOCK_SIZE],
) -> [i32; BLOCK_SIZE] {
    let mut out = [0i32; BLOCK_SIZE];
    for (k, &v) in zz.iter().enumerate() {
        let n = ZIGZAG[k];
        // Valid baseline streams keep |zz·q| ≤ 2048, well inside i32
        // after the 2^12 prescale; saturate rather than wrap on corrupt
        // input.
        let p = v as i64 * ftable[n] as i64;
        out[n] = p.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
    }
    out
}

/// Quantization divisors for the fast forward DCT: the quantizer step,
/// the AAN output scales and the transform's 8·2^AAN_FRAC_BITS gain in
/// one divisor per coefficient (natural order), matching
/// [`crate::dct::fdct_fast_scaled`]'s output domain.
pub fn fast_quant_divisors(qtable: &[u16; BLOCK_SIZE]) -> [i64; BLOCK_SIZE] {
    let aan = crate::dct::aan_scales();
    let gain = (8u32 << crate::dct::AAN_FRAC_BITS) as f64;
    let mut out = [0i64; BLOCK_SIZE];
    for v in 0..8 {
        for u in 0..8 {
            let n = v * 8 + u;
            out[n] = (qtable[n] as f64 * aan[u] * aan[v] * gain).round() as i64;
        }
    }
    out
}

/// Quantize AAN-scaled forward-DCT output and emit it in zigzag order
/// (the integer counterpart of [`quantize_zigzag`]).
pub fn quantize_zigzag_fast(
    coeffs: &[i64; BLOCK_SIZE],
    divisors: &[i64; BLOCK_SIZE],
) -> [i16; BLOCK_SIZE] {
    let mut out = [0i16; BLOCK_SIZE];
    for (k, dst) in out.iter_mut().enumerate() {
        let n = ZIGZAG[k];
        let c = coeffs[n];
        let d = divisors[n];
        // Round-to-nearest division, symmetric around zero.
        let q = if c >= 0 { (c + d / 2) / d } else { (c - d / 2) / d };
        *dst = q as i16;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; BLOCK_SIZE];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zigzag_starts_along_the_antidiagonals() {
        // First few entries of the standard scan.
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn quality_50_is_base_table() {
        assert_eq!(scaled_qtable(50), LUMA_QTABLE);
    }

    #[test]
    fn quality_ordering_monotone() {
        let q90 = scaled_qtable(90);
        let q10 = scaled_qtable(10);
        for i in 0..BLOCK_SIZE {
            assert!(q90[i] <= LUMA_QTABLE[i]);
            assert!(q10[i] >= LUMA_QTABLE[i]);
        }
    }

    #[test]
    fn qtable_entries_stay_positive() {
        for q in [1u8, 25, 50, 75, 100] {
            assert!(scaled_qtable(q).iter().all(|&v| (1..=255).contains(&v)));
        }
    }

    #[test]
    fn quantize_dequantize_bounded_error() {
        let q = scaled_qtable(75);
        let mut coeffs = [0.0f32; BLOCK_SIZE];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = ((i as f32) * 13.7).sin() * 300.0;
        }
        let zz = quantize_zigzag(&coeffs, &q);
        let back = dequantize_reorder(&zz, &q);
        for n in 0..BLOCK_SIZE {
            let err = (coeffs[n] - back[n] as f32).abs();
            assert!(
                err <= q[n] as f32 / 2.0 + 0.5,
                "coeff {n}: err {err} exceeds q/2 = {}",
                q[n] as f32 / 2.0
            );
        }
    }
}
