//! Bit-level I/O for JPEG entropy-coded segments, including the 0xFF
//! byte-stuffing rule (ITU-T T.81 §B.1.1.5: a 0x00 byte is inserted
//! after every 0xFF data byte so markers stay unambiguous).

/// MSB-first bit writer with JPEG byte stuffing.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    nbits: u32,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `n` bits of `value`, MSB first (n ≤ 24).
    pub fn put(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 24);
        debug_assert!(value < (1u32 << n) || n == 0, "value {value} overflows {n} bits");
        if n == 0 {
            return;
        }
        self.acc = (self.acc << n) | (value & ((1u32 << n) - 1));
        self.nbits += n;
        while self.nbits >= 8 {
            let byte = ((self.acc >> (self.nbits - 8)) & 0xFF) as u8;
            self.out.push(byte);
            if byte == 0xFF {
                self.out.push(0x00); // stuffing
            }
            self.nbits -= 8;
        }
    }

    /// Pad the final partial byte with 1-bits (T.81 §F.1.2.3) and return
    /// the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put((1 << pad) - 1, pad);
        }
        self.out
    }

    /// Bits written so far (excluding padding).
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + self.nbits as u64
    }
}

/// MSB-first bit reader that undoes byte stuffing.
///
/// Buffered: up to 64 bits are staged in an accumulator and refilled in
/// bulk (a 32-bit load when the next window is free of 0xFF bytes, else
/// byte-at-a-time unstuffing), so the hot `peek`/`consume` path touches
/// the input slice once per several symbols rather than once per bit.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    /// Low `nbits` bits are valid, most recently loaded byte lowest.
    acc: u64,
    nbits: u32,
    /// Total bits consumed (for workload accounting).
    consumed: u64,
}

/// Error from the bit reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

impl std::fmt::Display for OutOfBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "entropy-coded segment exhausted")
    }
}
impl std::error::Error for OutOfBits {}

impl<'a> BitReader<'a> {
    /// Read over an entropy-coded segment.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
            consumed: 0,
        }
    }

    /// Top up the accumulator as far as possible (to >56 valid bits or
    /// end of input).
    fn refill(&mut self) {
        while self.nbits <= 56 {
            // Bulk path: pull four bytes at once when none is 0xFF (no
            // unstuffing decisions needed in the window).
            if self.nbits <= 32 && self.pos + 4 <= self.data.len() {
                let w = u32::from_be_bytes(
                    self.data[self.pos..self.pos + 4].try_into().unwrap(),
                );
                // Any byte equal to 0xFF ⇔ any byte of !w equal to 0.
                let t = !w;
                if t.wrapping_sub(0x0101_0101) & !t & 0x8080_8080 == 0 {
                    self.acc = (self.acc << 32) | w as u64;
                    self.nbits += 32;
                    self.pos += 4;
                    continue;
                }
            }
            if self.pos >= self.data.len() {
                return;
            }
            let byte = self.data[self.pos];
            self.pos += 1;
            if byte == 0xFF {
                // Skip the stuffed 0x00.
                if self.pos < self.data.len() && self.data[self.pos] == 0x00 {
                    self.pos += 1;
                }
            }
            self.acc = (self.acc << 8) | byte as u64;
            self.nbits += 8;
        }
    }

    /// Look at the next `n` bits (n ≤ 24) without consuming them,
    /// zero-padded past the end of the segment. Never fails; pair with
    /// [`BitReader::consume`] which enforces the real bit budget.
    pub fn peek(&mut self, n: u32) -> u32 {
        debug_assert!(n <= 24);
        if self.nbits < n {
            self.refill();
        }
        let mask = (1u32 << n) - 1;
        if self.nbits >= n {
            ((self.acc >> (self.nbits - n)) as u32) & mask
        } else {
            // Exhausted input: expose what's left, zero-padded on the
            // right so prefix comparisons still line up.
            ((self.acc << (n - self.nbits)) as u32) & mask
        }
    }

    /// Discard `n` previously peeked bits; fails if the segment holds
    /// fewer than `n` real bits.
    pub fn consume(&mut self, n: u32) -> Result<(), OutOfBits> {
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(OutOfBits);
            }
        }
        self.nbits -= n;
        self.consumed += n as u64;
        Ok(())
    }

    /// Read one bit.
    pub fn bit(&mut self) -> Result<u32, OutOfBits> {
        if self.nbits == 0 {
            self.refill();
            if self.nbits == 0 {
                return Err(OutOfBits);
            }
        }
        self.nbits -= 1;
        self.consumed += 1;
        Ok(((self.acc >> self.nbits) & 1) as u32)
    }

    /// Read `n` bits MSB-first (n ≤ 16).
    pub fn bits(&mut self, n: u32) -> Result<u32, OutOfBits> {
        debug_assert!(n <= 16);
        if n == 0 {
            return Ok(0);
        }
        let v = self.peek(n);
        self.consume(n)?;
        Ok(v)
    }

    /// Total bits consumed so far.
    pub fn bits_consumed(&self) -> u64 {
        self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple_bits() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0b0110, 4);
        w.put(0xAB, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(3).unwrap(), 0b101);
        assert_eq!(r.bits(4).unwrap(), 0b0110);
        assert_eq!(r.bits(8).unwrap(), 0xAB);
    }

    #[test]
    fn ff_bytes_are_stuffed_and_unstuffed() {
        let mut w = BitWriter::new();
        w.put(0xFF, 8);
        w.put(0xFF, 8);
        let bytes = w.finish();
        // Two 0xFF data bytes -> each followed by 0x00.
        assert_eq!(bytes, vec![0xFF, 0x00, 0xFF, 0x00]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(8).unwrap(), 0xFF);
        assert_eq!(r.bits(8).unwrap(), 0xFF);
    }

    #[test]
    fn final_byte_padded_with_ones() {
        let mut w = BitWriter::new();
        w.put(0b0, 1);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0111_1111]);
    }

    #[test]
    fn reader_reports_exhaustion() {
        let mut r = BitReader::new(&[0xA5]);
        assert!(r.bits(8).is_ok());
        assert_eq!(r.bit(), Err(OutOfBits));
    }

    #[test]
    fn consumed_bits_are_counted() {
        let mut w = BitWriter::new();
        w.put(0x3FF, 10);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let _ = r.bits(10).unwrap();
        assert_eq!(r.bits_consumed(), 10);
    }

    #[test]
    fn peek_matches_bits_and_is_idempotent() {
        let mut w = BitWriter::new();
        w.put(0b1_0110_1101, 9);
        w.put(0x5A, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek(9), 0b1_0110_1101);
        assert_eq!(r.peek(9), 0b1_0110_1101, "peek must not consume");
        assert_eq!(r.bits(9).unwrap(), 0b1_0110_1101);
        assert_eq!(r.peek(8), 0x5A);
        r.consume(8).unwrap();
        assert_eq!(r.bits_consumed(), 17);
    }

    #[test]
    fn peek_past_end_zero_pads_but_consume_fails() {
        let mut r = BitReader::new(&[0b1011_0110]);
        assert_eq!(r.bits(3).unwrap(), 0b101);
        // 5 real bits (10110) left; a 9-bit peek zero-pads the tail.
        assert_eq!(r.peek(9), 0b1_0110_0000);
        assert!(r.consume(9).is_err());
        assert!(r.consume(5).is_ok());
        assert_eq!(r.bit(), Err(OutOfBits));
    }

    #[test]
    fn unstuffing_works_across_bulk_and_byte_paths() {
        // Mix plain runs (bulk 32-bit path) with 0xFF bytes (byte path).
        let mut w = BitWriter::new();
        let vals: Vec<u32> = (0..64).map(|i| if i % 7 == 0 { 0xFF } else { i * 3 }).collect();
        for &v in &vals {
            w.put(v & 0xFF, 8);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.bits(8).unwrap(), v & 0xFF);
        }
    }

    #[test]
    fn long_random_round_trip() {
        // Deterministic pseudo-random pattern exercising many lengths.
        let mut vals = Vec::new();
        let mut x: u32 = 0x1234_5678;
        for i in 0..500u32 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let n = (i % 16) + 1;
            vals.push((x & ((1 << n) - 1), n));
        }
        let mut w = BitWriter::new();
        for &(v, n) in &vals {
            w.put(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &vals {
            assert_eq!(r.bits(n).unwrap(), v);
        }
    }
}
