//! Bit-level I/O for JPEG entropy-coded segments, including the 0xFF
//! byte-stuffing rule (ITU-T T.81 §B.1.1.5: a 0x00 byte is inserted
//! after every 0xFF data byte so markers stay unambiguous).

/// MSB-first bit writer with JPEG byte stuffing.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    nbits: u32,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `n` bits of `value`, MSB first (n ≤ 24).
    pub fn put(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 24);
        debug_assert!(value < (1u32 << n) || n == 0, "value {value} overflows {n} bits");
        if n == 0 {
            return;
        }
        self.acc = (self.acc << n) | (value & ((1u32 << n) - 1));
        self.nbits += n;
        while self.nbits >= 8 {
            let byte = ((self.acc >> (self.nbits - 8)) & 0xFF) as u8;
            self.out.push(byte);
            if byte == 0xFF {
                self.out.push(0x00); // stuffing
            }
            self.nbits -= 8;
        }
    }

    /// Pad the final partial byte with 1-bits (T.81 §F.1.2.3) and return
    /// the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put((1 << pad) - 1, pad);
        }
        self.out
    }

    /// Bits written so far (excluding padding).
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + self.nbits as u64
    }
}

/// MSB-first bit reader that undoes byte stuffing.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u32,
    nbits: u32,
    /// Total bits consumed (for workload accounting).
    consumed: u64,
}

/// Error from the bit reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

impl std::fmt::Display for OutOfBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "entropy-coded segment exhausted")
    }
}
impl std::error::Error for OutOfBits {}

impl<'a> BitReader<'a> {
    /// Read over an entropy-coded segment.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
            consumed: 0,
        }
    }

    fn refill(&mut self) -> Result<(), OutOfBits> {
        if self.pos >= self.data.len() {
            return Err(OutOfBits);
        }
        let byte = self.data[self.pos];
        self.pos += 1;
        if byte == 0xFF {
            // Skip the stuffed 0x00.
            if self.pos < self.data.len() && self.data[self.pos] == 0x00 {
                self.pos += 1;
            }
        }
        self.acc = (self.acc << 8) | byte as u32;
        self.nbits += 8;
        Ok(())
    }

    /// Read one bit.
    pub fn bit(&mut self) -> Result<u32, OutOfBits> {
        if self.nbits == 0 {
            self.refill()?;
        }
        self.nbits -= 1;
        self.consumed += 1;
        Ok((self.acc >> self.nbits) & 1)
    }

    /// Read `n` bits MSB-first (n ≤ 16).
    pub fn bits(&mut self, n: u32) -> Result<u32, OutOfBits> {
        debug_assert!(n <= 16);
        let mut v = 0;
        for _ in 0..n {
            v = (v << 1) | self.bit()?;
        }
        Ok(v)
    }

    /// Total bits consumed so far.
    pub fn bits_consumed(&self) -> u64 {
        self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple_bits() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0b0110, 4);
        w.put(0xAB, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(3).unwrap(), 0b101);
        assert_eq!(r.bits(4).unwrap(), 0b0110);
        assert_eq!(r.bits(8).unwrap(), 0xAB);
    }

    #[test]
    fn ff_bytes_are_stuffed_and_unstuffed() {
        let mut w = BitWriter::new();
        w.put(0xFF, 8);
        w.put(0xFF, 8);
        let bytes = w.finish();
        // Two 0xFF data bytes -> each followed by 0x00.
        assert_eq!(bytes, vec![0xFF, 0x00, 0xFF, 0x00]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(8).unwrap(), 0xFF);
        assert_eq!(r.bits(8).unwrap(), 0xFF);
    }

    #[test]
    fn final_byte_padded_with_ones() {
        let mut w = BitWriter::new();
        w.put(0b0, 1);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0111_1111]);
    }

    #[test]
    fn reader_reports_exhaustion() {
        let mut r = BitReader::new(&[0xA5]);
        assert!(r.bits(8).is_ok());
        assert_eq!(r.bit(), Err(OutOfBits));
    }

    #[test]
    fn consumed_bits_are_counted() {
        let mut w = BitWriter::new();
        w.put(0x3FF, 10);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let _ = r.bits(10).unwrap();
        assert_eq!(r.bits_consumed(), 10);
    }

    #[test]
    fn long_random_round_trip() {
        // Deterministic pseudo-random pattern exercising many lengths.
        let mut vals = Vec::new();
        let mut x: u32 = 0x1234_5678;
        for i in 0..500u32 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let n = (i % 16) + 1;
            vals.push((x & ((1 << n) - 1), n));
        }
        let mut w = BitWriter::new();
        for &(v, n) in &vals {
            w.put(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &vals {
            assert_eq!(r.bits(n).unwrap(), v);
        }
    }
}
