//! The componentized MJPEG decoder as EMBera behaviors.
//!
//! SMP deployment (paper Figure 3): `Fetch → 3 × IDCT → Reorder`.
//! MPSoC deployment (paper Figure 7): `Fetch-Reorder ⇄ 2 × IDCT`, the
//! Fetch and Reorder functionalities merged on the general-purpose ST40.
//!
//! Two structural details reproduce the paper's Table 2 exactly:
//!
//! * frames carry **18 blocks** (48×24 grayscale), and
//! * the **first frame is consumed for pipeline configuration** (reading
//!   the stream geometry) and its blocks are not forwarded — the paper's
//!   counts are `18 × (N − 1)` (10 386 = 18 × 577, 53 982 = 18 × 2999).
//!
//! There are no end-of-stream markers: like the paper's decoder, every
//! component knows its message budget from the stream length, so the
//! communication counters contain data messages only.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use embera::{AppBuilder, Behavior, ComponentSpec, Ctx, EmberaError, Work, WorkClass};

use crate::codec::{place_block, EntropyDecoder};
use crate::dct::{idct_to_pixels, BLOCK_SIZE};
use crate::frame::MjpegStream;
use crate::quant::{dequantize_reorder, scaled_qtable};

/// Work-annotation profile: abstract operation counts per unit of codec
/// work. Defaults are calibrated to the paper's self-described
/// *unoptimized* implementation (§5.4 notes the OS21 build ran ~25×
/// slower than even their Linux build, "without applying any
/// optimizations"); the Table 3 ratio test pins the resulting
/// Fetch-Reorder : IDCT execution-time ratio to the paper's ~10-12×.
#[derive(Debug, Clone, Copy)]
pub struct WorkProfile {
    /// Control ops per entropy-coded bit (naive bit-serial Huffman).
    pub huffman_ops_per_bit: u64,
    /// Control ops per coefficient for dequantize + zigzag reorder.
    pub dequant_ops_per_coeff: u64,
    /// DSP ops per 8×8 IDCT (naive double-loop implementation).
    pub idct_ops_per_block: u64,
    /// MemCopy ops per pixel for frame reassembly.
    pub reorder_ops_per_pixel: u64,
    /// Control ops per frame for file management in Fetch.
    pub file_mgmt_ops_per_frame: u64,
}

impl Default for WorkProfile {
    fn default() -> Self {
        WorkProfile {
            huffman_ops_per_bit: 100,
            dequant_ops_per_coeff: 14,
            idct_ops_per_block: 20_000,
            reorder_ops_per_pixel: 900,
            file_mgmt_ops_per_frame: 6_000,
        }
    }
}

/// Wire format of a coefficient block: frame u32 | block u32 | 64 × i32.
pub fn encode_coeff_msg(frame: u32, block: u32, coeffs: &[i32; BLOCK_SIZE]) -> Bytes {
    let mut v = Vec::with_capacity(8 + BLOCK_SIZE * 4);
    v.extend_from_slice(&frame.to_le_bytes());
    v.extend_from_slice(&block.to_le_bytes());
    for c in coeffs {
        v.extend_from_slice(&c.to_le_bytes());
    }
    Bytes::from(v)
}

/// Parse a coefficient block message.
pub fn decode_coeff_msg(b: &[u8]) -> Result<(u32, u32, [i32; BLOCK_SIZE]), EmberaError> {
    if b.len() != 8 + BLOCK_SIZE * 4 {
        return Err(EmberaError::Platform(format!(
            "bad coefficient message length {}",
            b.len()
        )));
    }
    let frame = u32::from_le_bytes(b[0..4].try_into().unwrap());
    let block = u32::from_le_bytes(b[4..8].try_into().unwrap());
    let mut coeffs = [0i32; BLOCK_SIZE];
    for (i, c) in coeffs.iter_mut().enumerate() {
        let o = 8 + i * 4;
        *c = i32::from_le_bytes(b[o..o + 4].try_into().unwrap());
    }
    Ok((frame, block, coeffs))
}

/// Wire format of a pixel block: frame u32 | block u32 | 64 × u8.
pub fn encode_pixel_msg(frame: u32, block: u32, pixels: &[u8; BLOCK_SIZE]) -> Bytes {
    let mut v = Vec::with_capacity(8 + BLOCK_SIZE);
    v.extend_from_slice(&frame.to_le_bytes());
    v.extend_from_slice(&block.to_le_bytes());
    v.extend_from_slice(pixels);
    Bytes::from(v)
}

/// Parse a pixel block message.
pub fn decode_pixel_msg(b: &[u8]) -> Result<(u32, u32, [u8; BLOCK_SIZE]), EmberaError> {
    if b.len() != 8 + BLOCK_SIZE {
        return Err(EmberaError::Platform(format!(
            "bad pixel message length {}",
            b.len()
        )));
    }
    let frame = u32::from_le_bytes(b[0..4].try_into().unwrap());
    let block = u32::from_le_bytes(b[4..8].try_into().unwrap());
    let mut px = [0u8; BLOCK_SIZE];
    px.copy_from_slice(&b[8..]);
    Ok((frame, block, px))
}

/// Shared probe into pipeline results, for tests and harnesses.
#[derive(Clone, Default)]
pub struct PipelineProbe {
    /// Frames fully reassembled by the Reorder side.
    pub frames_completed: Arc<AtomicU64>,
    /// FNV-1a checksum over reassembled pixel data, in frame order.
    pub checksum: Arc<AtomicU64>,
}

impl PipelineProbe {
    /// Expose the probe as observation functions — the paper-§6
    /// custom-metric extension in action: a `frames_completed` gauge
    /// registered on the reassembling component.
    pub fn metrics(&self) -> Vec<std::sync::Arc<dyn embera::MetricSource>> {
        let frames = std::sync::Arc::clone(&self.frames_completed);
        vec![embera::FnMetric::new("frames_completed", move || {
            frames.load(Ordering::Relaxed) as f64
        })]
    }

    fn fold_frame(&self, pixels: &[u8]) {
        let mut h = self.checksum.load(Ordering::Acquire);
        if h == 0 {
            h = 0xcbf2_9ce4_8422_2325;
        }
        for &b in pixels {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.checksum.store(h, Ordering::Release);
        self.frames_completed.fetch_add(1, Ordering::AcqRel);
    }
}

/// The Fetch component: "file management, Huffman decoding and pixel
/// reordering" (§3.2). Distributes coefficient blocks round-robin over
/// the IDCT components.
pub struct FetchBehavior {
    stream: MjpegStream,
    out_ifaces: Vec<String>,
    profile: WorkProfile,
}

impl FetchBehavior {
    /// Fetch over `stream`, sending to the given required interfaces.
    pub fn new(stream: MjpegStream, out_ifaces: Vec<String>, profile: WorkProfile) -> Self {
        FetchBehavior {
            stream,
            out_ifaces,
            profile,
        }
    }

    fn run_inner(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        let n_idct = self.out_ifaces.len();
        if self.stream.is_empty() {
            return Ok(());
        }
        // Frame 0: configuration probe — read geometry, prime tables.
        let header = self.stream.frames[0].header;
        let qtable = scaled_qtable(header.quality);
        let blocks = header.blocks();
        ctx.compute(Work::ops(
            WorkClass::Control,
            self.profile.file_mgmt_ops_per_frame,
        ));

        for (t, frame) in self.stream.frames.iter().enumerate().skip(1) {
            ctx.compute(Work::ops(
                WorkClass::Control,
                self.profile.file_mgmt_ops_per_frame,
            ));
            let mut dec = EntropyDecoder::new(&frame.data);
            let mut bits_before = 0u64;
            for bi in 0..blocks {
                let zz = dec.next_block().map_err(|e| {
                    EmberaError::Platform(format!("frame {t} block {bi}: {e}"))
                })?;
                let bits = dec.bits_consumed() - bits_before;
                bits_before = dec.bits_consumed();
                let coeffs = dequantize_reorder(&zz, &qtable);
                ctx.compute(
                    Work::ops(
                        WorkClass::Control,
                        bits * self.profile.huffman_ops_per_bit
                            + BLOCK_SIZE as u64 * self.profile.dequant_ops_per_coeff,
                    )
                    .with_mem(BLOCK_SIZE as u64 * 4),
                );
                let msg = encode_coeff_msg(t as u32, bi as u32, &coeffs);
                ctx.send(&self.out_ifaces[bi % n_idct], msg)?;
            }
        }
        Ok(())
    }
}

impl Behavior for FetchBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        self.run_inner(ctx)
    }
}

/// An IDCT component: receives coefficient blocks, applies the inverse
/// DCT, forwards pixel blocks.
pub struct IdctBehavior {
    in_iface: String,
    out_iface: String,
    expected: u64,
    profile: WorkProfile,
}

impl IdctBehavior {
    /// IDCT expecting `expected` blocks on `in_iface`, forwarding to
    /// `out_iface`.
    pub fn new(
        in_iface: impl Into<String>,
        out_iface: impl Into<String>,
        expected: u64,
        profile: WorkProfile,
    ) -> Self {
        IdctBehavior {
            in_iface: in_iface.into(),
            out_iface: out_iface.into(),
            expected,
            profile,
        }
    }
}

impl Behavior for IdctBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        for _ in 0..self.expected {
            let msg = ctx.recv(&self.in_iface)?;
            let (frame, block, coeffs) = decode_coeff_msg(&msg)?;
            let pixels = idct_to_pixels(&coeffs);
            ctx.compute(
                Work::ops(WorkClass::Dsp, self.profile.idct_ops_per_block)
                    .with_mem(BLOCK_SIZE as u64 * 5),
            );
            ctx.send(&self.out_iface, encode_pixel_msg(frame, block, &pixels))?;
        }
        Ok(())
    }
}

/// Frame reassembly state shared by Reorder and Fetch-Reorder.
struct Assembler {
    width: usize,
    height: usize,
    blocks: usize,
    partial: HashMap<u32, (Vec<u8>, usize)>,
    next_out: u32,
    done: Vec<u32>,
    probe: PipelineProbe,
}

impl Assembler {
    fn new(width: usize, height: usize, probe: PipelineProbe) -> Self {
        Assembler {
            width,
            height,
            blocks: (width / 8) * (height / 8),
            partial: HashMap::new(),
            next_out: 1,
            done: Vec::new(),
            probe,
        }
    }

    fn add(&mut self, frame: u32, block: u32, pixels: &[u8; BLOCK_SIZE]) {
        let entry = self
            .partial
            .entry(frame)
            .or_insert_with(|| (vec![0u8; self.width * self.height], 0));
        place_block(&mut entry.0, self.width, block as usize, pixels);
        entry.1 += 1;
        if entry.1 == self.blocks {
            let (pixels, _) = self.partial.remove(&frame).unwrap();
            self.probe.fold_frame(&pixels);
            self.done.push(frame);
            // Frames complete in order because blocks are delivered
            // round-robin in order; track the watermark anyway.
            while self.done.contains(&self.next_out) {
                self.next_out += 1;
            }
        }
    }
}

/// The Reorder component: "reassembles images and eventually sends data
/// to an output display" (§3.2). Receives pixel blocks from the IDCT
/// components round-robin.
pub struct ReorderBehavior {
    in_ifaces: Vec<String>,
    total_blocks: u64,
    width: usize,
    height: usize,
    profile: WorkProfile,
    probe: PipelineProbe,
}

impl ReorderBehavior {
    /// Reorder expecting `total_blocks` pixel blocks distributed
    /// round-robin over `in_ifaces`.
    pub fn new(
        in_ifaces: Vec<String>,
        total_blocks: u64,
        width: usize,
        height: usize,
        profile: WorkProfile,
        probe: PipelineProbe,
    ) -> Self {
        ReorderBehavior {
            in_ifaces,
            total_blocks,
            width,
            height,
            profile,
            probe,
        }
    }
}

impl Behavior for ReorderBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        let mut asm = Assembler::new(self.width, self.height, self.probe.clone());
        let n = self.in_ifaces.len();
        let per_frame = asm.blocks;
        for i in 0..self.total_blocks {
            // Global block index within its frame selects the IDCT lane.
            let lane = (i as usize % per_frame) % n;
            let msg = ctx.recv(&self.in_ifaces[lane])?;
            let (frame, block, pixels) = decode_pixel_msg(&msg)?;
            ctx.compute(
                Work::ops(
                    WorkClass::MemCopy,
                    BLOCK_SIZE as u64 * self.profile.reorder_ops_per_pixel,
                )
                .with_mem(BLOCK_SIZE as u64 * 2),
            );
            asm.add(frame, block, &pixels);
        }
        Ok(())
    }
}

/// The merged Fetch-Reorder component of the MPSoC deployment (§5.3):
/// per frame, decodes and sends all blocks to the IDCTs, then receives
/// and reassembles that frame's pixel blocks.
pub struct FetchReorderBehavior {
    stream: MjpegStream,
    out_ifaces: Vec<String>,
    in_ifaces: Vec<String>,
    profile: WorkProfile,
    probe: PipelineProbe,
}

impl FetchReorderBehavior {
    /// Build the merged component.
    pub fn new(
        stream: MjpegStream,
        out_ifaces: Vec<String>,
        in_ifaces: Vec<String>,
        profile: WorkProfile,
        probe: PipelineProbe,
    ) -> Self {
        FetchReorderBehavior {
            stream,
            out_ifaces,
            in_ifaces,
            profile,
            probe,
        }
    }
}

impl Behavior for FetchReorderBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        if self.stream.is_empty() {
            return Ok(());
        }
        let n = self.out_ifaces.len();
        let header = self.stream.frames[0].header;
        let qtable = scaled_qtable(header.quality);
        let blocks = header.blocks();
        let mut asm = Assembler::new(
            header.width as usize,
            header.height as usize,
            self.probe.clone(),
        );
        ctx.compute(Work::ops(
            WorkClass::Control,
            self.profile.file_mgmt_ops_per_frame,
        ));
        for (t, frame) in self.stream.frames.iter().enumerate().skip(1) {
            ctx.compute(Work::ops(
                WorkClass::Control,
                self.profile.file_mgmt_ops_per_frame,
            ));
            // Fetch half: decode + distribute this frame's blocks.
            let mut dec = EntropyDecoder::new(&frame.data);
            let mut bits_before = 0u64;
            for bi in 0..blocks {
                let zz = dec.next_block().map_err(|e| {
                    EmberaError::Platform(format!("frame {t} block {bi}: {e}"))
                })?;
                let bits = dec.bits_consumed() - bits_before;
                bits_before = dec.bits_consumed();
                let coeffs = dequantize_reorder(&zz, &qtable);
                ctx.compute(
                    Work::ops(
                        WorkClass::Control,
                        bits * self.profile.huffman_ops_per_bit
                            + BLOCK_SIZE as u64 * self.profile.dequant_ops_per_coeff,
                    )
                    .with_mem(BLOCK_SIZE as u64 * 4),
                );
                ctx.send(
                    &self.out_ifaces[bi % n],
                    encode_coeff_msg(t as u32, bi as u32, &coeffs),
                )?;
            }
            // Reorder half: collect this frame's pixel blocks.
            for bi in 0..blocks {
                let lane = bi % n;
                let msg = ctx.recv(&self.in_ifaces[lane])?;
                let (f, b, pixels) = decode_pixel_msg(&msg)?;
                ctx.compute(
                    Work::ops(
                        WorkClass::MemCopy,
                        BLOCK_SIZE as u64 * self.profile.reorder_ops_per_pixel,
                    )
                    .with_mem(BLOCK_SIZE as u64 * 2),
                );
                asm.add(f, b, &pixels);
            }
        }
        Ok(())
    }
}

/// Configuration of the componentized application builders.
#[derive(Debug, Clone)]
pub struct MjpegAppConfig {
    /// Number of IDCT components (paper: 3 on SMP, 2 on the STi7200).
    pub idct_count: usize,
    /// Work annotations.
    pub profile: WorkProfile,
    /// Component stack size. Default 8 392 000 bytes — the paper's
    /// measured Linux thread stack ("8 392 kb").
    pub stack_bytes: u64,
}

impl Default for MjpegAppConfig {
    fn default() -> Self {
        MjpegAppConfig {
            idct_count: 3,
            profile: WorkProfile::default(),
            stack_bytes: 8_392_000,
        }
    }
}

/// Build the SMP application (paper Figures 1 & 3): Fetch, `idct_count`
/// IDCTs, Reorder. Returns the builder (so callers can attach an
/// observer) plus a [`PipelineProbe`].
pub fn build_smp_app(stream: MjpegStream, cfg: &MjpegAppConfig) -> (AppBuilder, PipelineProbe) {
    assert!(cfg.idct_count >= 1);
    let probe = PipelineProbe::default();
    let header = stream.frames.first().map(|f| f.header);
    let blocks = header.map(|h| h.blocks()).unwrap_or(0) as u64;
    let frames_forwarded = stream.len().saturating_sub(1) as u64;
    let total_blocks = frames_forwarded * blocks;

    let mut app = AppBuilder::new("MJPEG");
    let fetch_outs: Vec<String> = (1..=cfg.idct_count)
        .map(|k| format!("fetchIdct{k}"))
        .collect();
    let mut fetch = ComponentSpec::new(
        "Fetch",
        FetchBehavior::new(stream, fetch_outs.clone(), cfg.profile),
    )
    .with_stack_bytes(cfg.stack_bytes);
    for iface in &fetch_outs {
        fetch = fetch.with_required(iface);
    }
    app.add(fetch);

    for k in 1..=cfg.idct_count {
        // Per-IDCT share: blocks are dealt round-robin, so lane k-1 gets
        // the blocks with index ≡ k-1 (mod idct_count) in every frame.
        let per_frame = (0..blocks).filter(|b| b % cfg.idct_count as u64 == (k - 1) as u64).count()
            as u64;
        let expected = frames_forwarded * per_frame;
        app.add(
            ComponentSpec::new(
                format!("IDCT_{k}"),
                IdctBehavior::new(format!("_fetchIdct{k}"), "idctReorder", expected, cfg.profile),
            )
            .with_provided(format!("_fetchIdct{k}"))
            .with_required("idctReorder")
            .with_stack_bytes(cfg.stack_bytes)
            .on_cpu(k),
        );
        app.connect(
            ("Fetch", &format!("fetchIdct{k}")),
            (&format!("IDCT_{k}"), &format!("_fetchIdct{k}")),
        );
    }

    let reorder_ins: Vec<String> = (1..=cfg.idct_count)
        .map(|k| format!("_idct{k}Reorder"))
        .collect();
    let (w, h) = header.map(|h| (h.width as usize, h.height as usize)).unwrap_or((8, 8));
    let mut reorder = ComponentSpec::new(
        "Reorder",
        ReorderBehavior::new(
            reorder_ins.clone(),
            total_blocks,
            w,
            h,
            cfg.profile,
            probe.clone(),
        ),
    )
    .with_stack_bytes(cfg.stack_bytes);
    for m in probe.metrics() {
        reorder = reorder.with_metric(m);
    }
    for iface in &reorder_ins {
        reorder = reorder.with_provided(iface);
    }
    app.add(reorder);
    for k in 1..=cfg.idct_count {
        app.connect(
            (&format!("IDCT_{k}"), "idctReorder"),
            ("Reorder", &format!("_idct{k}Reorder")),
        );
    }
    (app, probe)
}

/// Build the MPSoC application (paper Figure 7): Fetch-Reorder on the
/// ST40 (CPU 0) and `idct_count` IDCTs on ST231 accelerators (CPUs
/// 1..). Defaults to the paper's two IDCTs.
pub fn build_mpsoc_app(stream: MjpegStream, cfg: &MjpegAppConfig) -> (AppBuilder, PipelineProbe) {
    assert!(cfg.idct_count >= 1);
    let probe = PipelineProbe::default();
    let header = stream.frames.first().map(|f| f.header);
    let blocks = header.map(|h| h.blocks()).unwrap_or(0) as u64;
    let frames_forwarded = stream.len().saturating_sub(1) as u64;

    let mut app = AppBuilder::new("MJPEG-MPSoC");
    let outs: Vec<String> = (1..=cfg.idct_count)
        .map(|k| format!("fetchIdct{k}"))
        .collect();
    let ins: Vec<String> = (1..=cfg.idct_count)
        .map(|k| format!("_idct{k}Reorder"))
        .collect();
    let mut fr = ComponentSpec::new(
        "Fetch-Reorder",
        FetchReorderBehavior::new(stream, outs.clone(), ins.clone(), cfg.profile, probe.clone()),
    )
    .with_stack_bytes(16 * 1024)
    .on_cpu(0);
    for m in probe.metrics() {
        fr = fr.with_metric(m);
    }
    for iface in &outs {
        fr = fr.with_required(iface);
    }
    for iface in &ins {
        fr = fr.with_provided(iface);
    }
    app.add(fr);

    for k in 1..=cfg.idct_count {
        let per_frame =
            (0..blocks).filter(|b| b % cfg.idct_count as u64 == (k - 1) as u64).count() as u64;
        let expected = frames_forwarded * per_frame;
        app.add(
            ComponentSpec::new(
                format!("IDCT_{k}"),
                IdctBehavior::new(format!("_fetchIdct{k}"), "idctReorder", expected, cfg.profile),
            )
            .with_provided(format!("_fetchIdct{k}"))
            .with_required("idctReorder")
            .with_stack_bytes(16 * 1024)
            .on_cpu(k),
        );
        app.connect(
            ("Fetch-Reorder", &format!("fetchIdct{k}")),
            (&format!("IDCT_{k}"), &format!("_fetchIdct{k}")),
        );
        app.connect(
            (&format!("IDCT_{k}"), "idctReorder"),
            ("Fetch-Reorder", &format!("_idct{k}Reorder")),
        );
    }
    (app, probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synthesize_stream;
    use embera::{Platform, RunningApp};
    use embera_smp::SmpPlatform;

    fn small_stream(frames: usize) -> MjpegStream {
        synthesize_stream(frames, 48, 24, 75, 0xBEEF)
    }

    #[test]
    fn coeff_msg_round_trip() {
        let mut coeffs = [0i32; BLOCK_SIZE];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = (i as i32 - 32) * 100;
        }
        let b = encode_coeff_msg(7, 11, &coeffs);
        assert_eq!(decode_coeff_msg(&b).unwrap(), (7, 11, coeffs));
    }

    #[test]
    fn pixel_msg_round_trip() {
        let mut px = [0u8; BLOCK_SIZE];
        for (i, p) in px.iter_mut().enumerate() {
            *p = i as u8 * 3;
        }
        let b = encode_pixel_msg(3, 17, &px);
        assert_eq!(decode_pixel_msg(&b).unwrap(), (3, 17, px));
    }

    #[test]
    fn malformed_messages_rejected() {
        assert!(decode_coeff_msg(&[0u8; 10]).is_err());
        assert!(decode_pixel_msg(&[0u8; 10]).is_err());
    }

    #[test]
    fn smp_pipeline_decodes_all_frames() {
        let (app, probe) = build_smp_app(small_stream(11), &MjpegAppConfig::default());
        let report = SmpPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        // 10 frames forwarded (first consumed for configuration).
        assert_eq!(probe.frames_completed.load(Ordering::SeqCst), 10);
        assert_eq!(report.component("Fetch").unwrap().app.total_sends, 180);
        for k in 1..=3 {
            let r = report.component(&format!("IDCT_{k}")).unwrap();
            assert_eq!(r.app.total_receives, 60);
            assert_eq!(r.app.total_sends, 60);
        }
        assert_eq!(report.component("Reorder").unwrap().app.total_receives, 180);
    }

    #[test]
    fn pipeline_output_matches_reference_decode() {
        // The checksum of the pipeline's reassembled frames must equal a
        // straight single-threaded decode of frames 1..N.
        let stream = small_stream(6);
        let mut expected = PipelineProbe::default();
        for f in &stream.frames[1..] {
            let px = crate::codec::decode_frame(&f.data, 48, 24, 75).unwrap();
            expected.fold_frame(&px);
        }
        let (app, probe) = build_smp_app(stream, &MjpegAppConfig::default());
        SmpPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            probe.checksum.load(Ordering::SeqCst),
            expected.checksum.load(Ordering::SeqCst),
            "componentized decode must be bit-identical to reference"
        );
        let _ = &mut expected;
    }

    #[test]
    fn table2_count_structure_578() {
        // Scaled-down structural version of Table 2: counts must follow
        // send(Fetch) = 18 (N-1); recv(IDCT_k) = send(IDCT_k) = 6 (N-1);
        // recv(Reorder) = 18 (N-1).
        let n = 21; // stand-in for 578; structure is what matters
        let (app, _) = build_smp_app(small_stream(n), &MjpegAppConfig::default());
        let report = SmpPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        let fwd = (n - 1) as u64;
        assert_eq!(
            report.component("Fetch").unwrap().app.total_sends,
            18 * fwd
        );
        assert_eq!(report.component("Fetch").unwrap().app.total_receives, 0);
        for k in 1..=3 {
            let r = report.component(&format!("IDCT_{k}")).unwrap();
            assert_eq!(r.app.total_receives, 6 * fwd);
            assert_eq!(r.app.total_sends, 6 * fwd);
        }
        let r = report.component("Reorder").unwrap();
        assert_eq!(r.app.total_receives, 18 * fwd);
        assert_eq!(r.app.total_sends, 0);
    }
}
