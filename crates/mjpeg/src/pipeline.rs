//! The componentized MJPEG decoder as EMBera behaviors.
//!
//! SMP deployment (paper Figure 3): `Fetch → 3 × IDCT → Reorder`.
//! MPSoC deployment (paper Figure 7): `Fetch-Reorder ⇄ 2 × IDCT`, the
//! Fetch and Reorder functionalities merged on the general-purpose ST40.
//!
//! Two structural details reproduce the paper's Table 2 exactly:
//!
//! * frames carry **18 blocks** (48×24 grayscale), and
//! * the **first frame is consumed for pipeline configuration** (reading
//!   the stream geometry) and its blocks are not forwarded — the paper's
//!   counts are `18 × (N − 1)` (10 386 = 18 × 577, 53 982 = 18 × 2999).
//!
//! There are no end-of-stream markers: like the paper's decoder, every
//! component knows its message budget from the stream length, so the
//! communication counters contain data messages only.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use embera::{AppBuilder, Behavior, BufferPool, ComponentSpec, Ctx, EmberaError, Work, WorkClass};

use crate::codec::{place_block, EntropyDecoder};
use crate::dct::{idct_scaled_to_pixels, idct_to_pixels, DctKind, BLOCK_SIZE};
use crate::frame::MjpegStream;
use crate::quant::{
    dequantize_reorder, dequantize_reorder_scaled, fast_dequant_table, scaled_qtable,
};

/// Work-annotation profile: abstract operation counts per unit of codec
/// work. Defaults are calibrated to the paper's self-described
/// *unoptimized* implementation (§5.4 notes the OS21 build ran ~25×
/// slower than even their Linux build, "without applying any
/// optimizations"); the Table 3 ratio test pins the resulting
/// Fetch-Reorder : IDCT execution-time ratio to the paper's ~10-12×.
#[derive(Debug, Clone, Copy)]
pub struct WorkProfile {
    /// Control ops per entropy-coded bit (naive bit-serial Huffman).
    pub huffman_ops_per_bit: u64,
    /// Control ops per coefficient for dequantize + zigzag reorder.
    pub dequant_ops_per_coeff: u64,
    /// DSP ops per 8×8 IDCT (naive double-loop implementation).
    pub idct_ops_per_block: u64,
    /// MemCopy ops per pixel for frame reassembly.
    pub reorder_ops_per_pixel: u64,
    /// Control ops per frame for file management in Fetch.
    pub file_mgmt_ops_per_frame: u64,
}

impl Default for WorkProfile {
    fn default() -> Self {
        WorkProfile {
            huffman_ops_per_bit: 100,
            dequant_ops_per_coeff: 14,
            idct_ops_per_block: 20_000,
            reorder_ops_per_pixel: 900,
            file_mgmt_ops_per_frame: 6_000,
        }
    }
}

/// Stage a coefficient body (64 × i32 LE) in a fixed array: one bulk
/// append instead of 64 four-byte appends. The fixed-bound staging loop
/// lowers to straight vector stores on little-endian targets.
fn coeff_bytes(coeffs: &[i32; BLOCK_SIZE]) -> [u8; BLOCK_SIZE * 4] {
    let mut raw = [0u8; BLOCK_SIZE * 4];
    for (i, c) in coeffs.iter().enumerate() {
        raw[i * 4..(i + 1) * 4].copy_from_slice(&c.to_le_bytes());
    }
    raw
}

/// Serialize a coefficient block into a caller-owned scratch buffer
/// (cleared first). The hot path reuses one scratch `Vec` per component
/// so steady-state serialization never allocates.
fn encode_coeff_into(v: &mut Vec<u8>, frame: u32, block: u32, coeffs: &[i32; BLOCK_SIZE]) {
    v.clear();
    v.reserve(8 + BLOCK_SIZE * 4);
    v.extend_from_slice(&frame.to_le_bytes());
    v.extend_from_slice(&block.to_le_bytes());
    v.extend_from_slice(&coeff_bytes(coeffs));
}

/// Wire format of a coefficient block: frame u32 | block u32 | 64 × i32.
pub fn encode_coeff_msg(frame: u32, block: u32, coeffs: &[i32; BLOCK_SIZE]) -> Bytes {
    let mut v = Vec::new();
    encode_coeff_into(&mut v, frame, block, coeffs);
    Bytes::from(v)
}

/// Parse a coefficient block message.
pub fn decode_coeff_msg(b: &[u8]) -> Result<(u32, u32, [i32; BLOCK_SIZE]), EmberaError> {
    if b.len() != 8 + BLOCK_SIZE * 4 {
        return Err(EmberaError::Platform(format!(
            "bad coefficient message length {}",
            b.len()
        )));
    }
    let frame = u32::from_le_bytes(b[0..4].try_into().unwrap());
    let block = u32::from_le_bytes(b[4..8].try_into().unwrap());
    let mut coeffs = [0i32; BLOCK_SIZE];
    for (i, c) in coeffs.iter_mut().enumerate() {
        let o = 8 + i * 4;
        *c = i32::from_le_bytes(b[o..o + 4].try_into().unwrap());
    }
    Ok((frame, block, coeffs))
}

/// Serialize a pixel block into a caller-owned scratch buffer.
fn encode_pixel_into(v: &mut Vec<u8>, frame: u32, block: u32, pixels: &[u8; BLOCK_SIZE]) {
    v.clear();
    v.reserve(8 + BLOCK_SIZE);
    v.extend_from_slice(&frame.to_le_bytes());
    v.extend_from_slice(&block.to_le_bytes());
    v.extend_from_slice(pixels);
}

/// Wire format of a pixel block: frame u32 | block u32 | 64 × u8.
pub fn encode_pixel_msg(frame: u32, block: u32, pixels: &[u8; BLOCK_SIZE]) -> Bytes {
    let mut v = Vec::new();
    encode_pixel_into(&mut v, frame, block, pixels);
    Bytes::from(v)
}

/// Parse a pixel block message.
pub fn decode_pixel_msg(b: &[u8]) -> Result<(u32, u32, [u8; BLOCK_SIZE]), EmberaError> {
    if b.len() != 8 + BLOCK_SIZE {
        return Err(EmberaError::Platform(format!(
            "bad pixel message length {}",
            b.len()
        )));
    }
    let frame = u32::from_le_bytes(b[0..4].try_into().unwrap());
    let block = u32::from_le_bytes(b[4..8].try_into().unwrap());
    let mut px = [0u8; BLOCK_SIZE];
    px.copy_from_slice(&b[8..]);
    Ok((frame, block, px))
}

/// Bytes per block record in a coefficient batch:
/// frame u32 | block u32 | 64 × i32.
const COEFF_REC: usize = 8 + BLOCK_SIZE * 4;
/// Bytes per block record in a pixel batch: frame u32 | block u32 | 64 × u8.
const PIXEL_REC: usize = 8 + BLOCK_SIZE;

/// Idle deadline for tolerant-mode receives. Tolerant components cannot
/// rely on a fixed message budget (frames may be dropped upstream), so
/// they stop once their inputs stay silent this long. On the in-process
/// backend this is logical time — the scheduler only reports a timeout
/// once no producer can make progress, which keeps tolerant runs
/// deterministic. On the threaded backend it is wall-clock time and is
/// sized generously above any scheduling hiccup.
const TOLERANT_IDLE_NS: u64 = 500_000_000;

/// Wire format of a coefficient **batch**: `count u32 | count ×
/// (frame u32 | block u32 | 64 × i32)`. Used when `blocks_per_msg > 1`;
/// the single-block formats above stay the wire format at batch size 1
/// so the paper's Table 2 byte counts are untouched by default. Each
/// record carries its own frame tag so a batch may span frame
/// boundaries — the SMP Fetch flushes a lane only when it is full,
/// which is what lets one thread wake-up amortize over many frames.
pub fn encode_coeff_batch(blocks: &[(u32, u32, [i32; BLOCK_SIZE])]) -> Bytes {
    let mut v = Vec::new();
    encode_coeff_batch_into(&mut v, blocks);
    Bytes::from(v)
}

/// Serialize a coefficient batch into a caller-owned scratch buffer.
fn encode_coeff_batch_into(v: &mut Vec<u8>, blocks: &[(u32, u32, [i32; BLOCK_SIZE])]) {
    v.clear();
    v.reserve(4 + blocks.len() * COEFF_REC);
    v.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for (frame, bi, coeffs) in blocks {
        v.extend_from_slice(&frame.to_le_bytes());
        v.extend_from_slice(&bi.to_le_bytes());
        v.extend_from_slice(&coeff_bytes(coeffs));
    }
}

/// Wire format of a pixel **batch**: `count u32 | count ×
/// (frame u32 | block u32 | 64 × u8)`.
pub fn encode_pixel_batch(blocks: &[(u32, u32, [u8; BLOCK_SIZE])]) -> Bytes {
    let mut v = Vec::new();
    encode_pixel_batch_into(&mut v, blocks);
    Bytes::from(v)
}

/// Serialize a pixel batch into a caller-owned scratch buffer.
fn encode_pixel_batch_into(v: &mut Vec<u8>, blocks: &[(u32, u32, [u8; BLOCK_SIZE])]) {
    v.clear();
    v.reserve(4 + blocks.len() * PIXEL_REC);
    v.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for (frame, bi, px) in blocks {
        v.extend_from_slice(&frame.to_le_bytes());
        v.extend_from_slice(&bi.to_le_bytes());
        v.extend_from_slice(px);
    }
}

// ---------------------------------------------------------------------
// Exact-size slice writers: the pooled senders serialize directly into
// a pool-owned window ([`BufferPool::take_with`]) instead of staging
// through a scratch `Vec` and copying — same wire formats as the Vec
// serializers above (the pooled-vs-unpooled checksum tests pin the two
// paths to identical bytes), one full memcpy pass fewer per message.
// ---------------------------------------------------------------------

/// Write a single-block coefficient message into `dst` (`COEFF_REC` bytes).
fn write_coeff_msg(dst: &mut [u8], frame: u32, block: u32, coeffs: &[i32; BLOCK_SIZE]) {
    dst[0..4].copy_from_slice(&frame.to_le_bytes());
    dst[4..8].copy_from_slice(&block.to_le_bytes());
    dst[8..COEFF_REC].copy_from_slice(&coeff_bytes(coeffs));
}

/// Write a coefficient batch into `dst` (`4 + n * COEFF_REC` bytes).
fn write_coeff_batch(dst: &mut [u8], blocks: &[(u32, u32, [i32; BLOCK_SIZE])]) {
    dst[0..4].copy_from_slice(&(blocks.len() as u32).to_le_bytes());
    for (i, (frame, bi, coeffs)) in blocks.iter().enumerate() {
        let rec = &mut dst[4 + i * COEFF_REC..4 + (i + 1) * COEFF_REC];
        write_coeff_msg(rec, *frame, *bi, coeffs);
    }
}

/// Write a single-block pixel message into `dst` (`PIXEL_REC` bytes).
fn write_pixel_msg(dst: &mut [u8], frame: u32, block: u32, pixels: &[u8; BLOCK_SIZE]) {
    dst[0..4].copy_from_slice(&frame.to_le_bytes());
    dst[4..8].copy_from_slice(&block.to_le_bytes());
    dst[8..PIXEL_REC].copy_from_slice(pixels);
}

/// Write a pixel batch into `dst` (`4 + n * PIXEL_REC` bytes).
fn write_pixel_batch(dst: &mut [u8], blocks: &[(u32, u32, [u8; BLOCK_SIZE])]) {
    dst[0..4].copy_from_slice(&(blocks.len() as u32).to_le_bytes());
    for (i, (frame, bi, px)) in blocks.iter().enumerate() {
        let rec = &mut dst[4 + i * PIXEL_REC..4 + (i + 1) * PIXEL_REC];
        write_pixel_msg(rec, *frame, *bi, px);
    }
}

/// Give a fully consumed message buffer back to the pool (no-op without
/// one). Callers must drop any [`BatchView`] over the message first, or
/// the pool will refuse the still-shared buffer.
fn recycle_msg(pool: Option<&BufferPool>, msg: Bytes) {
    if let Some(p) = pool {
        p.recycle(msg);
    }
}

/// A parsed batch header over a refcounted message payload. Per-block
/// accessors hand out [`Bytes`] views into the original buffer, so a
/// consumer can split a batch into blocks without copying or allocating.
pub struct BatchView {
    data: Bytes,
    count: usize,
    rec: usize,
}

impl BatchView {
    fn parse(data: &Bytes, rec: usize, what: &str) -> Result<Self, EmberaError> {
        if data.len() < 4 {
            return Err(EmberaError::Platform(format!(
                "bad {what} batch: {} bytes, need at least 4",
                data.len()
            )));
        }
        let count = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
        if count == 0 || data.len() != 4 + count * rec {
            return Err(EmberaError::Platform(format!(
                "bad {what} batch: count {count}, {} bytes",
                data.len()
            )));
        }
        Ok(BatchView {
            data: data.clone(),
            count,
            rec,
        })
    }

    /// Parse a coefficient batch (`count | count × (frame | block | 64 i32)`).
    pub fn coeffs(data: &Bytes) -> Result<Self, EmberaError> {
        Self::parse(data, COEFF_REC, "coefficient")
    }

    /// Parse a pixel batch (`count | count × (frame | block | 64 u8)`).
    pub fn pixels(data: &Bytes) -> Result<Self, EmberaError> {
        Self::parse(data, PIXEL_REC, "pixel")
    }

    /// Number of blocks in the batch.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the batch holds no blocks (parse rejects this, so always
    /// false on a parsed view).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Frame index, block index, and zero-copy payload view of the i-th
    /// record.
    pub fn block(&self, i: usize) -> (u32, u32, Bytes) {
        assert!(i < self.count);
        let off = 4 + i * self.rec;
        let frame = u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap());
        let bi = u32::from_le_bytes(self.data[off + 4..off + 8].try_into().unwrap());
        (frame, bi, self.data.slice(off + 8..off + self.rec))
    }
}

/// Decode a 64 × i32 coefficient payload (e.g. a [`BatchView::block`]
/// view) into a natural-order block.
pub fn coeffs_from_bytes(b: &[u8]) -> Result<[i32; BLOCK_SIZE], EmberaError> {
    if b.len() != BLOCK_SIZE * 4 {
        return Err(EmberaError::Platform(format!(
            "bad coefficient payload length {}",
            b.len()
        )));
    }
    let mut coeffs = [0i32; BLOCK_SIZE];
    for (i, c) in coeffs.iter_mut().enumerate() {
        *c = i32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().unwrap());
    }
    Ok(coeffs)
}

/// Blocks dealt round-robin: how many of `blocks` land on `lane` of `n`.
fn lane_share(blocks: u64, n: usize, lane: usize) -> u64 {
    (lane as u64..blocks).step_by(n).count() as u64
}

/// Messages a lane receives per frame when batches flush at frame end
/// (the MPSoC merged component's per-frame round trip): its block
/// share, flushed every `batch` blocks plus a remainder flush.
fn lane_msgs_per_frame(per_lane: u64, batch: usize) -> u64 {
    let b = batch.max(1) as u64;
    per_lane.div_ceil(b)
}

/// Messages a lane receives over a whole SMP run, where batches span
/// frame boundaries: the lane's total block count, flushed every
/// `batch` blocks plus one remainder flush at stream end.
fn lane_msgs_total(per_lane_per_frame: u64, frames: u64, batch: usize) -> u64 {
    let b = batch.max(1) as u64;
    (per_lane_per_frame * frames).div_ceil(b)
}

/// Shared probe into pipeline results, for tests and harnesses.
#[derive(Clone, Default)]
pub struct PipelineProbe {
    /// Frames fully reassembled by the Reorder side.
    pub frames_completed: Arc<AtomicU64>,
    /// FNV-1a checksum over reassembled pixel data, in frame order.
    pub checksum: Arc<AtomicU64>,
    /// Frames abandoned in tolerant mode: corrupt frames skipped by
    /// Fetch plus frames left incomplete at Reorder exit (blocks lost to
    /// a mid-stream fault). Always 0 in the default strict mode.
    pub dropped_frames: Arc<AtomicU64>,
}

impl PipelineProbe {
    /// Expose the probe as observation functions — the paper-§6
    /// custom-metric extension in action: a `frames_completed` gauge
    /// registered on the reassembling component.
    pub fn metrics(&self) -> Vec<std::sync::Arc<dyn embera::MetricSource>> {
        let frames = std::sync::Arc::clone(&self.frames_completed);
        vec![embera::FnMetric::new("frames_completed", move || {
            frames.load(Ordering::Relaxed) as f64
        })]
    }

    fn fold_frame(&self, pixels: &[u8]) {
        let mut h = self.checksum.load(Ordering::Acquire);
        if h == 0 {
            h = 0xcbf2_9ce4_8422_2325;
        }
        for &b in pixels {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.checksum.store(h, Ordering::Release);
        self.frames_completed.fetch_add(1, Ordering::AcqRel);
    }
}

/// The Fetch component: "file management, Huffman decoding and pixel
/// reordering" (§3.2). Distributes coefficient blocks round-robin over
/// the IDCT components.
pub struct FetchBehavior {
    stream: MjpegStream,
    out_ifaces: Vec<String>,
    profile: WorkProfile,
    blocks_per_msg: usize,
    kernel: DctKind,
    dispatch: DispatchPolicy,
    /// Tolerant mode: a corrupt frame is decoded in full *before* any of
    /// its blocks is sent, so a mid-frame decode error drops the whole
    /// frame atomically (counted on the probe) instead of failing the
    /// component after a partial send.
    tolerant: Option<PipelineProbe>,
}

/// Dequantization state for whichever kernel the pipeline runs.
enum DequantTables {
    Reference([u16; BLOCK_SIZE]),
    Fast([i32; BLOCK_SIZE]),
}

/// Entropy decoder matching the kernel choice: the reference kernel
/// pairs with the paper's bit-serial Huffman decoder, the fast kernel
/// with the two-level LUT decoder.
fn entropy_decoder(kernel: DctKind, data: &[u8]) -> EntropyDecoder<'_> {
    match kernel {
        DctKind::ReferenceFloat => EntropyDecoder::reference(data),
        DctKind::FastAan | DctKind::FastSimd => EntropyDecoder::new(data),
    }
}

impl DequantTables {
    fn for_kernel(kernel: DctKind, quality: u8) -> Self {
        let qtable = scaled_qtable(quality);
        match kernel {
            DctKind::ReferenceFloat => DequantTables::Reference(qtable),
            DctKind::FastAan | DctKind::FastSimd => {
                DequantTables::Fast(fast_dequant_table(&qtable))
            }
        }
    }

    fn apply(&self, zz: &[i16; BLOCK_SIZE]) -> [i32; BLOCK_SIZE] {
        match self {
            DequantTables::Reference(q) => dequantize_reorder(zz, q),
            DequantTables::Fast(f) => dequantize_reorder_scaled(zz, f),
        }
    }
}

/// How the Fetch side assigns coefficient blocks to IDCT lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// Strict round-robin by block index — the paper's schedule. Every
    /// lane's message budget is computable from the stream length, which
    /// is what keeps the Table 2 communication counts exact.
    #[default]
    RoundRobin,
    /// Queue-depth credit: each block goes to the lane with the fewest
    /// outstanding blocks (transport-reported mailbox depth × batch size
    /// plus locally buffered blocks, ties broken rotating). Per-lane
    /// budgets become data-dependent, so the pipeline switches to
    /// dynamic termination: Fetch ends each lane with an empty sentinel
    /// message and Reorder drains by total block count. The sentinels
    /// add one send per lane to the Fetch counters — Table 2 exactness
    /// is a [`DispatchPolicy::RoundRobin`] property.
    LeastLoaded,
}

/// Per-lane coefficient batch buffers for the Fetch side. A lane is
/// flushed when it holds `blocks_per_msg` blocks; batch size 1
/// degenerates to the paper's one-message-per-block schedule
/// (single-block wire format). The free-running SMP Fetch lets batches
/// span frame boundaries and flushes remainders once at stream end;
/// the MPSoC merged component round-trips every frame and therefore
/// flushes at each frame end ([`BatchSender::flush_all`]).
struct BatchSender {
    batch: usize,
    lanes: Vec<Vec<(u32, u32, [i32; BLOCK_SIZE])>>,
    dispatch: DispatchPolicy,
    /// Rotating tie-break start for least-loaded lane picks, so an idle
    /// pipeline does not funnel every block into lane 0.
    next_lane: usize,
    scratch: Vec<u8>,
    pool: Option<BufferPool>,
}

impl BatchSender {
    fn new(
        n_lanes: usize,
        batch: usize,
        dispatch: DispatchPolicy,
        pool: Option<BufferPool>,
    ) -> Self {
        BatchSender {
            batch: batch.max(1),
            lanes: vec![Vec::with_capacity(batch.max(1)); n_lanes],
            dispatch,
            next_lane: 0,
            scratch: Vec::new(),
            pool,
        }
    }

    fn flush_lane(
        &mut self,
        ctx: &mut dyn Ctx,
        ifaces: &[String],
        lane: usize,
    ) -> Result<(), EmberaError> {
        if self.lanes[lane].is_empty() {
            return Ok(());
        }
        let msg = if let Some(pool) = self.pool.as_ref() {
            // Pooled path serializes straight into the pool-owned buffer:
            // no scratch staging, no extra memcpy pass.
            let blocks = &self.lanes[lane];
            if self.batch == 1 {
                let (frame, bi, coeffs) = &blocks[0];
                pool.take_with(COEFF_REC, |dst| write_coeff_msg(dst, *frame, *bi, coeffs))
            } else {
                pool.take_with(4 + blocks.len() * COEFF_REC, |dst| {
                    write_coeff_batch(dst, blocks)
                })
            }
        } else {
            if self.batch == 1 {
                let (frame, bi, coeffs) = self.lanes[lane][0];
                encode_coeff_into(&mut self.scratch, frame, bi, &coeffs);
            } else {
                encode_coeff_batch_into(&mut self.scratch, &self.lanes[lane]);
            }
            Bytes::copy_from_slice(&self.scratch)
        };
        self.lanes[lane].clear();
        ctx.send(&ifaces[lane], msg)
    }

    /// Lane choice for one block, per the dispatch policy. Least-loaded
    /// weighs the transport's queue depth (in messages, scaled by the
    /// batch size) plus blocks buffered locally; backends that cannot
    /// report depth (no [`Ctx::route_depth`]) degrade to the local
    /// buffer counts, which rotation then keeps balanced.
    fn pick_lane(&mut self, ctx: &mut dyn Ctx, ifaces: &[String], bi: u32) -> usize {
        let n = self.lanes.len();
        match self.dispatch {
            DispatchPolicy::RoundRobin => bi as usize % n,
            DispatchPolicy::LeastLoaded => {
                let mut best = self.next_lane % n;
                let mut best_load = u64::MAX;
                for off in 0..n {
                    let lane = (self.next_lane + off) % n;
                    let queued = ctx.route_depth(&ifaces[lane]).unwrap_or(0);
                    let load = queued * self.batch as u64 + self.lanes[lane].len() as u64;
                    if load < best_load {
                        best_load = load;
                        best = lane;
                    }
                }
                self.next_lane = (best + 1) % n;
                best
            }
        }
    }

    fn push(
        &mut self,
        ctx: &mut dyn Ctx,
        ifaces: &[String],
        frame: u32,
        bi: u32,
        coeffs: [i32; BLOCK_SIZE],
    ) -> Result<(), EmberaError> {
        let lane = self.pick_lane(ctx, ifaces, bi);
        self.lanes[lane].push((frame, bi, coeffs));
        if self.lanes[lane].len() >= self.batch {
            self.flush_lane(ctx, ifaces, lane)?;
        }
        Ok(())
    }

    /// Flush every lane's remainder (frame end on MPSoC, stream end on
    /// SMP).
    fn flush_all(&mut self, ctx: &mut dyn Ctx, ifaces: &[String]) -> Result<(), EmberaError> {
        for lane in 0..self.lanes.len() {
            self.flush_lane(ctx, ifaces, lane)?;
        }
        Ok(())
    }

    /// End-of-stream sentinels for dynamic termination: one empty
    /// message per lane, telling each IDCT its input is exhausted.
    fn send_sentinels(&mut self, ctx: &mut dyn Ctx, ifaces: &[String]) -> Result<(), EmberaError> {
        for iface in ifaces {
            ctx.send(iface, Bytes::new())?;
        }
        Ok(())
    }
}

impl FetchBehavior {
    /// Fetch over `stream`, sending to the given required interfaces
    /// (one message per block, reference kernel — the paper's schedule).
    pub fn new(stream: MjpegStream, out_ifaces: Vec<String>, profile: WorkProfile) -> Self {
        Self::with_options(stream, out_ifaces, profile, 1, DctKind::ReferenceFloat)
    }

    /// Fetch with an explicit batch size and (de)quantization kernel.
    pub fn with_options(
        stream: MjpegStream,
        out_ifaces: Vec<String>,
        profile: WorkProfile,
        blocks_per_msg: usize,
        kernel: DctKind,
    ) -> Self {
        FetchBehavior {
            stream,
            out_ifaces,
            profile,
            blocks_per_msg: blocks_per_msg.max(1),
            kernel,
            dispatch: DispatchPolicy::RoundRobin,
            tolerant: None,
        }
    }

    /// Enable graceful degradation: a frame whose entropy data fails to
    /// decode is skipped (and counted on `probe.dropped_frames`) instead
    /// of aborting the component.
    pub fn tolerant(mut self, probe: PipelineProbe) -> Self {
        self.tolerant = Some(probe);
        self
    }

    /// Select the lane dispatch policy (default strict round-robin).
    /// Least-loaded dispatch appends one empty sentinel message per lane
    /// at stream end so dynamically terminated IDCTs know to stop.
    pub fn dispatch(mut self, policy: DispatchPolicy) -> Self {
        self.dispatch = policy;
        self
    }

    fn run_inner(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        let n_idct = self.out_ifaces.len();
        if self.stream.is_empty() {
            return Ok(());
        }
        // Frame 0: configuration probe — read geometry, prime tables.
        let header = self.stream.frames[0].header;
        let tables = DequantTables::for_kernel(self.kernel, header.quality);
        let blocks = header.blocks();
        ctx.compute(Work::ops(
            WorkClass::Control,
            self.profile.file_mgmt_ops_per_frame,
        ));

        let mut sender = BatchSender::new(
            n_idct,
            self.blocks_per_msg,
            self.dispatch,
            ctx.payload_pool(),
        );
        for (t, frame) in self.stream.frames.iter().enumerate().skip(1) {
            ctx.compute(Work::ops(
                WorkClass::Control,
                self.profile.file_mgmt_ops_per_frame,
            ));
            let mut dec = entropy_decoder(self.kernel, &frame.data);
            let mut bits_before = 0u64;
            if let Some(probe) = &self.tolerant {
                // Decode the whole frame before sending any of it: a
                // corrupt frame is dropped atomically, never half-sent.
                let mut buffered = Vec::with_capacity(blocks);
                let decoded = (0..blocks).try_for_each(|_| {
                    let zz = dec.next_block()?;
                    let bits = dec.bits_consumed() - bits_before;
                    bits_before = dec.bits_consumed();
                    buffered.push((bits, tables.apply(&zz)));
                    Ok::<(), crate::bitstream::OutOfBits>(())
                });
                if decoded.is_err() {
                    probe.dropped_frames.fetch_add(1, Ordering::AcqRel);
                    continue;
                }
                for (bi, (bits, coeffs)) in buffered.into_iter().enumerate() {
                    ctx.compute(
                        Work::ops(
                            WorkClass::Control,
                            bits * self.profile.huffman_ops_per_bit
                                + BLOCK_SIZE as u64 * self.profile.dequant_ops_per_coeff,
                        )
                        .with_mem(BLOCK_SIZE as u64 * 4),
                    );
                    sender.push(ctx, &self.out_ifaces, t as u32, bi as u32, coeffs)?;
                }
                continue;
            }
            for bi in 0..blocks {
                let zz = dec.next_block().map_err(|e| {
                    EmberaError::Platform(format!("frame {t} block {bi}: {e}"))
                })?;
                let bits = dec.bits_consumed() - bits_before;
                bits_before = dec.bits_consumed();
                let coeffs = tables.apply(&zz);
                ctx.compute(
                    Work::ops(
                        WorkClass::Control,
                        bits * self.profile.huffman_ops_per_bit
                            + BLOCK_SIZE as u64 * self.profile.dequant_ops_per_coeff,
                    )
                    .with_mem(BLOCK_SIZE as u64 * 4),
                );
                sender.push(ctx, &self.out_ifaces, t as u32, bi as u32, coeffs)?;
            }
        }
        // Stream end: flush partially filled lanes. Batches span frame
        // boundaries, so this is the only remainder flush of the run.
        sender.flush_all(ctx, &self.out_ifaces)?;
        if self.dispatch == DispatchPolicy::LeastLoaded {
            sender.send_sentinels(ctx, &self.out_ifaces)?;
        }
        Ok(())
    }
}

impl Behavior for FetchBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        self.run_inner(ctx)
    }
}

/// An IDCT component: receives coefficient blocks, applies the inverse
/// DCT, forwards pixel blocks.
pub struct IdctBehavior {
    in_iface: String,
    out_iface: String,
    /// Messages (single blocks at batch 1, batches otherwise) expected.
    expected: u64,
    profile: WorkProfile,
    blocks_per_msg: usize,
    kernel: DctKind,
    /// Tolerant mode: instead of a fixed message budget, drain the input
    /// until it stays idle (or shutdown). A restarted IDCT then resumes
    /// mid-stream without deadlocking on messages its first incarnation
    /// already consumed.
    tolerant: bool,
    /// Dynamic termination (least-loaded dispatch): the per-lane message
    /// budget is data-dependent, so ignore `expected` and drain until
    /// the sender's empty sentinel message arrives.
    dynamic: bool,
}

impl IdctBehavior {
    /// IDCT expecting `expected` single-block messages on `in_iface`,
    /// forwarding to `out_iface` (reference kernel).
    pub fn new(
        in_iface: impl Into<String>,
        out_iface: impl Into<String>,
        expected: u64,
        profile: WorkProfile,
    ) -> Self {
        Self::with_options(in_iface, out_iface, expected, profile, 1, DctKind::ReferenceFloat)
    }

    /// IDCT with an explicit batch size and kernel; `expected` counts
    /// *messages*, each carrying up to `blocks_per_msg` blocks.
    pub fn with_options(
        in_iface: impl Into<String>,
        out_iface: impl Into<String>,
        expected: u64,
        profile: WorkProfile,
        blocks_per_msg: usize,
        kernel: DctKind,
    ) -> Self {
        IdctBehavior {
            in_iface: in_iface.into(),
            out_iface: out_iface.into(),
            expected,
            profile,
            blocks_per_msg: blocks_per_msg.max(1),
            kernel,
            tolerant: false,
            dynamic: false,
        }
    }

    /// Enable graceful degradation: drain the input until idle instead
    /// of expecting a fixed message count.
    pub fn tolerant(mut self) -> Self {
        self.tolerant = true;
        self
    }

    /// Enable dynamic termination (for least-loaded dispatch): drain the
    /// input until the sender's empty sentinel message instead of
    /// expecting a fixed message count.
    pub fn dynamic(mut self) -> Self {
        self.dynamic = true;
        self
    }

    fn transform(&self, coeffs: &[i32; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        match self.kernel {
            DctKind::ReferenceFloat => idct_to_pixels(coeffs),
            DctKind::FastAan => idct_scaled_to_pixels(coeffs),
            DctKind::FastSimd => crate::simd::idct_scaled_to_pixels_simd(coeffs),
        }
    }

    fn process_message(
        &self,
        ctx: &mut dyn Ctx,
        msg: &Bytes,
        out: &mut Vec<(u32, u32, [u8; BLOCK_SIZE])>,
        scratch: &mut Vec<u8>,
        pool: Option<&BufferPool>,
    ) -> Result<(), EmberaError> {
        if self.blocks_per_msg == 1 {
            let (frame, block, coeffs) = decode_coeff_msg(msg)?;
            let pixels = self.transform(&coeffs);
            ctx.compute(
                Work::ops(WorkClass::Dsp, self.profile.idct_ops_per_block)
                    .with_mem(BLOCK_SIZE as u64 * 5),
            );
            let msg = match pool {
                Some(p) => {
                    p.take_with(PIXEL_REC, |dst| write_pixel_msg(dst, frame, block, &pixels))
                }
                None => {
                    encode_pixel_into(scratch, frame, block, &pixels);
                    Bytes::copy_from_slice(scratch)
                }
            };
            return ctx.send(&self.out_iface, msg);
        }
        // Batched path: split the batch into zero-copy block views,
        // transform each, and answer with one pixel batch carrying
        // the same (frame, block) tags.
        let view = BatchView::coeffs(msg)?;
        out.clear();
        for i in 0..view.len() {
            let (frame, bi, payload) = view.block(i);
            let coeffs = coeffs_from_bytes(&payload)?;
            out.push((frame, bi, self.transform(&coeffs)));
        }
        ctx.compute(
            Work::ops(
                WorkClass::Dsp,
                self.profile.idct_ops_per_block * view.len() as u64,
            )
            .with_mem(BLOCK_SIZE as u64 * 5 * view.len() as u64),
        );
        let msg = match pool {
            Some(p) => {
                p.take_with(4 + out.len() * PIXEL_REC, |dst| write_pixel_batch(dst, out))
            }
            None => {
                encode_pixel_batch_into(scratch, out);
                Bytes::copy_from_slice(scratch)
            }
        };
        ctx.send(&self.out_iface, msg)
    }
}

impl Behavior for IdctBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        let mut out = Vec::with_capacity(self.blocks_per_msg);
        let mut scratch = Vec::new();
        let pool = ctx.payload_pool();
        if self.tolerant {
            loop {
                let msg = match ctx.recv_timeout(&self.in_iface, TOLERANT_IDLE_NS) {
                    Ok(Some(m)) => m,
                    Ok(None) | Err(EmberaError::Terminated) => return Ok(()),
                    Err(e) => return Err(e),
                };
                if msg.is_empty() {
                    // Stream-end sentinel (tolerant + least-loaded runs).
                    recycle_msg(pool.as_ref(), msg);
                    return Ok(());
                }
                self.process_message(ctx, &msg, &mut out, &mut scratch, pool.as_ref())?;
                recycle_msg(pool.as_ref(), msg);
            }
        }
        if self.dynamic {
            loop {
                let msg = ctx.recv(&self.in_iface)?;
                if msg.is_empty() {
                    // Stream-end sentinel from the dispatching sender.
                    recycle_msg(pool.as_ref(), msg);
                    return Ok(());
                }
                self.process_message(ctx, &msg, &mut out, &mut scratch, pool.as_ref())?;
                recycle_msg(pool.as_ref(), msg);
            }
        }
        for _ in 0..self.expected {
            let msg = ctx.recv(&self.in_iface)?;
            self.process_message(ctx, &msg, &mut out, &mut scratch, pool.as_ref())?;
            recycle_msg(pool.as_ref(), msg);
        }
        Ok(())
    }
}

/// Frame reassembly state shared by Reorder and Fetch-Reorder.
///
/// Frames fold into the checksum strictly in frame order via the
/// `next_out` watermark: under round-robin dispatch frames complete in
/// order anyway, and under least-loaded dispatch (where lanes drift) a
/// completed frame parks in `pending` until its predecessors fold — so
/// the checksum is identical across dispatch policies. Retired frame
/// buffers go on a free list and are reused, so steady-state reassembly
/// allocates nothing: every block of a frame is written exactly once
/// before the frame folds, which is what makes the unzeroed reuse safe.
struct Assembler {
    width: usize,
    height: usize,
    blocks: usize,
    partial: HashMap<u32, (Vec<u8>, usize)>,
    /// Completed frames waiting on a slower predecessor, keyed by frame
    /// index. Empty for the whole run under round-robin dispatch.
    pending: BTreeMap<u32, Vec<u8>>,
    /// Retired frame buffers for reuse.
    free: Vec<Vec<u8>>,
    next_out: u32,
    probe: PipelineProbe,
}

impl Assembler {
    fn new(width: usize, height: usize, probe: PipelineProbe) -> Self {
        Assembler {
            width,
            height,
            blocks: (width / 8) * (height / 8),
            partial: HashMap::new(),
            pending: BTreeMap::new(),
            free: Vec::new(),
            next_out: 1,
            probe,
        }
    }

    /// Fold one completed frame and retire its buffer to the free list.
    fn fold(&mut self, pixels: Vec<u8>) {
        self.probe.fold_frame(&pixels);
        self.free.push(pixels);
        self.next_out += 1;
    }

    fn add(&mut self, frame: u32, block: u32, pixels: &[u8; BLOCK_SIZE]) {
        if !self.partial.contains_key(&frame) {
            let buf = self
                .free
                .pop()
                .unwrap_or_else(|| vec![0u8; self.width * self.height]);
            self.partial.insert(frame, (buf, 0));
        }
        let entry = self.partial.get_mut(&frame).unwrap();
        place_block(&mut entry.0, self.width, block as usize, pixels);
        entry.1 += 1;
        if entry.1 == self.blocks {
            let (pixels, _) = self.partial.remove(&frame).unwrap();
            if frame == self.next_out {
                self.fold(pixels);
                // A completed frame may have unblocked its successors.
                while let Some(parked) = self.pending.remove(&self.next_out) {
                    self.fold(parked);
                }
            } else {
                self.pending.insert(frame, pixels);
            }
        }
    }

    /// Fold every parked frame in frame order, skipping over gaps. Used
    /// at end of a tolerant run: a frame dropped upstream leaves a hole
    /// the watermark would otherwise wait on forever.
    fn flush(&mut self) {
        while let Some((&frame, _)) = self.pending.iter().next() {
            self.next_out = frame;
            let pixels = self.pending.remove(&frame).unwrap();
            self.fold(pixels);
        }
    }
}

/// The Reorder component: "reassembles images and eventually sends data
/// to an output display" (§3.2). Receives pixel blocks from the IDCT
/// components round-robin.
pub struct ReorderBehavior {
    in_ifaces: Vec<String>,
    total_blocks: u64,
    width: usize,
    height: usize,
    profile: WorkProfile,
    probe: PipelineProbe,
    blocks_per_msg: usize,
    /// Tolerant mode: drain lanes until they stay idle instead of
    /// expecting `total_blocks`; frames still incomplete at exit are
    /// counted on `probe.dropped_frames` rather than deadlocking.
    tolerant: bool,
    /// Dynamic termination (least-loaded dispatch): per-lane message
    /// budgets are data-dependent, so poll lanes round-robin and stop
    /// once `total_blocks` blocks have arrived.
    dynamic: bool,
}

/// Lane poll slice for dynamically terminated Reorder: long enough to
/// park rather than spin, short enough to hop to a busier lane quickly.
const DYNAMIC_POLL_NS: u64 = 200_000;

impl ReorderBehavior {
    /// Reorder expecting `total_blocks` pixel blocks distributed
    /// round-robin over `in_ifaces`, one block per message.
    pub fn new(
        in_ifaces: Vec<String>,
        total_blocks: u64,
        width: usize,
        height: usize,
        profile: WorkProfile,
        probe: PipelineProbe,
    ) -> Self {
        Self::with_options(in_ifaces, total_blocks, width, height, profile, probe, 1)
    }

    /// Reorder with an explicit batch size (must match the Fetch side).
    #[allow(clippy::too_many_arguments)]
    pub fn with_options(
        in_ifaces: Vec<String>,
        total_blocks: u64,
        width: usize,
        height: usize,
        profile: WorkProfile,
        probe: PipelineProbe,
        blocks_per_msg: usize,
    ) -> Self {
        ReorderBehavior {
            in_ifaces,
            total_blocks,
            width,
            height,
            profile,
            probe,
            blocks_per_msg: blocks_per_msg.max(1),
            tolerant: false,
            dynamic: false,
        }
    }

    /// Enable graceful degradation: drain lanes until idle and count
    /// incomplete frames as dropped instead of requiring the full block
    /// budget.
    pub fn tolerant(mut self) -> Self {
        self.tolerant = true;
        self
    }

    /// Enable dynamic termination (for least-loaded dispatch): poll
    /// lanes and stop after `total_blocks` blocks instead of following
    /// the round-robin quota schedule.
    pub fn dynamic(mut self) -> Self {
        self.dynamic = true;
        self
    }

    /// Fold one pixel message (single block or batch, per the configured
    /// wire format) into the assembler, charging reorder work. Consumes
    /// the message and gives its buffer back to the pool; returns the
    /// number of blocks it carried.
    fn absorb(
        &self,
        ctx: &mut dyn Ctx,
        asm: &mut Assembler,
        msg: Bytes,
        pool: Option<&BufferPool>,
    ) -> Result<u64, EmberaError> {
        let blocks = if self.blocks_per_msg == 1 {
            let (frame, block, pixels) = decode_pixel_msg(&msg)?;
            asm.add(frame, block, &pixels);
            1u64
        } else {
            let view = BatchView::pixels(&msg)?;
            for i in 0..view.len() {
                let (frame, bi, payload) = view.block(i);
                let mut px = [0u8; BLOCK_SIZE];
                px.copy_from_slice(&payload);
                asm.add(frame, bi, &px);
            }
            view.len() as u64
        };
        recycle_msg(pool, msg);
        ctx.compute(
            Work::ops(
                WorkClass::MemCopy,
                BLOCK_SIZE as u64 * self.profile.reorder_ops_per_pixel * blocks,
            )
            .with_mem(BLOCK_SIZE as u64 * 2 * blocks),
        );
        Ok(blocks)
    }

    /// Tolerant drain: poll lanes round-robin with an idle deadline and
    /// stop after one full round of silence (or shutdown). Whatever is
    /// still partially assembled then was lost upstream — count it.
    fn run_tolerant(&mut self, ctx: &mut dyn Ctx, asm: &mut Assembler) -> Result<(), EmberaError> {
        let pool = ctx.payload_pool();
        'drain: loop {
            let mut got_any = false;
            for lane in 0..self.in_ifaces.len() {
                match ctx.recv_timeout(&self.in_ifaces[lane], TOLERANT_IDLE_NS) {
                    Ok(Some(msg)) => {
                        got_any = true;
                        self.absorb(ctx, asm, msg, pool.as_ref())?;
                    }
                    Ok(None) => {}
                    Err(EmberaError::Terminated) => break 'drain,
                    Err(e) => return Err(e),
                }
            }
            if !got_any {
                break;
            }
        }
        // A frame dropped upstream leaves a hole in the frame sequence;
        // fold the completed frames parked behind it before counting
        // what is still partial.
        asm.flush();
        let leftover = asm.partial.len() as u64;
        if leftover > 0 {
            self.probe.dropped_frames.fetch_add(leftover, Ordering::AcqRel);
        }
        Ok(())
    }

    /// Dynamic drain (least-loaded dispatch): lanes owe no fixed quota,
    /// so poll them round-robin with a short slice until the stream's
    /// full block count has arrived.
    fn run_dynamic(&mut self, ctx: &mut dyn Ctx, asm: &mut Assembler) -> Result<(), EmberaError> {
        let pool = ctx.payload_pool();
        let mut received = 0u64;
        'drain: while received < self.total_blocks {
            for lane in 0..self.in_ifaces.len() {
                match ctx.recv_timeout(&self.in_ifaces[lane], DYNAMIC_POLL_NS) {
                    Ok(Some(msg)) => {
                        received += self.absorb(ctx, asm, msg, pool.as_ref())?;
                        if received >= self.total_blocks {
                            break 'drain;
                        }
                    }
                    Ok(None) => {}
                    Err(EmberaError::Terminated) => break 'drain,
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }
}

impl Behavior for ReorderBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        let mut asm = Assembler::new(self.width, self.height, self.probe.clone());
        let n = self.in_ifaces.len();
        let per_frame = asm.blocks;
        if self.tolerant {
            return self.run_tolerant(ctx, &mut asm);
        }
        if self.dynamic {
            return self.run_dynamic(ctx, &mut asm);
        }
        let pool = ctx.payload_pool();
        if self.blocks_per_msg == 1 {
            for i in 0..self.total_blocks {
                // Global block index within its frame selects the lane.
                let lane = (i as usize % per_frame) % n;
                let msg = ctx.recv(&self.in_ifaces[lane])?;
                self.absorb(ctx, &mut asm, msg, pool.as_ref())?;
            }
            return Ok(());
        }
        // Batched path: batches span frame boundaries, so each lane owes
        // a fixed total message count for the whole run (its block share,
        // flushed every `blocks_per_msg` blocks, remainder at stream
        // end). Lanes are drained round-robin one message at a time to
        // keep the partial-frame window small; per-lane FIFO order makes
        // frames complete — and fold into the checksum — in frame order.
        if per_frame == 0 {
            return Ok(());
        }
        let frames = self.total_blocks / per_frame as u64;
        let quota: Vec<u64> = (0..n)
            .map(|lane| {
                lane_msgs_total(
                    lane_share(per_frame as u64, n, lane),
                    frames,
                    self.blocks_per_msg,
                )
            })
            .collect();
        let rounds = quota.iter().copied().max().unwrap_or(0);
        for round in 0..rounds {
            for (lane, &lane_quota) in quota.iter().enumerate() {
                if round >= lane_quota {
                    continue;
                }
                let msg = ctx.recv(&self.in_ifaces[lane])?;
                self.absorb(ctx, &mut asm, msg, pool.as_ref())?;
            }
        }
        Ok(())
    }
}

/// The merged Fetch-Reorder component of the MPSoC deployment (§5.3):
/// per frame, decodes and sends all blocks to the IDCTs, then receives
/// and reassembles that frame's pixel blocks.
pub struct FetchReorderBehavior {
    stream: MjpegStream,
    out_ifaces: Vec<String>,
    in_ifaces: Vec<String>,
    profile: WorkProfile,
    probe: PipelineProbe,
    blocks_per_msg: usize,
    kernel: DctKind,
}

impl FetchReorderBehavior {
    /// Build the merged component (one block per message, reference
    /// kernel — the paper's schedule).
    pub fn new(
        stream: MjpegStream,
        out_ifaces: Vec<String>,
        in_ifaces: Vec<String>,
        profile: WorkProfile,
        probe: PipelineProbe,
    ) -> Self {
        Self::with_options(stream, out_ifaces, in_ifaces, profile, probe, 1, DctKind::ReferenceFloat)
    }

    /// Merged component with an explicit batch size and kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn with_options(
        stream: MjpegStream,
        out_ifaces: Vec<String>,
        in_ifaces: Vec<String>,
        profile: WorkProfile,
        probe: PipelineProbe,
        blocks_per_msg: usize,
        kernel: DctKind,
    ) -> Self {
        FetchReorderBehavior {
            stream,
            out_ifaces,
            in_ifaces,
            profile,
            probe,
            blocks_per_msg: blocks_per_msg.max(1),
            kernel,
        }
    }
}

impl Behavior for FetchReorderBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        if self.stream.is_empty() {
            return Ok(());
        }
        let n = self.out_ifaces.len();
        let batch = self.blocks_per_msg;
        let header = self.stream.frames[0].header;
        let tables = DequantTables::for_kernel(self.kernel, header.quality);
        let blocks = header.blocks();
        let mut asm = Assembler::new(
            header.width as usize,
            header.height as usize,
            self.probe.clone(),
        );
        ctx.compute(Work::ops(
            WorkClass::Control,
            self.profile.file_mgmt_ops_per_frame,
        ));
        let pool = ctx.payload_pool();
        // The merged component's per-frame round trip is inherently a
        // full-barrier schedule; least-loaded dispatch is an SMP-builder
        // feature, so the sender always deals round-robin here.
        let mut sender = BatchSender::new(n, batch, DispatchPolicy::RoundRobin, pool.clone());
        for (t, frame) in self.stream.frames.iter().enumerate().skip(1) {
            ctx.compute(Work::ops(
                WorkClass::Control,
                self.profile.file_mgmt_ops_per_frame,
            ));
            // Fetch half: decode + distribute this frame's blocks.
            let mut dec = entropy_decoder(self.kernel, &frame.data);
            let mut bits_before = 0u64;
            for bi in 0..blocks {
                let zz = dec.next_block().map_err(|e| {
                    EmberaError::Platform(format!("frame {t} block {bi}: {e}"))
                })?;
                let bits = dec.bits_consumed() - bits_before;
                bits_before = dec.bits_consumed();
                let coeffs = tables.apply(&zz);
                ctx.compute(
                    Work::ops(
                        WorkClass::Control,
                        bits * self.profile.huffman_ops_per_bit
                            + BLOCK_SIZE as u64 * self.profile.dequant_ops_per_coeff,
                    )
                    .with_mem(BLOCK_SIZE as u64 * 4),
                );
                sender.push(ctx, &self.out_ifaces, t as u32, bi as u32, coeffs)?;
            }
            // The merged component round-trips each frame (send all its
            // blocks, then collect its pixels), so remainders flush at
            // frame end — batches never span frames on MPSoC.
            sender.flush_all(ctx, &self.out_ifaces)?;
            // Reorder half: collect this frame's pixel blocks. The IDCTs
            // answer each coefficient message with one pixel message, so
            // each lane owes its per-frame batch count.
            if batch == 1 {
                for bi in 0..blocks {
                    let lane = bi % n;
                    let msg = ctx.recv(&self.in_ifaces[lane])?;
                    let (f, b, pixels) = decode_pixel_msg(&msg)?;
                    recycle_msg(pool.as_ref(), msg);
                    ctx.compute(
                        Work::ops(
                            WorkClass::MemCopy,
                            BLOCK_SIZE as u64 * self.profile.reorder_ops_per_pixel,
                        )
                        .with_mem(BLOCK_SIZE as u64 * 2),
                    );
                    asm.add(f, b, &pixels);
                }
            } else {
                for (lane, in_iface) in self.in_ifaces.iter().enumerate() {
                    let msgs = lane_msgs_per_frame(lane_share(blocks as u64, n, lane), batch);
                    for _ in 0..msgs {
                        let msg = ctx.recv(in_iface)?;
                        let count = {
                            let view = BatchView::pixels(&msg)?;
                            for i in 0..view.len() {
                                let (f, bi, payload) = view.block(i);
                                let mut px = [0u8; BLOCK_SIZE];
                                px.copy_from_slice(&payload);
                                asm.add(f, bi, &px);
                            }
                            view.len() as u64
                        };
                        recycle_msg(pool.as_ref(), msg);
                        ctx.compute(
                            Work::ops(
                                WorkClass::MemCopy,
                                BLOCK_SIZE as u64 * self.profile.reorder_ops_per_pixel * count,
                            )
                            .with_mem(BLOCK_SIZE as u64 * 2 * count),
                        );
                    }
                }
            }
        }
        Ok(())
    }
}

/// Configuration of the componentized application builders.
#[derive(Debug, Clone)]
pub struct MjpegAppConfig {
    /// Number of IDCT components (paper: 3 on SMP, 2 on the STi7200).
    pub idct_count: usize,
    /// Work annotations.
    pub profile: WorkProfile,
    /// Component stack size. Default 8 392 000 bytes — the paper's
    /// measured Linux thread stack ("8 392 kb").
    pub stack_bytes: u64,
    /// Coefficient/pixel blocks carried per message. The default of 1
    /// preserves the paper's exact send-count structure (Table 2); larger
    /// batches amortize per-message cost for throughput runs.
    pub blocks_per_msg: usize,
    /// Which (I)DCT kernel the pipeline runs. The reference float kernel
    /// is the default; [`DctKind::FastAan`] selects the fixed-point AAN
    /// fast path with dequantization folded into prescaled tables;
    /// [`DctKind::FastSimd`] adds runtime-detected SSE2/AVX2 vectors on
    /// top of the same arithmetic.
    pub kernel: DctKind,
    /// How Fetch deals blocks over the IDCT lanes. The round-robin
    /// default is the paper's schedule with exact Table 2 counts;
    /// [`DispatchPolicy::LeastLoaded`] balances by queue depth and
    /// switches the SMP pipeline to dynamic (sentinel / block-count)
    /// termination. The MPSoC merged builder ignores this (its
    /// per-frame round trip is already a barrier schedule).
    pub dispatch: DispatchPolicy,
    /// Attach a shared payload [`BufferPool`] sized to the configured
    /// batch so steady-state messaging allocates nothing on backends
    /// that support pooling (the threaded SMP transport). Default off:
    /// identical behavior, one heap allocation per serialized message.
    pub payload_pool: bool,
    /// Graceful degradation for the SMP pipeline: a corrupt frame is
    /// skipped by Fetch (counted on [`PipelineProbe::dropped_frames`]),
    /// IDCTs drain their input until idle instead of expecting a fixed
    /// budget (so a supervised restart resumes mid-stream), and Reorder
    /// counts frames left incomplete by lost blocks instead of
    /// deadlocking. Default `false`: any decode error fails the run —
    /// the paper's strict message-budget schedule. The MPSoC merged
    /// builder ignores this flag (its per-frame round trip cannot skip
    /// frames without desynchronizing the IDCT lanes).
    pub tolerate_corrupt_frames: bool,
}

impl Default for MjpegAppConfig {
    fn default() -> Self {
        MjpegAppConfig {
            idct_count: 3,
            profile: WorkProfile::default(),
            stack_bytes: 8_392_000,
            blocks_per_msg: 1,
            kernel: DctKind::ReferenceFloat,
            dispatch: DispatchPolicy::default(),
            payload_pool: false,
            tolerate_corrupt_frames: false,
        }
    }
}

/// Buffer pool sized for a pipeline configuration: one size class that
/// fits the largest message (a full coefficient batch; single-block and
/// pixel messages are smaller and ride in the same buffers).
pub fn pipeline_pool(cfg: &MjpegAppConfig) -> BufferPool {
    let pool = BufferPool::new(4 + cfg.blocks_per_msg.max(1) * COEFF_REC);
    // Enough buffers for the in-flight window of every lane plus slack;
    // the pool grows on demand if a queue builds deeper.
    pool.prewarm(16 * (cfg.idct_count + 2));
    pool
}

/// Build the SMP application (paper Figures 1 & 3): Fetch, `idct_count`
/// IDCTs, Reorder. Returns the builder (so callers can attach an
/// observer) plus a [`PipelineProbe`].
pub fn build_smp_app(stream: MjpegStream, cfg: &MjpegAppConfig) -> (AppBuilder, PipelineProbe) {
    assert!(cfg.idct_count >= 1);
    let probe = PipelineProbe::default();
    let header = stream.frames.first().map(|f| f.header);
    let blocks = header.map(|h| h.blocks()).unwrap_or(0) as u64;
    let frames_forwarded = stream.len().saturating_sub(1) as u64;
    let total_blocks = frames_forwarded * blocks;

    let mut app = AppBuilder::new("MJPEG");
    if cfg.payload_pool {
        app.with_buffer_pool(pipeline_pool(cfg));
    }
    let fetch_outs: Vec<String> = (1..=cfg.idct_count)
        .map(|k| format!("fetchIdct{k}"))
        .collect();
    let mut fetch_behavior = FetchBehavior::with_options(
        stream,
        fetch_outs.clone(),
        cfg.profile,
        cfg.blocks_per_msg,
        cfg.kernel,
    )
    .dispatch(cfg.dispatch);
    if cfg.tolerate_corrupt_frames {
        fetch_behavior = fetch_behavior.tolerant(probe.clone());
    }
    let mut fetch = ComponentSpec::new("Fetch", fetch_behavior).with_stack_bytes(cfg.stack_bytes);
    for iface in &fetch_outs {
        fetch = fetch.with_required(iface);
    }
    app.add(fetch);

    for k in 1..=cfg.idct_count {
        // Per-IDCT share: blocks are dealt round-robin, so lane k-1 gets
        // the blocks with index ≡ k-1 (mod idct_count) in every frame.
        // Batches span frames on SMP, so the message count is the lane's
        // whole-run block total divided by the batch size (rounded up
        // for the stream-end remainder flush).
        let per_frame = lane_share(blocks, cfg.idct_count, k - 1);
        let expected = lane_msgs_total(per_frame, frames_forwarded, cfg.blocks_per_msg);
        let mut idct = IdctBehavior::with_options(
            format!("_fetchIdct{k}"),
            "idctReorder",
            expected,
            cfg.profile,
            cfg.blocks_per_msg,
            cfg.kernel,
        );
        if cfg.dispatch == DispatchPolicy::LeastLoaded {
            idct = idct.dynamic();
        }
        if cfg.tolerate_corrupt_frames {
            idct = idct.tolerant();
        }
        app.add(
            ComponentSpec::new(format!("IDCT_{k}"), idct)
                .with_provided(format!("_fetchIdct{k}"))
                .with_required("idctReorder")
                .with_stack_bytes(cfg.stack_bytes)
                .on_cpu(k),
        );
        app.connect(
            ("Fetch", &format!("fetchIdct{k}")),
            (&format!("IDCT_{k}"), &format!("_fetchIdct{k}")),
        );
    }

    let reorder_ins: Vec<String> = (1..=cfg.idct_count)
        .map(|k| format!("_idct{k}Reorder"))
        .collect();
    let (w, h) = header.map(|h| (h.width as usize, h.height as usize)).unwrap_or((8, 8));
    let mut reorder_behavior = ReorderBehavior::with_options(
        reorder_ins.clone(),
        total_blocks,
        w,
        h,
        cfg.profile,
        probe.clone(),
        cfg.blocks_per_msg,
    );
    if cfg.dispatch == DispatchPolicy::LeastLoaded {
        reorder_behavior = reorder_behavior.dynamic();
    }
    if cfg.tolerate_corrupt_frames {
        reorder_behavior = reorder_behavior.tolerant();
    }
    let mut reorder = ComponentSpec::new("Reorder", reorder_behavior).with_stack_bytes(cfg.stack_bytes);
    for m in probe.metrics() {
        reorder = reorder.with_metric(m);
    }
    for iface in &reorder_ins {
        reorder = reorder.with_provided(iface);
    }
    app.add(reorder);
    for k in 1..=cfg.idct_count {
        app.connect(
            (&format!("IDCT_{k}"), "idctReorder"),
            ("Reorder", &format!("_idct{k}Reorder")),
        );
    }
    (app, probe)
}

/// Build the MPSoC application (paper Figure 7): Fetch-Reorder on the
/// ST40 (CPU 0) and `idct_count` IDCTs on ST231 accelerators (CPUs
/// 1..). Defaults to the paper's two IDCTs.
pub fn build_mpsoc_app(stream: MjpegStream, cfg: &MjpegAppConfig) -> (AppBuilder, PipelineProbe) {
    assert!(cfg.idct_count >= 1);
    let probe = PipelineProbe::default();
    let header = stream.frames.first().map(|f| f.header);
    let blocks = header.map(|h| h.blocks()).unwrap_or(0) as u64;
    let frames_forwarded = stream.len().saturating_sub(1) as u64;

    let mut app = AppBuilder::new("MJPEG-MPSoC");
    if cfg.payload_pool {
        app.with_buffer_pool(pipeline_pool(cfg));
    }
    let outs: Vec<String> = (1..=cfg.idct_count)
        .map(|k| format!("fetchIdct{k}"))
        .collect();
    let ins: Vec<String> = (1..=cfg.idct_count)
        .map(|k| format!("_idct{k}Reorder"))
        .collect();
    let mut fr = ComponentSpec::new(
        "Fetch-Reorder",
        FetchReorderBehavior::with_options(
            stream,
            outs.clone(),
            ins.clone(),
            cfg.profile,
            probe.clone(),
            cfg.blocks_per_msg,
            cfg.kernel,
        ),
    )
    .with_stack_bytes(16 * 1024)
    .on_cpu(0);
    for m in probe.metrics() {
        fr = fr.with_metric(m);
    }
    for iface in &outs {
        fr = fr.with_required(iface);
    }
    for iface in &ins {
        fr = fr.with_provided(iface);
    }
    app.add(fr);

    for k in 1..=cfg.idct_count {
        let per_frame = lane_share(blocks, cfg.idct_count, k - 1);
        let expected = frames_forwarded * lane_msgs_per_frame(per_frame, cfg.blocks_per_msg);
        app.add(
            ComponentSpec::new(
                format!("IDCT_{k}"),
                IdctBehavior::with_options(
                    format!("_fetchIdct{k}"),
                    "idctReorder",
                    expected,
                    cfg.profile,
                    cfg.blocks_per_msg,
                    cfg.kernel,
                ),
            )
            .with_provided(format!("_fetchIdct{k}"))
            .with_required("idctReorder")
            .with_stack_bytes(16 * 1024)
            .on_cpu(k),
        );
        app.connect(
            ("Fetch-Reorder", &format!("fetchIdct{k}")),
            (&format!("IDCT_{k}"), &format!("_fetchIdct{k}")),
        );
        app.connect(
            (&format!("IDCT_{k}"), "idctReorder"),
            ("Fetch-Reorder", &format!("_idct{k}Reorder")),
        );
    }
    (app, probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synthesize_stream;
    use embera::{Platform, RunningApp};
    use embera_smp::SmpPlatform;

    fn small_stream(frames: usize) -> MjpegStream {
        synthesize_stream(frames, 48, 24, 75, 0xBEEF)
    }

    #[test]
    fn coeff_msg_round_trip() {
        let mut coeffs = [0i32; BLOCK_SIZE];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = (i as i32 - 32) * 100;
        }
        let b = encode_coeff_msg(7, 11, &coeffs);
        assert_eq!(decode_coeff_msg(&b).unwrap(), (7, 11, coeffs));
    }

    #[test]
    fn pixel_msg_round_trip() {
        let mut px = [0u8; BLOCK_SIZE];
        for (i, p) in px.iter_mut().enumerate() {
            *p = i as u8 * 3;
        }
        let b = encode_pixel_msg(3, 17, &px);
        assert_eq!(decode_pixel_msg(&b).unwrap(), (3, 17, px));
    }

    #[test]
    fn malformed_messages_rejected() {
        assert!(decode_coeff_msg(&[0u8; 10]).is_err());
        assert!(decode_pixel_msg(&[0u8; 10]).is_err());
    }

    #[test]
    fn smp_pipeline_decodes_all_frames() {
        let (app, probe) = build_smp_app(small_stream(11), &MjpegAppConfig::default());
        let report = SmpPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        // 10 frames forwarded (first consumed for configuration).
        assert_eq!(probe.frames_completed.load(Ordering::SeqCst), 10);
        assert_eq!(report.component("Fetch").unwrap().app.total_sends, 180);
        for k in 1..=3 {
            let r = report.component(&format!("IDCT_{k}")).unwrap();
            assert_eq!(r.app.total_receives, 60);
            assert_eq!(r.app.total_sends, 60);
        }
        assert_eq!(report.component("Reorder").unwrap().app.total_receives, 180);
    }

    #[test]
    fn pipeline_output_matches_reference_decode() {
        // The checksum of the pipeline's reassembled frames must equal a
        // straight single-threaded decode of frames 1..N.
        let stream = small_stream(6);
        let mut expected = PipelineProbe::default();
        for f in &stream.frames[1..] {
            let px = crate::codec::decode_frame(&f.data, 48, 24, 75).unwrap();
            expected.fold_frame(&px);
        }
        let (app, probe) = build_smp_app(stream, &MjpegAppConfig::default());
        SmpPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            probe.checksum.load(Ordering::SeqCst),
            expected.checksum.load(Ordering::SeqCst),
            "componentized decode must be bit-identical to reference"
        );
        let _ = &mut expected;
    }

    #[test]
    fn coeff_batch_round_trip_is_zero_copy() {
        let mut c0 = [0i32; BLOCK_SIZE];
        let mut c1 = [0i32; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            c0[i] = i as i32 * 7 - 100;
            c1[i] = -(i as i32) * 3 + 40;
        }
        // Records from two different frames in one batch: batches span
        // frame boundaries on the SMP pipeline.
        let b = encode_coeff_batch(&[(9, 4, c0), (10, 7, c1)]);
        let view = BatchView::coeffs(&b).unwrap();
        assert_eq!(view.len(), 2);
        let (f0, bi0, p0) = view.block(0);
        let (f1, bi1, p1) = view.block(1);
        assert_eq!((f0, bi0, f1, bi1), (9, 4, 10, 7));
        assert_eq!(coeffs_from_bytes(&p0).unwrap(), c0);
        assert_eq!(coeffs_from_bytes(&p1).unwrap(), c1);
        // Zero-copy: the block views alias the batch buffer.
        assert_eq!(p0.as_ptr(), b[12..].as_ptr());
    }

    #[test]
    fn pixel_batch_round_trip() {
        let px = [7u8; BLOCK_SIZE];
        let b = encode_pixel_batch(&[(3, 11, px)]);
        let view = BatchView::pixels(&b).unwrap();
        assert_eq!(view.len(), 1);
        let (f, bi, payload) = view.block(0);
        assert_eq!((f, bi), (3, 11));
        assert_eq!(&payload[..], &px[..]);
    }

    #[test]
    fn malformed_batches_rejected() {
        assert!(BatchView::coeffs(&Bytes::from_static(&[0u8; 4])).is_err());
        // Count says 2 but only one record present.
        let one = [1u8; BLOCK_SIZE];
        let mut b = encode_pixel_batch(&[(1, 0, one)]).to_vec();
        b[0..4].copy_from_slice(&2u32.to_le_bytes());
        assert!(BatchView::pixels(&Bytes::from(b)).is_err());
        // Zero-count batches are invalid.
        let empty = encode_pixel_batch(&[]);
        assert!(BatchView::pixels(&empty).is_err());
    }

    #[test]
    fn batched_smp_pipeline_same_output_fewer_messages() {
        // Batching must not change decoded output, only message counts:
        // with 18 blocks/frame over 3 lanes, each lane holds 6 blocks per
        // frame, so batch=6 folds them into one message per lane-frame.
        let stream = small_stream(9);
        let (ref_app, ref_probe) = build_smp_app(stream.clone(), &MjpegAppConfig::default());
        SmpPlatform::new().deploy(ref_app.build().unwrap()).unwrap().wait().unwrap();

        let cfg = MjpegAppConfig {
            blocks_per_msg: 6,
            ..MjpegAppConfig::default()
        };
        let (app, probe) = build_smp_app(stream, &cfg);
        let report = SmpPlatform::new().deploy(app.build().unwrap()).unwrap().wait().unwrap();
        assert_eq!(probe.frames_completed.load(Ordering::SeqCst), 8);
        assert_eq!(
            probe.checksum.load(Ordering::SeqCst),
            ref_probe.checksum.load(Ordering::SeqCst),
            "batching changed the decoded pixels"
        );
        // 8 forwarded frames × 3 lanes × 1 batch.
        assert_eq!(report.component("Fetch").unwrap().app.total_sends, 24);
        for k in 1..=3 {
            let r = report.component(&format!("IDCT_{k}")).unwrap();
            assert_eq!(r.app.total_receives, 8);
            assert_eq!(r.app.total_sends, 8);
        }
        assert_eq!(report.component("Reorder").unwrap().app.total_receives, 24);
    }

    #[test]
    fn batch_not_dividing_lane_share_still_decodes() {
        // batch=4 over a 6-block lane share: batches straddle frame
        // boundaries (4 forwarded frames × 6 = 24 blocks per lane →
        // 6 messages per lane, no per-frame remainder flush).
        let stream = small_stream(5);
        let expected = PipelineProbe::default();
        for f in &stream.frames[1..] {
            let px = crate::codec::decode_frame(&f.data, 48, 24, 75).unwrap();
            expected.fold_frame(&px);
        }
        let cfg = MjpegAppConfig {
            blocks_per_msg: 4,
            ..MjpegAppConfig::default()
        };
        let (app, probe) = build_smp_app(stream, &cfg);
        let report = SmpPlatform::new().deploy(app.build().unwrap()).unwrap().wait().unwrap();
        assert_eq!(
            probe.checksum.load(Ordering::SeqCst),
            expected.checksum.load(Ordering::SeqCst)
        );
        assert_eq!(report.component("Fetch").unwrap().app.total_sends, 3 * 6);
    }

    #[test]
    fn fast_kernel_smp_pipeline_matches_fast_reference_decode() {
        // The fast-kernel pipeline must be bit-identical to a straight
        // single-threaded fast-kernel decode (the kernels are exact
        // integer arithmetic, so the distribution over components cannot
        // perturb the output).
        let stream = small_stream(6);
        let expected = PipelineProbe::default();
        for f in &stream.frames[1..] {
            let px =
                crate::codec::decode_frame_with(&f.data, 48, 24, 75, DctKind::FastAan).unwrap();
            expected.fold_frame(&px);
        }
        let cfg = MjpegAppConfig {
            kernel: DctKind::FastAan,
            blocks_per_msg: 3,
            ..MjpegAppConfig::default()
        };
        let (app, probe) = build_smp_app(stream, &cfg);
        SmpPlatform::new().deploy(app.build().unwrap()).unwrap().wait().unwrap();
        assert_eq!(
            probe.checksum.load(Ordering::SeqCst),
            expected.checksum.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn batched_mpsoc_pipeline_decodes_all_frames() {
        let cfg = MjpegAppConfig {
            idct_count: 2,
            blocks_per_msg: 9,
            kernel: DctKind::FastAan,
            ..MjpegAppConfig::default()
        };
        let (app, probe) = build_mpsoc_app(small_stream(7), &cfg);
        let report = SmpPlatform::new().deploy(app.build().unwrap()).unwrap().wait().unwrap();
        assert_eq!(probe.frames_completed.load(Ordering::SeqCst), 6);
        // Each lane holds 9 blocks per frame: exactly one batch each.
        assert_eq!(
            report.component("Fetch-Reorder").unwrap().app.total_sends,
            6 * 2
        );
        for k in 1..=2 {
            let r = report.component(&format!("IDCT_{k}")).unwrap();
            assert_eq!(r.app.total_receives, 6);
            assert_eq!(r.app.total_sends, 6);
        }
    }

    #[test]
    fn pooled_pipeline_is_invisible_to_output_and_counters() {
        // Attaching the payload pool must change nothing observable:
        // same checksum, same Table 2 message counts at batch size 1.
        let stream = small_stream(11);
        let (ref_app, ref_probe) = build_smp_app(stream.clone(), &MjpegAppConfig::default());
        SmpPlatform::new().deploy(ref_app.build().unwrap()).unwrap().wait().unwrap();

        let cfg = MjpegAppConfig {
            payload_pool: true,
            ..MjpegAppConfig::default()
        };
        let (app, probe) = build_smp_app(stream, &cfg);
        let report = SmpPlatform::new().deploy(app.build().unwrap()).unwrap().wait().unwrap();
        assert_eq!(probe.frames_completed.load(Ordering::SeqCst), 10);
        assert_eq!(
            probe.checksum.load(Ordering::SeqCst),
            ref_probe.checksum.load(Ordering::SeqCst),
            "pooling changed the decoded pixels"
        );
        assert_eq!(report.component("Fetch").unwrap().app.total_sends, 180);
        assert_eq!(report.component("Reorder").unwrap().app.total_receives, 180);
    }

    #[test]
    fn least_loaded_dispatch_same_checksum_as_round_robin() {
        // Least-loaded dispatch reshuffles which lane carries which
        // block, but every block is position-tagged and the assembler
        // folds frames in frame order — the checksum must be identical.
        let stream = small_stream(9);
        let (ref_app, ref_probe) = build_smp_app(stream.clone(), &MjpegAppConfig::default());
        SmpPlatform::new().deploy(ref_app.build().unwrap()).unwrap().wait().unwrap();

        for batch in [1usize, 5] {
            let cfg = MjpegAppConfig {
                dispatch: DispatchPolicy::LeastLoaded,
                blocks_per_msg: batch,
                payload_pool: true,
                ..MjpegAppConfig::default()
            };
            let (app, probe) = build_smp_app(stream.clone(), &cfg);
            SmpPlatform::new().deploy(app.build().unwrap()).unwrap().wait().unwrap();
            assert_eq!(
                probe.frames_completed.load(Ordering::SeqCst),
                8,
                "batch {batch}: least-loaded run lost frames"
            );
            assert_eq!(
                probe.checksum.load(Ordering::SeqCst),
                ref_probe.checksum.load(Ordering::SeqCst),
                "batch {batch}: least-loaded dispatch changed the decoded pixels"
            );
        }
    }

    #[test]
    fn worker_counts_1_and_6_same_checksum() {
        let stream = small_stream(7);
        let (ref_app, ref_probe) = build_smp_app(stream.clone(), &MjpegAppConfig::default());
        SmpPlatform::new().deploy(ref_app.build().unwrap()).unwrap().wait().unwrap();
        for n in [1usize, 6] {
            let cfg = MjpegAppConfig {
                idct_count: n,
                ..MjpegAppConfig::default()
            };
            let (app, probe) = build_smp_app(stream.clone(), &cfg);
            SmpPlatform::new().deploy(app.build().unwrap()).unwrap().wait().unwrap();
            assert_eq!(probe.frames_completed.load(Ordering::SeqCst), 6);
            assert_eq!(
                probe.checksum.load(Ordering::SeqCst),
                ref_probe.checksum.load(Ordering::SeqCst),
                "{n}-worker topology changed the decoded pixels"
            );
        }
    }

    #[test]
    fn table2_count_structure_578() {
        // Scaled-down structural version of Table 2: counts must follow
        // send(Fetch) = 18 (N-1); recv(IDCT_k) = send(IDCT_k) = 6 (N-1);
        // recv(Reorder) = 18 (N-1).
        let n = 21; // stand-in for 578; structure is what matters
        let (app, _) = build_smp_app(small_stream(n), &MjpegAppConfig::default());
        let report = SmpPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        let fwd = (n - 1) as u64;
        assert_eq!(
            report.component("Fetch").unwrap().app.total_sends,
            18 * fwd
        );
        assert_eq!(report.component("Fetch").unwrap().app.total_receives, 0);
        for k in 1..=3 {
            let r = report.component(&format!("IDCT_{k}")).unwrap();
            assert_eq!(r.app.total_receives, 6 * fwd);
            assert_eq!(r.app.total_sends, 6 * fwd);
        }
        let r = report.component("Reorder").unwrap();
        assert_eq!(r.app.total_receives, 18 * fwd);
        assert_eq!(r.app.total_sends, 0);
    }
}
