//! Baseline JPEG Huffman coding: the Annex K.3.3 luminance tables,
//! canonical code construction (T.81 Annex C) and the sequential
//! decoding procedure (T.81 F.2.2.3).

use crate::bitstream::{BitReader, BitWriter, OutOfBits};

/// A Huffman table specification: `bits[i]` = number of codes of length
/// `i+1`, `values` = symbols in code order.
#[derive(Debug, Clone)]
pub struct HuffSpec {
    /// Code-length histogram (16 entries, lengths 1..=16).
    pub bits: [u8; 16],
    /// Symbols ordered by increasing code length.
    pub values: Vec<u8>,
}

impl HuffSpec {
    /// Annex K.3.3.1: luminance DC coefficient differences.
    pub fn luma_dc() -> Self {
        HuffSpec {
            bits: [0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0],
            values: (0..=11).collect(),
        }
    }

    /// Annex K.3.3.2: luminance AC coefficients.
    pub fn luma_ac() -> Self {
        HuffSpec {
            bits: [0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7d],
            values: vec![
                0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06, 0x13,
                0x51, 0x61, 0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08, 0x23, 0x42,
                0xb1, 0xc1, 0x15, 0x52, 0xd1, 0xf0, 0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0a,
                0x16, 0x17, 0x18, 0x19, 0x1a, 0x25, 0x26, 0x27, 0x28, 0x29, 0x2a, 0x34, 0x35,
                0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49, 0x4a,
                0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67,
                0x68, 0x69, 0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7a, 0x83, 0x84,
                0x85, 0x86, 0x87, 0x88, 0x89, 0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
                0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3,
                0xb4, 0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
                0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe1,
                0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf1, 0xf2, 0xf3, 0xf4,
                0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa,
            ],
        }
    }

    /// Annex K.3.3.1: chrominance DC coefficient differences.
    pub fn chroma_dc() -> Self {
        HuffSpec {
            bits: [0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0],
            values: (0..=11).collect(),
        }
    }

    /// Annex K.3.3.2: chrominance AC coefficients.
    pub fn chroma_ac() -> Self {
        HuffSpec {
            bits: [0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77],
            values: vec![
                0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41, 0x51,
                0x07, 0x61, 0x71, 0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91, 0xa1, 0xb1,
                0xc1, 0x09, 0x23, 0x33, 0x52, 0xf0, 0x15, 0x62, 0x72, 0xd1, 0x0a, 0x16, 0x24,
                0x34, 0xe1, 0x25, 0xf1, 0x17, 0x18, 0x19, 0x1a, 0x26, 0x27, 0x28, 0x29, 0x2a,
                0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
                0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5a, 0x63, 0x64, 0x65, 0x66,
                0x67, 0x68, 0x69, 0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7a, 0x82,
                0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8a, 0x92, 0x93, 0x94, 0x95, 0x96,
                0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7, 0xa8, 0xa9, 0xaa,
                0xb2, 0xb3, 0xb4, 0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5,
                0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9,
                0xda, 0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf2, 0xf3, 0xf4,
                0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa,
            ],
        }
    }

    /// Total number of codes.
    pub fn num_codes(&self) -> usize {
        self.bits.iter().map(|&b| b as usize).sum()
    }

    /// Whether the spec describes a realizable prefix code: the
    /// canonical code counter must never exceed the code space at any
    /// length (Kraft inequality for the Annex-C construction) and there
    /// must be exactly one symbol per code. Untrusted `DHT` segments
    /// can violate both; building a decoder from such a spec would
    /// index past the primary LUT.
    pub fn is_valid(&self) -> bool {
        let mut code: u32 = 0;
        for (len_idx, &count) in self.bits.iter().enumerate() {
            code = (code << 1) + count as u32;
            if code > 1u32 << (len_idx + 1) {
                return false;
            }
        }
        self.num_codes() == self.values.len()
    }
}

/// Encoder-side table: symbol → (code, length).
#[derive(Debug, Clone)]
pub struct HuffEncoder {
    codes: Vec<(u16, u8)>, // indexed by symbol
}

/// Width of the primary decode LUT, bits. Annex-K tables put every code
/// the hot path meets within 9 bits; longer codes (10–16 bits) take the
/// two-level fallback.
pub const LUT_BITS: u32 = 9;

/// Decoder-side table (T.81 F.2.2.3 MINCODE/MAXCODE/VALPTR), plus a
/// table-driven fast path: a single `LUT_BITS`-wide lookup resolving
/// symbol and code length in one probe for all short codes.
#[derive(Debug, Clone)]
pub struct HuffDecoder {
    mincode: [i32; 17],
    maxcode: [i32; 17],
    valptr: [usize; 17],
    values: Vec<u8>,
    /// Indexed by the next `LUT_BITS` bits of the stream; packs
    /// `(code_length << 8) | symbol`, 0 = no code ≤ LUT_BITS long here.
    lut: Vec<u16>,
}

/// Build canonical codes (Annex C): lengths in table order, codes count
/// up within a length, shift left at each new length.
fn canonical_codes(spec: &HuffSpec) -> Vec<(u8 /*len*/, u16 /*code*/, u8 /*symbol*/)> {
    let mut out = Vec::with_capacity(spec.num_codes());
    let mut code: u16 = 0;
    let mut k = 0usize;
    for (len_idx, &count) in spec.bits.iter().enumerate() {
        let len = len_idx as u8 + 1;
        for _ in 0..count {
            out.push((len, code, spec.values[k]));
            code += 1;
            k += 1;
        }
        code <<= 1;
    }
    out
}

impl HuffEncoder {
    /// Build an encoder from a table spec.
    pub fn new(spec: &HuffSpec) -> Self {
        let mut codes = vec![(0u16, 0u8); 256];
        for (len, code, sym) in canonical_codes(spec) {
            codes[sym as usize] = (code, len);
        }
        HuffEncoder { codes }
    }

    /// Emit the code for `symbol`.
    ///
    /// # Panics
    /// Panics (debug) if the symbol has no code in the table.
    pub fn encode(&self, w: &mut BitWriter, symbol: u8) {
        let (code, len) = self.codes[symbol as usize];
        debug_assert!(len > 0, "symbol {symbol:#x} not in table");
        w.put(code as u32, len as u32);
    }
}

impl HuffDecoder {
    /// Build a decoder from a table spec.
    pub fn new(spec: &HuffSpec) -> Self {
        let mut mincode = [0i32; 17];
        let mut maxcode = [-1i32; 17];
        let mut valptr = [0usize; 17];
        let mut code: i32 = 0;
        let mut k = 0usize;
        for len in 1..=16usize {
            let count = spec.bits[len - 1] as usize;
            if count > 0 {
                valptr[len] = k;
                mincode[len] = code;
                code += count as i32;
                maxcode[len] = code - 1;
                k += count;
            } else {
                maxcode[len] = -1;
            }
            code <<= 1;
        }
        // Primary LUT: every code of length ≤ LUT_BITS owns the
        // 2^(LUT_BITS - len) slots sharing its prefix.
        let mut lut = vec![0u16; 1 << LUT_BITS];
        for (len, code, sym) in canonical_codes(spec) {
            if len as u32 <= LUT_BITS {
                let shift = LUT_BITS - len as u32;
                let base = (code as usize) << shift;
                // An over-subscribed spec (rejected by `is_valid`, but
                // this constructor stays total regardless) would run
                // codes past the code space; skip them.
                let Some(slots) = lut.get_mut(base..base + (1 << shift)) else {
                    debug_assert!(!spec.is_valid());
                    continue;
                };
                for slot in slots {
                    *slot = ((len as u16) << 8) | sym as u16;
                }
            }
        }
        HuffDecoder {
            mincode,
            maxcode,
            valptr,
            values: spec.values.clone(),
            lut,
        }
    }

    /// Decode one symbol, bit by bit (the sequential F.2.2.3 procedure —
    /// deliberately the naive algorithm the paper's unoptimized decoder
    /// would use).
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u8, OutOfBits> {
        let mut code: i32 = r.bit()? as i32;
        for len in 1..=16usize {
            if self.maxcode[len] >= code && code >= self.mincode[len] {
                let idx = self.valptr[len] + (code - self.mincode[len]) as usize;
                return Ok(self.values[idx]);
            }
            code = (code << 1) | r.bit()? as i32;
        }
        Err(OutOfBits)
    }

    /// Decode one symbol via the primary LUT (one probe for codes up to
    /// [`LUT_BITS`] long) with a MAXCODE-walk fallback for longer codes.
    /// Produces the exact symbol stream and bit consumption of
    /// [`HuffDecoder::decode`] on valid streams — the bit-at-a-time
    /// procedure is kept as its property-test oracle.
    pub fn decode_fast(&self, r: &mut BitReader<'_>) -> Result<u8, OutOfBits> {
        let probe = r.peek(LUT_BITS);
        let entry = self.lut[probe as usize];
        if entry != 0 {
            r.consume((entry >> 8) as u32)?;
            return Ok(entry as u8);
        }
        // Long code (or garbage): compare the next 16 bits against each
        // length's code window, longest-first peek done once.
        let window = r.peek(16) as i32;
        for len in (LUT_BITS as usize + 1)..=16 {
            let code = window >> (16 - len);
            if self.maxcode[len] >= code && code >= self.mincode[len] {
                r.consume(len as u32)?;
                let idx = self.valptr[len] + (code - self.mincode[len]) as usize;
                return Ok(self.values[idx]);
            }
        }
        Err(OutOfBits)
    }
}

/// Process-wide luminance DC decoder (Annex K.3.3.1). The table is
/// immutable, so hot paths that build an [`crate::codec::EntropyDecoder`]
/// per frame share one instance instead of re-deriving the canonical
/// codes and the LUT on every frame — a per-frame allocation the
/// zero-allocation pipeline cannot afford.
pub fn luma_dc_decoder() -> &'static HuffDecoder {
    static DEC: std::sync::OnceLock<HuffDecoder> = std::sync::OnceLock::new();
    DEC.get_or_init(|| HuffDecoder::new(&HuffSpec::luma_dc()))
}

/// Process-wide luminance AC decoder (Annex K.3.3.2); see
/// [`luma_dc_decoder`].
pub fn luma_ac_decoder() -> &'static HuffDecoder {
    static DEC: std::sync::OnceLock<HuffDecoder> = std::sync::OnceLock::new();
    DEC.get_or_init(|| HuffDecoder::new(&HuffSpec::luma_ac()))
}

/// JPEG magnitude category of a value (number of bits to encode it).
pub fn category(v: i32) -> u8 {
    let mut m = v.unsigned_abs();
    let mut n = 0u8;
    while m != 0 {
        m >>= 1;
        n += 1;
    }
    n
}

/// Append the magnitude bits of `v` (ones' complement for negatives,
/// T.81 F.1.2.1).
pub fn put_magnitude(w: &mut BitWriter, v: i32, cat: u8) {
    if cat == 0 {
        return;
    }
    let bits = if v < 0 {
        (v - 1) & ((1 << cat) - 1)
    } else {
        v & ((1 << cat) - 1)
    };
    w.put(bits as u32, cat as u32);
}

/// Read back a magnitude of `cat` bits (T.81 F.2.1.2 EXTEND).
pub fn read_magnitude(r: &mut BitReader<'_>, cat: u8) -> Result<i32, OutOfBits> {
    if cat == 0 {
        return Ok(0);
    }
    // Baseline categories stop at 11 (DC) / 10 (AC); a larger value can
    // only come from a corrupt stream or a crafted Huffman table. Reject
    // it here instead of overflowing the magnitude shift below.
    if cat > 16 {
        return Err(OutOfBits);
    }
    let raw = r.bits(cat as u32)? as i32;
    let half = 1 << (cat - 1);
    Ok(if raw < half {
        raw - (1 << cat) + 1
    } else {
        raw
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annex_k_tables_are_well_formed() {
        for spec in [
            HuffSpec::luma_dc(),
            HuffSpec::luma_ac(),
            HuffSpec::chroma_dc(),
            HuffSpec::chroma_ac(),
        ] {
            assert_eq!(
                spec.num_codes(),
                spec.values.len(),
                "BITS histogram must match value count"
            );
            // Kraft inequality (strict for JPEG: must be a prefix code).
            let kraft: f64 = spec
                .bits
                .iter()
                .enumerate()
                .map(|(i, &c)| c as f64 / (1u64 << (i + 1)) as f64)
                .sum();
            assert!(kraft <= 1.0, "Kraft sum {kraft} > 1");
        }
        assert_eq!(HuffSpec::luma_ac().num_codes(), 162);
        assert_eq!(HuffSpec::luma_dc().num_codes(), 12);
        assert_eq!(HuffSpec::chroma_ac().num_codes(), 162);
        assert_eq!(HuffSpec::chroma_dc().num_codes(), 12);
    }

    #[test]
    fn every_symbol_round_trips() {
        for spec in [
            HuffSpec::luma_dc(),
            HuffSpec::luma_ac(),
            HuffSpec::chroma_dc(),
            HuffSpec::chroma_ac(),
        ] {
            let enc = HuffEncoder::new(&spec);
            let dec = HuffDecoder::new(&spec);
            let mut w = BitWriter::new();
            for &sym in &spec.values {
                enc.encode(&mut w, sym);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            let mut rf = BitReader::new(&bytes);
            for &sym in &spec.values {
                assert_eq!(dec.decode(&mut r).unwrap(), sym);
                assert_eq!(dec.decode_fast(&mut rf).unwrap(), sym);
                assert_eq!(
                    r.bits_consumed(),
                    rf.bits_consumed(),
                    "LUT decode must consume identical bits (symbol {sym:#x})"
                );
            }
        }
    }

    #[test]
    fn categories_match_definition() {
        assert_eq!(category(0), 0);
        assert_eq!(category(1), 1);
        assert_eq!(category(-1), 1);
        assert_eq!(category(2), 2);
        assert_eq!(category(-3), 2);
        assert_eq!(category(255), 8);
        assert_eq!(category(-1024), 11);
    }

    #[test]
    fn magnitudes_round_trip_over_full_range() {
        for v in -2047i32..=2047 {
            let cat = category(v);
            let mut w = BitWriter::new();
            w.put(0, 0); // no-op
            put_magnitude(&mut w, v, cat);
            // Pad deterministically so the reader has whole bytes.
            w.put(0x7F, 7);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(read_magnitude(&mut r, cat).unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn decode_rejects_garbage_prefix() {
        // 16 one-bits is longer than any DC code.
        let dec = HuffDecoder::new(&HuffSpec::luma_dc());
        let bytes = vec![0xFF, 0x00, 0xFF, 0x00, 0xFF, 0x00];
        let mut r = BitReader::new(&bytes);
        assert!(dec.decode(&mut r).is_err());
        let mut r = BitReader::new(&bytes);
        assert!(dec.decode_fast(&mut r).is_err());
    }
}
