//! The Motion-JPEG stream container: "a stream of independent and
//! individually encoded JPEG images" (paper §3.2), with a minimal
//! length-prefixed framing so the Fetch component can do real "file
//! management".

use crate::dct::N;

/// Header of one encoded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Width in pixels (multiple of 8).
    pub width: u16,
    /// Height in pixels (multiple of 8).
    pub height: u16,
    /// Encoder quality (decoder needs it to reconstruct the qtable).
    pub quality: u8,
}

impl FrameHeader {
    /// Number of 8×8 blocks per frame.
    pub fn blocks(&self) -> usize {
        (self.width as usize / N) * (self.height as usize / N)
    }
}

/// One encoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedFrame {
    /// Geometry and quality.
    pub header: FrameHeader,
    /// Entropy-coded segment.
    pub data: Vec<u8>,
}

/// An in-memory MJPEG stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MjpegStream {
    /// The frames, in presentation order.
    pub frames: Vec<EncodedFrame>,
}

const MAGIC: &[u8; 4] = b"MJPG";

impl MjpegStream {
    /// Serialize to the container format:
    /// `"MJPG" | u32 frame count | per frame: u16 w | u16 h | u8 q |
    /// u32 len | data`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.frames.len() as u32).to_le_bytes());
        for f in &self.frames {
            out.extend_from_slice(&f.header.width.to_le_bytes());
            out.extend_from_slice(&f.header.height.to_le_bytes());
            out.push(f.header.quality);
            out.extend_from_slice(&(f.data.len() as u32).to_le_bytes());
            out.extend_from_slice(&f.data);
        }
        out
    }

    /// Parse the container format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            if *pos + n > bytes.len() {
                return Err(format!("truncated stream at offset {pos:?}"));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err("bad magic".into());
        }
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let mut frames = Vec::with_capacity(count);
        for _ in 0..count {
            let width = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap());
            let height = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap());
            let quality = take(&mut pos, 1)?[0];
            let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let data = take(&mut pos, len)?.to_vec();
            frames.push(EncodedFrame {
                header: FrameHeader {
                    width,
                    height,
                    quality,
                },
                data,
            });
        }
        if pos != bytes.len() {
            return Err(format!("{} trailing bytes", bytes.len() - pos));
        }
        Ok(MjpegStream { frames })
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the stream has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MjpegStream {
        MjpegStream {
            frames: vec![
                EncodedFrame {
                    header: FrameHeader {
                        width: 48,
                        height: 24,
                        quality: 75,
                    },
                    data: vec![1, 2, 3, 4],
                },
                EncodedFrame {
                    header: FrameHeader {
                        width: 48,
                        height: 24,
                        quality: 75,
                    },
                    data: vec![9; 100],
                },
            ],
        }
    }

    #[test]
    fn container_round_trips() {
        let s = sample();
        let bytes = s.to_bytes();
        assert_eq!(MjpegStream::from_bytes(&bytes).unwrap(), s);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(MjpegStream::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in [3, 7, 10, bytes.len() - 1] {
            assert!(
                MjpegStream::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(MjpegStream::from_bytes(&bytes).is_err());
    }

    #[test]
    fn blocks_per_frame_geometry() {
        let h = FrameHeader {
            width: 48,
            height: 24,
            quality: 75,
        };
        assert_eq!(h.blocks(), 18, "the paper's implied 18 blocks per image");
    }
}
