//! Block-level encode/decode and whole-frame helpers.
//!
//! The decode path is deliberately split along the paper's component
//! boundaries (§3.2):
//!
//! 1. **Huffman algorithm + pixel reordering** (Fetch):
//!    [`EntropyDecoder::next_block`] +
//!    [`quant::dequantize_reorder`](crate::quant::dequantize_reorder),
//! 2. **IDCT** (IDCT components):
//!    [`dct::idct_to_pixels`](crate::dct::idct_to_pixels),
//! 3. **reassembly** (Reorder): [`place_block`].

use crate::bitstream::{BitReader, BitWriter, OutOfBits};
use crate::dct::{fdct, pixels_to_centered, DctKind, BLOCK_SIZE, N};
use crate::huffman::{
    category, put_magnitude, read_magnitude, HuffDecoder, HuffEncoder, HuffSpec,
};
use crate::quant::{
    dequantize_reorder, dequantize_reorder_scaled, fast_dequant_table, fast_quant_divisors,
    quantize_zigzag, quantize_zigzag_fast, scaled_qtable,
};

/// End-of-block marker symbol.
const EOB: u8 = 0x00;
/// Zero-run-of-16 marker symbol.
const ZRL: u8 = 0xF0;

/// Encode one 8×8 pixel block into `writer` with explicit tables and DC
/// predictor — the generic form shared by the grayscale encoder and the
/// interleaved-color JFIF encoder. Returns the block's quantized DC.
pub fn encode_block_with(
    writer: &mut BitWriter,
    dc_enc: &HuffEncoder,
    ac_enc: &HuffEncoder,
    qtable: &[u16; BLOCK_SIZE],
    dc_pred: i32,
    pixels: &[u8; BLOCK_SIZE],
) -> i32 {
    let coeffs = fdct(&pixels_to_centered(pixels));
    let zz = quantize_zigzag(&coeffs, qtable);
    encode_quantized_block(writer, dc_enc, ac_enc, dc_pred, &zz)
}

/// Entropy-code an already-quantized zigzag block (the emission half of
/// [`encode_block_with`], shared by the float and fast-AAN front ends).
pub fn encode_quantized_block(
    writer: &mut BitWriter,
    dc_enc: &HuffEncoder,
    ac_enc: &HuffEncoder,
    dc_pred: i32,
    zz: &[i16; BLOCK_SIZE],
) -> i32 {
    let dc = zz[0] as i32;
    let diff = dc - dc_pred;
    let cat = category(diff);
    dc_enc.encode(writer, cat);
    put_magnitude(writer, diff, cat);
    let mut run = 0u8;
    for &c in &zz[1..] {
        if c == 0 {
            run += 1;
            continue;
        }
        while run >= 16 {
            ac_enc.encode(writer, ZRL);
            run -= 16;
        }
        let cat = category(c as i32);
        debug_assert!(cat <= 10, "baseline AC category {cat}");
        ac_enc.encode(writer, (run << 4) | cat);
        put_magnitude(writer, c as i32, cat);
        run = 0;
    }
    if run > 0 {
        ac_enc.encode(writer, EOB);
    }
    dc
}

/// Decode one block (zigzag order) with explicit tables and DC
/// predictor; returns the coefficients and the new predictor. Uses the
/// two-level LUT Huffman decoder; [`decode_block_bitwise`] is the
/// bit-serial original.
pub fn decode_block_with(
    reader: &mut BitReader<'_>,
    dc_dec: &HuffDecoder,
    ac_dec: &HuffDecoder,
    dc_pred: i32,
) -> Result<([i16; BLOCK_SIZE], i32), OutOfBits> {
    decode_block_mode(reader, dc_dec, ac_dec, dc_pred, true)
}

/// [`decode_block_with`] on the bit-at-a-time Huffman path — the
/// unoptimized decoder the paper's workload models, kept both as the
/// property-test oracle and as the honest "before" of the benchmark
/// baseline.
pub fn decode_block_bitwise(
    reader: &mut BitReader<'_>,
    dc_dec: &HuffDecoder,
    ac_dec: &HuffDecoder,
    dc_pred: i32,
) -> Result<([i16; BLOCK_SIZE], i32), OutOfBits> {
    decode_block_mode(reader, dc_dec, ac_dec, dc_pred, false)
}

fn decode_block_mode(
    reader: &mut BitReader<'_>,
    dc_dec: &HuffDecoder,
    ac_dec: &HuffDecoder,
    dc_pred: i32,
    fast: bool,
) -> Result<([i16; BLOCK_SIZE], i32), OutOfBits> {
    let mut zz = [0i16; BLOCK_SIZE];
    let cat = if fast {
        dc_dec.decode_fast(reader)?
    } else {
        dc_dec.decode(reader)?
    };
    let diff = read_magnitude(reader, cat)?;
    let dc = dc_pred + diff;
    zz[0] = dc as i16;
    let mut k = 1usize;
    while k < BLOCK_SIZE {
        let rs = if fast {
            ac_dec.decode_fast(reader)?
        } else {
            ac_dec.decode(reader)?
        };
        if rs == EOB {
            break;
        }
        if rs == ZRL {
            k += 16;
            continue;
        }
        let run = (rs >> 4) as usize;
        let cat = rs & 0x0F;
        k += run;
        if k >= BLOCK_SIZE {
            return Err(OutOfBits); // corrupt stream
        }
        zz[k] = read_magnitude(reader, cat)? as i16;
        k += 1;
    }
    Ok((zz, dc))
}

/// Encoder for a sequence of blocks sharing one DC predictor.
pub struct BlockEncoder {
    dc_enc: HuffEncoder,
    ac_enc: HuffEncoder,
    qtable: [u16; BLOCK_SIZE],
    /// Folded AAN divisors, present when `kind` is [`DctKind::FastAan`].
    fast_divisors: Option<[i64; BLOCK_SIZE]>,
    dc_pred: i32,
    writer: BitWriter,
}

impl BlockEncoder {
    /// Encoder at the given quality (reference float kernel).
    pub fn new(quality: u8) -> Self {
        Self::with_kind(quality, DctKind::ReferenceFloat)
    }

    /// Encoder at the given quality using the selected DCT kernel.
    pub fn with_kind(quality: u8, kind: DctKind) -> Self {
        let qtable = scaled_qtable(quality);
        BlockEncoder {
            dc_enc: HuffEncoder::new(&HuffSpec::luma_dc()),
            ac_enc: HuffEncoder::new(&HuffSpec::luma_ac()),
            fast_divisors: match kind {
                DctKind::ReferenceFloat => None,
                DctKind::FastAan | DctKind::FastSimd => Some(fast_quant_divisors(&qtable)),
            },
            qtable,
            dc_pred: 0,
            writer: BitWriter::new(),
        }
    }

    /// Encode one 8×8 pixel block (row-major).
    pub fn push_block(&mut self, pixels: &[u8; BLOCK_SIZE]) {
        let zz = match &self.fast_divisors {
            None => quantize_zigzag(&fdct(&pixels_to_centered(pixels)), &self.qtable),
            Some(div) => {
                let mut centered = [0i32; BLOCK_SIZE];
                for (d, &p) in centered.iter_mut().zip(pixels.iter()) {
                    *d = p as i32 - 128;
                }
                quantize_zigzag_fast(&crate::dct::fdct_fast_scaled(&centered), div)
            }
        };
        self.dc_pred = encode_quantized_block(
            &mut self.writer,
            &self.dc_enc,
            &self.ac_enc,
            self.dc_pred,
            &zz,
        );
    }

    /// Finish and return the entropy-coded segment.
    pub fn finish(self) -> Vec<u8> {
        self.writer.finish()
    }
}

/// Decoder over an entropy-coded segment; yields zigzag-ordered
/// quantized coefficient blocks. This plus dequantize/reorder is the
/// paper's Fetch stage.
pub struct EntropyDecoder<'a> {
    dc_dec: &'static HuffDecoder,
    ac_dec: &'static HuffDecoder,
    reader: BitReader<'a>,
    dc_pred: i32,
    fast: bool,
}

impl<'a> EntropyDecoder<'a> {
    /// Decode over `data` with the table-driven fast Huffman path.
    pub fn new(data: &'a [u8]) -> Self {
        Self::with_mode(data, true)
    }

    /// Decode over `data` with the original bit-at-a-time Huffman path
    /// (the paper's unoptimized decoder).
    pub fn reference(data: &'a [u8]) -> Self {
        Self::with_mode(data, false)
    }

    fn with_mode(data: &'a [u8], fast: bool) -> Self {
        EntropyDecoder {
            // Shared static tables: constructing a decoder is free, so a
            // per-frame EntropyDecoder costs no allocation.
            dc_dec: crate::huffman::luma_dc_decoder(),
            ac_dec: crate::huffman::luma_ac_decoder(),
            reader: BitReader::new(data),
            dc_pred: 0,
            fast,
        }
    }

    /// Decode the next block, in zigzag order.
    pub fn next_block(&mut self) -> Result<[i16; BLOCK_SIZE], OutOfBits> {
        let (zz, dc) = decode_block_mode(
            &mut self.reader,
            self.dc_dec,
            self.ac_dec,
            self.dc_pred,
            self.fast,
        )?;
        self.dc_pred = dc;
        Ok(zz)
    }

    /// Total bits consumed so far (drives the Fetch work annotation).
    pub fn bits_consumed(&self) -> u64 {
        self.reader.bits_consumed()
    }
}

/// Copy a decoded 8×8 block into a frame buffer at block index `bi`
/// (blocks in raster order) — the Reorder component's reassembly step.
pub fn place_block(frame: &mut [u8], width: usize, bi: usize, block: &[u8; BLOCK_SIZE]) {
    let blocks_per_row = width / N;
    let bx = (bi % blocks_per_row) * N;
    let by = (bi / blocks_per_row) * N;
    for row in 0..N {
        let dst = (by + row) * width + bx;
        frame[dst..dst + N].copy_from_slice(&block[row * N..row * N + N]);
    }
}

/// Encode a grayscale image (dimensions multiples of 8) into an
/// entropy-coded segment.
///
/// ```
/// use mjpeg::codec::{decode_frame, encode_frame, psnr};
///
/// let image: Vec<u8> = (0..48 * 24).map(|i| (i % 251) as u8).collect();
/// let data = encode_frame(&image, 48, 24, 85);
/// let decoded = decode_frame(&data, 48, 24, 85).unwrap();
/// assert!(psnr(&image, &decoded) > 25.0);
/// ```
pub fn encode_frame(pixels: &[u8], width: usize, height: usize, quality: u8) -> Vec<u8> {
    encode_frame_with(pixels, width, height, quality, DctKind::ReferenceFloat)
}

/// [`encode_frame`] with an explicit DCT kernel. The fast kernel
/// produces a slightly different (but equally valid) stream: quantized
/// coefficients may differ by a rounding step.
pub fn encode_frame_with(
    pixels: &[u8],
    width: usize,
    height: usize,
    quality: u8,
    kind: DctKind,
) -> Vec<u8> {
    assert!(width.is_multiple_of(N) && height.is_multiple_of(N), "dimensions must be 8-aligned");
    assert_eq!(pixels.len(), width * height);
    let mut enc = BlockEncoder::with_kind(quality, kind);
    for by in (0..height).step_by(N) {
        for bx in (0..width).step_by(N) {
            let mut block = [0u8; BLOCK_SIZE];
            for row in 0..N {
                let src = (by + row) * width + bx;
                block[row * N..row * N + N].copy_from_slice(&pixels[src..src + N]);
            }
            enc.push_block(&block);
        }
    }
    enc.finish()
}

/// Decode a full frame (the single-process reference path used to
/// validate the componentized pipeline).
pub fn decode_frame(
    data: &[u8],
    width: usize,
    height: usize,
    quality: u8,
) -> Result<Vec<u8>, OutOfBits> {
    decode_frame_with(data, width, height, quality, DctKind::ReferenceFloat)
}

/// [`decode_frame`] with an explicit DCT kernel. With
/// [`DctKind::FastAan`] the dequantization multiplies by the folded
/// AAN-scaled table and the integer butterflies run — output pixels are
/// within ±1 level of the reference float path.
pub fn decode_frame_with(
    data: &[u8],
    width: usize,
    height: usize,
    quality: u8,
    kind: DctKind,
) -> Result<Vec<u8>, OutOfBits> {
    let qtable = scaled_qtable(quality);
    let nblocks = (width / N) * (height / N);
    let mut dec = EntropyDecoder::new(data);
    let mut frame = vec![0u8; width * height];
    match kind {
        DctKind::ReferenceFloat => {
            for bi in 0..nblocks {
                let zz = dec.next_block()?;
                let coeffs = dequantize_reorder(&zz, &qtable);
                let px = crate::dct::idct_to_pixels(&coeffs);
                place_block(&mut frame, width, bi, &px);
            }
        }
        DctKind::FastAan | DctKind::FastSimd => {
            let ftable = fast_dequant_table(&qtable);
            let idct: fn(&[i32; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] = if kind == DctKind::FastSimd {
                crate::simd::idct_scaled_to_pixels_simd
            } else {
                crate::dct::idct_scaled_to_pixels
            };
            for bi in 0..nblocks {
                let zz = dec.next_block()?;
                let coeffs = dequantize_reorder_scaled(&zz, &ftable);
                let px = idct(&coeffs);
                place_block(&mut frame, width, bi, &px);
            }
        }
    }
    Ok(frame)
}

/// Peak signal-to-noise ratio between two equally-sized images, dB.
pub fn psnr(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len());
    let mse: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(width: usize, height: usize) -> Vec<u8> {
        let mut px = vec![0u8; width * height];
        for y in 0..height {
            for x in 0..width {
                let v = (x * 255 / width) as i32 + ((y as f64 * 0.7).sin() * 40.0) as i32;
                px[y * width + x] = v.clamp(0, 255) as u8;
            }
        }
        px
    }

    #[test]
    fn frame_round_trip_high_quality_is_faithful() {
        let (w, h) = (48, 24);
        let img = test_image(w, h);
        let data = encode_frame(&img, w, h, 95);
        let dec = decode_frame(&data, w, h, 95).unwrap();
        let p = psnr(&img, &dec);
        assert!(p > 40.0, "PSNR {p:.1} dB too low for quality 95");
    }

    #[test]
    fn lower_quality_means_smaller_and_noisier() {
        let (w, h) = (64, 64);
        let img = test_image(w, h);
        let hi = encode_frame(&img, w, h, 90);
        let lo = encode_frame(&img, w, h, 20);
        assert!(lo.len() < hi.len(), "q20 {} vs q90 {}", lo.len(), hi.len());
        let p_hi = psnr(&img, &decode_frame(&hi, w, h, 90).unwrap());
        let p_lo = psnr(&img, &decode_frame(&lo, w, h, 20).unwrap());
        assert!(p_hi > p_lo, "quality must order PSNR: {p_hi} vs {p_lo}");
        assert!(p_lo > 20.0, "even q20 should be recognizable: {p_lo}");
    }

    #[test]
    fn flat_image_compresses_extremely_well() {
        let (w, h) = (48, 24);
        let img = vec![77u8; w * h];
        let data = encode_frame(&img, w, h, 75);
        // 18 blocks of essentially DC-only data.
        assert!(data.len() < 40, "flat image took {} bytes", data.len());
        let dec = decode_frame(&data, w, h, 75).unwrap();
        assert!(dec.iter().all(|&p| (p as i32 - 77).abs() <= 1));
    }

    #[test]
    fn staged_decode_equals_reference_decode() {
        // The componentized path (entropy -> dequant/reorder -> idct ->
        // place) must agree exactly with decode_frame.
        let (w, h) = (48, 24);
        let img = test_image(w, h);
        let quality = 75;
        let data = encode_frame(&img, w, h, quality);
        let reference = decode_frame(&data, w, h, quality).unwrap();

        let qtable = scaled_qtable(quality);
        let mut dec = EntropyDecoder::new(&data);
        let mut staged = vec![0u8; w * h];
        for bi in 0..(w / 8) * (h / 8) {
            let zz = dec.next_block().unwrap();
            let coeffs = dequantize_reorder(&zz, &qtable);
            let px = crate::dct::idct_to_pixels(&coeffs);
            place_block(&mut staged, w, bi, &px);
        }
        assert_eq!(staged, reference);
    }

    #[test]
    fn fast_kernel_decode_tracks_reference_within_one_level() {
        let (w, h) = (48, 24);
        let img = test_image(w, h);
        for quality in [30u8, 60, 85] {
            let data = encode_frame(&img, w, h, quality);
            let reference = decode_frame(&data, w, h, quality).unwrap();
            let fast = decode_frame_with(&data, w, h, quality, DctKind::FastAan).unwrap();
            for (i, (&a, &b)) in reference.iter().zip(fast.iter()).enumerate() {
                assert!(
                    (a as i32 - b as i32).abs() <= 1,
                    "q{quality} pixel {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn fast_kernel_encode_round_trips_faithfully() {
        let (w, h) = (48, 24);
        let img = test_image(w, h);
        let data = encode_frame_with(&img, w, h, 85, DctKind::FastAan);
        let dec = decode_frame_with(&data, w, h, 85, DctKind::FastAan).unwrap();
        let p = psnr(&img, &dec);
        assert!(p > 35.0, "fast-kernel PSNR {p:.1} dB too low");
    }

    #[test]
    fn place_block_maps_block_indices_to_raster() {
        let w = 16;
        let mut frame = vec![0u8; w * 16];
        let block = [9u8; BLOCK_SIZE];
        place_block(&mut frame, w, 3, &block); // second row of blocks, second column
        assert_eq!(frame[8 * w + 8], 9);
        assert_eq!(frame[0], 0);
        assert_eq!(frame[8 * w + 7], 0);
    }

    #[test]
    fn bits_consumed_monotonically_increases() {
        let (w, h) = (48, 24);
        let img = test_image(w, h);
        let data = encode_frame(&img, w, h, 75);
        let mut dec = EntropyDecoder::new(&data);
        let mut last = 0;
        for _ in 0..18 {
            dec.next_block().unwrap();
            let c = dec.bits_consumed();
            assert!(c > last);
            last = c;
        }
    }
}
