//! Open-loop overload harness for the MJPEG pipeline: a load generator
//! injecting frames at a configured offered rate (independent of how
//! fast the pipeline drains them — the queueing-theory "open loop"),
//! per-frame deadlines riding the message envelopes, deadline-aware
//! stages that skip work on already-late frames, and an
//! observation-driven autoscaler that grows/shrinks the active IDCT
//! worker set from the root observer's region summaries.
//!
//! Topology (`build_overload_app`):
//!
//! ```text
//! LoadGen ──frames──▶ Fetch ──lanes──▶ IDCT_1..max ──▶ Reorder
//!                       ▲ _scale                         (judge)
//!                       │
//!               ScaleController ◀──feed── root observer (actuate)
//! ```
//!
//! * **LoadGen** samples inter-arrival gaps (periodic / exponential /
//!   log-normal) from a seeded splitmix64 stream and sends one frame
//!   token per arrival as a [`Message::Deadlined`](embera::Message)
//!   envelope (`deadline = arrival + budget`), then an empty sentinel.
//! * **Fetch** (open-loop variant of the pipeline's Fetch) decodes each
//!   token's frame and deals its coefficient blocks round-robin over the
//!   currently *active* lanes, flushing one deadlined batch per lane per
//!   frame. An [`OverloadPolicy`] attached to it
//!   sheds at ingress (queue-bound drop-oldest, or deadline drop) with
//!   full accounting in its health counters.
//! * **IDCT** workers skip the transform for frames whose deadline
//!   already passed (forwarding a zero block so reassembly stays
//!   structural) — shed *work*, not messages.
//! * **Reorder** reassembles and judges: a frame folding past its
//!   deadline counts as expired, otherwise completed with latency
//!   `fold − arrival` (arrival recovered as `deadline − budget`).
//! * **ScaleController** consumes the root observer's encoded
//!   [`RegionSummary`](embera::RegionSummary) stream, applies
//!   hysteresis over total queued messages, and retargets Fetch's
//!   active lane count over the `scale` control interface.
//!
//! Every decision (shed, expire, skip, scale) is a pure function of
//! queue state and the platform clock, so on the deterministic inproc
//! backend whole overload runs are bit-for-bit reproducible — traces
//! included.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bytes::Bytes;

use embera::{
    AppBuilder, Behavior, ComponentSpec, Ctx, EmberaError, Message, ObserverConfig,
    OverloadPolicy, Work, WorkClass,
};

use crate::codec::EntropyDecoder;
use crate::dct::{idct_scaled_to_pixels, idct_to_pixels, DctKind, BLOCK_SIZE};
use crate::frame::MjpegStream;
use crate::pipeline::{coeffs_from_bytes, encode_coeff_batch, encode_pixel_batch, BatchView, WorkProfile};
use crate::quant::{
    dequantize_reorder, dequantize_reorder_scaled, fast_dequant_table, scaled_qtable,
};

/// LoadGen's never-connected pacing interface: timed receives on it are
/// how the generator sleeps between arrivals under real-time pacing.
const TICK_IFACE: &str = "_tick";
/// Fetch's frame-token inbox.
const FRAMES_IFACE: &str = "_frames";
/// Fetch's scale-control inbox (fed by the autoscale controller).
const SCALE_IFACE: &str = "_scale";
/// Controller's region-summary inbox (fed by the root observer).
const FEED_IFACE: &str = "feed";
/// Reorder's lane poll slice while waiting for stragglers.
const JUDGE_POLL_NS: u64 = 200_000;

/// How arrivals are spaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Fixed gap: `mean_gap_ns` exactly.
    Periodic,
    /// Poisson arrivals: exponential gaps with mean `mean_gap_ns`.
    Poisson,
    /// Log-normal gaps with mean `mean_gap_ns` and the given shape
    /// (σ of the underlying normal) — heavy-tailed bursts.
    LogNormal {
        /// Shape parameter σ; 0 degenerates to periodic.
        sigma: f64,
    },
}

/// How LoadGen waits out inter-arrival gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Timed receives on a never-connected interface: real sleeps on the
    /// threaded backends. The mode benchmarks use.
    RealTime,
    /// Compute annotations: advances virtual time without parking, so
    /// the run-to-completion inproc backend executes LoadGen first and
    /// every downstream decision is made against a fully materialized,
    /// deterministic queue state. The mode determinism tests use.
    Virtual,
}

/// Autoscaler tuning.
#[derive(Debug, Clone, Copy)]
pub struct AutoscaleConfig {
    /// Scale up once total queued messages stay at/above this.
    pub high_queue: u64,
    /// Scale down once total queued messages stay at/below this.
    pub low_queue: u64,
    /// Consecutive summaries pointing the same way before acting.
    pub hysteresis_rounds: u32,
    /// Floor for the active worker count.
    pub min_workers: usize,
    /// Observer polling interval, ns.
    pub interval_ns: u64,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            high_queue: 8,
            low_queue: 1,
            hysteresis_rounds: 2,
            min_workers: 1,
            interval_ns: 2_000_000,
        }
    }
}

/// Configuration of the overload harness application.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Frames LoadGen injects (cycling over the stream's frames).
    pub frames: u64,
    /// Mean inter-arrival gap, ns (offered load = 1e9 / mean_gap_ns
    /// frames per second).
    pub mean_gap_ns: u64,
    /// Arrival process shape.
    pub arrival: ArrivalProcess,
    /// Seed of the arrival sampler.
    pub seed: u64,
    /// Per-frame latency budget, ns: `deadline = arrival + budget`.
    pub deadline_budget_ns: u64,
    /// IDCT lanes deployed (the autoscaler's ceiling).
    pub max_workers: usize,
    /// Lanes active at start.
    pub initial_workers: usize,
    /// Overload policy attached to Fetch (`None`: unbounded queueing).
    pub fetch_policy: Option<OverloadPolicy>,
    /// Observation-driven autoscaling (`None`: fixed worker set).
    pub autoscale: Option<AutoscaleConfig>,
    /// How LoadGen paces arrivals.
    pub pacing: Pacing,
    /// Work annotations for the codec stages.
    pub profile: WorkProfile,
    /// (I)DCT kernel.
    pub kernel: DctKind,
    /// Component stack size.
    pub stack_bytes: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            frames: 64,
            mean_gap_ns: 1_000_000,
            arrival: ArrivalProcess::Poisson,
            seed: 0x5EED_CAFE,
            deadline_budget_ns: 50_000_000,
            max_workers: 3,
            initial_workers: 3,
            fetch_policy: None,
            autoscale: None,
            pacing: Pacing::RealTime,
            profile: WorkProfile::default(),
            kernel: DctKind::ReferenceFloat,
            stack_bytes: 8_392_000,
        }
    }
}

/// Shared counters of one overload run. Shed/expired *messages* at
/// Fetch's ingress live in the component's health counters (see
/// [`embera::HealthInfo::shed_messages`]); this probe tracks the
/// frame-level ledger the bench asserts:
/// `injected = completed + expired + fetch_shed + fetch_expired`.
#[derive(Clone, Default)]
pub struct OverloadProbe {
    /// Frame tokens LoadGen sent.
    pub injected: Arc<AtomicU64>,
    /// Frames that folded within their deadline.
    pub completed: Arc<AtomicU64>,
    /// Frames that folded past their deadline.
    pub expired: Arc<AtomicU64>,
    /// Blocks whose IDCT transform was skipped as already-late.
    pub idct_skipped: Arc<AtomicU64>,
    /// Frames left partially assembled at Reorder exit (blocks lost
    /// upstream, e.g. under an injected fault plan).
    pub incomplete: Arc<AtomicU64>,
    /// Completed-frame latencies, ns (fold − arrival), in fold order.
    pub latencies: Arc<Mutex<Vec<u64>>>,
    /// Active-worker retargets the controller issued, in order.
    pub scale_history: Arc<Mutex<Vec<u32>>>,
}

impl OverloadProbe {
    /// Completed-frame latencies, ns, in fold order.
    pub fn latencies(&self) -> Vec<u64> {
        self.latencies.lock().unwrap().clone()
    }

    /// Controller retargets, in order.
    pub fn scale_history(&self) -> Vec<u32> {
        self.scale_history.lock().unwrap().clone()
    }
}

// ---------------------------------------------------------------------
// Arrival sampling: a vendored splitmix64 stream (no external RNG crate)
// with exponential and log-normal transforms hand-rolled from f64 math.
// ---------------------------------------------------------------------

/// Minimal splitmix64, the same generator the bench crate vendors.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in (0, 1]: never 0, so `ln` stays finite.
    fn next_unit(&mut self) -> f64 {
        (((self.next_u64() >> 11) + 1) as f64) / (1u64 << 53) as f64
    }
}

/// Sample the next inter-arrival gap, ns.
fn sample_gap(rng: &mut SplitMix64, arrival: ArrivalProcess, mean_gap_ns: u64) -> u64 {
    let mean = mean_gap_ns as f64;
    let gap = match arrival {
        ArrivalProcess::Periodic => mean,
        ArrivalProcess::Poisson => -mean * rng.next_unit().ln(),
        ArrivalProcess::LogNormal { sigma } => {
            // Box-Muller standard normal; μ chosen so the log-normal's
            // *mean* is `mean` (μ = ln(mean) − σ²/2).
            let u1 = rng.next_unit();
            let u2 = rng.next_unit();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (mean.ln() - sigma * sigma / 2.0 + sigma * z).exp()
        }
    };
    gap.clamp(0.0, 1e15) as u64
}

/// Frame-token wire format (LoadGen → Fetch): `seq u32 | stream_frame
/// u32`. The deadline rides the [`Message::Deadlined`] envelope, not
/// the payload. An empty payload is the end-of-load sentinel.
fn encode_token(seq: u32, stream_frame: u32) -> Bytes {
    let mut v = Vec::with_capacity(8);
    v.extend_from_slice(&seq.to_le_bytes());
    v.extend_from_slice(&stream_frame.to_le_bytes());
    Bytes::from(v)
}

fn decode_token(b: &[u8]) -> Option<(u32, u32)> {
    if b.len() != 8 {
        return None;
    }
    Some((
        u32::from_le_bytes(b[0..4].try_into().unwrap()),
        u32::from_le_bytes(b[4..8].try_into().unwrap()),
    ))
}

/// The open-loop load generator: one frame token per sampled arrival,
/// deadline-stamped, then an empty sentinel.
pub struct LoadGenBehavior {
    frames: u64,
    stream_frames: u32,
    mean_gap_ns: u64,
    arrival: ArrivalProcess,
    seed: u64,
    deadline_budget_ns: u64,
    pacing: Pacing,
    probe: OverloadProbe,
}

impl LoadGenBehavior {
    /// Generator over a stream with `stream_frames` frames (frame 0 is
    /// the configuration frame and never injected).
    pub fn new(cfg: &OverloadConfig, stream_frames: usize, probe: OverloadProbe) -> Self {
        assert!(stream_frames >= 2, "need at least one forwardable frame");
        LoadGenBehavior {
            frames: cfg.frames,
            stream_frames: stream_frames as u32,
            mean_gap_ns: cfg.mean_gap_ns,
            arrival: cfg.arrival,
            seed: cfg.seed,
            deadline_budget_ns: cfg.deadline_budget_ns,
            pacing: cfg.pacing,
            probe,
        }
    }
}

impl Behavior for LoadGenBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        let mut rng = SplitMix64(self.seed);
        let cycle = self.stream_frames - 1;
        // Absolute arrival schedule: each wait targets the *cumulative*
        // arrival time, so timer overshoot on one gap is recovered on
        // the next and the offered rate stays what was configured —
        // the defining property of an open-loop generator.
        let mut next = ctx.now_ns();
        for seq in 0..self.frames {
            let gap = sample_gap(&mut rng, self.arrival, self.mean_gap_ns);
            next = next.saturating_add(gap);
            match self.pacing {
                Pacing::RealTime => {
                    // Sleep on a never-connected inbox; `Ok(None)` is
                    // the expected timeout, shutdown drains out the
                    // same way. Behind schedule: inject immediately.
                    let now = ctx.now_ns();
                    if next > now
                        && ctx.recv_message_timeout(TICK_IFACE, next - now)?.is_some()
                    {
                        return Err(EmberaError::Platform(
                            "unexpected message on LoadGen pacing interface".into(),
                        ));
                    }
                }
                Pacing::Virtual => {
                    // 1 op ≈ 1 ns on the deterministic backend; no
                    // park, so LoadGen runs to completion first.
                    if gap > 0 {
                        ctx.compute(Work::ops(WorkClass::Control, gap));
                    }
                }
            }
            if ctx.should_stop() {
                break;
            }
            let now = ctx.now_ns();
            let stream_frame = 1 + (seq % cycle as u64) as u32;
            ctx.send_deadlined(
                "frames",
                encode_token(seq as u32, stream_frame),
                now.saturating_add(self.deadline_budget_ns),
            )?;
            self.probe.injected.fetch_add(1, Ordering::AcqRel);
        }
        ctx.send("frames", Bytes::new())
    }
}

/// Dequantization state for the configured kernel (mirrors the
/// pipeline's private helper).
enum Tables {
    Reference([u16; BLOCK_SIZE]),
    Fast([i32; BLOCK_SIZE]),
}

impl Tables {
    fn for_kernel(kernel: DctKind, quality: u8) -> Self {
        let q = scaled_qtable(quality);
        match kernel {
            DctKind::ReferenceFloat => Tables::Reference(q),
            DctKind::FastAan | DctKind::FastSimd => Tables::Fast(fast_dequant_table(&q)),
        }
    }

    fn apply(&self, zz: &[i16; BLOCK_SIZE]) -> [i32; BLOCK_SIZE] {
        match self {
            Tables::Reference(q) => dequantize_reorder(zz, q),
            Tables::Fast(f) => dequantize_reorder_scaled(zz, f),
        }
    }
}

/// The open-loop Fetch: consumes frame tokens (its attached
/// [`OverloadPolicy`] sheds at this inbox), decodes the referenced
/// frame, and deals its blocks over the currently active lanes — one
/// deadlined coefficient batch per lane per frame.
pub struct OpenLoopFetchBehavior {
    stream: MjpegStream,
    out_ifaces: Vec<String>,
    active: usize,
    profile: WorkProfile,
    kernel: DctKind,
    probe: OverloadProbe,
}

impl OpenLoopFetchBehavior {
    /// Open-loop Fetch over `stream`, dealing to `out_ifaces` with the
    /// first `initial_active` lanes live.
    pub fn new(
        stream: MjpegStream,
        out_ifaces: Vec<String>,
        initial_active: usize,
        profile: WorkProfile,
        kernel: DctKind,
        probe: OverloadProbe,
    ) -> Self {
        let n = out_ifaces.len();
        OpenLoopFetchBehavior {
            stream,
            out_ifaces,
            active: initial_active.clamp(1, n.max(1)),
            profile,
            kernel,
            probe,
        }
    }

    /// Drain pending scale retargets without blocking.
    fn drain_scale(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        while let Some(m) = ctx.recv_timeout(SCALE_IFACE, 0)? {
            if m.len() == 4 {
                let want = u32::from_le_bytes(m[0..4].try_into().unwrap()) as usize;
                self.active = want.clamp(1, self.out_ifaces.len());
            }
        }
        Ok(())
    }
}

impl Behavior for OpenLoopFetchBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        if self.stream.is_empty() {
            return Ok(());
        }
        let header = self.stream.frames[0].header;
        let tables = Tables::for_kernel(self.kernel, header.quality);
        let blocks = header.blocks();
        let mut lanes: Vec<Vec<(u32, u32, [i32; BLOCK_SIZE])>> =
            vec![Vec::with_capacity(blocks); self.out_ifaces.len()];
        loop {
            self.drain_scale(ctx)?;
            let (payload, deadline) = match ctx.recv_message(FRAMES_IFACE) {
                Ok(Message::Deadlined {
                    payload,
                    deadline_ns,
                }) => (payload, Some(deadline_ns)),
                Ok(Message::Data(b)) => (b, None),
                Ok(_) => continue,
                Err(EmberaError::Terminated) => break,
                Err(e) => return Err(e),
            };
            if payload.is_empty() {
                break;
            }
            let Some((seq, stream_frame)) = decode_token(&payload) else {
                return Err(EmberaError::Platform(format!(
                    "bad frame token length {}",
                    payload.len()
                )));
            };
            let frame = &self.stream.frames[stream_frame as usize % self.stream.frames.len()];
            ctx.compute(Work::ops(
                WorkClass::Control,
                self.profile.file_mgmt_ops_per_frame,
            ));
            let mut dec = match self.kernel {
                DctKind::ReferenceFloat => EntropyDecoder::reference(&frame.data),
                DctKind::FastAan | DctKind::FastSimd => EntropyDecoder::new(&frame.data),
            };
            let mut bits_before = 0u64;
            for bi in 0..blocks {
                let zz = dec.next_block().map_err(|e| {
                    EmberaError::Platform(format!("frame {stream_frame} block {bi}: {e}"))
                })?;
                let bits = dec.bits_consumed() - bits_before;
                bits_before = dec.bits_consumed();
                ctx.compute(
                    Work::ops(
                        WorkClass::Control,
                        bits * self.profile.huffman_ops_per_bit
                            + BLOCK_SIZE as u64 * self.profile.dequant_ops_per_coeff,
                    )
                    .with_mem(BLOCK_SIZE as u64 * 4),
                );
                lanes[bi % self.active].push((seq, bi as u32, tables.apply(&zz)));
            }
            for (lane, buf) in lanes.iter_mut().enumerate() {
                if buf.is_empty() {
                    continue;
                }
                let msg = encode_coeff_batch(buf);
                buf.clear();
                match deadline {
                    Some(d) => ctx.send_deadlined(&self.out_ifaces[lane], msg, d)?,
                    None => ctx.send(&self.out_ifaces[lane], msg)?,
                }
            }
        }
        // End of load: sentinel every lane (active or not) so each IDCT
        // — and through it each Reorder lane — terminates.
        for iface in &self.out_ifaces.clone() {
            ctx.send(iface, Bytes::new())?;
        }
        let _ = &self.probe;
        Ok(())
    }
}

/// A deadline-aware IDCT lane: transforms on-time batches, forwards
/// zero blocks for already-late ones (structural completeness without
/// the work), and passes the sentinel through.
pub struct OverloadIdctBehavior {
    in_iface: String,
    out_iface: String,
    profile: WorkProfile,
    kernel: DctKind,
    probe: OverloadProbe,
}

impl OverloadIdctBehavior {
    /// Lane from `in_iface` to `out_iface`.
    pub fn new(
        in_iface: impl Into<String>,
        out_iface: impl Into<String>,
        profile: WorkProfile,
        kernel: DctKind,
        probe: OverloadProbe,
    ) -> Self {
        OverloadIdctBehavior {
            in_iface: in_iface.into(),
            out_iface: out_iface.into(),
            profile,
            kernel,
            probe,
        }
    }

    fn transform(&self, coeffs: &[i32; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        match self.kernel {
            DctKind::ReferenceFloat => idct_to_pixels(coeffs),
            DctKind::FastAan => idct_scaled_to_pixels(coeffs),
            DctKind::FastSimd => crate::simd::idct_scaled_to_pixels_simd(coeffs),
        }
    }
}

impl Behavior for OverloadIdctBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        let mut out: Vec<(u32, u32, [u8; BLOCK_SIZE])> = Vec::new();
        loop {
            let (payload, deadline) = match ctx.recv_message(&self.in_iface) {
                Ok(Message::Deadlined {
                    payload,
                    deadline_ns,
                }) => (payload, Some(deadline_ns)),
                Ok(Message::Data(b)) => (b, None),
                Ok(_) => continue,
                Err(EmberaError::Terminated) => return Ok(()),
                Err(e) => return Err(e),
            };
            if payload.is_empty() {
                return ctx.send(&self.out_iface, Bytes::new());
            }
            let view = BatchView::coeffs(&payload)?;
            out.clear();
            let late = deadline.is_some_and(|d| ctx.now_ns() >= d);
            if late {
                // Already past deadline: shed the *work*, keep the
                // structure, so Reorder can complete and judge the
                // frame instead of waiting on blocks that never come.
                for i in 0..view.len() {
                    let (f, bi, _) = view.block(i);
                    out.push((f, bi, [0u8; BLOCK_SIZE]));
                }
                self.probe
                    .idct_skipped
                    .fetch_add(view.len() as u64, Ordering::AcqRel);
            } else {
                for i in 0..view.len() {
                    let (f, bi, payload) = view.block(i);
                    let coeffs = coeffs_from_bytes(&payload)?;
                    out.push((f, bi, self.transform(&coeffs)));
                }
                ctx.compute(
                    Work::ops(
                        WorkClass::Dsp,
                        self.profile.idct_ops_per_block * view.len() as u64,
                    )
                    .with_mem(BLOCK_SIZE as u64 * 5 * view.len() as u64),
                );
            }
            let msg = encode_pixel_batch(&out);
            match deadline {
                Some(d) => ctx.send_deadlined(&self.out_iface, msg, d)?,
                None => ctx.send(&self.out_iface, msg)?,
            }
        }
    }
}

/// The judging Reorder: reassembles frames by block count and scores
/// each completed frame against its deadline.
pub struct ReorderJudgeBehavior {
    in_ifaces: Vec<String>,
    blocks_per_frame: usize,
    deadline_budget_ns: u64,
    profile: WorkProfile,
    probe: OverloadProbe,
}

impl ReorderJudgeBehavior {
    /// Judge draining `in_ifaces`, completing frames of
    /// `blocks_per_frame` blocks.
    pub fn new(
        in_ifaces: Vec<String>,
        blocks_per_frame: usize,
        deadline_budget_ns: u64,
        profile: WorkProfile,
        probe: OverloadProbe,
    ) -> Self {
        ReorderJudgeBehavior {
            in_ifaces,
            blocks_per_frame,
            deadline_budget_ns,
            profile,
            probe,
        }
    }

    fn absorb(
        &self,
        ctx: &mut dyn Ctx,
        partial: &mut HashMap<u32, (usize, u64)>,
        payload: &Bytes,
        deadline: Option<u64>,
    ) -> Result<(), EmberaError> {
        let view = BatchView::pixels(payload)?;
        ctx.compute(
            Work::ops(
                WorkClass::MemCopy,
                BLOCK_SIZE as u64 * self.profile.reorder_ops_per_pixel * view.len() as u64,
            )
            .with_mem(BLOCK_SIZE as u64 * 2 * view.len() as u64),
        );
        // A frame's batches all come from one token, so they share one
        // deadline; remember it for the fold-time judgment.
        let mut seen: Vec<u32> = Vec::new();
        for i in 0..view.len() {
            let (frame, _bi, _px) = view.block(i);
            if !seen.contains(&frame) {
                seen.push(frame);
            }
            let entry = partial.entry(frame).or_insert((0, u64::MAX));
            entry.0 += 1;
            if let Some(d) = deadline {
                entry.1 = d;
            }
        }
        for frame in seen {
            let Some(&(count, d)) = partial.get(&frame) else {
                continue;
            };
            if count < self.blocks_per_frame {
                continue;
            }
            partial.remove(&frame);
            let now = ctx.now_ns();
            if d != u64::MAX && now > d {
                self.probe.expired.fetch_add(1, Ordering::AcqRel);
            } else {
                self.probe.completed.fetch_add(1, Ordering::AcqRel);
                let arrival = if d == u64::MAX {
                    now
                } else {
                    d.saturating_sub(self.deadline_budget_ns)
                };
                self.probe
                    .latencies
                    .lock()
                    .unwrap()
                    .push(now.saturating_sub(arrival));
            }
        }
        Ok(())
    }
}

impl Behavior for ReorderJudgeBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        let n = self.in_ifaces.len();
        let mut partial: HashMap<u32, (usize, u64)> = HashMap::new();
        let mut done = vec![false; n];
        'drain: while done.iter().any(|d| !d) {
            if ctx.should_stop() {
                break;
            }
            #[allow(clippy::needless_range_loop)] // `done[lane]` is also written below
            for lane in 0..n {
                if done[lane] {
                    continue;
                }
                // Greedily drain this lane, then hop to the next; the
                // short poll keeps fold timestamps close to delivery.
                loop {
                    let iface = self.in_ifaces[lane].clone();
                    match ctx.recv_message_timeout(&iface, JUDGE_POLL_NS) {
                        Ok(None) => break,
                        Ok(Some(Message::Data(b))) if b.is_empty() => {
                            done[lane] = true;
                            break;
                        }
                        Ok(Some(Message::Data(b))) => {
                            self.absorb(ctx, &mut partial, &b, None)?;
                        }
                        Ok(Some(Message::Deadlined {
                            payload,
                            deadline_ns,
                        })) => {
                            self.absorb(ctx, &mut partial, &payload, Some(deadline_ns))?;
                        }
                        Ok(Some(_)) => {}
                        Err(EmberaError::Terminated) => break 'drain,
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        let leftover = partial.len() as u64;
        if leftover > 0 {
            self.probe.incomplete.fetch_add(leftover, Ordering::AcqRel);
        }
        Ok(())
    }
}

/// The observation-driven autoscaler: folds the root observer's region
/// summaries into a total queued-message gauge and retargets Fetch's
/// active lane count with hysteresis.
pub struct ScaleControllerBehavior {
    cfg: AutoscaleConfig,
    max_workers: usize,
    active: usize,
    probe: OverloadProbe,
}

impl ScaleControllerBehavior {
    /// Controller starting at `initial` active workers, capped at `max`.
    pub fn new(cfg: AutoscaleConfig, max: usize, initial: usize, probe: OverloadProbe) -> Self {
        ScaleControllerBehavior {
            cfg,
            max_workers: max.max(1),
            active: initial.clamp(cfg.min_workers.max(1), max.max(1)),
            probe,
        }
    }
}

impl Behavior for ScaleControllerBehavior {
    fn run(&mut self, ctx: &mut dyn Ctx) -> Result<(), EmberaError> {
        let mut region_queue: HashMap<String, u64> = HashMap::new();
        let mut up_streak = 0u32;
        let mut down_streak = 0u32;
        loop {
            let buf = match ctx.recv(FEED_IFACE) {
                Ok(b) => b,
                Err(EmberaError::Terminated) => return Ok(()),
                Err(e) => return Err(e),
            };
            if buf.is_empty() {
                // Root observer's exit sentinel.
                return Ok(());
            }
            let Some(summary) = embera::decode_region_summary(&buf) else {
                continue;
            };
            region_queue.insert(summary.region.clone(), summary.queued_messages);
            let total: u64 = region_queue.values().sum();
            if total >= self.cfg.high_queue {
                up_streak += 1;
                down_streak = 0;
            } else if total <= self.cfg.low_queue {
                down_streak += 1;
                up_streak = 0;
            } else {
                up_streak = 0;
                down_streak = 0;
            }
            let floor = self.cfg.min_workers.max(1);
            let mut target = self.active;
            if up_streak >= self.cfg.hysteresis_rounds && self.active < self.max_workers {
                target = self.active + 1;
                up_streak = 0;
            } else if down_streak >= self.cfg.hysteresis_rounds && self.active > floor {
                target = self.active - 1;
                down_streak = 0;
            }
            if target != self.active {
                self.active = target;
                ctx.send(
                    "scale",
                    Bytes::from((target as u32).to_le_bytes().to_vec()),
                )?;
                self.probe
                    .scale_history
                    .lock()
                    .unwrap()
                    .push(target as u32);
            }
        }
    }
}

/// Build the overload harness application. Deployment order matters on
/// the run-to-completion inproc backend: LoadGen first (so virtual-paced
/// load materializes before Fetch drains), then the pipeline stages in
/// flow order, the controller last.
pub fn build_overload_app(stream: MjpegStream, cfg: &OverloadConfig) -> (AppBuilder, OverloadProbe) {
    assert!(cfg.max_workers >= 1);
    assert!(stream.len() >= 2, "need a config frame plus payload frames");
    let probe = OverloadProbe::default();
    let header = stream.frames[0].header;
    let blocks_per_frame = header.blocks();

    let mut app = AppBuilder::new("MJPEG-overload");

    let mut loadgen = ComponentSpec::new(
        "LoadGen",
        LoadGenBehavior::new(cfg, stream.len(), probe.clone()),
    )
    .with_required("frames")
    .with_stack_bytes(cfg.stack_bytes);
    if cfg.pacing == Pacing::RealTime {
        loadgen = loadgen.with_provided(TICK_IFACE);
    }
    app.add(loadgen);

    let lane_ifaces: Vec<String> = (1..=cfg.max_workers)
        .map(|k| format!("fetchIdct{k}"))
        .collect();
    let mut fetch = ComponentSpec::new(
        "Fetch",
        OpenLoopFetchBehavior::new(
            stream,
            lane_ifaces.clone(),
            cfg.initial_workers,
            cfg.profile,
            cfg.kernel,
            probe.clone(),
        ),
    )
    .with_provided(FRAMES_IFACE)
    .with_provided(SCALE_IFACE)
    .with_stack_bytes(cfg.stack_bytes);
    for iface in &lane_ifaces {
        fetch = fetch.with_required(iface);
    }
    if let Some(policy) = cfg.fetch_policy {
        fetch = fetch.with_overload(policy);
    }
    app.add(fetch);
    app.connect(("LoadGen", "frames"), ("Fetch", FRAMES_IFACE));

    for k in 1..=cfg.max_workers {
        app.add(
            ComponentSpec::new(
                format!("IDCT_{k}"),
                OverloadIdctBehavior::new(
                    format!("_fetchIdct{k}"),
                    "idctReorder",
                    cfg.profile,
                    cfg.kernel,
                    probe.clone(),
                ),
            )
            .with_provided(format!("_fetchIdct{k}"))
            .with_required("idctReorder")
            .with_stack_bytes(cfg.stack_bytes)
            .on_cpu(k),
        );
        app.connect(
            ("Fetch", &format!("fetchIdct{k}")),
            (&format!("IDCT_{k}"), &format!("_fetchIdct{k}")),
        );
    }

    let reorder_ins: Vec<String> = (1..=cfg.max_workers)
        .map(|k| format!("_idct{k}Reorder"))
        .collect();
    let mut reorder = ComponentSpec::new(
        "Reorder",
        ReorderJudgeBehavior::new(
            reorder_ins.clone(),
            blocks_per_frame,
            cfg.deadline_budget_ns,
            cfg.profile,
            probe.clone(),
        ),
    )
    .with_stack_bytes(cfg.stack_bytes);
    for iface in &reorder_ins {
        reorder = reorder.with_provided(iface);
    }
    app.add(reorder);
    for k in 1..=cfg.max_workers {
        app.connect(
            (&format!("IDCT_{k}"), "idctReorder"),
            ("Reorder", &format!("_idct{k}Reorder")),
        );
    }

    if let Some(auto) = cfg.autoscale {
        app.add(
            ComponentSpec::new(
                "ScaleController",
                ScaleControllerBehavior::new(
                    auto,
                    cfg.max_workers,
                    cfg.initial_workers,
                    probe.clone(),
                ),
            )
            .with_provided(FEED_IFACE)
            .with_required("scale")
            .with_stack_bytes(cfg.stack_bytes),
        );
        app.connect(("ScaleController", "scale"), ("Fetch", SCALE_IFACE));
        // Two regions: the ingest side and the worker/judge side; the
        // controller itself stays unobserved (actuation-target rule).
        let workers: Vec<String> = (1..=cfg.max_workers)
            .map(|k| format!("IDCT_{k}"))
            .collect();
        let mut worker_group = workers.clone();
        worker_group.push("Reorder".to_string());
        app.with_observer(
            ObserverConfig::default()
                .interval_ns(auto.interval_ns)
                .request(embera::ObsRequest::Health)
                .grouped(vec![
                    (
                        "ingest".to_string(),
                        vec!["LoadGen".to_string(), "Fetch".to_string()],
                    ),
                    ("workers".to_string(), worker_group),
                ])
                .actuate("ScaleController", FEED_IFACE),
        );
    }

    (app, probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synthesize_stream;
    use embera::{Platform, RunningApp};
    use embera_inproc::InprocPlatform;

    fn cfg(frames: u64) -> OverloadConfig {
        OverloadConfig {
            frames,
            mean_gap_ns: 200_000,
            arrival: ArrivalProcess::Periodic,
            deadline_budget_ns: 1_000_000_000,
            pacing: Pacing::Virtual,
            ..OverloadConfig::default()
        }
    }

    fn stream() -> MjpegStream {
        synthesize_stream(4, 48, 24, 75, 0xBEEF)
    }

    #[test]
    fn samplers_are_deterministic_and_mean_scaled() {
        for arrival in [
            ArrivalProcess::Periodic,
            ArrivalProcess::Poisson,
            ArrivalProcess::LogNormal { sigma: 0.5 },
        ] {
            let mut a = SplitMix64(42);
            let mut b = SplitMix64(42);
            let ga: Vec<u64> = (0..64).map(|_| sample_gap(&mut a, arrival, 1_000)).collect();
            let gb: Vec<u64> = (0..64).map(|_| sample_gap(&mut b, arrival, 1_000)).collect();
            assert_eq!(ga, gb, "{arrival:?} not deterministic");
            let mean = ga.iter().sum::<u64>() / ga.len() as u64;
            assert!(
                (100..10_000).contains(&mean),
                "{arrival:?}: mean gap {mean} wildly off the requested 1000"
            );
        }
    }

    #[test]
    fn token_round_trip() {
        let t = encode_token(7, 3);
        assert_eq!(decode_token(&t), Some((7, 3)));
        assert_eq!(decode_token(&[0u8; 3]), None);
    }

    #[test]
    fn unloaded_run_completes_every_frame() {
        let (app, probe) = build_overload_app(stream(), &cfg(12));
        InprocPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(probe.injected.load(Ordering::SeqCst), 12);
        assert_eq!(probe.completed.load(Ordering::SeqCst), 12);
        assert_eq!(probe.expired.load(Ordering::SeqCst), 0);
        assert_eq!(probe.incomplete.load(Ordering::SeqCst), 0);
        assert_eq!(probe.latencies().len(), 12);
    }

    #[test]
    fn drop_oldest_sheds_and_ledger_balances() {
        let mut c = cfg(16);
        c.fetch_policy = Some(OverloadPolicy::drop_oldest(4));
        // Virtual pacing on inproc: all 16 tokens plus the end-of-load
        // sentinel (17 messages) are queued before Fetch drains, so the
        // 17 − 4 = 13 oldest tokens are shed and 3 survive (the
        // sentinel is the newest message and is never dropped).
        let (app, probe) = build_overload_app(stream(), &c);
        let report = InprocPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        let health = report.component("Fetch").unwrap().health.as_ref().unwrap();
        assert_eq!(health.shed_messages, 13);
        let completed = probe.completed.load(Ordering::SeqCst);
        let expired = probe.expired.load(Ordering::SeqCst);
        assert_eq!(completed + expired, 3);
        assert_eq!(
            probe.injected.load(Ordering::SeqCst),
            completed + expired + health.shed_messages + health.expired_messages
        );
    }

    #[test]
    fn deadline_drop_sheds_expired_tokens_at_ingress() {
        let mut c = cfg(10);
        c.deadline_budget_ns = 1; // every token is long expired once Fetch runs
        c.fetch_policy = Some(OverloadPolicy::deadline_drop());
        let (app, probe) = build_overload_app(stream(), &c);
        let report = InprocPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        let health = report.component("Fetch").unwrap().health.as_ref().unwrap();
        assert_eq!(health.expired_messages, 10);
        assert_eq!(probe.completed.load(Ordering::SeqCst), 0);
        assert_eq!(probe.injected.load(Ordering::SeqCst), health.expired_messages);
    }

    #[test]
    fn autoscale_controller_wires_and_terminates() {
        let mut c = cfg(8);
        c.max_workers = 3;
        c.initial_workers = 1;
        c.autoscale = Some(AutoscaleConfig::default());
        let (app, probe) = build_overload_app(stream(), &c);
        InprocPlatform::new()
            .deploy(app.build().unwrap())
            .unwrap()
            .wait()
            .unwrap();
        // All frames accounted; the controller exited on the sentinel.
        assert_eq!(
            probe.completed.load(Ordering::SeqCst) + probe.expired.load(Ordering::SeqCst),
            8
        );
    }

    #[test]
    fn overload_run_is_deterministic_on_inproc() {
        let run = || {
            let mut c = cfg(24);
            c.arrival = ArrivalProcess::Poisson;
            c.fetch_policy = Some(OverloadPolicy::drop_oldest(6));
            let (app, probe) = build_overload_app(stream(), &c);
            let report = InprocPlatform::new()
                .deploy(app.build().unwrap())
                .unwrap()
                .wait()
                .unwrap();
            (
                report
                    .component("Fetch")
                    .unwrap()
                    .health
                    .as_ref()
                    .unwrap()
                    .shed_messages,
                probe.completed.load(Ordering::SeqCst),
                probe.expired.load(Ordering::SeqCst),
                probe.latencies(),
            )
        };
        assert_eq!(run(), run());
    }
}
