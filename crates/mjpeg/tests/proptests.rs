//! Property-based tests over the JPEG codec primitives and the full
//! encode/decode path.

use proptest::prelude::*;

use mjpeg::bitstream::{BitReader, BitWriter};
use mjpeg::codec::{decode_frame, encode_frame, psnr};
use mjpeg::dct::{fdct, idct, BLOCK_SIZE};
use mjpeg::huffman::{category, put_magnitude, read_magnitude, HuffDecoder, HuffEncoder, HuffSpec};
use mjpeg::quant::{dequantize_reorder, quantize_zigzag, scaled_qtable, ZIGZAG};

proptest! {
    #[test]
    fn bitstream_round_trips_any_sequence(
        vals in prop::collection::vec((0u32..=0xFFFF, 1u32..=16), 1..200)
    ) {
        let mut w = BitWriter::new();
        for &(v, n) in &vals {
            w.put(v & ((1 << n) - 1), n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &vals {
            prop_assert_eq!(r.bits(n).unwrap(), v & ((1 << n) - 1));
        }
    }

    #[test]
    fn huffman_symbol_stream_round_trips(symbols in prop::collection::vec(0usize..162, 1..300)) {
        let spec = HuffSpec::luma_ac();
        let enc = HuffEncoder::new(&spec);
        let dec = HuffDecoder::new(&spec);
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.encode(&mut w, spec.values[s]);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            prop_assert_eq!(dec.decode(&mut r).unwrap(), spec.values[s]);
        }
    }

    #[test]
    fn magnitude_round_trips(v in -32767i32..=32767) {
        let cat = category(v);
        let mut w = BitWriter::new();
        put_magnitude(&mut w, v, cat);
        w.put(0xFF & 0x7F, 7); // ensure at least one full byte
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        prop_assert_eq!(read_magnitude(&mut r, cat).unwrap(), v);
    }

    #[test]
    fn dct_round_trip_is_near_identity(
        samples in prop::collection::vec(-128f32..=127f32, BLOCK_SIZE)
    ) {
        let mut block = [0f32; BLOCK_SIZE];
        block.copy_from_slice(&samples);
        let rec = idct(&fdct(&block));
        for (a, b) in block.iter().zip(rec.iter()) {
            prop_assert!((a - b).abs() < 0.05, "{} vs {}", a, b);
        }
    }

    #[test]
    fn quantize_dequantize_error_bounded_by_step(
        samples in prop::collection::vec(-800f32..=800f32, BLOCK_SIZE),
        quality in 1u8..=100,
    ) {
        let q = scaled_qtable(quality);
        let mut coeffs = [0f32; BLOCK_SIZE];
        coeffs.copy_from_slice(&samples);
        let zz = quantize_zigzag(&coeffs, &q);
        let back = dequantize_reorder(&zz, &q);
        for n in 0..BLOCK_SIZE {
            let err = (coeffs[n] - back[n] as f32).abs();
            prop_assert!(err <= q[n] as f32 / 2.0 + 0.5);
        }
    }

    #[test]
    fn zigzag_inverse_composition_is_identity(perm_seed in 0u64..1000) {
        // dequantize_reorder(quantize_zigzag(x)) visits every index once;
        // verify via an impulse at each position derived from the seed.
        let idx = (perm_seed as usize) % BLOCK_SIZE;
        let q = [1u16; BLOCK_SIZE];
        let mut coeffs = [0f32; BLOCK_SIZE];
        coeffs[idx] = 7.0;
        let zz = quantize_zigzag(&coeffs, &q);
        // The impulse must land at the zigzag position of idx.
        let k = ZIGZAG.iter().position(|&n| n == idx).unwrap();
        prop_assert_eq!(zz[k], 7);
        let back = dequantize_reorder(&zz, &q);
        prop_assert_eq!(back[idx], 7);
        prop_assert_eq!(back.iter().filter(|&&v| v != 0).count(), 1);
    }

    #[test]
    fn any_image_survives_encode_decode(
        seed in 0u64..u64::MAX,
        quality in 30u8..=95,
    ) {
        // Structured-random image: random base + gradient, 16x16.
        let (w, h) = (16usize, 16usize);
        let mut x = seed | 1;
        let mut img = vec![0u8; w * h];
        for (i, p) in img.iter_mut().enumerate() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = ((x >> 33) & 0x3F) as i32 - 32;
            let base = ((i % w) * 200 / w) as i32 + 20;
            *p = (base + noise).clamp(0, 255) as u8;
        }
        let data = encode_frame(&img, w, h, quality);
        let dec = decode_frame(&data, w, h, quality).unwrap();
        let p = psnr(&img, &dec);
        prop_assert!(p > 18.0, "PSNR {} dB at quality {}", p, quality);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn jfif_round_trips_arbitrary_geometry_and_dri(
        w in 8usize..40,
        h in 8usize..40,
        quality in 40u8..=95,
        dri in prop::sample::select(vec![0u16, 1, 2, 5, 1000]),
        seed in 0u64..u64::MAX,
    ) {
        let mut x = seed | 1;
        let img: Vec<u8> = (0..w * h)
            .map(|i| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let noise = ((x >> 40) & 0x1F) as i32;
                (((i % w) * 180 / w) as i32 + 40 + noise).clamp(0, 255) as u8
            })
            .collect();
        let file = mjpeg::jfif::encode_jfif_gray_dri(&img, w, h, quality, dri);
        let decoded = mjpeg::jfif::decode_jfif(&file).unwrap();
        prop_assert_eq!(decoded.width, w);
        prop_assert_eq!(decoded.height, h);
        let mjpeg::jfif::JfifPixels::Gray(px) = decoded.pixels else {
            return Err(TestCaseError::fail("expected gray"));
        };
        let p = psnr(&img, &px);
        prop_assert!(p > 20.0, "PSNR {} at q{} dri{} {}x{}", p, quality, dri, w, h);
    }

    /// The fixed-point AAN inverse DCT stays within ±1 gray level of the
    /// reference float path on arbitrary dequantized coefficients in the
    /// baseline-JPEG range.
    #[test]
    fn fast_idct_within_one_level_of_reference(
        coeffs in prop::collection::vec(-1024i32..=1024, BLOCK_SIZE)
    ) {
        let mut c = [0i32; BLOCK_SIZE];
        c.copy_from_slice(&coeffs);
        let reference = mjpeg::dct::idct_to_pixels(&c);
        let fast = mjpeg::dct::idct_fast_to_pixels(&c);
        for (i, (&a, &b)) in reference.iter().zip(fast.iter()).enumerate() {
            prop_assert!(
                (a as i32 - b as i32).abs() <= 1,
                "pixel {}: reference {} vs fast {}", i, a, b
            );
        }
    }

    /// The runtime-dispatched SIMD IDCT must be **byte-identical** to
    /// the scalar fixed-point AAN kernel on arbitrary prescaled
    /// coefficients — vectorization is a pure implementation detail.
    /// The input range covers well beyond anything dequantization can
    /// produce, so the saturating store path is exercised too.
    #[test]
    fn simd_idct_is_byte_identical_to_scalar(
        coeffs in prop::collection::vec(-(1i32 << 22)..=(1 << 22), BLOCK_SIZE)
    ) {
        let mut c = [0i32; BLOCK_SIZE];
        c.copy_from_slice(&coeffs);
        let scalar = mjpeg::dct::idct_scaled_to_pixels(&c);
        let simd = mjpeg::simd::idct_scaled_to_pixels_simd(&c);
        prop_assert_eq!(
            &scalar[..], &simd[..],
            "SIMD level {:?} diverged from scalar", mjpeg::active_level()
        );
    }

    /// The bulk YCbCr→RGB conversion (vectorized where the host allows)
    /// must be byte-identical to the per-pixel scalar formula for any
    /// plane contents, including the clamp edges at 0 and 255.
    #[test]
    fn simd_color_conversion_is_byte_identical_to_scalar(
        px in prop::collection::vec((0u8..=255, 0u8..=255, 0u8..=255), 1..100)
    ) {
        let y: Vec<u8> = px.iter().map(|p| p.0).collect();
        let cb: Vec<u8> = px.iter().map(|p| p.1).collect();
        let cr: Vec<u8> = px.iter().map(|p| p.2).collect();
        let mut out = vec![0u8; px.len() * 3];
        mjpeg::color::ycbcr_to_rgb_slice(&y, &cb, &cr, &mut out);
        for (i, &(yy, cbb, crr)) in px.iter().enumerate() {
            let (r, g, b) = mjpeg::color::ycbcr_to_rgb(yy, cbb, crr);
            prop_assert_eq!(
                (out[i * 3], out[i * 3 + 1], out[i * 3 + 2]),
                (r, g, b),
                "pixel {} differs (SIMD level {:?})", i, mjpeg::active_level()
            );
        }
    }

    /// The two-level LUT Huffman decoder produces exactly the same
    /// quantized blocks — and consumes exactly the same bits — as the
    /// bit-serial reference decoder on any encodable image.
    #[test]
    fn lut_huffman_decode_is_bit_identical_to_reference(
        seed in 0u64..10_000,
        quality in 30u8..=95,
    ) {
        let (w, h) = (16usize, 16usize);
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut img = vec![0u8; w * h];
        for p in img.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *p = (x >> 56) as u8;
        }
        let data = mjpeg::codec::encode_frame(&img, w, h, quality);
        let mut lut = mjpeg::codec::EntropyDecoder::new(&data);
        let mut bitwise = mjpeg::codec::EntropyDecoder::reference(&data);
        for block in 0..(w / 8) * (h / 8) {
            let a = lut.next_block().unwrap();
            let b = bitwise.next_block().unwrap();
            prop_assert_eq!(&a[..], &b[..], "block {} differs", block);
            prop_assert_eq!(lut.bits_consumed(), bitwise.bits_consumed());
        }
    }
}

/// Deterministic saturation edges the random sampler might miss: a DC
/// coefficient at either extreme with all-zero AC drives every output
/// pixel to the clamp rails, where scalar and SIMD must still agree.
#[test]
fn simd_idct_saturation_edges_match_scalar() {
    use mjpeg::dct::BLOCK_SIZE;
    for dc in [i32::MIN / 2, -(1 << 24), -8192, 0, 8192, 1 << 24, i32::MAX / 2] {
        let mut c = [0i32; BLOCK_SIZE];
        c[0] = dc;
        assert_eq!(
            mjpeg::dct::idct_scaled_to_pixels(&c)[..],
            mjpeg::simd::idct_scaled_to_pixels_simd(&c)[..],
            "dc {dc}: SIMD diverged at saturation edge"
        );
    }
}
