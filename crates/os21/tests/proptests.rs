//! Property-based tests of the RTOS primitives under arbitrary
//! schedules.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use mpsoc_sim::Machine;
use os21::{MessageQueue, Rtos};
use sim_kernel::Kernel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn message_queue_fifo_for_any_delays_and_capacity(
        delays in prop::collection::vec(0u64..200, 1..40),
        capacity in 1usize..8,
    ) {
        let mut kernel = Kernel::new();
        let rtos = Rtos::new(Machine::sti7200());
        let q: MessageQueue<usize> =
            MessageQueue::with_events(capacity, kernel.alloc_event(), kernel.alloc_event());
        let n = delays.len();
        let tx = q.clone();
        rtos.spawn_task(&mut kernel, 1, "producer", 0, move |t| {
            for (i, d) in delays.iter().enumerate() {
                t.delay(*d);
                tx.send(&t, i);
            }
        });
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        rtos.spawn_task(&mut kernel, 2, "consumer", 0, move |t| {
            for _ in 0..n {
                g.lock().push(q.receive(&t));
            }
        });
        kernel.run().unwrap();
        prop_assert_eq!(got.lock().clone(), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn task_time_never_exceeds_wall_time(
        ops in prop::collection::vec(1u64..100_000, 1..10),
        sleeps in prop::collection::vec(0u64..10_000, 1..10),
    ) {
        let mut kernel = Kernel::new();
        let rtos = Rtos::new(Machine::sti7200());
        rtos.spawn_task(&mut kernel, 1, "t", 0, move |t| {
            for (o, s) in ops.iter().zip(sleeps.iter()) {
                t.compute(mpsoc_sim::ComputeClass::Dsp, *o);
                t.delay(*s);
            }
        });
        kernel.run().unwrap();
        let task = rtos.task_time_ns("t").unwrap();
        prop_assert!(task <= kernel.now(), "task {} wall {}", task, kernel.now());
        prop_assert!(task > 0);
    }
}
