//! Bounded message queues between tasks, in the style of OS21's
//! `message_*` API (`message_create_queue`, `message_send`,
//! `message_receive`).

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex as HostMutex;
use sim_kernel::EventId;

use crate::task::TaskCtx;

struct QueueState<T> {
    items: VecDeque<T>,
    capacity: usize,
}

/// A bounded FIFO message queue between simulated tasks. Cloneable;
/// clones share the queue.
pub struct MessageQueue<T> {
    state: Arc<HostMutex<QueueState<T>>>,
    nonempty: EventId,
    nonfull: EventId,
}

impl<T> Clone for MessageQueue<T> {
    fn clone(&self) -> Self {
        MessageQueue {
            state: Arc::clone(&self.state),
            nonempty: self.nonempty,
            nonfull: self.nonfull,
        }
    }
}

impl<T> MessageQueue<T> {
    /// Create a queue with room for `capacity` messages.
    pub fn new(task: &TaskCtx, capacity: usize) -> Self {
        assert!(capacity >= 1);
        MessageQueue {
            state: Arc::new(HostMutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                capacity,
            })),
            nonempty: task.sim().alloc_event(),
            nonfull: task.sim().alloc_event(),
        }
    }

    /// Create from raw events (construction outside any task).
    pub fn with_events(capacity: usize, nonempty: EventId, nonfull: EventId) -> Self {
        assert!(capacity >= 1);
        MessageQueue {
            state: Arc::new(HostMutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                capacity,
            })),
            nonempty,
            nonfull,
        }
    }

    /// `message_send`: enqueue, blocking in virtual time while full.
    pub fn send(&self, task: &TaskCtx, item: T) {
        let mut slot = Some(item);
        loop {
            {
                let mut st = self.state.lock();
                if st.items.len() < st.capacity {
                    st.items.push_back(slot.take().expect("item"));
                    task.sim().notify(self.nonempty);
                    return;
                }
            }
            task.sim().wait(self.nonfull);
        }
    }

    /// `message_receive`: dequeue, blocking in virtual time while empty.
    pub fn receive(&self, task: &TaskCtx) -> T {
        loop {
            {
                let mut st = self.state.lock();
                if let Some(item) = st.items.pop_front() {
                    task.sim().notify(self.nonfull);
                    return item;
                }
            }
            task.sim().wait(self.nonempty);
        }
    }

    /// Non-blocking receive.
    pub fn try_receive(&self, task: &TaskCtx) -> Option<T> {
        let mut st = self.state.lock();
        let item = st.items.pop_front();
        if item.is_some() {
            task.sim().notify(self.nonfull);
        }
        item
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.state.lock().items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtos::Rtos;
    use mpsoc_sim::Machine;
    use sim_kernel::Kernel;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn queue_preserves_fifo_across_tasks() {
        let mut kernel = Kernel::new();
        let rtos = Rtos::new(Machine::sti7200());
        let q: MessageQueue<u32> =
            MessageQueue::with_events(4, kernel.alloc_event(), kernel.alloc_event());
        let tx = q.clone();
        rtos.spawn_task(&mut kernel, 1, "producer", 0, move |t| {
            for i in 0..50 {
                t.delay(3);
                tx.send(&t, i);
            }
        });
        let received = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let r = Arc::clone(&received);
        rtos.spawn_task(&mut kernel, 2, "consumer", 0, move |t| {
            for _ in 0..50 {
                r.lock().push(q.receive(&t));
            }
        });
        kernel.run().unwrap();
        assert_eq!(*received.lock(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn full_queue_blocks_sender() {
        let mut kernel = Kernel::new();
        let rtos = Rtos::new(Machine::sti7200());
        let q: MessageQueue<u32> =
            MessageQueue::with_events(1, kernel.alloc_event(), kernel.alloc_event());
        let done_at = Arc::new(AtomicU64::new(0));
        let tx = q.clone();
        let d = Arc::clone(&done_at);
        rtos.spawn_task(&mut kernel, 1, "p", 0, move |t| {
            tx.send(&t, 1);
            tx.send(&t, 2); // must block until consumer drains
            d.store(t.now_ns(), Ordering::SeqCst);
        });
        rtos.spawn_task(&mut kernel, 2, "c", 0, move |t| {
            t.delay(500);
            q.receive(&t);
            q.receive(&t);
        });
        kernel.run().unwrap();
        assert!(done_at.load(Ordering::SeqCst) >= 500);
    }
}
